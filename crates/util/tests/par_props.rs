//! Direct unit/property coverage for the `ff_util::par` worker pool.
//!
//! The pool is load-bearing for the component-parallel fluid solver
//! (PR 6) and now for the Monte-Carlo fleet sweeper: both promise
//! bit-identical results at any worker count, and that promise reduces to
//! two properties tested here — the LPT lane packing is a pure function
//! of the declared weights, and `map_weighted` returns results keyed by
//! input index no matter which lane computed them.

use ff_util::par::{lpt_pack, pool};
use ff_util::rng::ChaCha8Rng;
use std::panic::{catch_unwind, AssertUnwindSafe};

// ---------------------------------------------------------------------------
// lpt_pack: the deterministic packing itself
// ---------------------------------------------------------------------------

/// Reference LPT: the documented algorithm, written independently.
fn lpt_reference(weights: &[u64], width: usize) -> Vec<Vec<usize>> {
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(weights[i]), i));
    let mut lanes = vec![Vec::new(); width];
    let mut load = vec![0u64; width];
    for i in order {
        let mut best = 0;
        for l in 1..width {
            if load[l] < load[best] {
                best = l;
            }
        }
        lanes[best].push(i);
        load[best] += weights[i].max(1);
    }
    lanes
}

#[test]
fn lpt_matches_reference_on_seeded_inputs() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x17A9);
    for case in 0..200 {
        let n = rng.gen_range(0..40usize);
        let width = rng.gen_range(1..9usize);
        let weights: Vec<u64> = (0..n).map(|_| rng.gen_range(0..50u64)).collect();
        assert_eq!(
            lpt_pack(&weights, width),
            lpt_reference(&weights, width),
            "case {case}: weights {weights:?} width {width}"
        );
    }
}

#[test]
fn lpt_packs_heaviest_first_lightest_lane() {
    // 4 items, 2 lanes: 9 → lane 0, 7 → lane 1, 5 → lane 1 (7+5=12 ≥ 9
    // only after), 3 → lane 0. Hand-computed.
    let lanes = lpt_pack(&[3, 9, 5, 7], 2);
    assert_eq!(lanes, vec![vec![1, 0], vec![3, 2]]);
}

#[test]
fn lpt_breaks_ties_by_input_index_and_lowest_lane() {
    // Equal weights: items visit in input order, lanes fill 0, 1, 0, 1…
    let lanes = lpt_pack(&[5, 5, 5, 5, 5], 2);
    assert_eq!(lanes, vec![vec![0, 2, 4], vec![1, 3]]);
}

#[test]
fn lpt_is_a_permutation_of_the_input() {
    let weights: Vec<u64> = (0..257).map(|i| (i * 37) % 19).collect();
    for width in [1, 2, 3, 7, 16] {
        let lanes = lpt_pack(&weights, width);
        assert_eq!(lanes.len(), width);
        let mut seen: Vec<usize> = lanes.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..weights.len()).collect::<Vec<_>>());
    }
}

#[test]
fn lpt_lane_loads_are_balanced() {
    // Classic LPT bound: no lane exceeds average load + max item weight.
    let weights: Vec<u64> = (1..200u64).map(|i| (i * i) % 97 + 1).collect();
    for width in [2usize, 4, 8] {
        let lanes = lpt_pack(&weights, width);
        let total: u64 = weights.iter().sum();
        let max_w = *weights.iter().max().unwrap();
        for lane in &lanes {
            let load: u64 = lane.iter().map(|&i| weights[i]).sum();
            assert!(
                load <= total / width as u64 + max_w,
                "lane load {load} breaks the LPT bound (total {total}, width {width})"
            );
        }
    }
}

#[test]
fn lpt_zero_width_and_empty_inputs() {
    assert!(lpt_pack(&[1, 2, 3], 0).is_empty());
    assert_eq!(lpt_pack(&[], 3), vec![Vec::<usize>::new(); 3]);
}

#[test]
fn lpt_zero_weights_still_advance_lanes() {
    // Zero-weight items count as 1, so they round-robin rather than all
    // landing on lane 0.
    let lanes = lpt_pack(&[0, 0, 0, 0], 2);
    assert_eq!(lanes, vec![vec![0, 2], vec![1, 3]]);
}

// ---------------------------------------------------------------------------
// map_weighted: the pool primitive
// ---------------------------------------------------------------------------

#[test]
fn single_item_any_width() {
    for width in [0, 1, 2, 8, 1000] {
        assert_eq!(
            pool().map_weighted(vec![(7u64, 21u64)], width, |x| x * 2),
            vec![42]
        );
    }
}

#[test]
fn items_far_exceeding_lanes() {
    // 5,000 items over at most 8 lanes: results must come back complete,
    // in input order, for every width.
    let items = || -> Vec<(u64, u64)> { (0..5000).map(|i| (i % 11, i)).collect() };
    let want: Vec<u64> = (0..5000).map(|i| i ^ (i << 7)).collect();
    for width in [2usize, 5, 8] {
        assert_eq!(pool().map_weighted(items(), width, |x| x ^ (x << 7)), want);
    }
}

#[test]
fn zero_width_config_means_serial() {
    // A `width = 0` caller (e.g. a misconfigured thread knob) degrades to
    // inline serial mapping, not a hang or a panic.
    let out = pool().map_weighted(vec![(1u64, 1u32), (1, 2), (1, 3)], 0, |x| x + 10);
    assert_eq!(out, vec![11, 12, 13]);
}

#[test]
fn one_thread_config_runs_inline_on_caller() {
    // width == 1 must not round-trip through the pool: the closure runs on
    // the calling thread (observable via thread name).
    let here = std::thread::current().id();
    let out = pool().map_weighted(vec![(1u64, 0u8)], 1, |_| std::thread::current().id());
    assert_eq!(out, vec![here]);
}

#[test]
fn results_bitwise_identical_across_widths() {
    let items =
        |n: u64| -> Vec<(u64, f64)> { (0..n).map(|i| (i % 5 + 1, i as f64 * 0.1)).collect() };
    let golden = pool().map_weighted(items(300), 1, |x| (x * 3.7).sin());
    for width in [2, 3, 4, 8] {
        let got = pool().map_weighted(items(300), width, |x| (x * 3.7).sin());
        assert_eq!(golden.len(), got.len());
        for (a, b) in golden.iter().zip(&got) {
            assert_eq!(a.to_bits(), b.to_bits(), "width {width} diverged");
        }
    }
}

#[test]
fn worker_panic_surfaces_as_error_not_hang() {
    // A panicking item must propagate a panic to the caller (not deadlock
    // waiting for a result that will never come)…
    let caught = catch_unwind(AssertUnwindSafe(|| {
        pool().map_weighted((0..64u32).map(|i| (1u64, i)).collect(), 4, |x| {
            assert!(x != 33, "injected worker panic");
            x
        })
    }));
    assert!(caught.is_err(), "worker panic did not reach the caller");
    // …and the pool must remain fully usable afterwards: the lane that
    // caught the panic stays alive.
    let out = pool().map_weighted((0..64u32).map(|i| (1u64, i)).collect(), 4, |x| x + 1);
    assert_eq!(out, (1..65u32).collect::<Vec<_>>());
}

#[test]
fn pool_reports_at_least_eight_workers() {
    // The determinism suites rely on genuinely oversubscribing a
    // single-core box: the global pool keeps ≥ 8 lanes regardless of the
    // machine's parallelism.
    assert!(pool().workers() >= 8);
}
