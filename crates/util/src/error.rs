//! The workspace-wide error type.
//!
//! Every layer of the stack has its own typed error — `CommError` in
//! ff-reduce, `ChainError`/`FsError`/`MetaError` in ff-3fs, `CkptError`
//! and the scheduler errors in ff-platform. Code that composes layers
//! (the recovery loop, the storage plane, the event-driven scheduler)
//! used to need a match ladder per crate boundary; [`FfError`] gives them
//! one `?`-friendly sink instead.
//!
//! ff-util sits at the bottom of the dependency graph, so `FfError`
//! cannot name the concrete error types above it. It carries a coarse
//! [`FfKind`] plus the original error boxed as a `source()`, and each
//! crate provides its own `impl From<TheirError> for FfError` next to the
//! error it owns (legal under the orphan rule: the local type appears as
//! the trait's type parameter).

use std::error::Error;
use std::fmt;

/// Which layer of the stack an [`FfError`] came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FfKind {
    /// Collective-communication failure (a peer died or timed out).
    Comm,
    /// Storage-plane failure (3FS chain, file system, metadata).
    Storage,
    /// Checkpoint save/load failure (including checksum mismatches).
    Checkpoint,
    /// Invalid configuration (builder rejected the shape).
    Config,
    /// Scheduler-level failure (rejected submission, unknown task).
    Sched,
    /// Anything else.
    Other,
}

impl FfKind {
    /// Stable lowercase name (metric labels, log prefixes).
    pub fn name(&self) -> &'static str {
        match self {
            FfKind::Comm => "comm",
            FfKind::Storage => "storage",
            FfKind::Checkpoint => "checkpoint",
            FfKind::Config => "config",
            FfKind::Sched => "sched",
            FfKind::Other => "other",
        }
    }
}

/// The unified error: a kind, a human-readable message, and (when the
/// error crossed a crate boundary) the typed original as `source()`.
#[derive(Debug)]
pub struct FfError {
    kind: FfKind,
    msg: String,
    source: Option<Box<dyn Error + Send + Sync + 'static>>,
}

impl FfError {
    /// An error with no underlying cause.
    pub fn new(kind: FfKind, msg: impl Into<String>) -> FfError {
        FfError {
            kind,
            msg: msg.into(),
            source: None,
        }
    }

    /// Wrap a typed error from a higher crate, preserving it as
    /// `source()` for callers that want to downcast.
    pub fn with_source(
        kind: FfKind,
        msg: impl Into<String>,
        source: impl Error + Send + Sync + 'static,
    ) -> FfError {
        FfError {
            kind,
            msg: msg.into(),
            source: Some(Box::new(source)),
        }
    }

    /// The layer this error came from.
    pub fn kind(&self) -> FfKind {
        self.kind
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl fmt::Display for FfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind.name(), self.msg)
    }
}

impl Error for FfError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        self.source.as_deref().map(|e| e as &(dyn Error + 'static))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Inner;
    impl fmt::Display for Inner {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "inner failure")
        }
    }
    impl Error for Inner {}

    #[test]
    fn displays_kind_and_message() {
        let e = FfError::new(FfKind::Sched, "task 7 unknown");
        assert_eq!(e.to_string(), "sched: task 7 unknown");
        assert_eq!(e.kind(), FfKind::Sched);
        assert!(e.source().is_none());
    }

    #[test]
    fn preserves_source_chain() {
        let e = FfError::with_source(FfKind::Storage, "chain write failed", Inner);
        assert_eq!(e.kind(), FfKind::Storage);
        let src = e.source().expect("source preserved");
        assert_eq!(src.to_string(), "inner failure");
        assert!(src.downcast_ref::<Inner>().is_some());
    }
}
