//! Deterministic fork/join parallelism on a shared worker pool.
//!
//! The build environment has no access to crates.io, so this is the
//! workspace's std-only stand-in for `rayon`: a lazily-started global pool
//! of OS threads fed through an [`unbounded`](crate::channel::unbounded)
//! channel, plus a weighted map primitive whose output is a pure function
//! of its input — results come back keyed by input index, and the
//! deterministic LPT (longest-processing-time) packing that assigns items
//! to lanes depends only on the declared weights, never on runtime timing.
//!
//! Callers that must produce bit-identical results at any thread count
//! (the fluid solver's component-parallel path) rely on exactly that
//! contract: each item is solved independently, and the caller merges the
//! index-ordered results serially.
//!
//! The pool width is read once from the environment: `RAYON_NUM_THREADS`
//! (honoring the name the rest of the ecosystem uses), then `FF_THREADS`,
//! then [`std::thread::available_parallelism`]. Individual calls can
//! narrow (never widen) their effective width with the `width` argument,
//! which is how the thread-count determinism tests sweep 1/2/8 threads in
//! one process.

use crate::channel::{unbounded, Receiver, Sender};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::OnceLock;

/// A queued unit of pool work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// The shared worker pool. Obtain it with [`pool`].
pub struct ParPool {
    tx: Sender<Job>,
    workers: usize,
}

static POOL: OnceLock<ParPool> = OnceLock::new();

/// The configured default width: `RAYON_NUM_THREADS`, else `FF_THREADS`,
/// else the machine's available parallelism, clamped to `1..=256`.
pub fn default_threads() -> usize {
    fn from_env(name: &str) -> Option<usize> {
        std::env::var(name).ok()?.trim().parse::<usize>().ok()
    }
    from_env("RAYON_NUM_THREADS")
        .or_else(|| from_env("FF_THREADS"))
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .clamp(1, 256)
}

/// The global pool, started on first use. It keeps at least 8 lanes even
/// when [`default_threads`] is smaller: effective width is chosen per
/// call (and *defaults* to `default_threads()`), but the thread-count
/// determinism suites must be able to genuinely oversubscribe a
/// single-core CI box, and idle lanes just block on the queue.
pub fn pool() -> &'static ParPool {
    POOL.get_or_init(|| ParPool::new(default_threads().max(8)))
}

/// Deterministic LPT (longest-processing-time) lane packing: item indexes
/// are visited heaviest-first (ties broken by ascending input index) and
/// each is appended to the currently lightest lane (lowest lane index on
/// ties), with every item counting at least 1 toward its lane's load.
///
/// The result is a pure function of `(weights, width)`: no clock, no
/// thread identity, no allocation order leaks in. [`ParPool::map_weighted`]
/// relies on exactly that to keep its observable behaviour independent of
/// runtime timing; the fleet sweeper additionally relies on every index
/// appearing in exactly one lane.
///
/// `width == 0` yields no lanes (the caller maps inline instead).
pub fn lpt_pack(weights: &[u64], width: usize) -> Vec<Vec<usize>> {
    let n = weights.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| weights[b].cmp(&weights[a]).then(a.cmp(&b)));
    let mut lanes: Vec<Vec<usize>> = vec![Vec::new(); width];
    let mut lane_load = vec![0u64; width];
    for idx in order {
        let Some(lane) = (0..width).min_by_key(|&l| (lane_load[l], l)) else {
            break;
        };
        lane_load[lane] += weights[idx].max(1);
        lanes[lane].push(idx);
    }
    lanes
}

impl ParPool {
    fn new(workers: usize) -> ParPool {
        let workers = workers.max(1);
        let (tx, rx) = unbounded::<Job>();
        for i in 0..workers {
            let rx: Receiver<Job> = rx.clone();
            std::thread::Builder::new()
                .name(format!("ff-par-{i}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        // A panicking job must not take the worker down with
                        // it: the caller notices the dropped result sender
                        // and re-raises; the lane stays usable.
                        let _ = catch_unwind(AssertUnwindSafe(job));
                    }
                })
                .expect("spawn pool worker");
        }
        ParPool { tx, workers }
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Apply `f` to every item on the pool and return the results in input
    /// order. `width` caps how many lanes are used (clamped to
    /// `1..=workers()`); items are packed into lanes by deterministic LPT
    /// on the declared `weight`s ([`lpt_pack`]), so the lane assignment —
    /// and therefore every observable of this call — is independent of
    /// runtime timing.
    ///
    /// With an effective width of 1 (or 0–1 items) the items are mapped
    /// inline on the caller's thread: `width == 1` means *serial*, not
    /// "one worker". `width == 0` is treated as 1.
    ///
    /// Panics if a worker lane panics while running `f`.
    pub fn map_weighted<T, R>(&self, items: Vec<(u64, T)>, width: usize, f: fn(T) -> R) -> Vec<R>
    where
        T: Send + 'static,
        R: Send + 'static,
    {
        let n = items.len();
        let width = width.clamp(1, self.workers).min(n);
        if width <= 1 {
            return items.into_iter().map(|(_, it)| f(it)).collect();
        }
        let weights: Vec<u64> = items.iter().map(|&(w, _)| w).collect();
        let lanes = lpt_pack(&weights, width);
        let mut slots: Vec<Option<(u64, T)>> = items.into_iter().map(Some).collect();
        let (rtx, rrx) = unbounded::<(usize, R)>();
        for lane in lanes {
            let batch: Vec<(usize, T)> = lane
                .into_iter()
                .map(|idx| (idx, slots[idx].take().expect("item packed once").1))
                .collect();
            let rtx = rtx.clone();
            let sent = self.tx.send(Box::new(move || {
                for (idx, item) in batch {
                    let r = f(item);
                    if rtx.send((idx, r)).is_err() {
                        return;
                    }
                }
            }));
            assert!(sent.is_ok(), "pool workers alive");
        }
        drop(rtx);
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut got = 0usize;
        while got < n {
            match rrx.recv() {
                Ok((idx, r)) => {
                    debug_assert!(out[idx].is_none(), "result delivered twice");
                    out[idx] = Some(r);
                    got += 1;
                }
                Err(_) => panic!("parallel map lane panicked"),
            }
        }
        out.into_iter()
            .map(|o| o.expect("every index delivered"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_returns_results_in_input_order() {
        let items: Vec<(u64, u64)> = (0..97).map(|i| (i % 7 + 1, i)).collect();
        let out = pool().map_weighted(items, 8, |x| x * 3);
        assert_eq!(out, (0..97).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn width_one_runs_inline() {
        let out = pool().map_weighted(vec![(1u64, 5usize), (1, 6)], 1, |x| x + 1);
        assert_eq!(out, vec![6, 7]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<(u64, u32)> = Vec::new();
        assert!(pool().map_weighted(empty, 4, |x| x).is_empty());
        assert_eq!(
            pool().map_weighted(vec![(9, 41u32)], 4, |x| x + 1),
            vec![42]
        );
    }

    #[test]
    fn results_identical_across_widths() {
        let items = |n: u64| -> Vec<(u64, u64)> { (0..n).map(|i| (i * 31 % 13 + 1, i)).collect() };
        let golden = pool().map_weighted(items(200), 1, |x| x.wrapping_mul(0x9E3779B97F4A7C15));
        for width in [2, 3, 8] {
            let got =
                pool().map_weighted(items(200), width, |x| x.wrapping_mul(0x9E3779B97F4A7C15));
            assert_eq!(got, golden, "width {width} diverged");
        }
    }

    #[test]
    fn lane_panic_is_propagated_not_hung() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool().map_weighted(vec![(1u64, 0u32), (1, 1)], 2, |x| {
                assert!(x != 1, "boom");
                x
            })
        }));
        assert!(caught.is_err(), "panic must propagate to the caller");
        // The pool must still work afterwards.
        assert_eq!(
            pool().map_weighted(vec![(1u64, 1u32)], 2, |x| x + 1),
            vec![2]
        );
    }
}
