//! Minimal wall-clock benchmark harness — a criterion stand-in for
//! `harness = false` bench binaries. Each case warms up briefly, then
//! measures for a fixed wall budget and reports mean time per iteration
//! (plus throughput when a per-iteration byte count is known).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark runner; construct once per bench binary.
pub struct Bench {
    warmup: Duration,
    measure: Duration,
}

impl Default for Bench {
    fn default() -> Self {
        Self::new()
    }
}

impl Bench {
    /// A runner with the default 50 ms warmup / 300 ms measure budget.
    /// `FF_BENCH_MS` overrides the measure budget (milliseconds).
    pub fn new() -> Bench {
        let measure = std::env::var("FF_BENCH_MS")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .map(Duration::from_millis)
            .unwrap_or(Duration::from_millis(300));
        Bench {
            warmup: Duration::from_millis(50),
            measure,
        }
    }

    /// Time `f`, printing mean ns/iter.
    pub fn run<F: FnMut()>(&self, name: &str, f: F) {
        let per_iter = self.time(f);
        println!("{name:40} {:>12.0} ns/iter", per_iter * 1e9);
    }

    /// Time `f`, printing mean ns/iter and GiB/s given `bytes` processed
    /// per iteration.
    pub fn run_bytes<F: FnMut()>(&self, name: &str, bytes: u64, f: F) {
        let per_iter = self.time(f);
        let gibs = bytes as f64 / per_iter / (1u64 << 30) as f64;
        println!(
            "{name:40} {:>12.0} ns/iter {gibs:>10.2} GiB/s",
            per_iter * 1e9
        );
    }

    /// Mean seconds per iteration of `f` over the measure budget.
    fn time<F: FnMut()>(&self, mut f: F) -> f64 {
        let start = Instant::now();
        while start.elapsed() < self.warmup {
            f();
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.measure {
            f();
            iters += 1;
        }
        start.elapsed().as_secs_f64() / iters as f64
    }
}
