//! A cheaply cloneable, sliceable, immutable byte buffer — the subset of
//! the `bytes` crate's `Bytes` API this workspace uses. Clones and slices
//! share one refcounted allocation; no data is copied after construction.

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Immutable shared byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wrap a static byte string (copied once into shared storage).
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }

    /// Copy `s` into a new shared buffer.
    pub fn copy_from_slice(s: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(s),
            start: 0,
            len: s.len(),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A zero-copy sub-slice sharing this buffer's storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(begin <= end && end <= self.len, "slice out of range");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            len: end - begin,
        }
    }

    /// The bytes as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.start + self.len]
    }

    /// Copy out into an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let len = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            len,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({:?})", self.as_slice())
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        let a = Bytes::from_static(b"hello");
        let b = Bytes::from(b"hello".to_vec());
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert_eq!(&a[..], b"hello");
        assert!(!a.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn slices_share_storage() {
        let a = Bytes::from(vec![0u8, 1, 2, 3, 4, 5, 6, 7]);
        let s = a.slice(2..6);
        assert_eq!(&s[..], &[2, 3, 4, 5]);
        let ss = s.slice(1..3);
        assert_eq!(&ss[..], &[3, 4]);
        // No copy: same backing allocation.
        assert!(Arc::ptr_eq(&a.data, &ss.data));
    }

    #[test]
    #[should_panic(expected = "slice out of range")]
    fn out_of_range_slice_panics() {
        Bytes::from_static(b"abc").slice(1..5);
    }
}
