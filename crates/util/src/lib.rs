//! Zero-dependency substrate for the workspace.
//!
//! The build environment has no access to crates.io, so the handful of
//! external utility crates the original design leaned on (`bytes`,
//! `parking_lot`, `crossbeam-channel`, `rand`/`rand_chacha`) are replaced
//! by small, std-only equivalents with compatible APIs:
//!
//! - [`bytes::Bytes`] — cheaply cloneable, sliceable, immutable byte buffer
//! - [`sync`] — `Mutex` / `RwLock` / `Condvar` with `parking_lot`'s
//!   non-poisoning guard API
//! - [`channel`] — multi-producer multi-consumer FIFO channels with
//!   disconnect semantics and `recv_timeout`
//! - [`rng`] — a seeded, deterministic ChaCha8 generator
//!
//! [`scengen`] builds on [`rng`] to generate seeded random fluid-simulation
//! scenarios (topology + flow schedule) for differential solver testing.

pub mod bench;
pub mod bytes;
pub mod channel;
pub mod error;
pub mod par;
pub mod rng;
pub mod scengen;
pub mod sync;

pub use error::{FfError, FfKind};
