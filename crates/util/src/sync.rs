//! `parking_lot`-style lock API over std primitives: guards come straight
//! out of `lock()` / `read()` / `write()` with no poisoning `Result`. A
//! panic while holding a lock aborts nothing here — the next locker simply
//! recovers the inner value, which matches how the workspace uses locks
//! (short critical sections over plain data).

use std::ops::{Deref, DerefMut};
use std::sync::TryLockError;
use std::time::Duration;

/// Mutual exclusion; `lock()` returns the guard directly.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard for [`Mutex`]. The inner `Option` exists so [`Condvar::wait`]
/// can temporarily take std's guard by value and put it back.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}
impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

/// Reader-writer lock; `read()` / `write()` return guards directly.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire the exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Condition variable working with [`MutexGuard`].
#[derive(Default, Debug)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically release the guard's lock and wait for a notification;
    /// the lock is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(|e| e.into_inner()));
    }

    /// [`Condvar::wait`] with a timeout; returns `true` if the wait timed
    /// out (the lock is re-acquired either way).
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let inner = guard.0.take().expect("guard present");
        let (inner, res) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.0 = Some(inner);
        res.timed_out()
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guard_api() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(7));
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 14);
        drop((r1, r2));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(5)));
    }
}
