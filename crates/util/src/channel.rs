//! Multi-producer multi-consumer FIFO channels — the subset of
//! `crossbeam-channel`'s API the workspace uses, plus `recv_timeout`,
//! built on a mutex-protected queue and a condition variable.
//!
//! Disconnect semantics match crossbeam: `send` fails once every receiver
//! is gone; `recv` drains remaining messages and then fails once every
//! sender is gone. These semantics are what lets the allreduce executor
//! detect a dead peer rank instead of hanging.

use crate::sync::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when all receivers are dropped;
/// carries the unsent message back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message available right now.
    Empty,
    /// All senders are gone and the queue is drained.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The deadline passed without a message.
    Timeout,
    /// All senders are gone and the queue is drained.
    Disconnected,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    cv: Condvar,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

/// The sending half; cloneable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half; cloneable (any one receiver gets each message).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// An unbounded mpmc channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        cv: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueue a message; fails (returning it) if every receiver is gone.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut st = self.shared.state.lock();
        if st.receivers == 0 {
            return Err(SendError(msg));
        }
        st.queue.push_back(msg);
        drop(st);
        self.shared.cv.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock();
        st.senders -= 1;
        let last = st.senders == 0;
        drop(st);
        if last {
            self.shared.cv.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Dequeue a message, blocking while the channel is empty; fails once
    /// every sender is gone and the queue is drained.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.shared.state.lock();
        loop {
            if let Some(m) = st.queue.pop_front() {
                return Ok(m);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            self.shared.cv.wait(&mut st);
        }
    }

    /// Dequeue without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.shared.state.lock();
        if let Some(m) = st.queue.pop_front() {
            return Ok(m);
        }
        if st.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// [`Receiver::recv`] with a deadline.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.state.lock();
        loop {
            if let Some(m) = st.queue.pop_front() {
                return Ok(m);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            self.shared.cv.wait_for(&mut st, deadline - now);
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock();
        st.receivers -= 1;
        let last = st.receivers == 0;
        drop(st);
        if last {
            // Wake senders? Senders never block (unbounded); nothing to do.
            self.shared.cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn recv_fails_after_all_senders_drop() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn timeout_fires_on_empty_channel() {
        let (tx, rx) = unbounded::<u8>();
        let t0 = Instant::now();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        assert!(t0.elapsed() >= Duration::from_millis(10));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn cross_thread_delivery_and_disconnect_wakeup() {
        let (tx, rx) = unbounded::<usize>();
        let h = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            got
        });
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx); // unblocks the receiver's final recv with RecvError
        let got = h.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn mpmc_every_message_consumed_once() {
        let (tx, rx) = unbounded::<usize>();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for i in 0..1000 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<_>>());
    }
}
