//! Seeded random topology / flow-schedule generator.
//!
//! Produces small but adversarial fluid-simulation scenarios — a set of
//! resource capacities plus a timestamped schedule of flow starts,
//! degradations, restores, rate-cap changes and cancellations — entirely in
//! plain indices so the bottom-of-stack `ff-util` crate stays independent
//! of the simulator. The differential suite in `desim/tests/fluid_diff.rs`
//! replays one scenario against several solver implementations and demands
//! they agree; anything else replaying the same `(seed, config)` pair sees
//! the exact same schedule.
//!
//! All numeric parameters are drawn from "nice" grids (capacities in
//! multiples of 25, weights in halves, integral work units, degrade
//! factors exactly representable in binary) so that a correct solver's
//! f64 arithmetic has the best possible chance of agreeing bit-for-bit
//! across algebraically equivalent implementations — differences the
//! suite then observes are real, not rounding noise.

use crate::rng::ChaCha8Rng;

/// Tuning knobs for [`Scenario::generate`]. The defaults give compact
/// scenarios (≤ 12 resources, ≤ 48 events) suitable for running thousands
/// of cases in a test.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Resources per scenario are drawn from `2..=max_resources`.
    pub max_resources: usize,
    /// Events per scenario are drawn from `4..=max_events`.
    pub max_events: usize,
    /// Route hops per flow are drawn from `1..=max_route_len` (duplicate
    /// resources allowed, exercising weight accumulation).
    pub max_route_len: usize,
    /// Maximum gap between consecutive event timestamps, in nanoseconds.
    pub max_gap_ns: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_resources: 12,
            max_events: 48,
            max_route_len: 4,
            max_gap_ns: 5_000_000,
        }
    }
}

impl GenConfig {
    /// Preset for thread-count determinism sweeps: many resources with
    /// short routes, so one recompute tends to find *several*
    /// simultaneously dirty connected components — the shape that
    /// actually exercises parallel dispatch and deterministic merge
    /// order. Long gaps let flows pile up across the topology before
    /// the next structural event forces a solve.
    pub fn wide() -> Self {
        GenConfig {
            max_resources: 32,
            max_events: 120,
            max_route_len: 3,
            max_gap_ns: 2_000_000,
        }
    }

    /// Preset for dense multi-resource components: longer routes over a
    /// mid-sized pool with tight event spacing, maximizing same-instant
    /// batches and flows whose routes overlap on several resources.
    pub fn dense() -> Self {
        GenConfig {
            max_resources: 24,
            max_events: 96,
            max_route_len: 6,
            max_gap_ns: 800_000,
        }
    }
}

/// One scheduled action against the simulated topology.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenEvent {
    /// Start a flow of `work` units over `route` (`(resource index,
    /// weight)` hops; duplicates accumulate weight).
    Start {
        /// Hops as `(resource index, weight)` pairs.
        route: Vec<(usize, f64)>,
        /// Units of work to move.
        work: f64,
    },
    /// Degrade a resource to `factor × capacity`.
    Degrade {
        /// Resource index.
        resource: usize,
        /// Health multiplier in `(0, 1]`.
        factor: f64,
    },
    /// Lift any degradation on a resource.
    Restore {
        /// Resource index.
        resource: usize,
    },
    /// Impose a congestion-control ceiling on a resource's aggregate load.
    SetRateCap {
        /// Resource index.
        resource: usize,
        /// Ceiling in units/second.
        cap: f64,
    },
    /// Cancel the `nth % active` currently-active flow (no-op when no
    /// flows are active). The consumer tracks its own active list, ordered
    /// by start, completions removed, cancellations `swap_remove`d.
    Cancel {
        /// Selector into the consumer's active-flow list.
        nth: usize,
    },
}

/// A reproducible topology + flow schedule: capacities for a dense set of
/// resources and a time-ordered event list.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The seed this scenario was generated from.
    pub seed: u64,
    /// Capacity of resource `i` in units/second.
    pub capacities: Vec<f64>,
    /// `(timestamp ns, event)`, non-decreasing in time. Repeated
    /// timestamps are deliberate: they exercise same-instant batching.
    pub events: Vec<(u64, ScenEvent)>,
}

impl Scenario {
    /// Deterministically generate the scenario for `(seed, cfg)`.
    pub fn generate(seed: u64, cfg: &GenConfig) -> Scenario {
        const WEIGHTS: [f64; 7] = [0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0];
        const FACTORS: [f64; 4] = [0.25, 0.5, 0.625, 0.75];
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n_res = rng.gen_range(2..cfg.max_resources + 1);
        let capacities: Vec<f64> = (0..n_res)
            .map(|_| 25.0 * rng.gen_range(1u64..41) as f64)
            .collect();
        let n_events = rng.gen_range(4..cfg.max_events + 1);
        let mut events = Vec::with_capacity(n_events);
        let mut t = 0u64;
        let mut starts = 0usize;
        for i in 0..n_events {
            // Same-instant bursts are common in real collectives (a wave of
            // chunk transfers) and stress completion batching: keep ~30% of
            // events at the previous timestamp.
            if i > 0 && !rng.gen_bool(0.3) {
                t += rng.gen_range(1..cfg.max_gap_ns);
            }
            let roll = rng.gen_range(0u32..100);
            let ev = if roll < 55 || starts == 0 {
                let len = rng.gen_range(1..cfg.max_route_len + 1);
                let route = (0..len)
                    .map(|_| {
                        let r = rng.gen_range(0..n_res);
                        (r, *rng.choose(&WEIGHTS).unwrap())
                    })
                    .collect();
                starts += 1;
                ScenEvent::Start {
                    route,
                    work: rng.gen_range(1u64..501) as f64,
                }
            } else if roll < 70 {
                ScenEvent::Degrade {
                    resource: rng.gen_range(0..n_res),
                    factor: *rng.choose(&FACTORS).unwrap(),
                }
            } else if roll < 80 {
                ScenEvent::Restore {
                    resource: rng.gen_range(0..n_res),
                }
            } else if roll < 90 {
                ScenEvent::SetRateCap {
                    resource: rng.gen_range(0..n_res),
                    cap: 5.0 * rng.gen_range(1u64..61) as f64,
                }
            } else {
                ScenEvent::Cancel {
                    nth: rng.gen_range(0..64),
                }
            };
            events.push((t, ev));
        }
        Scenario {
            seed,
            capacities,
            events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_scenario() {
        let cfg = GenConfig::default();
        let a = Scenario::generate(0xD1FF, &cfg);
        let b = Scenario::generate(0xD1FF, &cfg);
        assert_eq!(a.capacities, b.capacities);
        assert_eq!(a.events, b.events);
        let c = Scenario::generate(0xD200, &cfg);
        assert!(a.events != c.events || a.capacities != c.capacities);
    }

    #[test]
    fn scenarios_are_well_formed() {
        let cfg = GenConfig::default();
        for seed in 0..200 {
            let s = Scenario::generate(seed, &cfg);
            assert!((2..=cfg.max_resources).contains(&s.capacities.len()));
            assert!((4..=cfg.max_events).contains(&s.events.len()));
            assert!(s.capacities.iter().all(|&c| c > 0.0));
            let mut starts = 0;
            let mut prev_t = 0;
            for (t, ev) in &s.events {
                assert!(*t >= prev_t, "timestamps must be non-decreasing");
                prev_t = *t;
                match ev {
                    ScenEvent::Start { route, work } => {
                        starts += 1;
                        assert!(!route.is_empty());
                        assert!(route
                            .iter()
                            .all(|&(r, w)| r < s.capacities.len() && w > 0.0));
                        assert!(*work > 0.0);
                    }
                    ScenEvent::Degrade { resource, factor } => {
                        assert!(*resource < s.capacities.len());
                        assert!(*factor > 0.0 && *factor <= 1.0);
                    }
                    ScenEvent::Restore { resource } => {
                        assert!(*resource < s.capacities.len())
                    }
                    ScenEvent::SetRateCap { resource, cap } => {
                        assert!(*resource < s.capacities.len());
                        assert!(*cap > 0.0);
                    }
                    ScenEvent::Cancel { .. } => {}
                }
            }
            assert!(starts > 0, "every scenario starts at least one flow");
        }
    }
}
