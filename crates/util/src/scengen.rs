//! Seeded random topology / flow-schedule generator.
//!
//! Produces small but adversarial fluid-simulation scenarios — a set of
//! resource capacities plus a timestamped schedule of flow starts,
//! degradations, restores, rate-cap changes and cancellations — entirely in
//! plain indices so the bottom-of-stack `ff-util` crate stays independent
//! of the simulator. The differential suite in `desim/tests/fluid_diff.rs`
//! replays one scenario against several solver implementations and demands
//! they agree; anything else replaying the same `(seed, config)` pair sees
//! the exact same schedule.
//!
//! All numeric parameters are drawn from "nice" grids (capacities in
//! multiples of 25, weights in halves, integral work units, degrade
//! factors exactly representable in binary) so that a correct solver's
//! f64 arithmetic has the best possible chance of agreeing bit-for-bit
//! across algebraically equivalent implementations — differences the
//! suite then observes are real, not rounding noise.

use crate::rng::ChaCha8Rng;

/// Tuning knobs for [`Scenario::generate`]. The defaults give compact
/// scenarios (≤ 12 resources, ≤ 48 events) suitable for running thousands
/// of cases in a test.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Resources per scenario are drawn from `2..=max_resources`.
    pub max_resources: usize,
    /// Events per scenario are drawn from `4..=max_events`.
    pub max_events: usize,
    /// Route hops per flow are drawn from `1..=max_route_len` (duplicate
    /// resources allowed, exercising weight accumulation).
    pub max_route_len: usize,
    /// Maximum gap between consecutive event timestamps, in nanoseconds.
    pub max_gap_ns: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_resources: 12,
            max_events: 48,
            max_route_len: 4,
            max_gap_ns: 5_000_000,
        }
    }
}

impl GenConfig {
    /// Preset for thread-count determinism sweeps: many resources with
    /// short routes, so one recompute tends to find *several*
    /// simultaneously dirty connected components — the shape that
    /// actually exercises parallel dispatch and deterministic merge
    /// order. Long gaps let flows pile up across the topology before
    /// the next structural event forces a solve.
    pub fn wide() -> Self {
        GenConfig {
            max_resources: 32,
            max_events: 120,
            max_route_len: 3,
            max_gap_ns: 2_000_000,
        }
    }

    /// Preset for dense multi-resource components: longer routes over a
    /// mid-sized pool with tight event spacing, maximizing same-instant
    /// batches and flows whose routes overlap on several resources.
    pub fn dense() -> Self {
        GenConfig {
            max_resources: 24,
            max_events: 96,
            max_route_len: 6,
            max_gap_ns: 800_000,
        }
    }
}

/// One scheduled action against the simulated topology.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenEvent {
    /// Start a flow of `work` units over `route` (`(resource index,
    /// weight)` hops; duplicates accumulate weight).
    Start {
        /// Hops as `(resource index, weight)` pairs.
        route: Vec<(usize, f64)>,
        /// Units of work to move.
        work: f64,
    },
    /// Degrade a resource to `factor × capacity`.
    Degrade {
        /// Resource index.
        resource: usize,
        /// Health multiplier in `(0, 1]`.
        factor: f64,
    },
    /// Lift any degradation on a resource.
    Restore {
        /// Resource index.
        resource: usize,
    },
    /// Impose a congestion-control ceiling on a resource's aggregate load.
    SetRateCap {
        /// Resource index.
        resource: usize,
        /// Ceiling in units/second.
        cap: f64,
    },
    /// Cancel the `nth % active` currently-active flow (no-op when no
    /// flows are active). The consumer tracks its own active list, ordered
    /// by start, completions removed, cancellations `swap_remove`d.
    Cancel {
        /// Selector into the consumer's active-flow list.
        nth: usize,
    },
}

/// A reproducible topology + flow schedule: capacities for a dense set of
/// resources and a time-ordered event list.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The seed this scenario was generated from.
    pub seed: u64,
    /// Capacity of resource `i` in units/second.
    pub capacities: Vec<f64>,
    /// `(timestamp ns, event)`, non-decreasing in time. Repeated
    /// timestamps are deliberate: they exercise same-instant batching.
    pub events: Vec<(u64, ScenEvent)>,
}

impl Scenario {
    /// Deterministically generate the scenario for `(seed, cfg)`.
    pub fn generate(seed: u64, cfg: &GenConfig) -> Scenario {
        const WEIGHTS: [f64; 7] = [0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0];
        const FACTORS: [f64; 4] = [0.25, 0.5, 0.625, 0.75];
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n_res = rng.gen_range(2..cfg.max_resources + 1);
        let capacities: Vec<f64> = (0..n_res)
            .map(|_| 25.0 * rng.gen_range(1u64..41) as f64)
            .collect();
        let n_events = rng.gen_range(4..cfg.max_events + 1);
        let mut events = Vec::with_capacity(n_events);
        let mut t = 0u64;
        let mut starts = 0usize;
        for i in 0..n_events {
            // Same-instant bursts are common in real collectives (a wave of
            // chunk transfers) and stress completion batching: keep ~30% of
            // events at the previous timestamp.
            if i > 0 && !rng.gen_bool(0.3) {
                t += rng.gen_range(1..cfg.max_gap_ns);
            }
            let roll = rng.gen_range(0u32..100);
            let ev = if roll < 55 || starts == 0 {
                let len = rng.gen_range(1..cfg.max_route_len + 1);
                let route = (0..len)
                    .map(|_| {
                        let r = rng.gen_range(0..n_res);
                        (r, *rng.choose(&WEIGHTS).unwrap())
                    })
                    .collect();
                starts += 1;
                ScenEvent::Start {
                    route,
                    work: rng.gen_range(1u64..501) as f64,
                }
            } else if roll < 70 {
                ScenEvent::Degrade {
                    resource: rng.gen_range(0..n_res),
                    factor: *rng.choose(&FACTORS).unwrap(),
                }
            } else if roll < 80 {
                ScenEvent::Restore {
                    resource: rng.gen_range(0..n_res),
                }
            } else if roll < 90 {
                ScenEvent::SetRateCap {
                    resource: rng.gen_range(0..n_res),
                    cap: 5.0 * rng.gen_range(1u64..61) as f64,
                }
            } else {
                ScenEvent::Cancel {
                    nth: rng.gen_range(0..64),
                }
            };
            events.push((t, ev));
        }
        Scenario {
            seed,
            capacities,
            events,
        }
    }
}

// ---------------------------------------------------------------------------
// Open-loop serving arrivals
// ---------------------------------------------------------------------------

/// Tuning knobs for [`ArrivalTrace::generate`]: an open-loop request
/// stream standing in for a large user population. The process is a
/// non-homogeneous Poisson arrival stream (generated by thinning a
/// homogeneous stream at the peak rate) whose intensity follows a
/// zero-mean piecewise-linear diurnal curve, multiplied during randomly
/// placed burst episodes. Open-loop means arrivals never wait for the
/// system: a slow server accumulates backlog instead of throttling the
/// generator, which is what makes latency SLOs meaningful.
#[derive(Debug, Clone)]
pub struct ArrivalConfig {
    /// Trace length in seconds.
    pub duration_s: f64,
    /// Time-averaged arrival rate in requests/second (the diurnal curve
    /// is zero-mean, so the day-long average equals this).
    pub base_qps: f64,
    /// Diurnal swing as a fraction of `base_qps` (0 disables; 0.4 means
    /// the midday peak runs 1.4× and the night trough 0.6×… down to
    /// `1 - amplitude` at the deepest point of the curve).
    pub diurnal_amplitude: f64,
    /// Period of the diurnal curve in seconds (86,400 for a real day;
    /// tests compress it so short traces still see the swing).
    pub diurnal_period_s: f64,
    /// Expected number of burst episodes over the trace (Poisson).
    pub burst_mean: f64,
    /// Rate multiplier while a burst is active (≥ 1).
    pub burst_multiplier: f64,
    /// Length of each burst episode in seconds.
    pub burst_duration_s: f64,
    /// Prompt length drawn uniformly from `[min, max]` tokens.
    pub prompt_tokens: (u32, u32),
    /// Output length drawn uniformly from `[min, max]` tokens.
    pub output_tokens: (u32, u32),
}

impl Default for ArrivalConfig {
    fn default() -> Self {
        ArrivalConfig {
            duration_s: 600.0,
            base_qps: 2.0,
            diurnal_amplitude: 0.4,
            diurnal_period_s: 86_400.0,
            burst_mean: 2.0,
            burst_multiplier: 3.0,
            burst_duration_s: 20.0,
            prompt_tokens: (32, 256),
            output_tokens: (16, 128),
        }
    }
}

/// One inference request of an [`ArrivalTrace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Dense index in the *generated* trace. Ids survive [`thin`]
    /// (`ArrivalTrace::thin`), so a thinned trace's requests keep the
    /// identities they had in the full trace — load-monotonicity tests
    /// compare the same request across load levels by this id.
    pub id: u64,
    /// Arrival time in nanoseconds from trace start.
    pub at_ns: u64,
    /// Prompt (prefill) length in tokens.
    pub prompt_tokens: u32,
    /// Output (decode) length in tokens.
    pub output_tokens: u32,
}

/// A reproducible open-loop request schedule: time-ordered arrivals with
/// per-request token counts.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalTrace {
    /// The seed the trace was generated from.
    pub seed: u64,
    /// Trace horizon in nanoseconds (arrivals all land strictly before).
    pub duration_ns: u64,
    /// Requests in non-decreasing `at_ns` order with dense ids.
    pub requests: Vec<Request>,
}

/// The zero-mean diurnal shape: midnight trough −1, morning shoulder
/// −0.2, midday peak +1, evening shoulder +0.2, back to −1. Piecewise
/// linear so evaluation is exact f64 arithmetic (no transcendentals in
/// the accept/reject test beyond the exponential gap draw).
const DIURNAL_SHAPE: [(f64, f64); 5] = [
    (0.0, -1.0),
    (0.25, -0.2),
    (0.5, 1.0),
    (0.75, 0.2),
    (1.0, -1.0),
];

fn diurnal(frac: f64) -> f64 {
    let f = frac.clamp(0.0, 1.0);
    for w in DIURNAL_SHAPE.windows(2) {
        let ((x0, y0), (x1, y1)) = (w[0], w[1]);
        if f <= x1 {
            return y0 + (y1 - y0) * (f - x0) / (x1 - x0);
        }
    }
    DIURNAL_SHAPE[4].1
}

/// Draw from Poisson(`mean`) by CDF inversion (exact for the small means
/// used for burst counts).
fn poisson(rng: &mut ChaCha8Rng, mean: f64) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    let u = rng.gen_f64();
    let mut cdf = 0.0;
    let mut p = (-mean).exp();
    for k in 0..1024usize {
        cdf += p;
        if u < cdf {
            return k;
        }
        p *= mean / (k + 1) as f64;
    }
    1024
}

impl ArrivalTrace {
    /// Deterministically generate the trace for `(seed, cfg)`. The same
    /// pair always yields the identical request list, byte for byte.
    pub fn generate(seed: u64, cfg: &ArrivalConfig) -> ArrivalTrace {
        assert!(cfg.duration_s > 0.0, "trace needs a positive duration");
        assert!(cfg.base_qps > 0.0, "trace needs a positive base rate");
        assert!(
            (0.0..1.0).contains(&cfg.diurnal_amplitude),
            "diurnal amplitude must be in [0, 1)"
        );
        assert!(cfg.burst_multiplier >= 1.0, "bursts only add load");
        assert!(
            cfg.prompt_tokens.0 >= 1 && cfg.prompt_tokens.1 >= cfg.prompt_tokens.0,
            "prompt token range must be non-empty"
        );
        assert!(
            cfg.output_tokens.0 >= 1 && cfg.output_tokens.1 >= cfg.output_tokens.0,
            "output token range must be non-empty"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // Burst episodes, clamped inside the trace so the expected extra
        // load is `(mult − 1) · mean · dur / duration`.
        let n_bursts = poisson(&mut rng, cfg.burst_mean);
        let free = (cfg.duration_s - cfg.burst_duration_s).max(0.0);
        let mut bursts: Vec<(f64, f64)> = (0..n_bursts)
            .map(|_| {
                let start = rng.gen_f64() * free;
                (start, start + cfg.burst_duration_s.min(cfg.duration_s))
            })
            .collect();
        bursts.sort_by(|a, b| a.partial_cmp(b).expect("finite burst times"));

        let rate_at = |t: f64| {
            let frac = (t / cfg.diurnal_period_s).fract();
            let mut r = cfg.base_qps * (1.0 + cfg.diurnal_amplitude * diurnal(frac));
            if bursts.iter().any(|&(s, e)| t >= s && t < e) {
                r *= cfg.burst_multiplier;
            }
            r
        };
        let peak = cfg.base_qps * (1.0 + cfg.diurnal_amplitude) * cfg.burst_multiplier;

        let mut requests = Vec::new();
        let mut t = 0.0f64;
        let mut id = 0u64;
        loop {
            // Homogeneous gaps at the peak rate, thinned to the target
            // intensity: accept a candidate at `t` with prob rate(t)/peak.
            t += -(1.0 - rng.gen_f64()).ln() / peak;
            if t >= cfg.duration_s {
                break;
            }
            let keep = rng.gen_f64() * peak < rate_at(t);
            if keep {
                requests.push(Request {
                    id,
                    at_ns: (t * 1e9) as u64,
                    prompt_tokens: rng.gen_range(cfg.prompt_tokens.0..cfg.prompt_tokens.1 + 1),
                    output_tokens: rng.gen_range(cfg.output_tokens.0..cfg.output_tokens.1 + 1),
                });
                id += 1;
            }
        }
        ArrivalTrace {
            seed,
            duration_ns: (cfg.duration_s * 1e9) as u64,
            requests,
        }
    }

    /// Deterministically thin the trace to `keep / out_of` of its
    /// requests (those with `id % out_of < keep`), preserving ids and
    /// arrival times. A thinned trace is a strict subset of the original,
    /// which is what makes "more load can only hurt" testable request by
    /// request.
    pub fn thin(&self, keep: u64, out_of: u64) -> ArrivalTrace {
        assert!(out_of > 0 && keep <= out_of, "thin fraction must be ≤ 1");
        ArrivalTrace {
            seed: self.seed,
            duration_ns: self.duration_ns,
            requests: self
                .requests
                .iter()
                .filter(|r| r.id % out_of < keep)
                .copied()
                .collect(),
        }
    }

    /// Observed mean arrival rate in requests/second.
    pub fn mean_qps(&self) -> f64 {
        if self.duration_ns == 0 {
            0.0
        } else {
            self.requests.len() as f64 / (self.duration_ns as f64 / 1e9)
        }
    }

    /// Total decode tokens across all requests (the trace's work volume).
    pub fn total_output_tokens(&self) -> u64 {
        self.requests.iter().map(|r| r.output_tokens as u64).sum()
    }
}

// ---------------------------------------------------------------------------
// Sweep grids
// ---------------------------------------------------------------------------

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mixer. Used to
/// derive independent per-cell seeds from `(base seed, cell index)` so
/// that neighbouring sweep cells never share RNG streams.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One axis of a [`SweepGrid`]: a name plus the values it sweeps over.
/// Values are plain f64 — the consumer interprets them (a checkpoint
/// interval axis casts to `u64`, a replication axis to `usize`).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepAxis {
    /// Axis name, carried into aggregate output for labeling.
    pub name: String,
    /// The swept values, in sweep order.
    pub values: Vec<f64>,
}

/// A cartesian sweep grid: the cross product of named axes, enumerated in
/// a fixed row-major order (the first axis varies slowest). Everything —
/// cell count, the coordinate of cell `i`, the per-cell seed — is a pure
/// function of `(axes, base seed)`, which is what lets a parallel sweep
/// promise bit-identical aggregates at any worker count: cells are
/// dispatched by index and merged by index, never by completion time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepGrid {
    /// The axes, slowest-varying first.
    pub axes: Vec<SweepAxis>,
}

impl SweepGrid {
    /// An empty grid (one cell with no coordinates).
    pub fn new() -> SweepGrid {
        SweepGrid { axes: Vec::new() }
    }

    /// Append an axis. Panics on an empty value list — a zero-length axis
    /// would silently collapse the whole grid to nothing.
    pub fn axis(mut self, name: impl Into<String>, values: &[f64]) -> SweepGrid {
        assert!(!values.is_empty(), "sweep axis needs at least one value");
        self.axes.push(SweepAxis {
            name: name.into(),
            values: values.to_vec(),
        });
        self
    }

    /// Number of cells: the product of axis lengths (1 for no axes).
    pub fn len(&self) -> usize {
        self.axes.iter().map(|a| a.values.len()).product()
    }

    /// True when the grid has no axes at all.
    pub fn is_empty(&self) -> bool {
        self.axes.is_empty()
    }

    /// The coordinate of cell `idx` (row-major: first axis slowest), one
    /// value per axis. Panics when `idx >= len()`.
    pub fn cell(&self, idx: usize) -> Vec<f64> {
        assert!(idx < self.len(), "cell {idx} out of range {}", self.len());
        let mut rem = idx;
        let mut coord = vec![0.0; self.axes.len()];
        for (k, ax) in self.axes.iter().enumerate().rev() {
            coord[k] = ax.values[rem % ax.values.len()];
            rem /= ax.values.len();
        }
        coord
    }

    /// Every cell coordinate, in index order.
    pub fn cells(&self) -> Vec<Vec<f64>> {
        (0..self.len()).map(|i| self.cell(i)).collect()
    }

    /// The RNG seed for cell `idx` under `base`: a SplitMix64 mix of the
    /// two, never 0 so downstream `seed_from_u64` users keep full-entropy
    /// streams.
    pub fn cell_seed(&self, base: u64, idx: usize) -> u64 {
        mix64(base ^ mix64(idx as u64 + 1)).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_grid_enumerates_row_major() {
        let g = SweepGrid::new()
            .axis("a", &[1.0, 2.0])
            .axis("b", &[10.0, 20.0, 30.0]);
        assert_eq!(g.len(), 6);
        assert!(!g.is_empty());
        let cells = g.cells();
        assert_eq!(cells[0], vec![1.0, 10.0]);
        assert_eq!(cells[1], vec![1.0, 20.0]);
        assert_eq!(cells[2], vec![1.0, 30.0]);
        assert_eq!(cells[3], vec![2.0, 10.0]);
        assert_eq!(cells[5], vec![2.0, 30.0]);
        // Enumeration is a pure function: same grid, same cells.
        assert_eq!(cells, g.clone().cells());
    }

    #[test]
    fn sweep_grid_empty_has_one_cell() {
        let g = SweepGrid::new();
        assert_eq!(g.len(), 1);
        assert!(g.is_empty());
        assert_eq!(g.cell(0), Vec::<f64>::new());
    }

    #[test]
    fn sweep_cell_seeds_are_distinct_and_stable() {
        let g = SweepGrid::new().axis("x", &[0.0; 64]);
        let seeds: Vec<u64> = (0..64).map(|i| g.cell_seed(7, i)).collect();
        assert_eq!(
            seeds,
            (0..64).map(|i| g.cell_seed(7, i)).collect::<Vec<_>>()
        );
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 64, "cell seeds collided");
        assert!(seeds.iter().all(|&s| s != 0));
        // Different base seed, different streams.
        assert_ne!(g.cell_seed(7, 3), g.cell_seed(8, 3));
    }

    #[test]
    fn same_seed_same_scenario() {
        let cfg = GenConfig::default();
        let a = Scenario::generate(0xD1FF, &cfg);
        let b = Scenario::generate(0xD1FF, &cfg);
        assert_eq!(a.capacities, b.capacities);
        assert_eq!(a.events, b.events);
        let c = Scenario::generate(0xD200, &cfg);
        assert!(a.events != c.events || a.capacities != c.capacities);
    }

    #[test]
    fn scenarios_are_well_formed() {
        let cfg = GenConfig::default();
        for seed in 0..200 {
            let s = Scenario::generate(seed, &cfg);
            assert!((2..=cfg.max_resources).contains(&s.capacities.len()));
            assert!((4..=cfg.max_events).contains(&s.events.len()));
            assert!(s.capacities.iter().all(|&c| c > 0.0));
            let mut starts = 0;
            let mut prev_t = 0;
            for (t, ev) in &s.events {
                assert!(*t >= prev_t, "timestamps must be non-decreasing");
                prev_t = *t;
                match ev {
                    ScenEvent::Start { route, work } => {
                        starts += 1;
                        assert!(!route.is_empty());
                        assert!(route
                            .iter()
                            .all(|&(r, w)| r < s.capacities.len() && w > 0.0));
                        assert!(*work > 0.0);
                    }
                    ScenEvent::Degrade { resource, factor } => {
                        assert!(*resource < s.capacities.len());
                        assert!(*factor > 0.0 && *factor <= 1.0);
                    }
                    ScenEvent::Restore { resource } => {
                        assert!(*resource < s.capacities.len())
                    }
                    ScenEvent::SetRateCap { resource, cap } => {
                        assert!(*resource < s.capacities.len());
                        assert!(*cap > 0.0);
                    }
                    ScenEvent::Cancel { .. } => {}
                }
            }
            assert!(starts > 0, "every scenario starts at least one flow");
        }
    }

    #[test]
    fn same_seed_same_arrival_trace() {
        let cfg = ArrivalConfig::default();
        let a = ArrivalTrace::generate(0xA221, &cfg);
        let b = ArrivalTrace::generate(0xA221, &cfg);
        assert_eq!(a, b, "same (seed, config) must give identical traces");
        let c = ArrivalTrace::generate(0xA222, &cfg);
        assert_ne!(a.requests, c.requests, "different seeds must diverge");
        // Ids are dense and arrivals time-ordered inside the horizon.
        for (i, r) in a.requests.iter().enumerate() {
            assert_eq!(r.id, i as u64);
            assert!(r.at_ns < a.duration_ns);
            if i > 0 {
                assert!(r.at_ns >= a.requests[i - 1].at_ns);
            }
        }
    }

    #[test]
    fn arrival_mean_rate_within_tolerance() {
        // Zero-mean diurnal curve + no bursts ⇒ the observed rate should
        // sit within a few σ of base_qps. N ≈ 10,000 ⇒ rel σ ≈ 1%.
        let cfg = ArrivalConfig {
            duration_s: 200.0,
            base_qps: 50.0,
            diurnal_amplitude: 0.4,
            diurnal_period_s: 200.0,
            burst_mean: 0.0,
            ..ArrivalConfig::default()
        };
        for seed in 0..8u64 {
            let t = ArrivalTrace::generate(0xB000 + seed, &cfg);
            let rel = (t.mean_qps() - cfg.base_qps).abs() / cfg.base_qps;
            assert!(rel < 0.05, "seed {seed}: mean {} vs base 50", t.mean_qps());
        }
    }

    #[test]
    fn burst_episodes_raise_mean_rate_by_expected_uplift() {
        // Expected uplift from bursts: (mult − 1) · mean · dur / duration.
        let cfg = ArrivalConfig {
            duration_s: 400.0,
            base_qps: 20.0,
            diurnal_amplitude: 0.0,
            burst_mean: 2.0,
            burst_multiplier: 3.0,
            burst_duration_s: 20.0,
            ..ArrivalConfig::default()
        };
        let expected = cfg.base_qps
            * (1.0
                + (cfg.burst_multiplier - 1.0) * cfg.burst_mean * cfg.burst_duration_s
                    / cfg.duration_s);
        let seeds = 48u64;
        let avg: f64 = (0..seeds)
            .map(|s| ArrivalTrace::generate(0xC000 + s, &cfg).mean_qps())
            .sum::<f64>()
            / seeds as f64;
        let rel = (avg - expected).abs() / expected;
        // Burst overlap and edge truncation bias the estimate slightly; a
        // 10% band still cleanly separates "bursts applied" (expected
        // 24 qps) from "bursts ignored" (20 qps).
        assert!(rel < 0.10, "avg qps {avg} vs expected {expected}");
    }

    #[test]
    fn thinning_is_a_deterministic_subset() {
        let cfg = ArrivalConfig {
            duration_s: 120.0,
            base_qps: 30.0,
            ..ArrivalConfig::default()
        };
        let full = ArrivalTrace::generate(0xD100, &cfg);
        let half = full.thin(1, 2);
        let quarter = full.thin(1, 4);
        // Subset chain: quarter ⊆ half ⊆ full, ids/times preserved.
        for r in &half.requests {
            assert_eq!(full.requests[r.id as usize], *r);
        }
        for r in &quarter.requests {
            assert!(half.requests.contains(r), "thin chain must nest");
        }
        assert!(half.requests.len() < full.requests.len());
        assert_eq!(full.thin(4, 4), full, "keep-all thin is identity");
        // Roughly the right fraction survives.
        let frac = half.requests.len() as f64 / full.requests.len() as f64;
        assert!((frac - 0.5).abs() < 0.05, "half-thin kept {frac}");
    }
}
