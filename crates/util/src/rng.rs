//! Deterministic seeded randomness: a real ChaCha8 block generator with
//! the small sampling API the workspace needs (`gen_range`, `gen_bool`,
//! `shuffle`, `choose`). Streams are fully reproducible from a `u64` seed,
//! which is what keeps failure traces and randomized tests replayable.

use std::ops::Range;

/// ChaCha with 8 rounds — fast, high-quality, reproducible.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means "exhausted".
    at: usize,
}

#[inline(always)]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// SplitMix64 — used only to expand a `u64` seed into key material.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl ChaCha8Rng {
    /// Expand `seed` into a 256-bit key and start the stream at block 0.
    pub fn seed_from_u64(seed: u64) -> ChaCha8Rng {
        let mut s = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_exact_mut(2) {
            let w = splitmix64(&mut s);
            pair[0] = w as u32;
            pair[1] = (w >> 32) as u32;
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 16],
            at: 16,
        }
    }

    fn refill(&mut self) {
        const SIGMA: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];
        let mut st = [0u32; 16];
        st[..4].copy_from_slice(&SIGMA);
        st[4..12].copy_from_slice(&self.key);
        st[12] = self.counter as u32;
        st[13] = (self.counter >> 32) as u32;
        st[14] = 0;
        st[15] = 0;
        let input = st;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds.
            quarter(&mut st, 0, 4, 8, 12);
            quarter(&mut st, 1, 5, 9, 13);
            quarter(&mut st, 2, 6, 10, 14);
            quarter(&mut st, 3, 7, 11, 15);
            quarter(&mut st, 0, 5, 10, 15);
            quarter(&mut st, 1, 6, 11, 12);
            quarter(&mut st, 2, 7, 8, 13);
            quarter(&mut st, 3, 4, 9, 14);
        }
        for (o, i) in st.iter_mut().zip(input) {
            *o = o.wrapping_add(i);
        }
        self.buf = st;
        self.counter = self.counter.wrapping_add(1);
        self.at = 0;
    }

    /// The next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        if self.at == 16 {
            self.refill();
        }
        let w = self.buf[self.at];
        self.at += 1;
        w
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        (self.next_u32() as u64) | ((self.next_u32() as u64) << 32)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from a half-open range; implemented for integer and
    /// float ranges via [`SampleRange`].
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_range(0..i + 1);
            items.swap(i, j);
        }
    }

    /// A uniformly chosen element, or `None` if empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.gen_range(0..items.len())])
        }
    }
}

/// Ranges [`ChaCha8Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample(self, rng: &mut ChaCha8Rng) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut ChaCha8Rng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Lemire-style rejection keeps the draw unbiased.
                loop {
                    let x = rng.next_u64();
                    let hi = ((x as u128 * span as u128) >> 64) as u64;
                    let lo = (x as u128 * span as u128) as u64;
                    if lo >= span || lo >= (u64::MAX - span + 1) % span {
                        return self.start.wrapping_add(hi as $t);
                    }
                }
            }
        }
    )*};
}
impl_int_range!(usize, u64, u32, u16, u8, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut ChaCha8Rng) -> f64 {
        assert!(self.start < self.end, "empty range");
        let v = self.start + rng.gen_f64() * (self.end - self.start);
        // Guard the half-open contract against rounding up to `end`.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let va: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(va, (0..100).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(0.5f64..2.5);
            assert!((0.5..2.5).contains(&f));
            let u = r.gen_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniformity_rough_check() {
        let mut r = ChaCha8Rng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[r.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = ChaCha8Rng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = ChaCha8Rng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "{hits}");
    }
}
