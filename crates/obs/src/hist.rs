//! Log-bucketed histogram with percentile queries.
//!
//! Values are `u64` (nanoseconds, bytes, counts). Values below 8 get exact
//! one-value buckets; above that, buckets are spaced at 8 sub-buckets per
//! octave (bucket width ≤ 12.5% of its lower bound), so a reported
//! percentile is within ~7% relative error of the true sample — tight
//! enough for latency/bandwidth monitoring at O(1) memory, the same trade
//! HdrHistogram makes.

/// Sub-buckets per power of two.
const SUB: u64 = 8;
/// 8 exact buckets for 0..8, then 8 sub-buckets per octave for 2^3..2^64.
const BUCKETS: usize = 8 + 61 * 8;

/// Bucket index of `v`.
fn bucket_of(v: u64) -> usize {
    if v < 8 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as u64; // ≥ 3
    let frac = (v >> (msb - 3)) & (SUB - 1);
    (8 + (msb - 3) * SUB + frac) as usize
}

/// Inclusive lower bound of bucket `i`.
fn bucket_lo(i: usize) -> u64 {
    if i < 8 {
        return i as u64;
    }
    let j = (i - 8) as u64;
    let (msb, frac) = (3 + j / SUB, j % SUB);
    (1u64 << msb) + (frac << (msb - 3))
}

/// Inclusive upper bound of bucket `i`.
fn bucket_hi(i: usize) -> u64 {
    if i < 8 {
        return i as u64;
    }
    let j = (i - 8) as u64;
    let msb = 3 + j / SUB;
    bucket_lo(i) + ((1u64 << (msb - 3)) - 1)
}

/// A mergeable log-bucketed histogram of `u64` samples.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest sample (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `p`-th percentile (`0.0 ..= 100.0`): the midpoint of the bucket
    /// holding the sample of rank `⌈p/100 × count⌉`, clamped to the
    /// observed `[min, max]`. Within one bucket width (≤ 12.5% relative)
    /// of the true sample; exact for values below 8, and exact at the
    /// extremes — the lowest rank is `min` and the highest is `max`, so
    /// `percentile(0.0) == min()` and `percentile(100.0) == max()` always
    /// hold (a bucket midpoint never leaks out past an actual sample).
    pub fn percentile(&self, p: f64) -> u64 {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        // The extreme ranks are known exactly: the histogram tracks the
        // true min and max. Without this, a single-sample or single-bucket
        // histogram could report a midpoint no sample ever had at p=0/100.
        if rank <= 1 {
            return self.min();
        }
        if rank >= self.count {
            return self.max;
        }
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (lo, hi) = (bucket_lo(i), bucket_hi(i));
                return (lo + (hi - lo) / 2).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Canonical serialization: non-empty buckets as `i:count` pairs plus
    /// the exact moments — identical histograms serialize identically.
    pub fn canonical(&self) -> String {
        let mut s = format!(
            "n={} sum={} min={} max={}",
            self.count,
            self.sum,
            self.min(),
            self.max
        );
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                s.push_str(&format!(" {i}:{c}"));
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_bracket_their_values() {
        for v in (0u64..4096).chain([1 << 20, (1 << 33) + 17, u64::MAX]) {
            let b = bucket_of(v);
            assert!(bucket_lo(b) <= v, "v={v} lo={}", bucket_lo(b));
            assert!(v <= bucket_hi(b), "v={v} hi={}", bucket_hi(b));
            assert!(b < BUCKETS);
        }
    }

    #[test]
    fn bucket_bounds_are_contiguous() {
        for i in 0..BUCKETS - 1 {
            assert_eq!(bucket_hi(i) + 1, bucket_lo(i + 1), "gap after bucket {i}");
        }
    }

    #[test]
    fn exact_for_small_integers() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 5, 6, 7] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 28);
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(100.0), 7);
        assert_eq!(h.percentile(50.0), 3);
    }

    #[test]
    fn percentile_monotone_and_bounded() {
        let mut h = Histogram::new();
        for i in 0..1000u64 {
            h.record(i * i % 50_000);
        }
        let mut last = 0;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = h.percentile(p);
            assert!(v >= last, "p{p}: {v} < {last}");
            assert!(v >= h.min() && v <= h.max());
            last = v;
        }
    }

    #[test]
    fn merge_matches_combined() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for i in 0..500u64 {
            let v = i * 37 % 10_000;
            whole.record(v);
            if i % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            }
        }
        a.merge(&b);
        assert_eq!(a.canonical(), whole.canonical());
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::new();
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn single_sample_is_exact_at_every_percentile() {
        // Regression: a lone sample above the exact range used to report
        // its bucket's midpoint at interior percentiles. Every percentile
        // of a single-sample histogram IS that sample.
        for v in [0u64, 7, 1_000_000, u64::MAX] {
            let mut h = Histogram::new();
            h.record(v);
            for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
                assert_eq!(h.percentile(p), v, "p{p} of single sample {v}");
            }
        }
    }

    #[test]
    fn extreme_percentiles_are_exact_samples() {
        // Regression: p100 used to return the top bucket's midpoint, which
        // can sit *below* the true max (1_040_000 lives above its bucket's
        // midpoint 1_015_807); p0 symmetrically sat above the true min.
        let mut h = Histogram::new();
        h.record(1000);
        h.record(1_040_000);
        h.record(1_010_000);
        assert_eq!(h.percentile(100.0), 1_040_000);
        assert_eq!(h.percentile(0.0), 1000);
    }

    #[test]
    fn one_bucket_histogram_stays_inside_its_samples() {
        // All samples in one log bucket ([1024, 1151]): every percentile
        // must land inside the observed [min, max], never at a midpoint
        // outside it, and the edges are exact.
        let mut h = Histogram::new();
        for v in [1030u64, 1040, 1100] {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), 1030);
        assert_eq!(h.percentile(100.0), 1100);
        for p in [10.0, 50.0, 90.0, 99.0] {
            let q = h.percentile(p);
            assert!((1030..=1100).contains(&q), "p{p} = {q} escaped [min,max]");
        }
        // Degenerate spread: every sample identical ⇒ every percentile is
        // that value, not the enclosing bucket's midpoint.
        let mut same = Histogram::new();
        for _ in 0..100 {
            same.record(50_000);
        }
        for p in [0.0, 25.0, 50.0, 75.0, 100.0] {
            assert_eq!(same.percentile(p), 50_000);
        }
    }
}
