//! # ff-obs — simulated-time observability
//!
//! The unified trace/metrics substrate of the reproduction (the role
//! hai-monitor plays in §VIII): scoped **spans** and **instants** on named
//! tracks, plus **counters**, **gauges**, and log-bucketed **histograms**,
//! all keyed to *simulated* nanoseconds — never the wall clock — so that a
//! trace is a pure function of the inputs and a fixed seed.
//!
//! Determinism is the load-bearing property. Threaded code (the real
//! crossbeam-style exec paths in `ff-reduce`, background checkpoint saves
//! in `ff-platform`) records through per-thread [`TrackBuf`]s with
//! *logical* clocks, and the [`Recorder`] treats the whole trace as a
//! **multiset**: [`Recorder::canonical`] sorts every event by
//! `(track, ts, name, kind, value)` before serializing, so any arrival
//! interleaving of a deterministic event multiset yields a byte-identical
//! [`Recorder::digest`]. The digest is therefore a regression-test oracle:
//! same seed ⇒ same digest, and `tests/trace_replay.rs` pins exactly that.
//!
//! Exports:
//!
//! * [`chrome::export_chrome_json`] — Chrome trace-event JSON that loads in
//!   `chrome://tracing` and Perfetto, one thread per track.
//! * [`summary::summary_text`] — a hai-monitor-style text report: top
//!   utilized resources, per-phase traffic, histograms, recovery timeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod hist;
pub mod recorder;
pub mod summary;

pub use hist::Histogram;
pub use recorder::{CounterId, Event, EventKind, Recorder, Snapshot, TrackBuf, TrackId};
