//! Chrome trace-event JSON export.
//!
//! Emits the classic `{"traceEvents": [...]}` format that loads in
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): one
//! process, one named thread per track (`"M"` thread-name metadata),
//! `"X"` complete events for spans, `"i"` instants, and `"C"` counter
//! series sampled from the recorder's counters/gauges at the trace end.
//!
//! Timestamps: trace-event `ts`/`dur` are microseconds; we divide the
//! recorder's nanoseconds by 1000 and print with fixed three-decimal
//! precision so the output bytes are deterministic.

use crate::recorder::{EventKind, Recorder};

/// Escape a string for embedding in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Nanoseconds → microsecond string with fixed 3-decimal precision.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Render the whole trace as Chrome trace-event JSON.
///
/// Tracks become threads of one process, in sorted-name order (so tids —
/// like everything else here — are independent of registration order).
/// Counters and gauges are emitted as `"C"` samples at ts 0 and at the
/// trace end, which renders as a flat counter lane carrying the final
/// value.
pub fn export_chrome_json(rec: &Recorder) -> String {
    let snap = rec.snapshot();
    let tid_of = |name: &str| -> usize {
        // tracks are sorted; position = tid (1-based, tid 0 reads oddly in UIs)
        snap.tracks.iter().position(|t| t == name).unwrap_or(0) + 1
    };
    let mut parts: Vec<String> = Vec::new();
    for t in &snap.tracks {
        parts.push(format!(
            r#"{{"name":"thread_name","ph":"M","pid":1,"tid":{},"args":{{"name":"{}"}}}}"#,
            tid_of(t),
            esc(t)
        ));
    }
    for (track, e) in &snap.events {
        let tid = tid_of(track);
        match e.kind {
            EventKind::Span { dur_ns } => parts.push(format!(
                r#"{{"name":"{}","ph":"X","pid":1,"tid":{},"ts":{},"dur":{},"args":{{"value":{}}}}}"#,
                esc(&e.name),
                tid,
                us(e.ts_ns),
                us(dur_ns),
                e.value
            )),
            EventKind::Instant => parts.push(format!(
                r#"{{"name":"{}","ph":"i","pid":1,"tid":{},"ts":{},"s":"t","args":{{"value":{}}}}}"#,
                esc(&e.name),
                tid,
                us(e.ts_ns),
                e.value
            )),
        }
    }
    let end_ts = us(rec.last_ts_ns());
    for (name, v) in snap.counters.iter().chain(snap.gauges.iter()) {
        for ts in ["0.000", end_ts.as_str()] {
            parts.push(format!(
                r#"{{"name":"{}","ph":"C","pid":1,"tid":0,"ts":{},"args":{{"value":{}}}}}"#,
                esc(name),
                ts,
                v
            ));
        }
    }
    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(&parts.join(",\n"));
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_is_wellformed_and_deterministic() {
        let make = || {
            let rec = Recorder::new();
            let a = rec.track("desim/net");
            let b = rec.track("reduce/rank0");
            rec.span(a, "flow eth0", 1_000, 2_500, 4096.0);
            rec.instant(b, "shrink", 3_000, 2.0);
            rec.counter_add("bytes", 4096.0);
            rec.gauge_set("util/eth0", 0.5);
            export_chrome_json(&rec)
        };
        let j = make();
        assert_eq!(j, make());
        assert!(j.starts_with("{\"traceEvents\":["));
        assert!(j.contains(r#""ph":"M""#));
        assert!(j.contains(r#""ph":"X""#));
        assert!(j.contains(r#""ph":"i""#));
        assert!(j.contains(r#""ph":"C""#));
        assert!(j.contains(r#""ts":1.000,"dur":2.500"#));
        // balanced braces/brackets — cheap well-formedness proxy
        let open = j.matches('{').count();
        let close = j.matches('}').count();
        assert_eq!(open, close);
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn names_are_escaped() {
        let rec = Recorder::new();
        let t = rec.track("a\"b\\c");
        rec.span(t, "x\ny", 0, 1, 0.0);
        let j = export_chrome_json(&rec);
        assert!(j.contains(r#"a\"b\\c"#));
        assert!(j.contains(r#"x\ny"#));
    }
}
