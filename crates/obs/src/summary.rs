//! hai-monitor-style text summary of a recorded trace.
//!
//! Renders the recorder's contents as the operator-facing report the
//! paper's §VIII tooling produces on real hardware: the most-utilized
//! resources, traffic broken down by phase, latency/size histograms, and
//! the failure/recovery timeline. Built entirely from the canonical
//! snapshot, so the text is as deterministic as the digest.

use crate::recorder::{EventKind, Recorder};
use std::collections::BTreeMap;

/// A span name's *phase* is its prefix up to the first `:` or space —
/// `send:u:t0:c1->r3` and `send:u:t1:c0->r2` are both phase `send`.
fn phase_of(name: &str) -> &str {
    name.split([':', ' ']).next().unwrap_or(name)
}

/// Render the hai-monitor-style report.
///
/// Sections (each omitted when empty):
/// 1. **top utilized** — gauges matching `*/util/<res>`, sorted by value
///    descending, with served/cap context when the sibling gauges exist;
/// 2. **per-phase traffic** — span value-sums and busy-time by phase;
/// 3. **histograms** — count/mean/p50/p90/p99/max per histogram;
/// 4. **recovery timeline** — instants on tracks whose name contains
///    `recovery` or `ctl`, in time order.
pub fn summary_text(rec: &Recorder) -> String {
    let snap = rec.snapshot();
    let mut out = String::new();
    out.push_str(&format!(
        "== trace summary: {} events on {} tracks, {:.3} ms simulated ==\n",
        snap.events.len(),
        snap.tracks.len(),
        rec.last_ts_ns() as f64 / 1e6
    ));

    // 1. top utilized resources, from `<track>/util/<res>` gauges.
    let mut utils: Vec<(&String, f64)> = snap
        .gauges
        .iter()
        .filter(|(k, _)| k.contains("/util/"))
        .map(|(k, &v)| (k, v))
        .collect();
    utils.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(b.0)));
    if !utils.is_empty() {
        out.push_str("-- top utilized resources --\n");
        for (k, v) in utils.iter().take(8) {
            let served = snap.gauges.get(&k.replace("/util/", "/served/"));
            let cap = snap.gauges.get(&k.replace("/util/", "/cap/"));
            match (served, cap) {
                (Some(s), Some(c)) => out.push_str(&format!(
                    "  {k:<40} {:>6.1}%  served {s:.3e} of cap {c:.3e}\n",
                    v * 100.0
                )),
                _ => out.push_str(&format!("  {k:<40} {:>6.1}%\n", v * 100.0)),
            }
        }
    }

    // 2. per-phase traffic from span values (bytes/work) and busy time.
    let mut phases: BTreeMap<String, (u64, f64, u64)> = BTreeMap::new(); // count, value, busy_ns
    for (_, e) in &snap.events {
        if let EventKind::Span { dur_ns } = e.kind {
            let ent = phases.entry(phase_of(&e.name).to_string()).or_default();
            ent.0 += 1;
            ent.1 += e.value;
            ent.2 += dur_ns;
        }
    }
    if !phases.is_empty() {
        out.push_str("-- per-phase traffic --\n");
        for (phase, (n, value, busy)) in &phases {
            let busy_s = *busy as f64 / 1e9;
            let bw = if *busy > 0 { value / busy_s } else { 0.0 };
            out.push_str(&format!(
                "  {phase:<16} {n:>6} spans  value {value:>14.3e}  busy {busy_s:>10.6}s  ~{bw:.3e}/s\n"
            ));
        }
    }

    // 3. histograms.
    if !snap.hists.is_empty() {
        out.push_str("-- histograms --\n");
        for (k, h) in &snap.hists {
            out.push_str(&format!(
                "  {k:<28} n={} mean={:.1} p50={} p90={} p99={} max={}\n",
                h.count(),
                h.mean(),
                h.percentile(50.0),
                h.percentile(90.0),
                h.percentile(99.0),
                h.max()
            ));
        }
    }

    // 4. recovery timeline: instants on recovery/ctl tracks, time order.
    let mut timeline: Vec<(u64, &String, &String, f64)> = snap
        .events
        .iter()
        .filter(|(t, e)| {
            matches!(e.kind, EventKind::Instant) && (t.contains("recovery") || t.contains("ctl"))
        })
        .map(|(t, e)| (e.ts_ns, t, &e.name, e.value))
        .collect();
    timeline.sort_by(|a, b| (a.0, a.1, a.2).cmp(&(b.0, b.1, b.2)));
    if !timeline.is_empty() {
        out.push_str("-- recovery timeline --\n");
        for (ts, track, name, value) in timeline {
            out.push_str(&format!(
                "  t={:>12.6}s  [{track}] {name} ({value})\n",
                ts as f64 / 1e9
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    #[test]
    fn summary_has_all_sections() {
        let rec = Recorder::new();
        let net = rec.track("desim/net");
        let ctl = rec.track("platform/recovery");
        rec.span(net, "send:u:t0:c0->r1", 0, 1_000, 4096.0);
        rec.span(net, "send:d:t0:c1->r2", 1_000, 1_000, 4096.0);
        rec.span(net, "reduce:t0:c0", 2_000, 500, 4096.0);
        rec.instant(ctl, "fault detected rank 3", 5_000, 3.0);
        rec.instant(ctl, "requeue", 6_000, 0.0);
        rec.gauge_set("desim/net/util/eth0", 0.85);
        rec.gauge_set("desim/net/served/eth0", 8192.0);
        rec.gauge_set("desim/net/cap/eth0", 9640.0);
        rec.observe("write_bytes", 4096);
        let s = summary_text(&rec);
        assert!(s.contains("top utilized resources"));
        assert!(s.contains("85.0%"));
        assert!(s.contains("per-phase traffic"));
        assert!(s.contains("send"));
        assert!(s.contains("reduce"));
        assert!(s.contains("histograms"));
        assert!(s.contains("recovery timeline"));
        assert!(s.contains("fault detected rank 3"));
        // deterministic
        assert_eq!(s, summary_text(&rec));
    }

    #[test]
    fn empty_recorder_summary_is_minimal() {
        let rec = Recorder::new();
        let s = summary_text(&rec);
        assert!(s.contains("0 events"));
        assert!(!s.contains("timeline"));
    }
}
