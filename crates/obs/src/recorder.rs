//! The thread-safe trace/metrics recorder and its canonical serialization.
//!
//! Events live on named **tracks** (one Perfetto thread lane each). A
//! timestamp is simulated or logical nanoseconds — never wall clock. The
//! trace is treated as a *multiset*: canonical serialization sorts events
//! by `(track, ts, name, kind, value)`, so producers may record from any
//! thread in any interleaving and the digest stays byte-identical as long
//! as the multiset of recorded events is deterministic.
//!
//! Threaded code records through a [`TrackBuf`] — an unshared per-thread
//! staging buffer with its own logical clock — and commits (or discards)
//! the whole buffer at a deterministic point. Discard-on-failed-attempt is
//! how `ff-reduce` keeps racy abort points out of the trace.

use crate::hist::Histogram;
use ff_util::sync::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Identifies a registered track. Ids are assignment-order handles; the
/// canonical forms always key by track *name*, so id assignment order
/// never leaks into digests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TrackId(pub(crate) u32);

/// Pre-resolved handle for a named counter, from
/// [`Recorder::counter_handle`]. Hot paths that bump the same counter
/// thousands of times per simulated second use
/// [`Recorder::counter_add_by`] with a handle to skip the per-call name
/// formatting and map lookup. Like [`TrackId`], assignment order never
/// leaks into digests — canonical forms key counters by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CounterId(pub(crate) u32);

/// What kind of mark an [`Event`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A scoped interval of `dur_ns` simulated/logical nanoseconds.
    Span {
        /// Interval length in nanoseconds (≥ 1 for visibility).
        dur_ns: u64,
    },
    /// A point event.
    Instant,
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// The track the event belongs to.
    pub track: TrackId,
    /// Simulated/logical nanoseconds.
    pub ts_ns: u64,
    /// Span or instant.
    pub kind: EventKind,
    /// Event name (the span/instant label).
    pub name: String,
    /// Free payload: bytes moved, work units, a fault id — 0.0 if unused.
    pub value: f64,
}

#[derive(Default)]
struct Inner {
    tracks: Vec<String>,
    by_name: BTreeMap<String, TrackId>,
    events: Vec<Event>,
    // Counters are slot-addressed so handle-based adds are a bounds check
    // and an f64 add under the lock. A registered-but-never-added counter
    // stays untouched and is omitted from snapshots, so merely resolving a
    // handle cannot perturb a pinned digest.
    counter_names: Vec<String>,
    counter_vals: Vec<f64>,
    counter_touched: Vec<bool>,
    counter_ids: BTreeMap<String, CounterId>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, Histogram>,
}

impl Inner {
    fn counter_id(&mut self, name: &str) -> CounterId {
        if let Some(&id) = self.counter_ids.get(name) {
            return id;
        }
        let id = CounterId(u32::try_from(self.counter_names.len()).expect("too many counters"));
        self.counter_names.push(name.to_string());
        self.counter_vals.push(0.0);
        self.counter_touched.push(false);
        self.counter_ids.insert(name.to_string(), id);
        id
    }
}

/// A deterministic, order-insensitive snapshot of a [`Recorder`]: tracks
/// sorted by name, events in canonical order, metrics keyed by name.
pub struct Snapshot {
    /// Track names, sorted.
    pub tracks: Vec<String>,
    /// `(track_name, event)` pairs in canonical multiset order.
    pub events: Vec<(String, Event)>,
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, f64>,
    /// Last-write gauges by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub hists: BTreeMap<String, Histogram>,
}

/// The thread-safe simulated-time recorder. Share it as `Arc<Recorder>`;
/// every method takes `&self`.
pub struct Recorder {
    inner: Mutex<Inner>,
}

impl Recorder {
    /// A fresh, empty recorder.
    pub fn new() -> Arc<Recorder> {
        Arc::new(Recorder {
            inner: Mutex::new(Inner::default()),
        })
    }

    /// Get-or-create the track named `name`.
    pub fn track(&self, name: &str) -> TrackId {
        let mut g = self.inner.lock();
        if let Some(&id) = g.by_name.get(name) {
            return id;
        }
        let id = TrackId(u32::try_from(g.tracks.len()).expect("too many tracks"));
        g.tracks.push(name.to_string());
        g.by_name.insert(name.to_string(), id);
        id
    }

    /// Record a completed span on `track`.
    pub fn span(&self, track: TrackId, name: &str, ts_ns: u64, dur_ns: u64, value: f64) {
        self.push(Event {
            track,
            ts_ns,
            kind: EventKind::Span {
                dur_ns: dur_ns.max(1),
            },
            name: name.to_string(),
            value,
        });
    }

    /// Record a point event on `track`.
    pub fn instant(&self, track: TrackId, name: &str, ts_ns: u64, value: f64) {
        self.push(Event {
            track,
            ts_ns,
            kind: EventKind::Instant,
            name: name.to_string(),
            value,
        });
    }

    fn push(&self, ev: Event) {
        let mut g = self.inner.lock();
        assert!((ev.track.0 as usize) < g.tracks.len(), "unknown track");
        g.events.push(ev);
    }

    /// Add `delta` to the counter `name` (created at 0).
    pub fn counter_add(&self, name: &str, delta: f64) {
        let mut g = self.inner.lock();
        let id = g.counter_id(name);
        g.counter_vals[id.0 as usize] += delta;
        g.counter_touched[id.0 as usize] = true;
    }

    /// Resolve a reusable handle for the counter `name`. The counter is
    /// not created (it stays out of snapshots) until something adds to it.
    pub fn counter_handle(&self, name: &str) -> CounterId {
        self.inner.lock().counter_id(name)
    }

    /// Add `delta` to a counter by pre-resolved handle — the allocation-free
    /// form of [`counter_add`](Self::counter_add) for hot paths.
    pub fn counter_add_by(&self, id: CounterId, delta: f64) {
        let mut g = self.inner.lock();
        g.counter_vals[id.0 as usize] += delta;
        g.counter_touched[id.0 as usize] = true;
    }

    /// Set the gauge `name` to `value` (last write wins).
    pub fn gauge_set(&self, name: &str, value: f64) {
        self.inner.lock().gauges.insert(name.to_string(), value);
    }

    /// Record one sample into the histogram `name`.
    pub fn observe(&self, name: &str, value: u64) {
        self.inner
            .lock()
            .hists
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Commit a staged [`TrackBuf`]'s events wholesale.
    pub fn commit(&self, buf: TrackBuf) {
        let track = self.track(&buf.track_name);
        let mut g = self.inner.lock();
        g.events.extend(buf.events.into_iter().map(|mut e| {
            e.track = track;
            e
        }));
    }

    /// Number of recorded events.
    pub fn event_count(&self) -> usize {
        self.inner.lock().events.len()
    }

    /// The latest instant covered by any event: `max(ts + dur)`, 0 when
    /// empty. The trace's notion of "elapsed simulated time".
    pub fn last_ts_ns(&self) -> u64 {
        self.inner
            .lock()
            .events
            .iter()
            .map(|e| match e.kind {
                EventKind::Span { dur_ns } => e.ts_ns.saturating_add(dur_ns),
                EventKind::Instant => e.ts_ns,
            })
            .max()
            .unwrap_or(0)
    }

    /// An order-insensitive snapshot: tracks sorted by name, events in
    /// canonical multiset order.
    pub fn snapshot(&self) -> Snapshot {
        let g = self.inner.lock();
        let mut tracks: Vec<String> = g.tracks.clone();
        tracks.sort_unstable();
        let mut events: Vec<(String, Event)> = g
            .events
            .iter()
            .map(|e| (g.tracks[e.track.0 as usize].clone(), e.clone()))
            .collect();
        events.sort_by(|(ta, a), (tb, b)| {
            (ta, a.ts_ns, &a.name, kind_key(&a.kind), a.value.to_bits()).cmp(&(
                tb,
                b.ts_ns,
                &b.name,
                kind_key(&b.kind),
                b.value.to_bits(),
            ))
        });
        let counters: BTreeMap<String, f64> = g
            .counter_names
            .iter()
            .zip(&g.counter_vals)
            .zip(&g.counter_touched)
            .filter(|(_, &touched)| touched)
            .map(|((name, &v), _)| (name.clone(), v))
            .collect();
        Snapshot {
            tracks,
            events,
            counters,
            gauges: g.gauges.clone(),
            hists: g.hists.clone(),
        }
    }

    /// Canonical text serialization of the whole trace: one line per
    /// event/metric, multiset-sorted. Two runs that record the same
    /// multiset of events and the same metrics produce byte-identical
    /// canonical forms regardless of thread interleaving.
    pub fn canonical(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::from("ff-obs trace v1\n");
        for t in &snap.tracks {
            out.push_str(&format!("track {t}\n"));
        }
        for (track, e) in &snap.events {
            match e.kind {
                EventKind::Span { dur_ns } => out.push_str(&format!(
                    "span {track} {} {} {} {:016x}\n",
                    e.ts_ns,
                    dur_ns,
                    e.name,
                    e.value.to_bits()
                )),
                EventKind::Instant => out.push_str(&format!(
                    "inst {track} {} {} {:016x}\n",
                    e.ts_ns,
                    e.name,
                    e.value.to_bits()
                )),
            }
        }
        for (k, v) in &snap.counters {
            out.push_str(&format!("counter {k} {:016x}\n", v.to_bits()));
        }
        for (k, v) in &snap.gauges {
            out.push_str(&format!("gauge {k} {:016x}\n", v.to_bits()));
        }
        for (k, h) in &snap.hists {
            out.push_str(&format!("hist {k} {}\n", h.canonical()));
        }
        out
    }

    /// FNV-1a digest of [`canonical`](Self::canonical) as 16 hex digits —
    /// the seed-replay regression oracle.
    pub fn digest(&self) -> String {
        format!("{:016x}", fnv1a(self.canonical().as_bytes()))
    }
}

fn kind_key(k: &EventKind) -> (u8, u64) {
    match *k {
        EventKind::Span { dur_ns } => (0, dur_ns),
        EventKind::Instant => (1, 0),
    }
}

/// FNV-1a over bytes, with a length fold.
fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h ^ (data.len() as u64)
}

/// An unshared per-thread staging buffer with a logical clock.
///
/// Threaded instrumentation records here lock-free, then either
/// [`commit`](TrackBuf::commit)s the whole buffer at a deterministic point
/// or [`discard`](TrackBuf::discard)s it (e.g. an allreduce attempt whose
/// abort point is racy). The clock starts at `base_ns` and advances only
/// through [`tick`](TrackBuf::tick)/[`op`](TrackBuf::op), so timestamps
/// are logical, deterministic, and thread-local.
#[derive(Debug)]
pub struct TrackBuf {
    track_name: String,
    base_ns: u64,
    clock: u64,
    events: Vec<Event>,
}

impl TrackBuf {
    /// A fresh buffer for `track_name` with its clock at `base_ns`.
    pub fn new(track_name: impl Into<String>, base_ns: u64) -> TrackBuf {
        TrackBuf {
            track_name: track_name.into(),
            base_ns,
            clock: 0,
            events: Vec::new(),
        }
    }

    /// The buffer's current logical time.
    pub fn now_ns(&self) -> u64 {
        self.base_ns + self.clock
    }

    /// Advance the logical clock by `n` ticks (nanoseconds).
    pub fn tick(&mut self, n: u64) {
        self.clock += n;
    }

    /// Record a span covering `[now, now + ticks)` and advance the clock
    /// past it — the one-call form for "this operation moved `value`
    /// units and took `ticks` logical time".
    pub fn op(&mut self, name: &str, ticks: u64, value: f64) {
        let ticks = ticks.max(1);
        self.events.push(Event {
            track: TrackId(0), // rewritten on commit
            ts_ns: self.now_ns(),
            kind: EventKind::Span { dur_ns: ticks },
            name: name.to_string(),
            value,
        });
        self.clock += ticks;
    }

    /// Record a point event at the current logical time.
    pub fn instant(&mut self, name: &str, value: f64) {
        self.events.push(Event {
            track: TrackId(0),
            ts_ns: self.now_ns(),
            kind: EventKind::Instant,
            name: name.to_string(),
            value,
        });
    }

    /// Commit every staged event to `rec` (resolves the track by name).
    pub fn commit(self, rec: &Recorder) {
        rec.commit(self);
    }

    /// Drop the buffer, recording nothing.
    pub fn discard(self) {}

    /// Number of staged events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_order_insensitive() {
        let make = |order: &[usize]| {
            let rec = Recorder::new();
            let a = rec.track("a");
            let b = rec.track("b");
            let evs = [(a, 10u64, "x"), (b, 5, "y"), (a, 5, "z")];
            for &i in order {
                let (t, ts, n) = evs[i];
                rec.span(t, n, ts, 3, 1.5);
            }
            rec.counter_add("c", 2.0);
            rec.digest()
        };
        assert_eq!(make(&[0, 1, 2]), make(&[2, 0, 1]));
        assert_eq!(make(&[0, 1, 2]), make(&[1, 2, 0]));
    }

    #[test]
    fn digest_sensitive_to_content() {
        let rec1 = Recorder::new();
        let t = rec1.track("a");
        rec1.span(t, "x", 1, 2, 0.0);
        let rec2 = Recorder::new();
        let t = rec2.track("a");
        rec2.span(t, "x", 1, 3, 0.0);
        assert_ne!(rec1.digest(), rec2.digest());
    }

    #[test]
    fn track_id_assignment_order_does_not_leak() {
        let rec1 = Recorder::new();
        let a1 = rec1.track("alpha");
        let b1 = rec1.track("beta");
        rec1.span(a1, "x", 1, 1, 0.0);
        rec1.span(b1, "y", 1, 1, 0.0);
        let rec2 = Recorder::new();
        let b2 = rec2.track("beta"); // registered first this time
        let a2 = rec2.track("alpha");
        rec2.span(a2, "x", 1, 1, 0.0);
        rec2.span(b2, "y", 1, 1, 0.0);
        assert_eq!(rec1.digest(), rec2.digest());
    }

    #[test]
    fn trackbuf_commit_and_discard() {
        let rec = Recorder::new();
        let mut b = TrackBuf::new("t", 100);
        b.op("send", 10, 64.0);
        b.op("recv", 5, 64.0);
        assert_eq!(b.now_ns(), 115);
        b.commit(&rec);
        let mut dropped = TrackBuf::new("t", 0);
        dropped.op("never", 1, 0.0);
        dropped.discard();
        assert_eq!(rec.event_count(), 2);
        assert_eq!(rec.last_ts_ns(), 115);
    }

    #[test]
    fn counters_gauges_histograms_round_trip() {
        let rec = Recorder::new();
        rec.counter_add("bytes", 10.0);
        rec.counter_add("bytes", 5.0);
        rec.gauge_set("util", 0.5);
        rec.gauge_set("util", 0.75);
        for v in [1u64, 2, 100, 1000] {
            rec.observe("lat", v);
        }
        let s = rec.snapshot();
        assert_eq!(s.counters["bytes"], 15.0);
        assert_eq!(s.gauges["util"], 0.75);
        assert_eq!(s.hists["lat"].count(), 4);
    }

    #[test]
    fn counter_handle_matches_named_adds() {
        let rec = Recorder::new();
        let h = rec.counter_handle("fills");
        // A resolved-but-untouched handle must not create the counter:
        // handing out handles cannot perturb a pinned digest.
        let idle = rec.counter_handle("idle");
        assert!(rec.snapshot().counters.is_empty());
        rec.counter_add_by(h, 3.0);
        rec.counter_add("fills", 4.0); // name and handle hit the same slot
        rec.counter_add_by(idle, 0.0); // an add of 0 does create it
        let s = rec.snapshot();
        assert_eq!(s.counters["fills"], 7.0);
        assert_eq!(s.counters["idle"], 0.0);
        assert_eq!(s.counters.len(), 2);
    }

    #[test]
    fn concurrent_commits_are_digest_stable() {
        let run = || {
            let rec = Recorder::new();
            std::thread::scope(|s| {
                for r in 0..8usize {
                    let rec = &rec;
                    s.spawn(move || {
                        let mut b = TrackBuf::new(format!("rank{r}"), 0);
                        for i in 0..50u64 {
                            b.op(&format!("step{i}"), 1 + (r as u64 + i) % 7, i as f64);
                        }
                        b.commit(rec);
                    });
                }
            });
            rec.digest()
        };
        assert_eq!(run(), run());
    }
}
