//! Property tests for the log-bucketed histogram, in the repo's seeded
//! style: a ChaCha8 stream drives randomized cases, so failures replay
//! exactly.

use ff_obs::Histogram;
use ff_util::rng::ChaCha8Rng;

const CASES: usize = 200;

fn random_values(rng: &mut ChaCha8Rng) -> Vec<u64> {
    let n = rng.gen_range(1..400usize);
    (0..n)
        .map(|_| {
            // Mix tiny exact values with values spread over many octaves.
            match rng.gen_range(0..3u32) {
                0 => rng.gen_range(0..8u64),
                1 => rng.gen_range(0..10_000u64),
                _ => rng.next_u64() >> rng.gen_range(0..40u32),
            }
        })
        .collect()
}

#[test]
fn percentiles_are_bounded_and_monotone() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xf1f1);
    for _ in 0..CASES {
        let vals = random_values(&mut rng);
        let mut h = Histogram::new();
        for &v in &vals {
            h.record(v);
        }
        let ps = [0.0, 10.0, 50.0, 90.0, 99.0, 100.0];
        let qs: Vec<u64> = ps.iter().map(|&p| h.percentile(p)).collect();
        for q in &qs {
            assert!(
                h.min() <= *q && *q <= h.max(),
                "percentile out of [min,max]: {q} not in [{}, {}]",
                h.min(),
                h.max()
            );
        }
        for w in qs.windows(2) {
            assert!(w[0] <= w[1], "percentiles must be monotone: {qs:?}");
        }
        assert_eq!(h.count(), vals.len() as u64);
        assert_eq!(h.sum(), vals.iter().map(|&v| v as u128).sum::<u128>());
    }
}

#[test]
fn percentile_relative_error_is_bounded() {
    // Log buckets with 8 sub-buckets per octave: any reported quantile is
    // within 12.5% of a value actually recorded at that rank.
    let mut rng = ChaCha8Rng::seed_from_u64(0xabcd);
    for _ in 0..CASES {
        let mut vals = random_values(&mut rng);
        let mut h = Histogram::new();
        for &v in &vals {
            h.record(v);
        }
        vals.sort_unstable();
        for &p in &[50.0, 90.0, 99.0] {
            let rank = ((p / 100.0 * vals.len() as f64).ceil() as usize).max(1) - 1;
            let exact = vals[rank] as f64;
            let approx = h.percentile(p) as f64;
            let tol = (exact * 0.125).max(1.0);
            assert!(
                (approx - exact).abs() <= tol,
                "p{p}: approx {approx} vs exact {exact} (tol {tol})"
            );
        }
    }
}

#[test]
fn merge_equals_recording_everything_into_one() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5eed);
    for _ in 0..CASES {
        let a_vals = random_values(&mut rng);
        let b_vals = random_values(&mut rng);
        let mut merged = Histogram::new();
        let (mut a, mut b) = (Histogram::new(), Histogram::new());
        for &v in &a_vals {
            a.record(v);
            merged.record(v);
        }
        for &v in &b_vals {
            b.record(v);
            merged.record(v);
        }
        a.merge(&b);
        assert_eq!(
            a.canonical(),
            merged.canonical(),
            "merge must equal recording all values into one histogram"
        );
    }
}

#[test]
fn small_values_are_exact() {
    // Values below 8 get one-value buckets, so their percentiles are exact.
    let mut rng = ChaCha8Rng::seed_from_u64(0x11);
    for _ in 0..CASES {
        let mut vals: Vec<u64> = (0..rng.gen_range(1..60usize))
            .map(|_| rng.gen_range(0..8u64))
            .collect();
        let mut h = Histogram::new();
        for &v in &vals {
            h.record(v);
        }
        vals.sort_unstable();
        for &p in &[25.0, 50.0, 75.0, 100.0] {
            let rank = ((p / 100.0 * vals.len() as f64).ceil() as usize).max(1) - 1;
            assert_eq!(
                h.percentile(p),
                vals[rank],
                "exact below 8: p{p} of {vals:?}"
            );
        }
    }
}

#[test]
fn edge_percentiles_equal_true_min_and_max() {
    // The extreme ranks are tracked exactly, so p0/p100 must be real
    // samples for every seeded input — the fleet aggregator's summary
    // quantiles rely on this (a p99 over 200 scenario cells with one
    // outlier cell is the single-sample-in-top-bucket case).
    let mut rng = ChaCha8Rng::seed_from_u64(0xed9e);
    for _ in 0..CASES {
        let vals = random_values(&mut rng);
        let mut h = Histogram::new();
        for &v in &vals {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), *vals.iter().min().unwrap());
        assert_eq!(h.percentile(100.0), *vals.iter().max().unwrap());
    }
}
