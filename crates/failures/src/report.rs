//! The characterization pipeline: turn an event stream back into the
//! paper's tables and figures.

use crate::generator::{FailureEvent, FailureKind};
use crate::xid::{Xid, XidCategory};
use std::collections::BTreeMap;

/// One row of a Table-VI-style report.
#[derive(Debug, Clone, PartialEq)]
pub struct XidRow {
    /// The error code.
    pub xid: Xid,
    /// Its category.
    pub category: XidCategory,
    /// Events observed.
    pub count: u64,
    /// Share of all Xid events.
    pub percentage: f64,
}

/// Aggregate Xid events into the Table VI layout (sorted by category then
/// code).
pub fn xid_table(events: &[FailureEvent]) -> Vec<XidRow> {
    let mut counts: BTreeMap<u32, u64> = BTreeMap::new();
    for e in events {
        if let FailureKind::GpuXid(x) = e.kind {
            *counts.entry(x.0).or_insert(0) += 1;
        }
    }
    let total: u64 = counts.values().sum();
    let mut rows: Vec<XidRow> = counts
        .into_iter()
        .filter_map(|(code, count)| {
            Xid(code).category().map(|category| XidRow {
                xid: Xid(code),
                category,
                count,
                percentage: if total == 0 {
                    0.0
                } else {
                    100.0 * count as f64 / total as f64
                },
            })
        })
        .collect();
    rows.sort_by_key(|r| (r.category, r.xid));
    rows
}

/// A monthly trend bucket for the Figure 10 series.
#[derive(Debug, Clone, PartialEq)]
pub struct MonthlyTrend {
    /// Month index since the trace start.
    pub month: usize,
    /// Host-memory ECC events.
    pub main_memory: u64,
    /// Network flash cuts.
    pub network: u64,
    /// GPU-memory-related Xids (63/64/79/94/95 — the paper's "xids").
    pub gpu_memory_xids: u64,
}

const MONTH_S: f64 = 30.44 * 86400.0;

/// Bucket events into months (Figure 10's series).
pub fn monthly_trends(events: &[FailureEvent], months: usize) -> Vec<MonthlyTrend> {
    let mut out: Vec<MonthlyTrend> = (0..months)
        .map(|month| MonthlyTrend {
            month,
            main_memory: 0,
            network: 0,
            gpu_memory_xids: 0,
        })
        .collect();
    for e in events {
        let m = (e.at_s / MONTH_S) as usize;
        if m >= months {
            continue;
        }
        match e.kind {
            FailureKind::MainMemoryEcc => out[m].main_memory += 1,
            FailureKind::NetworkFlashCut => out[m].network += 1,
            FailureKind::GpuXid(x) if matches!(x.0, 63 | 64 | 79 | 94 | 95) => {
                out[m].gpu_memory_xids += 1
            }
            FailureKind::GpuXid(_) | FailureKind::StorageTargetFailure => {}
        }
    }
    out
}

/// Daily flash-cut counts (Figure 11's series): `(day index, count)`,
/// including zero days.
pub fn daily_flash_cuts(events: &[FailureEvent], days: usize) -> Vec<u64> {
    let mut out = vec![0u64; days];
    for e in events {
        if let FailureKind::NetworkFlashCut = e.kind {
            let d = (e.at_s / 86400.0) as usize;
            if d < days {
                out[d] += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{FailureGenerator, YEAR_S};

    fn trace() -> Vec<FailureEvent> {
        FailureGenerator::paper_calibrated(99, 1250).generate(YEAR_S)
    }

    #[test]
    fn xid_table_reproduces_shares() {
        let rows = xid_table(&trace());
        let total: u64 = rows.iter().map(|r| r.count).sum();
        assert!(total > 10_000);
        let x74 = rows.iter().find(|r| r.xid == Xid(74)).unwrap();
        assert!((x74.percentage - 42.57).abs() < 2.0, "{}", x74.percentage);
        let x43 = rows.iter().find(|r| r.xid == Xid(43)).unwrap();
        assert!((x43.percentage - 33.48).abs() < 2.0, "{}", x43.percentage);
        // Percentages sum to 100.
        let sum: f64 = rows.iter().map(|r| r.percentage).sum();
        assert!((sum - 100.0).abs() < 1e-6);
    }

    #[test]
    fn monthly_trends_have_the_papers_ordering() {
        // Figure 10: GPU-memory Xids dominate main-memory ECC counts.
        let months = monthly_trends(&trace(), 6);
        assert_eq!(months.len(), 6);
        let gpu: u64 = months.iter().map(|m| m.gpu_memory_xids).sum();
        let cpu: u64 = months.iter().map(|m| m.main_memory).sum();
        assert!(
            gpu > cpu,
            "GPU ECC ({gpu}) should considerably surpass CPU ({cpu})"
        );
    }

    #[test]
    fn flash_cuts_spread_over_the_year() {
        // Figure 11's point: failures occur randomly all year.
        let days = daily_flash_cuts(&trace(), 365);
        let active = days.iter().filter(|&&c| c > 0).count();
        let total: u64 = days.iter().sum();
        assert!((150..280).contains(&(total as usize)), "total {total}");
        assert!(active > 100, "only {active} active days");
        // Every quarter sees events.
        for q in 0..4 {
            let qsum: u64 = days[q * 91..(q + 1) * 91].iter().sum();
            assert!(qsum > 0, "quarter {q} silent");
        }
    }

    #[test]
    fn empty_trace_is_handled() {
        assert!(xid_table(&[]).is_empty());
        let m = monthly_trends(&[], 3);
        assert!(m.iter().all(|x| x.main_memory == 0 && x.network == 0));
        assert_eq!(daily_flash_cuts(&[], 10), vec![0; 10]);
    }
}
