//! Calibrated stochastic failure generation.
//!
//! Per-kind Poisson processes whose yearly rates equal the paper's raw
//! counts (Tables VI–VIII) — the closest synthetic equivalent to replaying
//! the production cluster's logs. Seeded ChaCha keeps every trace
//! reproducible.

use crate::data::{TABLE_VIII_FLASH_CUTS, TABLE_VII_MONTHLY, TABLE_VI_XID_COUNTS};
use crate::xid::Xid;
use ff_util::rng::ChaCha8Rng;

/// Seconds in the paper's observation year.
pub const YEAR_S: f64 = 365.0 * 24.0 * 3600.0;

/// What failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// A GPU raised an Xid error.
    GpuXid(Xid),
    /// Host (CPU) memory ECC error.
    MainMemoryEcc,
    /// An IB link flash cut.
    NetworkFlashCut,
    /// A 3FS storage target died (SSD failure or storage-node loss,
    /// §VI-B). Handled by the storage plane — chain reconfiguration and
    /// re-sync — not by the job scheduler.
    StorageTargetFailure,
}

/// One generated failure event.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureEvent {
    /// Seconds since the trace start.
    pub at_s: f64,
    /// Affected node index.
    pub node: usize,
    /// What happened.
    pub kind: FailureKind,
}

/// The generator: yearly rates per failure kind over a cluster of
/// `nodes` nodes.
pub struct FailureGenerator {
    rng: ChaCha8Rng,
    nodes: usize,
    /// `(kind, events per second across the cluster)`.
    rates: Vec<(FailureKind, f64)>,
}

impl FailureGenerator {
    /// Calibrated to the paper's cluster (≈1,250 nodes): Xid rates from
    /// Table VI, main-memory ECC from Table VII (54 over 6 months → 108 /
    /// year), flash cuts from Table VIII.
    pub fn paper_calibrated(seed: u64, nodes: usize) -> FailureGenerator {
        let mut rates: Vec<(FailureKind, f64)> = TABLE_VI_XID_COUNTS
            .iter()
            .map(|&(code, count)| (FailureKind::GpuXid(Xid(code)), count as f64 / YEAR_S))
            .collect();
        let main_memory_half_year: u64 = TABLE_VII_MONTHLY.iter().map(|(_, row)| row[0]).sum();
        rates.push((
            FailureKind::MainMemoryEcc,
            (main_memory_half_year * 2) as f64 / YEAR_S,
        ));
        let flash_cuts: u64 = TABLE_VIII_FLASH_CUTS.iter().map(|&(_, c)| c).sum();
        rates.push((FailureKind::NetworkFlashCut, flash_cuts as f64 / YEAR_S));
        FailureGenerator {
            rng: ChaCha8Rng::seed_from_u64(seed),
            nodes: nodes.max(1),
            rates,
        }
    }

    /// Add a storage-target failure process at `per_year` events/year.
    /// Opt-in (not part of `paper_calibrated`): appending a default rate
    /// would shift the seeded sampling streams of every calibrated trace.
    pub fn with_storage_failures(&mut self, per_year: f64) {
        assert!(per_year > 0.0);
        self.rates
            .push((FailureKind::StorageTargetFailure, per_year / YEAR_S));
    }

    /// Scale all rates (e.g. simulate a smaller cluster or a worse batch
    /// of hardware). `factor == 0.0` switches every process off, so the
    /// next [`FailureGenerator::generate`] returns no events at all —
    /// sweep baselines rely on that instead of sampling degenerate
    /// near-zero rates.
    pub fn scale_rates(&mut self, factor: f64) {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "rate scale must be finite and non-negative, got {factor}"
        );
        for (_, r) in &mut self.rates {
            *r *= factor;
        }
    }

    /// Generate all events in `[0, horizon_s)`, time-ordered.
    pub fn generate(&mut self, horizon_s: f64) -> Vec<FailureEvent> {
        let mut events = Vec::new();
        let rates = self.rates.clone();
        for (kind, rate) in rates {
            if rate <= 0.0 {
                continue;
            }
            let mut t = 0.0f64;
            loop {
                // Exponential inter-arrival via inverse CDF.
                let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
                t += -u.ln() / rate;
                if t >= horizon_s {
                    break;
                }
                let node = self.rng.gen_range(0..self.nodes);
                events.push(FailureEvent {
                    at_s: t,
                    node,
                    kind,
                });
            }
        }
        events.sort_by(|a, b| a.at_s.partial_cmp(&b.at_s).expect("finite times"));
        events
    }
}

/// Replay the paper's actual Table VIII trace as events: each dated flash
/// cut becomes a `NetworkFlashCut` at noon of its day (days measured from
/// 2023-04-01), on a deterministic pseudo-random node. Exact replay — not
/// sampling — for experiments that want the real production timeline.
pub fn replay_flash_cut_trace(nodes: usize) -> Vec<FailureEvent> {
    let day_of = |date: &str| -> f64 {
        // Days since 2023-04-01, Gregorian arithmetic over the 12 months
        // the trace spans.
        let y: i64 = date[0..4].parse().expect("year");
        let m: i64 = date[5..7].parse().expect("month");
        let d: i64 = date[8..10].parse().expect("day");
        let days_in = |y: i64, m: i64| -> i64 {
            match m {
                1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
                4 | 6 | 9 | 11 => 30,
                _ => {
                    if y % 4 == 0 && (y % 100 != 0 || y % 400 == 0) {
                        29
                    } else {
                        28
                    }
                }
            }
        };
        let mut days = 0i64;
        let (mut cy, mut cm) = (2023i64, 4i64);
        while (cy, cm) != (y, m) {
            days += days_in(cy, cm);
            cm += 1;
            if cm == 13 {
                cm = 1;
                cy += 1;
            }
        }
        (days + d - 1) as f64
    };
    let mut out = Vec::new();
    for (i, &(date, count)) in TABLE_VIII_FLASH_CUTS.iter().enumerate() {
        for k in 0..count {
            out.push(FailureEvent {
                at_s: day_of(date) * 86_400.0 + 43_200.0 + k as f64,
                node: (i * 31 + k as usize * 7) % nodes.max(1),
                kind: FailureKind::NetworkFlashCut,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::table_vi_total;
    use crate::xid::XidCategory;

    #[test]
    fn replay_matches_the_raw_trace() {
        let events = replay_flash_cut_trace(1250);
        let total: u64 = crate::data::TABLE_VIII_FLASH_CUTS
            .iter()
            .map(|&(_, c)| c)
            .sum();
        assert_eq!(events.len() as u64, total);
        // Ordered in time, within the year.
        for w in events.windows(2) {
            assert!(w[0].at_s <= w[1].at_s);
        }
        assert!(events.last().expect("non-empty").at_s < 370.0 * 86_400.0);
        // Spot-check a date: 2023-05-28 is day 57 (30 Apr days + 27).
        let may28: Vec<_> = events
            .iter()
            .filter(|e| (e.at_s / 86_400.0) as u64 == 57)
            .collect();
        assert_eq!(may28.len(), 10, "the big 2023-05-28 outage");
    }

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = FailureGenerator::paper_calibrated(42, 1250);
        let mut b = FailureGenerator::paper_calibrated(42, 1250);
        assert_eq!(a.generate(30.0 * 86400.0), b.generate(30.0 * 86400.0));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = FailureGenerator::paper_calibrated(1, 1250);
        let mut b = FailureGenerator::paper_calibrated(2, 1250);
        assert_ne!(a.generate(30.0 * 86400.0), b.generate(30.0 * 86400.0));
    }

    #[test]
    fn yearly_volume_matches_table_vi() {
        let mut g = FailureGenerator::paper_calibrated(7, 1250);
        let events = g.generate(YEAR_S);
        let xids = events
            .iter()
            .filter(|e| matches!(e.kind, FailureKind::GpuXid(_)))
            .count() as f64;
        let expected = table_vi_total() as f64;
        assert!(
            (xids - expected).abs() < expected * 0.05,
            "generated {xids}, expected ≈{expected}"
        );
    }

    #[test]
    fn category_shares_match_the_paper() {
        let mut g = FailureGenerator::paper_calibrated(11, 1250);
        let events = g.generate(YEAR_S);
        let total = events
            .iter()
            .filter(|e| matches!(e.kind, FailureKind::GpuXid(_)))
            .count() as f64;
        let nvlink = events
            .iter()
            .filter(|e| {
                matches!(e.kind, FailureKind::GpuXid(x) if x.category() == Some(XidCategory::NvLinkError))
            })
            .count() as f64;
        let share = nvlink / total;
        // Paper: 42.57%.
        assert!((share - 0.4257).abs() < 0.02, "NVLink share {share}");
    }

    #[test]
    fn events_are_time_ordered_and_in_horizon() {
        let mut g = FailureGenerator::paper_calibrated(3, 100);
        let events = g.generate(7.0 * 86400.0);
        for w in events.windows(2) {
            assert!(w[0].at_s <= w[1].at_s);
        }
        assert!(events.iter().all(|e| e.at_s < 7.0 * 86400.0));
        assert!(events.iter().all(|e| e.node < 100));
    }

    #[test]
    fn rate_scaling_scales_volume() {
        let mut g = FailureGenerator::paper_calibrated(5, 1250);
        g.scale_rates(0.1);
        let low = g.generate(YEAR_S).len() as f64;
        let mut g2 = FailureGenerator::paper_calibrated(5, 1250);
        let full = g2.generate(YEAR_S).len() as f64;
        assert!(
            (low / full - 0.1).abs() < 0.03,
            "scaled {low} vs full {full}"
        );
    }
}
