//! The paper's raw failure data, embedded verbatim from the appendix.

/// Table VI: GPU Xid errors over one year as `(code, count)`.
/// Total 12,970 events; Xid 74 alone is 42.57%.
pub const TABLE_VI_XID_COUNTS: &[(u32, u64)] = &[
    (74, 5521),
    (13, 45),
    (31, 2487),
    (43, 4342),
    (45, 240),
    (63, 245),
    (64, 2),
    (94, 13),
    (95, 17),
    (44, 1),
    (48, 2),
    (61, 13),
    (62, 3),
    (69, 1),
    (79, 37),
    (119, 1),
];

/// Sum of Table VI counts.
pub fn table_vi_total() -> u64 {
    TABLE_VI_XID_COUNTS.iter().map(|&(_, c)| c).sum()
}

/// The columns of Table VII (Figure 10), in order.
pub const TABLE_VII_COLUMNS: &[&str] = &[
    "Main Memory",
    "Network",
    "xid_63",
    "xid_64",
    "xid_79",
    "xid_94",
    "xid_95",
];

/// Table VII: monthly memory/network failures, October 2023 – March 2024.
/// Rows are months; columns follow [`TABLE_VII_COLUMNS`].
pub const TABLE_VII_MONTHLY: &[(&str, [u64; 7])] = &[
    ("2023-10", [4, 29, 21, 0, 0, 0, 0]),
    ("2023-11", [14, 8, 22, 0, 0, 4, 0]),
    ("2023-12", [8, 17, 21, 0, 4, 2, 2]),
    ("2024-01", [11, 9, 16, 1, 3, 1, 1]),
    ("2024-02", [8, 12, 18, 0, 2, 0, 3]),
    ("2024-03", [9, 14, 22, 0, 6, 0, 0]),
];

/// Table VIII: IB network link failures ("flash cuts") per day over one
/// year, as `(date, count)`.
pub const TABLE_VIII_FLASH_CUTS: &[(&str, u64)] = &[
    ("2023-04-19", 1),
    ("2023-04-21", 1),
    ("2023-04-26", 1),
    ("2023-04-27", 4),
    ("2023-04-30", 1),
    ("2023-05-01", 1),
    ("2023-05-04", 2),
    ("2023-05-06", 2),
    ("2023-05-09", 2),
    ("2023-05-17", 2),
    ("2023-05-26", 1),
    ("2023-05-27", 8),
    ("2023-05-28", 10),
    ("2023-05-30", 2),
    ("2023-06-05", 1),
    ("2023-06-06", 1),
    ("2023-06-08", 1),
    ("2023-06-14", 2),
    ("2023-06-16", 0),
    ("2023-06-17", 2),
    ("2023-06-20", 3),
    ("2023-06-26", 1),
    ("2023-06-27", 2),
    ("2023-07-04", 2),
    ("2023-07-06", 2),
    ("2023-07-07", 10),
    ("2023-07-08", 1),
    ("2023-07-10", 2),
    ("2023-07-12", 10),
    ("2023-07-13", 1),
    ("2023-07-18", 2),
    ("2023-07-20", 1),
    ("2023-07-23", 2),
    ("2023-07-24", 2),
    ("2023-07-26", 1),
    ("2023-07-29", 3),
    ("2023-08-06", 3),
    ("2023-08-08", 1),
    ("2023-08-09", 1),
    ("2023-08-16", 1),
    ("2023-08-17", 2),
    ("2023-08-18", 1),
    ("2023-08-20", 1),
    ("2023-08-23", 2),
    ("2023-08-25", 3),
    ("2023-08-26", 4),
    ("2023-08-28", 4),
    ("2023-08-31", 7),
    ("2023-09-01", 3),
    ("2023-09-04", 1),
    ("2023-09-05", 3),
    ("2023-09-07", 3),
    ("2023-09-12", 1),
    ("2023-09-17", 1),
    ("2023-09-21", 7),
    ("2023-09-27", 1),
    ("2023-10-08", 2),
    ("2023-10-10", 1),
    ("2023-10-11", 1),
    ("2023-10-16", 1),
    ("2023-10-22", 1),
    ("2023-10-25", 1),
    ("2023-10-26", 3),
    ("2023-10-27", 2),
    ("2023-10-28", 1),
    ("2023-11-02", 1),
    ("2023-11-06", 1),
    ("2023-11-09", 1),
    ("2023-11-14", 1),
    ("2023-11-20", 1),
    ("2023-11-30", 3),
    ("2023-12-07", 5),
    ("2023-12-09", 1),
    ("2023-12-10", 1),
    ("2023-12-14", 1),
    ("2023-12-22", 3),
    ("2023-12-24", 5),
    ("2023-12-31", 1),
    ("2024-01-01", 1),
    ("2024-01-06", 1),
    ("2024-01-07", 1),
    ("2024-01-10", 2),
    ("2024-01-15", 1),
    ("2024-01-25", 1),
    ("2024-01-31", 2),
    ("2024-02-03", 5),
    ("2024-02-05", 1),
    ("2024-02-17", 1),
    ("2024-02-22", 1),
    ("2024-02-23", 3),
    ("2024-02-26", 1),
    ("2024-03-01", 3),
    ("2024-03-05", 1),
    ("2024-03-11", 1),
    ("2024-03-16", 2),
    ("2024-03-18", 1),
    ("2024-03-24", 1),
    ("2024-03-25", 1),
    ("2024-03-29", 2),
    ("2024-03-30", 1),
    ("2024-03-31", 1),
];

/// The §VIII-D comparison: the external cluster's NVLink share of total
/// failures (54 of 103) versus Fire-Flyer's Xid-74 share.
pub const OTHER_ARCH_NVLINK_SHARE: f64 = 54.0 / 103.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_vi_totals_and_shares() {
        assert_eq!(table_vi_total(), 12_970);
        let xid74 = TABLE_VI_XID_COUNTS
            .iter()
            .find(|&&(c, _)| c == 74)
            .unwrap()
            .1;
        let share = xid74 as f64 / table_vi_total() as f64;
        assert!((share - 0.4257).abs() < 0.0005, "Xid74 share {share}");
        let xid43 = TABLE_VI_XID_COUNTS
            .iter()
            .find(|&&(c, _)| c == 43)
            .unwrap()
            .1;
        assert!((xid43 as f64 / table_vi_total() as f64 - 0.3348).abs() < 0.0005);
    }

    #[test]
    fn table_vii_row_and_column_sums() {
        // Paper totals: 54, 89, 120, 1, 15, 7, 6 (total 292).
        let mut cols = [0u64; 7];
        let mut total = 0;
        for (_, row) in TABLE_VII_MONTHLY {
            for (i, v) in row.iter().enumerate() {
                cols[i] += v;
            }
            total += row.iter().sum::<u64>();
        }
        assert_eq!(cols, [54, 89, 120, 1, 15, 7, 6]);
        assert_eq!(total, 292);
    }

    #[test]
    fn flash_cut_total_and_randomness() {
        let total: u64 = TABLE_VIII_FLASH_CUTS.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 213);
        // "these issues can occur randomly throughout the cluster's
        // operational period": events appear in every month Apr'23–Mar'24.
        let months: std::collections::BTreeSet<&str> = TABLE_VIII_FLASH_CUTS
            .iter()
            .map(|&(d, _)| &d[..7])
            .collect();
        assert_eq!(months.len(), 12);
    }

    #[test]
    fn our_nvlink_share_below_other_arch() {
        // §VIII-D: 42.57% here vs 52.42% reported elsewhere.
        let xid74 = 5521.0 / table_vi_total() as f64;
        assert!(xid74 < OTHER_ARCH_NVLINK_SHARE);
    }
}
