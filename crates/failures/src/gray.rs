//! Gray failures: degradations that never kill anything outright.
//!
//! The [`plan`](crate::plan) module covers the paper's *hard* failures —
//! rank deaths, flash cuts, corrupt checkpoints — all of which announce
//! themselves. Gray failures are the other operational reality of
//! §VII-B: a node that silently computes at a fraction of nominal speed,
//! a link that oscillates between healthy and trickle, a GPU pinned at a
//! thermal cap. Nothing pages; the job just gets slower. These are
//! exactly the faults hai-monitor-style detection exists for, because
//! there is no interrupt to catch — only signals to watch.
//!
//! A [`GrayFault`] is a *shape* (how the degradation evolves over time),
//! a [`GrayEvent`] places one on a node at a time for a duration, and a
//! [`GrayPlan`] is a seeded, time-ordered stream of them. The platform
//! realizes plans as time-varying rate caps and compute stretch (see
//! `ff_desim::envelope` for the piecewise-constant expansion); the
//! detector must then recover the injection from observable signals
//! alone.

use ff_util::rng::ChaCha8Rng;

/// The shape of a gray degradation. All parameters are validated by
/// [`GrayFault::validate`]; constructors on [`GrayEvent`] call it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GrayFault {
    /// A compute straggler: the node's effective speed decays to
    /// `1/slowdown` of nominal over `onset_ramp_s` seconds, then holds.
    /// `slowdown = 4.0` means steps on this node take 4× as long.
    Straggler {
        /// Terminal slowdown factor, `> 1`.
        slowdown: f64,
        /// Seconds over which the slowdown ramps in (0 = step change).
        onset_ramp_s: f64,
    },
    /// A flapping link: the node's NIC alternates between full capacity
    /// and a management-lane trickle with the given period and duty
    /// cycle (`duty` = fraction of each period spent *down*).
    FlappingLink {
        /// Full up/down cycle length in seconds, `> 0`.
        period_s: f64,
        /// Fraction of each period spent degraded, in `(0, 1)`.
        duty: f64,
    },
    /// A thermal throttle: compute capacity caps at `factor` of nominal
    /// after a ramp — the firmware clamps clocks gradually, not at once.
    ThermalThrottle {
        /// Remaining fraction of compute capacity, in `(0, 1)`.
        factor: f64,
        /// Seconds over which the clamp ramps in (0 = step change).
        onset_ramp_s: f64,
    },
}

impl GrayFault {
    /// Panics unless the parameters are in-range. Called by every
    /// constructor so malformed shapes cannot enter a plan.
    pub fn validate(&self) {
        match *self {
            GrayFault::Straggler {
                slowdown,
                onset_ramp_s,
            } => {
                assert!(
                    slowdown > 1.0 && slowdown.is_finite(),
                    "straggler slowdown must be > 1, got {slowdown}"
                );
                assert!(
                    onset_ramp_s >= 0.0 && onset_ramp_s.is_finite(),
                    "onset ramp must be >= 0, got {onset_ramp_s}"
                );
            }
            GrayFault::FlappingLink { period_s, duty } => {
                assert!(
                    period_s > 0.0 && period_s.is_finite(),
                    "flap period must be > 0, got {period_s}"
                );
                assert!(
                    duty > 0.0 && duty < 1.0,
                    "flap duty must be in (0, 1), got {duty}"
                );
            }
            GrayFault::ThermalThrottle {
                factor,
                onset_ramp_s,
            } => {
                assert!(
                    factor > 0.0 && factor < 1.0,
                    "throttle factor must be in (0, 1), got {factor}"
                );
                assert!(
                    onset_ramp_s >= 0.0 && onset_ramp_s.is_finite(),
                    "onset ramp must be >= 0, got {onset_ramp_s}"
                );
            }
        }
    }

    /// Short stable name for reports and canonical traces.
    pub fn name(&self) -> &'static str {
        match self {
            GrayFault::Straggler { .. } => "straggler",
            GrayFault::FlappingLink { .. } => "flapping-link",
            GrayFault::ThermalThrottle { .. } => "thermal-throttle",
        }
    }
}

/// One gray fault placed on a node: starts at `at_s`, lasts
/// `duration_s`, after which the node returns to nominal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrayEvent {
    /// Seconds since run start.
    pub at_s: f64,
    /// The afflicted cluster node.
    pub node: usize,
    /// How long the degradation lasts, in seconds.
    pub duration_s: f64,
    /// The degradation shape.
    pub fault: GrayFault,
}

impl GrayEvent {
    /// A validated event.
    pub fn new(at_s: f64, node: usize, duration_s: f64, fault: GrayFault) -> GrayEvent {
        assert!(at_s >= 0.0 && at_s.is_finite(), "start must be >= 0");
        assert!(
            duration_s > 0.0 && duration_s.is_finite(),
            "duration must be > 0"
        );
        fault.validate();
        GrayEvent {
            at_s,
            node,
            duration_s,
            fault,
        }
    }
}

/// Per-kind annual rates for the seeded generator. Gray faults are not
/// in the paper's tables (they were never *counted* — that is the
/// point), so the defaults are deliberately conservative stand-ins:
/// roughly one gray episode per node-month, split across kinds.
#[derive(Debug, Clone, Copy)]
pub struct GrayRates {
    /// Straggler episodes per node-year.
    pub stragglers_per_year: f64,
    /// Link-flap episodes per node-year.
    pub flaps_per_year: f64,
    /// Thermal-throttle episodes per node-year.
    pub throttles_per_year: f64,
}

impl Default for GrayRates {
    fn default() -> Self {
        GrayRates {
            stragglers_per_year: 5.0,
            flaps_per_year: 4.0,
            throttles_per_year: 3.0,
        }
    }
}

/// A seeded, time-ordered stream of gray-fault episodes.
#[derive(Debug, Clone, Default)]
pub struct GrayPlan {
    /// The episodes, ordered by `at_s`.
    pub events: Vec<GrayEvent>,
}

const SECONDS_PER_YEAR: f64 = 365.0 * 86_400.0;

impl GrayPlan {
    /// A plan containing a single episode — the workhorse for benches
    /// and property tests that need one known injection.
    pub fn single(at_s: f64, node: usize, duration_s: f64, fault: GrayFault) -> GrayPlan {
        GrayPlan {
            events: vec![GrayEvent::new(at_s, node, duration_s, fault)],
        }
    }

    /// Sample a plan: independent Poisson processes per kind across
    /// `nodes` nodes over `horizon_s` seconds, parameters drawn from
    /// seeded ranges. Same seed ⇒ byte-identical plan.
    pub fn generate(seed: u64, nodes: usize, horizon_s: f64, rates: &GrayRates) -> GrayPlan {
        assert!(nodes > 0, "need at least one node");
        assert!(horizon_s > 0.0 && horizon_s.is_finite(), "bad horizon");
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x6772_6179); // "gray"
        let mut events = Vec::new();
        let kinds: [(f64, u8); 3] = [
            (rates.stragglers_per_year, 0),
            (rates.flaps_per_year, 1),
            (rates.throttles_per_year, 2),
        ];
        for (per_year, tag) in kinds {
            if per_year <= 0.0 {
                continue;
            }
            // Fleet-wide Poisson process: exponential inter-arrivals at
            // `nodes × per_year` per year, node chosen uniformly.
            let rate_per_s = per_year * nodes as f64 / SECONDS_PER_YEAR;
            let mut t = 0.0f64;
            loop {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                t += -u.ln() / rate_per_s;
                if t >= horizon_s {
                    break;
                }
                let node = rng.gen_range(0..nodes);
                let duration_s = rng.gen_range(120.0..3_600.0);
                let fault = match tag {
                    0 => GrayFault::Straggler {
                        slowdown: rng.gen_range(1.5..6.0),
                        onset_ramp_s: rng.gen_range(0.0..120.0),
                    },
                    1 => GrayFault::FlappingLink {
                        period_s: rng.gen_range(20.0..180.0),
                        duty: rng.gen_range(0.1..0.9),
                    },
                    _ => GrayFault::ThermalThrottle {
                        factor: rng.gen_range(0.3..0.9),
                        onset_ramp_s: rng.gen_range(0.0..300.0),
                    },
                };
                events.push(GrayEvent::new(t, node, duration_s, fault));
            }
        }
        events.sort_by(|a, b| {
            a.at_s
                .partial_cmp(&b.at_s)
                .unwrap()
                .then(a.node.cmp(&b.node))
        });
        GrayPlan { events }
    }

    /// Number of episodes.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing gray is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_plans_are_deterministic_ordered_and_in_range() {
        let a = GrayPlan::generate(11, 32, 30.0 * 86_400.0, &GrayRates::default());
        let b = GrayPlan::generate(11, 32, 30.0 * 86_400.0, &GrayRates::default());
        assert_eq!(a.events, b.events, "same seed, same plan");
        assert!(!a.is_empty(), "a month of 32 nodes must produce episodes");
        for w in a.events.windows(2) {
            assert!(w[0].at_s <= w[1].at_s);
        }
        for e in &a.events {
            assert!(e.node < 32);
            assert!(e.at_s >= 0.0 && e.at_s < 30.0 * 86_400.0);
            assert!(e.duration_s > 0.0);
            e.fault.validate();
        }
        let c = GrayPlan::generate(12, 32, 30.0 * 86_400.0, &GrayRates::default());
        assert_ne!(a.events, c.events, "different seed, different plan");
    }

    #[test]
    fn a_long_horizon_contains_every_kind() {
        let plan = GrayPlan::generate(3, 64, 365.0 * 86_400.0, &GrayRates::default());
        for name in ["straggler", "flapping-link", "thermal-throttle"] {
            assert!(
                plan.events.iter().any(|e| e.fault.name() == name),
                "missing {name}"
            );
        }
    }

    #[test]
    fn zero_rates_yield_empty_plans() {
        let rates = GrayRates {
            stragglers_per_year: 0.0,
            flaps_per_year: 0.0,
            throttles_per_year: 0.0,
        };
        assert!(GrayPlan::generate(1, 8, 86_400.0, &rates).is_empty());
    }

    #[test]
    #[should_panic(expected = "slowdown must be > 1")]
    fn sub_unit_slowdown_is_rejected() {
        GrayFault::Straggler {
            slowdown: 0.5,
            onset_ramp_s: 0.0,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "duty must be in (0, 1)")]
    fn full_duty_flap_is_rejected() {
        GrayFault::FlappingLink {
            period_s: 30.0,
            duty: 1.0,
        }
        .validate();
    }
}
