//! # ff-failures — hardware failure characterization (§VII-C)
//!
//! The taxonomy, statistics and synthetic reproduction of the paper's
//! year of production failure data:
//!
//! * [`xid`] — the GPU Xid error taxonomy of Table V with the paper's
//!   cause analysis and handling guidance.
//! * [`data`] — the raw appendix tables embedded verbatim: Table VI (Xid
//!   counts over a year), Table VII (monthly memory/network failures,
//!   Figure 10), Table VIII (daily IB link flash cuts, Figure 11).
//! * [`generator`] — a seeded stochastic failure generator whose
//!   per-category Poisson rates are calibrated to those tables; it
//!   produces event streams statistically matching the production
//!   cluster's, for driving the platform's failure handling.
//! * [`plan`] — typed fault *injection* plans: the handling policy of
//!   Table V applied to an event stream, yielding rank deaths, link
//!   degradations and silent-data-corruption injections the simulators
//!   and the platform's recovery loop execute.
//! * [`gray`] — gray failures (§VII-B): stragglers, flapping links and
//!   thermal throttles that degrade without announcing themselves —
//!   the faults signal-driven detection exists for.
//! * [`report`] — the characterization pipeline: aggregate an event
//!   stream back into the paper's tables and figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod availability;
pub mod data;
pub mod generator;
pub mod gray;
pub mod plan;
pub mod report;
pub mod xid;

pub use generator::{FailureEvent, FailureGenerator, FailureKind};
pub use gray::{GrayEvent, GrayFault, GrayPlan, GrayRates};
pub use plan::{FaultAction, FaultPlan, PlannedFault};
pub use xid::{Xid, XidCategory};
