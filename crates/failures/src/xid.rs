//! The GPU Xid error taxonomy (Table V).

use std::fmt;

/// The categories the paper groups Xid errors into (Table V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum XidCategory {
    /// Application-triggered: anomalies in GPU memory affecting code/data
    /// segments; consider hardware only after ruling out software bugs.
    SoftwareCauses,
    /// NVLink bridge errors (Xid 74) — "several orders of magnitude"
    /// more frequent than other hardware faults on PCIe A100 bridges.
    NvLinkError,
    /// GPU memory ECC events; A100 row remapping usually recovers with a
    /// GPU reset.
    MemoryEcc,
    /// Uncorrectable GPU failures needing a GPU reset or node reboot.
    Uncorrectable,
    /// GPU GSP module failure (Xid 119): field diagnostics, usually RMA.
    GspError,
}

impl XidCategory {
    /// The paper's recommended operator response.
    pub fn handling(self) -> &'static str {
        match self {
            XidCategory::SoftwareCauses => {
                "inspect user code first; suspect hardware if software is ruled out"
            }
            XidCategory::NvLinkError => {
                "stress-test to exclude repeat offenders; otherwise tolerate and retry"
            }
            XidCategory::MemoryEcc => "reset the GPU; row remapping retains performance",
            XidCategory::Uncorrectable => "GPU reset or node reboot required",
            XidCategory::GspError => "run fieldiag; most units need RMA",
        }
    }
}

/// A specific Xid error code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Xid(pub u32);

impl Xid {
    /// Classify a code into the paper's categories; `None` for codes the
    /// paper does not track.
    pub fn category(self) -> Option<XidCategory> {
        match self.0 {
            13 | 31 | 43 | 45 => Some(XidCategory::SoftwareCauses),
            74 => Some(XidCategory::NvLinkError),
            63 | 64 | 94 | 95 => Some(XidCategory::MemoryEcc),
            44 | 48 | 61 | 62 | 69 | 79 => Some(XidCategory::Uncorrectable),
            119 => Some(XidCategory::GspError),
            _ => None,
        }
    }

    /// Short description of what the code means.
    pub fn description(self) -> &'static str {
        match self.0 {
            13 => "graphics engine exception",
            31 => "GPU memory page fault",
            43 => "illegal memory access",
            45 => "preemptive cleanup / robust channel",
            74 => "NVLink error",
            63 | 64 => "ECC page retirement / row remapping",
            94 | 95 => "contained/uncontained ECC error",
            44 => "graphics engine fault",
            48 => "double-bit ECC error",
            61 | 62 => "internal microcontroller halt",
            69 => "graphics engine class error",
            79 => "GPU fallen off the bus",
            119 => "GSP module failure",
            _ => "unknown",
        }
    }

    /// Whether recovery requires removing the node from scheduling (vs a
    /// user-visible retry).
    pub fn needs_node_action(self) -> bool {
        matches!(
            self.category(),
            Some(XidCategory::MemoryEcc)
                | Some(XidCategory::Uncorrectable)
                | Some(XidCategory::GspError)
        )
    }
}

impl fmt::Display for Xid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Xid {}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_table_v() {
        assert_eq!(Xid(74).category(), Some(XidCategory::NvLinkError));
        assert_eq!(Xid(43).category(), Some(XidCategory::SoftwareCauses));
        assert_eq!(Xid(63).category(), Some(XidCategory::MemoryEcc));
        assert_eq!(Xid(79).category(), Some(XidCategory::Uncorrectable));
        assert_eq!(Xid(119).category(), Some(XidCategory::GspError));
        assert_eq!(Xid(999).category(), None);
    }

    #[test]
    fn node_action_policy() {
        assert!(!Xid(43).needs_node_action(), "software: user retry");
        assert!(!Xid(74).needs_node_action(), "NVLink: tolerate/retry");
        assert!(Xid(63).needs_node_action(), "ECC: reset GPU");
        assert!(Xid(79).needs_node_action());
        assert!(Xid(119).needs_node_action());
    }

    #[test]
    fn descriptions_and_handling_present() {
        for code in [
            13u32, 31, 43, 45, 74, 63, 64, 94, 95, 44, 48, 61, 62, 69, 79, 119,
        ] {
            assert_ne!(Xid(code).description(), "unknown", "code {code}");
            let cat = Xid(code).category().unwrap();
            assert!(!cat.handling().is_empty());
        }
    }
}
