//! MTBF and availability arithmetic over the paper's failure data — the
//! quantitative backdrop of §VII ("stragglers and hardware failures are
//! common occurrences rather than outliers").

use crate::data::{table_vi_total, TABLE_VIII_FLASH_CUTS};
use crate::xid::Xid;

/// Hours in the observation year.
const YEAR_H: f64 = 365.0 * 24.0;

/// Mean time between *node-action* GPU failures cluster-wide, hours:
/// only the Xids that take a node out (ECC, uncorrectable, GSP) count;
/// software Xids and NVLink retries don't.
pub fn cluster_mtbf_node_action_h() -> f64 {
    let actionable: u64 = crate::data::TABLE_VI_XID_COUNTS
        .iter()
        .filter(|&&(code, _)| Xid(code).needs_node_action())
        .map(|&(_, c)| c)
        .sum();
    YEAR_H / actionable as f64
}

/// Mean time between *any* GPU Xid event cluster-wide, hours.
pub fn cluster_mtbf_any_xid_h() -> f64 {
    YEAR_H / table_vi_total() as f64
}

/// Mean time between IB link flash cuts cluster-wide, hours.
pub fn cluster_mtbf_flash_cut_h() -> f64 {
    let total: u64 = TABLE_VIII_FLASH_CUTS.iter().map(|&(_, c)| c).sum();
    YEAR_H / total as f64
}

/// Per-node MTBF for node-action failures, hours, at `nodes` nodes.
pub fn per_node_mtbf_h(nodes: usize) -> f64 {
    cluster_mtbf_node_action_h() * nodes as f64
}

/// Expected training-job interruptions over `days` for a job spanning
/// `job_nodes` of a `cluster_nodes` cluster (failures land uniformly).
pub fn expected_interruptions(days: f64, job_nodes: usize, cluster_nodes: usize) -> f64 {
    let cluster_rate_per_h = 1.0 / cluster_mtbf_node_action_h();
    cluster_rate_per_h * 24.0 * days * job_nodes as f64 / cluster_nodes as f64
}

/// Fraction of job progress lost to failures with checkpoint cadence
/// `ckpt_s`: each interruption loses on average half an interval.
pub fn expected_loss_fraction(
    days: f64,
    job_nodes: usize,
    cluster_nodes: usize,
    ckpt_s: f64,
) -> f64 {
    let interruptions = expected_interruptions(days, job_nodes, cluster_nodes);
    let lost_s = interruptions * ckpt_s / 2.0;
    lost_s / (days * 86_400.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actionable_failures_are_the_minority() {
        // Most Xids are software or tolerated NVLink retries; node-action
        // events (ECC + uncorrectable + GSP) are ~335 of 12,970.
        let any = cluster_mtbf_any_xid_h();
        let action = cluster_mtbf_node_action_h();
        assert!(any < 1.0, "an Xid somewhere every {any:.2} h");
        assert!(
            action > 20.0 && action < 30.0,
            "node-action every {action:.1} h"
        );
    }

    #[test]
    fn flash_cuts_are_roughly_every_other_day() {
        let h = cluster_mtbf_flash_cut_h();
        assert!(h > 24.0 && h < 60.0, "{h:.1} h between flash cuts");
    }

    #[test]
    fn per_node_mtbf_is_years() {
        // 1,250 nodes sharing ~335 yearly node-action failures → each node
        // fails roughly every 3–4 years.
        let h = per_node_mtbf_h(1250);
        assert!(h / YEAR_H > 3.0, "{:.1} years", h / YEAR_H);
    }

    #[test]
    fn month_long_512gpu_job_sees_interruptions() {
        // A 64-node (512-GPU) month-long run on the 1,250-node cluster
        // expects a handful of interruptions — why §VII-A exists.
        let n = expected_interruptions(30.0, 64, 1250);
        assert!(n > 0.5 && n < 5.0, "{n:.2} interruptions");
    }

    #[test]
    fn five_minute_checkpoints_make_loss_negligible() {
        // §VII-A: "this overhead from disaster recovery is minimal".
        let loss = expected_loss_fraction(30.0, 64, 1250, 300.0);
        assert!(loss < 1e-4, "loss fraction {loss}");
        // Hourly checkpoints would already cost 12× more.
        let hourly = expected_loss_fraction(30.0, 64, 1250, 3600.0);
        assert!((hourly / loss - 12.0).abs() < 1e-9);
    }
}
