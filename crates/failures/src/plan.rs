//! Fault *plans*: turning the calibrated failure stream into typed
//! injections the rest of the stack can execute.
//!
//! The [`generator`](crate::generator) says *what broke and when*; a
//! [`FaultPlan`] says *what that does to a running job*, applying the
//! paper's handling policy (Table V, §VII-C):
//!
//! * Uncorrectable Xids, GSP failures, contained GPU ECC and host-memory
//!   ECC take the node out of the scheduling pool — the job sees a **rank
//!   death** ([`FaultAction::KillRank`]).
//! * An IB link flash cut (§VII-C, Table VIII) leaves the node up but
//!   trains the link down — a **link degradation**
//!   ([`FaultAction::DegradeLink`]) the fluid/network model executes via
//!   `FluidSim::degrade` and hostping detects.
//! * Uncontained GPU ECC (Xid 95) is the pathway the paper blames for
//!   *silent data corruption*: the computation continues with wrong bits
//!   ([`FaultAction::CorruptData`]) until a checksum catches it.
//! * Software-caused and NVLink Xids are tolerated in-band
//!   ([`FaultAction::Tolerate`]): retry the step, keep the node.
//!
//! Consumers: the threaded executor maps `KillRank` onto
//! `ff_reduce::ExecFaultPlan`, the simulators map `DegradeLink` onto
//! degraded fluid resources, and the platform's recovery loop maps
//! `CorruptData` onto flipped checkpoint bytes.

use crate::generator::{FailureEvent, FailureGenerator, FailureKind};
use crate::xid::XidCategory;

/// What a failure event does to the running job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// The node leaves the pool mid-step: its rank stops responding.
    KillRank {
        /// The job rank hosted on the failed node.
        rank: usize,
    },
    /// The node's network link trains down to `factor × capacity`.
    DegradeLink {
        /// The job rank whose link degrades.
        rank: usize,
        /// Remaining fraction of link capacity, in `(0, 1]`.
        factor: f64,
    },
    /// The rank keeps computing but its data can no longer be trusted —
    /// silent corruption until a checksum exposes it.
    CorruptData {
        /// The job rank producing corrupt data.
        rank: usize,
    },
    /// Handled in-band (software retry, NVLink tolerate-and-retry); the
    /// rank survives.
    Tolerate {
        /// The affected job rank.
        rank: usize,
    },
    /// A 3FS storage target dies. The job's ranks all survive; the
    /// storage plane must reconfigure the affected chain and re-sync a
    /// recruit while checkpoint I/O rides through on client retries.
    KillStorageTarget {
        /// The storage-target index (the node mapped into the storage
        /// pool rather than the rank space).
        target: usize,
    },
}

impl FaultAction {
    /// The rank the action lands on. For a storage-target kill this is
    /// the target index — storage faults land on the storage pool, not a
    /// job rank.
    pub fn rank(&self) -> usize {
        match *self {
            FaultAction::KillRank { rank }
            | FaultAction::DegradeLink { rank, .. }
            | FaultAction::CorruptData { rank }
            | FaultAction::Tolerate { rank } => rank,
            FaultAction::KillStorageTarget { target } => target,
        }
    }
}

/// One scheduled injection.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedFault {
    /// Seconds since job start.
    pub at_s: f64,
    /// The cluster node that failed (before the rank mapping).
    pub node: usize,
    /// The raw failure, for reporting.
    pub kind: FailureKind,
    /// What the job experiences.
    pub action: FaultAction,
}

/// A time-ordered list of typed injections for a `ranks`-wide job.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// The injections, ordered by `at_s`.
    pub faults: Vec<PlannedFault>,
}

/// Capacity fraction left by an IB flash cut: the link drops to a
/// management-lane trickle rather than hard-down, which is exactly why
/// flash cuts are nasty — traffic crawls instead of failing fast.
pub const FLASH_CUT_FACTOR: f64 = 0.05;

/// The paper's handling policy as a pure function of the failure kind.
pub fn action_for(kind: FailureKind, rank: usize) -> FaultAction {
    match kind {
        FailureKind::GpuXid(x) => match x.category() {
            // Uncontained ECC: the one case where wrong bits flow onward.
            Some(XidCategory::MemoryEcc) if x.0 == 95 => FaultAction::CorruptData { rank },
            Some(XidCategory::MemoryEcc)
            | Some(XidCategory::Uncorrectable)
            | Some(XidCategory::GspError) => FaultAction::KillRank { rank },
            Some(XidCategory::SoftwareCauses) | Some(XidCategory::NvLinkError) | None => {
                FaultAction::Tolerate { rank }
            }
        },
        FailureKind::MainMemoryEcc => FaultAction::KillRank { rank },
        FailureKind::NetworkFlashCut => FaultAction::DegradeLink {
            rank,
            factor: FLASH_CUT_FACTOR,
        },
        FailureKind::StorageTargetFailure => FaultAction::KillStorageTarget { target: rank },
    }
}

impl FaultPlan {
    /// Apply the policy to an event stream. Node `n` hosts rank
    /// `n % ranks`; events keep their times and order.
    pub fn from_events(events: &[FailureEvent], ranks: usize) -> FaultPlan {
        assert!(ranks > 0, "a job needs at least one rank");
        let faults = events
            .iter()
            .map(|e| PlannedFault {
                at_s: e.at_s,
                node: e.node,
                kind: e.kind,
                action: action_for(e.kind, e.node % ranks),
            })
            .collect();
        FaultPlan { faults }
    }

    /// Generate a plan from the paper-calibrated generator: `ranks` nodes
    /// observed for `horizon_s` seconds with failure rates scaled by
    /// `rate_scale` (use ≫1 to compress a year of pain into a short run;
    /// `0.0` yields an empty plan — the sweep baseline — rather than
    /// degenerate sampling).
    pub fn generate(seed: u64, ranks: usize, horizon_s: f64, rate_scale: f64) -> FaultPlan {
        let mut gen = FailureGenerator::paper_calibrated(seed, ranks);
        gen.scale_rates(rate_scale);
        let events = gen.generate(horizon_s);
        FaultPlan::from_events(&events, ranks)
    }

    /// Injections due in `[from_s, to_s)`.
    pub fn window(&self, from_s: f64, to_s: f64) -> impl Iterator<Item = &PlannedFault> {
        self.faults
            .iter()
            .filter(move |f| f.at_s >= from_s && f.at_s < to_s)
    }

    /// The rank deaths only.
    pub fn kills(&self) -> impl Iterator<Item = &PlannedFault> {
        self.faults
            .iter()
            .filter(|f| matches!(f.action, FaultAction::KillRank { .. }))
    }

    /// The earliest rank death, if any.
    pub fn first_kill(&self) -> Option<&PlannedFault> {
        self.kills().next()
    }

    /// Number of injections.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True when nothing is scheduled to fail.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::TABLE_VI_XID_COUNTS;
    use crate::xid::Xid;

    /// Every code the paper counted in Table VI is classified, and the
    /// plan's action agrees with the Table V node-action policy.
    #[test]
    fn every_table_vi_code_maps_to_a_policy_action() {
        for &(code, _) in TABLE_VI_XID_COUNTS {
            let x = Xid(code);
            assert!(x.category().is_some(), "Xid {code} unclassified");
            let action = action_for(FailureKind::GpuXid(x), 3);
            let lethal = matches!(
                action,
                FaultAction::KillRank { .. } | FaultAction::CorruptData { .. }
            );
            assert_eq!(
                lethal,
                x.needs_node_action(),
                "Xid {code}: action {action:?} disagrees with needs_node_action"
            );
        }
    }

    #[test]
    fn policy_special_cases() {
        // Uncontained ECC is the silent-corruption pathway.
        assert_eq!(
            action_for(FailureKind::GpuXid(Xid(95)), 1),
            FaultAction::CorruptData { rank: 1 }
        );
        // Contained ECC still kills the rank (GPU reset ⇒ node leaves pool).
        assert_eq!(
            action_for(FailureKind::GpuXid(Xid(94)), 1),
            FaultAction::KillRank { rank: 1 }
        );
        // NVLink and software errors are tolerated in-band.
        assert_eq!(
            action_for(FailureKind::GpuXid(Xid(74)), 0),
            FaultAction::Tolerate { rank: 0 }
        );
        assert_eq!(
            action_for(FailureKind::MainMemoryEcc, 2),
            FaultAction::KillRank { rank: 2 }
        );
        match action_for(FailureKind::NetworkFlashCut, 4) {
            FaultAction::DegradeLink { rank, factor } => {
                assert_eq!(rank, 4);
                assert!(factor > 0.0 && factor < 1.0);
            }
            other => panic!("flash cut mapped to {other:?}"),
        }
        // Storage-target death lands on the storage pool, not a rank.
        assert_eq!(
            action_for(FailureKind::StorageTargetFailure, 3),
            FaultAction::KillStorageTarget { target: 3 }
        );
    }

    #[test]
    fn storage_failures_are_opt_in() {
        // The calibrated stream must be byte-identical with and without
        // the storage process switched on elsewhere — i.e. the default
        // generator never emits storage faults.
        let plan = FaultPlan::generate(21, 64, 30.0 * 86_400.0, 50.0);
        assert!(plan
            .faults
            .iter()
            .all(|f| !matches!(f.action, FaultAction::KillStorageTarget { .. })));
        // Opting in produces them.
        let mut gen = crate::generator::FailureGenerator::paper_calibrated(21, 64);
        gen.with_storage_failures(5000.0);
        let events = gen.generate(30.0 * 86_400.0);
        let plan = FaultPlan::from_events(&events, 64);
        assert!(plan
            .faults
            .iter()
            .any(|f| matches!(f.action, FaultAction::KillStorageTarget { .. })));
    }

    #[test]
    fn generated_plans_are_ordered_deterministic_and_in_range() {
        let ranks = 16;
        let a = FaultPlan::generate(9, ranks, 30.0 * 86_400.0, 50.0);
        let b = FaultPlan::generate(9, ranks, 30.0 * 86_400.0, 50.0);
        assert_eq!(a.faults, b.faults, "same seed, same plan");
        assert!(!a.is_empty(), "50× rates for a month must produce faults");
        for w in a.faults.windows(2) {
            assert!(w[0].at_s <= w[1].at_s);
        }
        for f in &a.faults {
            assert!(f.action.rank() < ranks);
            assert!(f.at_s < 30.0 * 86_400.0);
        }
        // A year of a large cluster contains every action flavour.
        let big = FaultPlan::generate(7, 1250, 365.0 * 86_400.0, 1.0);
        assert!(big.kills().next().is_some());
        assert!(big
            .faults
            .iter()
            .any(|f| matches!(f.action, FaultAction::DegradeLink { .. })));
        assert!(big
            .faults
            .iter()
            .any(|f| matches!(f.action, FaultAction::CorruptData { .. })));
        assert!(big
            .faults
            .iter()
            .any(|f| matches!(f.action, FaultAction::Tolerate { .. })));
    }

    #[test]
    fn window_selects_half_open_interval() {
        let events = vec![
            FailureEvent {
                at_s: 1.0,
                node: 0,
                kind: FailureKind::MainMemoryEcc,
            },
            FailureEvent {
                at_s: 5.0,
                node: 1,
                kind: FailureKind::NetworkFlashCut,
            },
            FailureEvent {
                at_s: 9.0,
                node: 2,
                kind: FailureKind::MainMemoryEcc,
            },
        ];
        let plan = FaultPlan::from_events(&events, 4);
        let hit: Vec<f64> = plan.window(1.0, 9.0).map(|f| f.at_s).collect();
        assert_eq!(hit, vec![1.0, 5.0]);
        assert_eq!(plan.first_kill().unwrap().at_s, 1.0);
        assert_eq!(plan.len(), 3);
    }
}
