//! Properties of `FaultPlan::generate` rate scaling — the knob the
//! Monte-Carlo fleet sweeper turns as its failure-multiplier axis.
//!
//! The generator samples per-kind Poisson processes by inverse-CDF
//! inter-arrival draws, so scaling every rate by `s` compresses the same
//! uniform stream: the expected event count over a fixed horizon must
//! grow ~linearly in `s`, and `s = 0` must switch sampling off entirely
//! instead of degenerating (infinite gaps, NaN times, or a panic).

use ff_failures::{FailureGenerator, FaultPlan};

const MONTH_S: f64 = 30.0 * 86_400.0;

#[test]
fn zero_rate_scale_yields_an_empty_plan() {
    for seed in [0u64, 1, 7, 0xDEAD] {
        let plan = FaultPlan::generate(seed, 1250, 365.0 * 86_400.0, 0.0);
        assert!(
            plan.is_empty(),
            "seed {seed}: zero-scale plan has {} faults",
            plan.len()
        );
        assert_eq!(plan.first_kill(), None);
    }
    // The generator path agrees (and storage processes scale off too).
    let mut gen = FailureGenerator::paper_calibrated(3, 64);
    gen.with_storage_failures(5000.0);
    gen.scale_rates(0.0);
    assert!(gen.generate(365.0 * 86_400.0).is_empty());
}

#[test]
fn zero_scale_is_deterministically_cheap() {
    // A zero-scale generate over an absurd horizon must return instantly
    // (no per-event loop), which is what the fleet's baseline cells rely
    // on: this would hang before returning wrongly if sampling degenerated.
    let plan = FaultPlan::generate(11, 1250, 1e15, 0.0);
    assert!(plan.is_empty());
}

/// Expected event count scales ~linearly with `rate_scale`: for each
/// doubling chain 1× → 2× → 4× → 8×, the per-seed count ratio stays in a
/// generous Poisson band, and the ratio averaged over seeds lands tight.
#[test]
fn event_count_scales_linearly_with_rate_scale() {
    let scales = [2.0, 4.0, 8.0];
    let seeds: Vec<u64> = (0..8).map(|i| 1000 + 17 * i).collect();
    for &scale in &scales {
        let mut ratio_sum = 0.0;
        for &seed in &seeds {
            let base = FaultPlan::generate(seed, 1250, MONTH_S, 1.0).len() as f64;
            let scaled = FaultPlan::generate(seed, 1250, MONTH_S, scale).len() as f64;
            assert!(base > 0.0, "a month at paper rates must produce events");
            let ratio = scaled / base;
            // Per-seed Poisson noise: σ/μ ≈ 1/√n with n ≈ 1,000 events per
            // month at 1×, so ±20% is an extremely safe band.
            assert!(
                (ratio / scale - 1.0).abs() < 0.2,
                "seed {seed}: {scale}x produced {scaled} vs base {base} (ratio {ratio:.2})"
            );
            ratio_sum += ratio;
        }
        let mean_ratio = ratio_sum / seeds.len() as f64;
        assert!(
            (mean_ratio / scale - 1.0).abs() < 0.1,
            "mean ratio {mean_ratio:.3} for scale {scale} outside the 10% band"
        );
    }
}

/// Scaling compresses the same underlying stream: a scaled plan is still
/// time-ordered, in-horizon, deterministic for its seed, and strictly
/// larger than its unscaled sibling over the same horizon.
#[test]
fn scaled_plans_are_ordered_deterministic_and_denser() {
    let a = FaultPlan::generate(42, 256, MONTH_S, 25.0);
    let b = FaultPlan::generate(42, 256, MONTH_S, 25.0);
    assert_eq!(a.faults, b.faults, "same (seed, scale) diverged");
    for w in a.faults.windows(2) {
        assert!(w[0].at_s <= w[1].at_s, "scaled plan lost time order");
    }
    assert!(a.faults.iter().all(|f| f.at_s >= 0.0 && f.at_s < MONTH_S));
    let sparse = FaultPlan::generate(42, 256, MONTH_S, 1.0);
    assert!(
        a.len() > sparse.len(),
        "25x ({}) not denser than 1x ({})",
        a.len(),
        sparse.len()
    );
}

/// Fractional scales thin rather than amplify (the "better hardware
/// batch" direction the paper's Table V discussion implies).
#[test]
fn fractional_scale_thins_the_stream() {
    let full = FaultPlan::generate(9, 1250, MONTH_S, 1.0).len() as f64;
    let tenth = FaultPlan::generate(9, 1250, MONTH_S, 0.1).len() as f64;
    assert!(tenth > 0.0, "0.1x over a month should still see events");
    assert!(
        (tenth / full - 0.1).abs() < 0.05,
        "0.1x kept {tenth} of {full} events"
    );
}
