//! The Dragonfly alternative the paper rejected (§III-B).
//!
//! "Although the Dragonfly topology also offers comparable
//! cost-effectiveness and performance, its lack of sufficient bisection
//! bandwidth makes it unsuitable for our integrated storage and
//! computation network design." This module quantifies that trade-off:
//! switch counts and bisection bandwidth of a canonical dragonfly versus
//! the two-layer fat-tree at equal endpoint counts.

use crate::fattree::FatTreeSpec;

/// A canonical dragonfly: groups of `a` routers, each with `p` terminal
/// ports and `h` global links; groups fully connected internally, one
/// global link between every pair of groups (balanced: `g = a·h + 1`).
#[derive(Debug, Clone, Copy)]
pub struct DragonflySpec {
    /// Routers per group.
    pub a: usize,
    /// Terminals (hosts) per router.
    pub p: usize,
    /// Global links per router.
    pub h: usize,
    /// Link capacity per direction, bytes/second.
    pub link_bps: f64,
}

impl DragonflySpec {
    /// The balanced dragonfly with `a = 2p = 2h` built from `radix`-port
    /// routers (`radix = p + h + a − 1`).
    pub fn balanced(radix: usize, link_bps: f64) -> Self {
        // radix = p + h + (a-1) with a = 2p, h = p  ⇒ radix = 4p - 1.
        let p = (radix + 1) / 4;
        DragonflySpec {
            a: 2 * p,
            p,
            h: p,
            link_bps,
        }
    }

    /// Number of groups in the balanced configuration.
    pub fn groups(&self) -> usize {
        self.a * self.h + 1
    }

    /// Total hosts.
    pub fn hosts(&self) -> usize {
        self.groups() * self.a * self.p
    }

    /// Total routers (switches).
    pub fn switches(&self) -> usize {
        self.groups() * self.a
    }

    /// Bisection bandwidth as a fraction of the injection bandwidth:
    /// cutting the network in half severs about half the global links;
    /// with `g·a·h/2` directed global links for `g·a·p` hosts the ratio is
    /// `h / (2p)` — one half of full bisection in the balanced design.
    pub fn bisection_fraction(&self) -> f64 {
        self.h as f64 / (2.0 * self.p as f64)
    }
}

/// The two-layer fat-tree's bisection fraction (1.0 when non-blocking).
pub fn fat_tree_bisection_fraction(spec: &FatTreeSpec) -> f64 {
    (spec.leaf_up() as f64 / spec.leaf_down as f64).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_dragonfly_shape() {
        let d = DragonflySpec::balanced(39, 25e9);
        assert_eq!(d.p, 10);
        assert_eq!(d.a, 20);
        assert_eq!(d.h, 10);
        assert_eq!(d.groups(), 201);
        assert_eq!(d.hosts(), 201 * 200);
    }

    #[test]
    fn dragonfly_needs_fewer_switches_per_host_at_scale() {
        // The cost-effectiveness the paper concedes: at a scale that
        // forces the fat-tree into three layers, the dragonfly (which
        // never needs one) uses fewer switches per host.
        let d = DragonflySpec::balanced(39, 25e9);
        let df_hosts_per_switch = d.hosts() as f64 / d.switches() as f64;
        let (l, s, c) = crate::fattree::three_layer_counts(&crate::fattree::ThreeLayerSpec {
            radix: 40,
            endpoints: d.hosts(),
        });
        let ft_hosts_per_switch = d.hosts() as f64 / (l + s + c) as f64;
        assert!(
            df_hosts_per_switch > ft_hosts_per_switch,
            "dragonfly {df_hosts_per_switch} vs three-layer fat-tree {ft_hosts_per_switch}"
        );
    }

    #[test]
    fn dragonfly_lacks_bisection_bandwidth() {
        // The reason the paper rejected it: storage + compute traffic
        // needs full bisection; the balanced dragonfly offers half.
        let d = DragonflySpec::balanced(39, 25e9);
        assert!((d.bisection_fraction() - 0.5).abs() < 1e-9);
        let ft = FatTreeSpec::paper_zone();
        assert!((fat_tree_bisection_fraction(&ft) - 1.0).abs() < 1e-9);
    }
}
