//! Route selection policies.
//!
//! The paper (§VI-A2) observed that *adaptive routing spreads incast
//! congestion* across the fabric and therefore chose *static routing* with
//! nodes spread evenly across leaves. All three policies are implemented so
//! the ablation benchmark can reproduce that comparison:
//!
//! * [`RoutePolicy::StaticByDestination`] — deterministic per-destination
//!   path choice (like IB subnet-manager LID routing / destination-mod-k).
//! * [`RoutePolicy::Ecmp`] — per-flow hash over equal-cost paths.
//! * [`RoutePolicy::Adaptive`] — pick the candidate path whose most-loaded
//!   link is least loaded at flow start (greedy adaptive routing).

use crate::graph::{LinkId, NodeId, Topology};

/// Maximum equal-cost candidates enumerated per pair.
const MAX_CANDIDATES: usize = 64;

/// How a router picks among equal-cost shortest paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Deterministic function of the destination only (static routing).
    StaticByDestination,
    /// Deterministic hash of `(src, dst, flow_key)` (ECMP).
    Ecmp,
    /// Least-loaded candidate at selection time (adaptive routing).
    Adaptive,
}

/// A router bound to a topology.
pub struct Router<'a> {
    topo: &'a Topology,
    policy: RoutePolicy,
}

impl<'a> Router<'a> {
    /// Create a router using `policy`.
    pub fn new(topo: &'a Topology, policy: RoutePolicy) -> Self {
        Router { topo, policy }
    }

    /// The routing policy in use.
    pub fn policy(&self) -> RoutePolicy {
        self.policy
    }

    /// Choose a path from `src` to `dst`.
    ///
    /// * `flow_key` differentiates flows for ECMP hashing.
    /// * `load` reports current load on a link (any units, higher = more
    ///   loaded); only consulted by [`RoutePolicy::Adaptive`].
    ///
    /// Returns the chosen link sequence (empty when `src == dst`).
    /// Panics if the nodes are disconnected.
    pub fn route(
        &self,
        src: NodeId,
        dst: NodeId,
        flow_key: u64,
        load: &dyn Fn(LinkId) -> f64,
    ) -> Vec<LinkId> {
        let candidates = self.topo.shortest_paths(src, dst, MAX_CANDIDATES);
        assert!(
            !candidates.is_empty(),
            "no path from {:?} to {:?}",
            src,
            dst
        );
        let idx = match self.policy {
            // Destination-mod-k: destinations round-robin the equal-cost
            // paths, the spread IB subnet managers produce and the paper's
            // "evenly disperse traffic into leaf→spine links" depends on
            // (§VI-A2). Like sequential-per-leaf LID assignment, the
            // selector is the destination's index among its own leaf's
            // hosts, so the hosts of one leaf cover distinct spines.
            RoutePolicy::StaticByDestination => {
                let sel = if self.topo.kind(dst).is_host() {
                    let leaf = self.topo.access_switch(dst);
                    self.topo
                        .neighbors(leaf)
                        .iter()
                        .filter(|&&(n, _)| self.topo.kind(n).is_host())
                        .position(|&(n, _)| n == dst)
                        .unwrap_or(dst.0 as usize)
                } else {
                    dst.0 as usize
                };
                sel % candidates.len()
            }
            RoutePolicy::Ecmp => {
                let h = splitmix(
                    (src.0 as u64) ^ (dst.0 as u64).rotate_left(21) ^ flow_key.rotate_left(42),
                );
                h as usize % candidates.len()
            }
            RoutePolicy::Adaptive => {
                // Least max-link-load candidate; ties to the first.
                let mut best = 0usize;
                let mut best_load = f64::INFINITY;
                for (i, path) in candidates.iter().enumerate() {
                    let worst = path.iter().map(|&l| load(l)).fold(0.0f64, f64::max);
                    if worst < best_load {
                        best_load = worst;
                        best = i;
                    }
                }
                best
            }
        };
        candidates[idx].clone()
    }
}

/// SplitMix64: a tiny, deterministic, well-mixed integer hash.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fattree::{build_zone, FatTreeSpec};
    use crate::graph::NodeKind;
    use std::collections::HashMap;

    fn test_net() -> (Topology, Vec<NodeId>) {
        let mut topo = Topology::new();
        let spec = FatTreeSpec::small(4, 4, 4);
        let mut z = build_zone(&mut topo, &spec, 0);
        let hosts: Vec<NodeId> = (0..16)
            .map(|i| {
                let h = topo.add_node(NodeKind::ComputeHost, format!("h{i}"), Some(0));
                crate::fattree::attach_host(&mut topo, &mut z, h, 25e9);
                h
            })
            .collect();
        (topo, hosts)
    }

    #[test]
    fn static_routing_is_destination_deterministic() {
        let (topo, hosts) = test_net();
        let r = Router::new(&topo, RoutePolicy::StaticByDestination);
        let zero = |_: LinkId| 0.0;
        let p1 = r.route(hosts[0], hosts[15], 1, &zero);
        let p2 = r.route(hosts[0], hosts[15], 999, &zero);
        assert_eq!(p1, p2, "static route must ignore the flow key");
        // Same destination from a different source shares the spine choice
        // determinism (path differs but derived from dst only).
        let p3 = r.route(hosts[4], hosts[15], 7, &zero);
        assert_eq!(p1.last(), p3.last(), "last hop into dst is fixed");
    }

    #[test]
    fn ecmp_spreads_flows_over_spines() {
        let (topo, hosts) = test_net();
        let r = Router::new(&topo, RoutePolicy::Ecmp);
        let zero = |_: LinkId| 0.0;
        let mut seen = HashMap::new();
        for key in 0..64u64 {
            let p = r.route(hosts[0], hosts[15], key, &zero);
            *seen.entry(p[1]).or_insert(0) += 1; // leaf->spine link
        }
        assert!(seen.len() >= 3, "ECMP should use several spines: {seen:?}");
    }

    #[test]
    fn adaptive_avoids_loaded_links() {
        let (topo, hosts) = test_net();
        let r = Router::new(&topo, RoutePolicy::Adaptive);
        // First route with no load.
        let p0 = r.route(hosts[0], hosts[15], 0, &|_| 0.0);
        // Mark p0's *spine* links as loaded; adaptive must avoid them. The
        // first and last hops (host↔leaf) are shared by every candidate, so
        // loading those would not discriminate.
        let loaded: Vec<LinkId> = p0[1..p0.len() - 1].to_vec();
        let load = move |l: LinkId| {
            if loaded.contains(&l) {
                10.0
            } else {
                0.0
            }
        };
        let p1 = r.route(hosts[0], hosts[15], 0, &load);
        assert_ne!(p0[1], p1[1], "adaptive should move off the loaded spine");
    }

    #[test]
    fn intra_leaf_route_is_two_hops() {
        let (topo, hosts) = test_net();
        let r = Router::new(&topo, RoutePolicy::StaticByDestination);
        // Hosts 0..=3 share leaf 0 (even spread fills leaves round-robin;
        // find two hosts with the same access switch).
        let l0 = topo.access_switch(hosts[0]);
        let peer = hosts[1..]
            .iter()
            .copied()
            .find(|&h| topo.access_switch(h) == l0)
            .expect("a leaf-sharing peer exists");
        let p = r.route(hosts[0], peer, 0, &|_| 0.0);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn route_to_self_is_empty() {
        let (topo, hosts) = test_net();
        let r = Router::new(&topo, RoutePolicy::Ecmp);
        assert!(r.route(hosts[3], hosts[3], 0, &|_| 0.0).is_empty());
    }

    #[test]
    fn splitmix_mixes() {
        // Adjacent inputs give wildly different outputs.
        let a = splitmix(1);
        let b = splitmix(2);
        assert_ne!(a & 0xffff, b & 0xffff);
    }
}
