//! Typed topology graph.

use std::collections::VecDeque;

/// Identifies a node (host or switch) in a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Identifies a bidirectional link in a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

/// What a node is. Hosts terminate traffic; switches forward it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A GPU compute server (8×A100 + 1 NIC in Fire-Flyer 2).
    ComputeHost,
    /// A storage server (16 SSDs + 2 NICs).
    StorageHost,
    /// A management/scheduler node.
    ManagementHost,
    /// Access-layer switch.
    Leaf,
    /// Aggregation-layer switch.
    Spine,
    /// Core-layer switch (three-layer fat-trees only).
    Core,
}

impl NodeKind {
    /// True for traffic-terminating nodes.
    pub fn is_host(self) -> bool {
        matches!(
            self,
            NodeKind::ComputeHost | NodeKind::StorageHost | NodeKind::ManagementHost
        )
    }

    /// True for switches.
    pub fn is_switch(self) -> bool {
        !self.is_host()
    }
}

#[derive(Debug, Clone)]
struct Node {
    kind: NodeKind,
    name: String,
    zone: Option<u8>,
}

/// A bidirectional link between two nodes with a per-direction capacity.
#[derive(Debug, Clone)]
pub struct Link {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Capacity per direction, bytes/second.
    pub capacity: f64,
}

/// A topology: typed nodes plus bidirectional capacity-labelled links.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    adj: Vec<Vec<(NodeId, LinkId)>>,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node. `zone` tags which fat-tree zone it belongs to, if any.
    pub fn add_node(
        &mut self,
        kind: NodeKind,
        name: impl Into<String>,
        zone: Option<u8>,
    ) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("too many nodes"));
        self.nodes.push(Node {
            kind,
            name: name.into(),
            zone,
        });
        self.adj.push(Vec::new());
        id
    }

    /// Add a bidirectional link with per-direction `capacity` bytes/second.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, capacity: f64) -> LinkId {
        assert!(a != b, "self-link at {a:?}");
        assert!(capacity > 0.0, "link capacity must be positive");
        let id = LinkId(u32::try_from(self.links.len()).expect("too many links"));
        self.links.push(Link { a, b, capacity });
        self.adj[a.0 as usize].push((b, id));
        self.adj[b.0 as usize].push((a, id));
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// The kind of `n`.
    pub fn kind(&self, n: NodeId) -> NodeKind {
        self.nodes[n.0 as usize].kind
    }

    /// The name of `n`.
    pub fn name(&self, n: NodeId) -> &str {
        &self.nodes[n.0 as usize].name
    }

    /// The zone tag of `n`.
    pub fn zone(&self, n: NodeId) -> Option<u8> {
        self.nodes[n.0 as usize].zone
    }

    /// Link metadata.
    pub fn link(&self, l: LinkId) -> &Link {
        &self.links[l.0 as usize]
    }

    /// Neighbours of `n` with the connecting link.
    pub fn neighbors(&self, n: NodeId) -> &[(NodeId, LinkId)] {
        &self.adj[n.0 as usize]
    }

    /// All nodes of a given kind, in id order.
    pub fn nodes_of_kind(&self, kind: NodeKind) -> Vec<NodeId> {
        (0..self.nodes.len() as u32)
            .map(NodeId)
            .filter(|&n| self.kind(n) == kind)
            .collect()
    }

    /// All host nodes, in id order.
    pub fn hosts(&self) -> Vec<NodeId> {
        (0..self.nodes.len() as u32)
            .map(NodeId)
            .filter(|&n| self.kind(n).is_host())
            .collect()
    }

    /// All switch nodes, in id order.
    pub fn switches(&self) -> Vec<NodeId> {
        (0..self.nodes.len() as u32)
            .map(NodeId)
            .filter(|&n| self.kind(n).is_switch())
            .collect()
    }

    /// Hop distance from `src` to every node (`u32::MAX` if unreachable).
    pub fn bfs_distances(&self, src: NodeId) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.nodes.len()];
        dist[src.0 as usize] = 0;
        let mut q = VecDeque::from([src]);
        while let Some(u) = q.pop_front() {
            let du = dist[u.0 as usize];
            for &(v, _) in &self.adj[u.0 as usize] {
                if dist[v.0 as usize] == u32::MAX {
                    dist[v.0 as usize] = du + 1;
                    q.push_back(v);
                }
            }
        }
        dist
    }

    /// Enumerate up to `limit` distinct shortest paths (as link sequences)
    /// from `src` to `dst`, in deterministic order. Intermediate nodes must
    /// be switches — hosts never forward traffic.
    pub fn shortest_paths(&self, src: NodeId, dst: NodeId, limit: usize) -> Vec<Vec<LinkId>> {
        if src == dst {
            return vec![Vec::new()];
        }
        // BFS from dst over the "switches forward" graph so we can walk
        // decreasing distances from src.
        let mut dist = vec![u32::MAX; self.nodes.len()];
        dist[dst.0 as usize] = 0;
        let mut q = VecDeque::from([dst]);
        while let Some(u) = q.pop_front() {
            let du = dist[u.0 as usize];
            // Hosts terminate: do not expand through a host (except dst's
            // own adjacency, handled because we expand *from* dst).
            if u != dst && self.kind(u).is_host() {
                continue;
            }
            for &(v, _) in &self.adj[u.0 as usize] {
                if dist[v.0 as usize] == u32::MAX {
                    dist[v.0 as usize] = du + 1;
                    q.push_back(v);
                }
            }
        }
        if dist[src.0 as usize] == u32::MAX {
            return Vec::new();
        }
        // DFS along strictly-decreasing distances, deterministic adjacency
        // order, collecting up to `limit` paths.
        let mut out = Vec::new();
        let mut path = Vec::new();
        self.dfs_paths(src, dst, &dist, &mut path, &mut out, limit);
        out
    }

    fn dfs_paths(
        &self,
        u: NodeId,
        dst: NodeId,
        dist: &[u32],
        path: &mut Vec<LinkId>,
        out: &mut Vec<Vec<LinkId>>,
        limit: usize,
    ) {
        if out.len() >= limit {
            return;
        }
        if u == dst {
            out.push(path.clone());
            return;
        }
        let du = dist[u.0 as usize];
        for &(v, l) in &self.adj[u.0 as usize] {
            if dist[v.0 as usize] + 1 == du && (v == dst || self.kind(v).is_switch()) {
                path.push(l);
                self.dfs_paths(v, dst, dist, path, out, limit);
                path.pop();
                if out.len() >= limit {
                    return;
                }
            }
        }
    }

    /// The switch a host is attached to. Panics if the node is not a host
    /// or has no switch neighbour; returns the first if multi-homed.
    pub fn access_switch(&self, host: NodeId) -> NodeId {
        assert!(self.kind(host).is_host(), "{host:?} is not a host");
        self.adj[host.0 as usize]
            .iter()
            .map(|&(n, _)| n)
            .find(|&n| self.kind(n).is_switch())
            .expect("host has no switch uplink")
    }

    /// All access switches of a (possibly multi-homed) host.
    pub fn access_switches(&self, host: NodeId) -> Vec<NodeId> {
        assert!(self.kind(host).is_host(), "{host:?} is not a host");
        self.adj[host.0 as usize]
            .iter()
            .map(|&(n, _)| n)
            .filter(|&n| self.kind(n).is_switch())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// host0 - sw0 - sw1 - host1, plus a parallel switch sw2.
    fn diamond() -> (Topology, NodeId, NodeId) {
        let mut t = Topology::new();
        let h0 = t.add_node(NodeKind::ComputeHost, "h0", Some(0));
        let h1 = t.add_node(NodeKind::ComputeHost, "h1", Some(0));
        let s0 = t.add_node(NodeKind::Leaf, "s0", Some(0));
        let s1 = t.add_node(NodeKind::Leaf, "s1", Some(0));
        let s2 = t.add_node(NodeKind::Spine, "s2", Some(0));
        let s3 = t.add_node(NodeKind::Spine, "s3", Some(0));
        t.add_link(h0, s0, 25e9);
        t.add_link(h1, s1, 25e9);
        t.add_link(s0, s2, 25e9);
        t.add_link(s0, s3, 25e9);
        t.add_link(s2, s1, 25e9);
        t.add_link(s3, s1, 25e9);
        (t, h0, h1)
    }

    #[test]
    fn bfs_distances_basic() {
        let (t, h0, h1) = diamond();
        let d = t.bfs_distances(h0);
        assert_eq!(d[h0.0 as usize], 0);
        assert_eq!(d[h1.0 as usize], 4);
    }

    #[test]
    fn shortest_paths_enumerates_ecmp_candidates() {
        let (t, h0, h1) = diamond();
        let paths = t.shortest_paths(h0, h1, 10);
        assert_eq!(paths.len(), 2); // via s2 or s3
        for p in &paths {
            assert_eq!(p.len(), 4);
        }
        assert_ne!(paths[0], paths[1]);
    }

    #[test]
    fn shortest_paths_respects_limit() {
        let (t, h0, h1) = diamond();
        assert_eq!(t.shortest_paths(h0, h1, 1).len(), 1);
    }

    #[test]
    fn hosts_do_not_forward() {
        // h0 - s0 - h_mid - s1 - h1 should be unreachable through h_mid.
        let mut t = Topology::new();
        let h0 = t.add_node(NodeKind::ComputeHost, "h0", None);
        let hm = t.add_node(NodeKind::StorageHost, "hm", None);
        let h1 = t.add_node(NodeKind::ComputeHost, "h1", None);
        let s0 = t.add_node(NodeKind::Leaf, "s0", None);
        let s1 = t.add_node(NodeKind::Leaf, "s1", None);
        t.add_link(h0, s0, 1e9);
        t.add_link(s0, hm, 1e9);
        t.add_link(hm, s1, 1e9);
        t.add_link(s1, h1, 1e9);
        assert!(t.shortest_paths(h0, h1, 4).is_empty());
        // But hm itself is reachable.
        assert_eq!(t.shortest_paths(h0, hm, 4).len(), 1);
    }

    #[test]
    fn path_to_self_is_empty() {
        let (t, h0, _) = diamond();
        assert_eq!(t.shortest_paths(h0, h0, 4), vec![Vec::<LinkId>::new()]);
    }

    #[test]
    fn access_switch_and_multihoming() {
        let mut t = Topology::new();
        let h = t.add_node(NodeKind::StorageHost, "st0", None);
        let s0 = t.add_node(NodeKind::Leaf, "l0", Some(0));
        let s1 = t.add_node(NodeKind::Leaf, "l1", Some(1));
        t.add_link(h, s0, 25e9);
        t.add_link(h, s1, 25e9);
        assert_eq!(t.access_switch(h), s0);
        assert_eq!(t.access_switches(h), vec![s0, s1]);
    }

    #[test]
    fn kinds_partition() {
        let (t, _, _) = diamond();
        assert_eq!(t.hosts().len(), 2);
        assert_eq!(t.switches().len(), 4);
        assert_eq!(t.nodes_of_kind(NodeKind::Spine).len(), 2);
        assert!(NodeKind::ComputeHost.is_host());
        assert!(NodeKind::Core.is_switch());
    }

    #[test]
    #[should_panic(expected = "self-link")]
    fn self_link_rejected() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Leaf, "a", None);
        t.add_link(a, a, 1.0);
    }
}
