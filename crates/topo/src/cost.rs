//! The relative cost model behind Table III.
//!
//! Switch counts come from the topology builders; prices use a calibrated
//! per-switch relative unit (≈3.03, set so the DGX reference network costs
//! 4000 relative units) and a 5% frame-switch packaging discount for the
//! two-zone design (the paper notes the 800-port frame switch "further
//! reduced the cost of optical modules and cables", §III-C).

use crate::fattree::{three_layer_counts, FatTreeSpec, ThreeLayerSpec};

/// Relative price of one switch (calibrated: 1320 switches ≙ 4000 units).
pub const SWITCH_UNIT_PRICE: f64 = 4000.0 / 1320.0;
/// Packaging discount for frame-switch (two-zone) deployments.
pub const FRAME_SWITCH_DISCOUNT: f64 = 0.95;
/// Relative server cost of 1,250 PCIe A100 nodes (Table III).
pub const PCIE_SERVER_PRICE: f64 = 11_250.0;
/// Relative server cost of 1,250 DGX-A100 nodes (Table III).
pub const DGX_SERVER_PRICE: f64 = 19_000.0;

/// One row of the Table III comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchCost {
    /// Architecture label.
    pub name: &'static str,
    /// Total switch count.
    pub switches: usize,
    /// Relative network price.
    pub network_price: f64,
    /// Relative server price.
    pub server_price: f64,
}

impl ArchCost {
    /// Total relative price (network + servers).
    pub fn total(&self) -> f64 {
        self.network_price + self.server_price
    }
}

/// Switch count of the production two-zone network: two complete zones
/// plus dedicated inter-zone interconnect switches (the "limited number of
/// links" between zones, §III-B). 2×60 + 2 = 122, matching the paper.
pub fn two_zone_switches(zone: &FatTreeSpec, interconnect_switches: usize) -> usize {
    2 * zone.switch_count() + interconnect_switches
}

/// Cost row for the paper's two-zone PCIe architecture.
pub fn our_arch() -> ArchCost {
    let switches = two_zone_switches(&FatTreeSpec::paper_zone(), 2);
    ArchCost {
        name: "Our Arch (two-zone two-layer)",
        switches,
        network_price: round10(switches as f64 * SWITCH_UNIT_PRICE * FRAME_SWITCH_DISCOUNT),
        server_price: PCIE_SERVER_PRICE,
    }
}

/// Cost row for the hypothetical PCIe cluster on a three-layer fat-tree
/// with 1,600 access points (Table III middle column).
pub fn pcie_three_layer() -> ArchCost {
    let (l, s, c) = three_layer_counts(&ThreeLayerSpec {
        radix: 40,
        endpoints: 1600,
    });
    let switches = l + s + c;
    ArchCost {
        name: "PCIe Arch (three-layer)",
        switches,
        network_price: round10(switches as f64 * SWITCH_UNIT_PRICE),
        server_price: PCIE_SERVER_PRICE,
    }
}

/// Cost row for a DGX-A100 cluster: 10,000 access points on a three-layer
/// fat-tree. The paper provisions 320 core switches where the textbook
/// minimum is 250 (spares/overprovisioning); we take the paper's counts.
pub fn dgx_arch() -> ArchCost {
    let (l, s, c_min) = three_layer_counts(&ThreeLayerSpec {
        radix: 40,
        endpoints: 10_000,
    });
    let core = c_min.max(320); // provision to the paper's deployment
    let switches = l + s + core;
    ArchCost {
        name: "DGX Arch (three-layer)",
        switches,
        network_price: round10(switches as f64 * SWITCH_UNIT_PRICE),
        server_price: DGX_SERVER_PRICE,
    }
}

/// All three Table III rows.
pub fn table3() -> Vec<ArchCost> {
    vec![our_arch(), pcie_three_layer(), dgx_arch()]
}

fn round10(x: f64) -> f64 {
    (x / 10.0).round() * 10.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn our_arch_matches_table3() {
        let c = our_arch();
        assert_eq!(c.switches, 122);
        assert!(
            (c.network_price - 350.0).abs() <= 10.0,
            "{}",
            c.network_price
        );
        assert_eq!(c.server_price, 11_250.0);
        assert!((c.total() - 11_600.0).abs() <= 10.0);
    }

    #[test]
    fn pcie_three_layer_matches_table3() {
        let c = pcie_three_layer();
        assert_eq!(c.switches, 200);
        assert!(
            (c.network_price - 600.0).abs() <= 10.0,
            "{}",
            c.network_price
        );
        assert!((c.total() - 11_850.0).abs() <= 10.0);
    }

    #[test]
    fn dgx_matches_table3() {
        let c = dgx_arch();
        assert_eq!(c.switches, 1320);
        assert!(
            (c.network_price - 4000.0).abs() <= 10.0,
            "{}",
            c.network_price
        );
        assert!((c.total() - 23_000.0).abs() <= 10.0);
    }

    #[test]
    fn two_zone_saves_at_least_40pct_of_network_cost() {
        // "our design facilitates a saving of 40% in networking costs"
        // versus the same-size three-layer network (§III-C).
        let ours = our_arch().network_price;
        let three = pcie_three_layer().network_price;
        assert!(ours <= three * 0.6 + 1e-9, "{ours} vs {three}");
    }

    #[test]
    fn total_cost_halved_vs_dgx() {
        // "effectively halving construction costs" (§X).
        let ours = our_arch().total();
        let dgx = dgx_arch().total();
        assert!(ours < dgx * 0.52, "{ours} vs {dgx}");
    }
}
