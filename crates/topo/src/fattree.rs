//! Fat-tree builders.
//!
//! Fire-Flyer 2's network (§III-B) is two complete two-layer fat-trees
//! ("zones") of QM8700 40-port 200 Gbps switches — 20 spine + 40 leaf
//! switches per zone, 20 downlinks per leaf, 800 endpoints per zone —
//! joined by a limited number of inter-zone links between paired spines.
//! A generic three-layer builder supports the Table III cost comparison.

use crate::graph::{NodeId, NodeKind, Topology};

/// 200 Gbps InfiniBand in bytes/second.
pub const IB_200G: f64 = 25e9;

/// Parameters of one two-layer fat-tree zone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FatTreeSpec {
    /// Switch radix (ports per switch). QM8700 = 40.
    pub radix: usize,
    /// Downlinks per leaf (= endpoints per leaf). The rest go up.
    pub leaf_down: usize,
    /// Number of leaf switches.
    pub leaves: usize,
    /// Number of spine switches.
    pub spines: usize,
    /// Link capacity per direction, bytes/second.
    pub link_capacity: f64,
}

impl FatTreeSpec {
    /// The paper's zone: radix-40 switches, 20 spine + 40 leaf, 800 ports.
    pub fn paper_zone() -> Self {
        FatTreeSpec {
            radix: 40,
            leaf_down: 20,
            leaves: 40,
            spines: 20,
            link_capacity: IB_200G,
        }
    }

    /// A small zone for tests and laptop-scale experiments.
    pub fn small(leaves: usize, spines: usize, leaf_down: usize) -> Self {
        FatTreeSpec {
            radix: leaf_down + spines,
            leaf_down,
            leaves,
            spines,
            link_capacity: IB_200G,
        }
    }

    /// Endpoint capacity of the zone.
    pub fn endpoints(&self) -> usize {
        self.leaves * self.leaf_down
    }

    /// Uplinks per leaf. With `spines` spine switches each leaf spreads its
    /// uplinks evenly: `uplinks = radix - leaf_down` and every spine gets
    /// `uplinks / spines` parallel links (usually 1).
    pub fn leaf_up(&self) -> usize {
        self.radix - self.leaf_down
    }

    /// Validate port budgets: leaves need `leaf_down + leaf_up ≤ radix`;
    /// spines need `leaves × links_per_spine ≤ radix`.
    pub fn validate(&self) {
        assert!(self.leaf_down > 0 && self.leaves > 0 && self.spines > 0);
        assert!(
            self.leaf_down + self.leaf_up() <= self.radix,
            "leaf over port budget"
        );
        assert!(
            self.leaf_up().is_multiple_of(self.spines),
            "uplinks ({}) must spread evenly over spines ({})",
            self.leaf_up(),
            self.spines
        );
        let per_spine = self.leaf_up() / self.spines;
        assert!(
            self.leaves * per_spine <= self.radix,
            "spine over port budget: {} leaves × {} links > {} ports",
            self.leaves,
            per_spine,
            self.radix
        );
    }

    /// Is the zone non-blocking (bisection bandwidth ≥ endpoint bandwidth)?
    pub fn is_nonblocking(&self) -> bool {
        self.leaf_up() >= self.leaf_down
    }

    /// Switch count of one zone.
    pub fn switch_count(&self) -> usize {
        self.leaves + self.spines
    }
}

/// A built two-layer zone: the topology ids of its parts.
#[derive(Debug, Clone)]
pub struct ZoneIds {
    /// Leaf switches, in order.
    pub leaves: Vec<NodeId>,
    /// Spine switches, in order.
    pub spines: Vec<NodeId>,
    /// Free (unconnected) downlink slots per leaf, as `(leaf index, count)`.
    pub free_ports: Vec<(usize, usize)>,
}

/// Build one two-layer zone into `topo`, without hosts. Hosts are attached
/// afterwards with [`attach_host`].
pub fn build_zone(topo: &mut Topology, spec: &FatTreeSpec, zone: u8) -> ZoneIds {
    spec.validate();
    let leaves: Vec<NodeId> = (0..spec.leaves)
        .map(|i| topo.add_node(NodeKind::Leaf, format!("z{zone}-leaf{i}"), Some(zone)))
        .collect();
    let spines: Vec<NodeId> = (0..spec.spines)
        .map(|i| topo.add_node(NodeKind::Spine, format!("z{zone}-spine{i}"), Some(zone)))
        .collect();
    let per_spine = spec.leaf_up() / spec.spines;
    for &leaf in &leaves {
        for &spine in &spines {
            for _ in 0..per_spine {
                topo.add_link(leaf, spine, spec.link_capacity);
            }
        }
    }
    let free_ports = (0..spec.leaves).map(|i| (i, spec.leaf_down)).collect();
    ZoneIds {
        leaves,
        spines,
        free_ports,
    }
}

/// Attach a host to the next free leaf port in the zone (round-robin over
/// leaves so hosts spread evenly — the paper's placement of storage,
/// computation and management nodes "evenly" across leaves, §VI-A2).
/// Returns the leaf used. Panics when the zone is full.
pub fn attach_host(topo: &mut Topology, zone: &mut ZoneIds, host: NodeId, capacity: f64) -> NodeId {
    // Pick the leaf with the most free ports (ties -> lowest index) for an
    // even spread.
    let (slot, _) = zone
        .free_ports
        .iter()
        .enumerate()
        .max_by(|(ia, (_, fa)), (ib, (_, fb))| fa.cmp(fb).then(ib.cmp(ia)))
        .expect("zone has leaves");
    let (leaf_idx, free) = zone.free_ports[slot];
    assert!(free > 0, "fat-tree zone is full");
    zone.free_ports[slot] = (leaf_idx, free - 1);
    let leaf = zone.leaves[leaf_idx];
    topo.add_link(host, leaf, capacity);
    leaf
}

/// Parameters of the production two-zone network.
#[derive(Debug, Clone)]
pub struct TwoZoneSpec {
    /// Per-zone fat-tree parameters.
    pub zone: FatTreeSpec,
    /// Number of inter-zone links (paired spines across zones).
    pub interzone_links: usize,
    /// Compute hosts per zone.
    pub compute_per_zone: usize,
    /// Storage hosts (each dual-homed: one NIC in each zone).
    pub storage_hosts: usize,
}

impl TwoZoneSpec {
    /// The paper's deployment: ~1,250 compute nodes and ~180 storage nodes
    /// over two 800-port zones (storage dual-homed).
    pub fn paper() -> Self {
        TwoZoneSpec {
            zone: FatTreeSpec::paper_zone(),
            interzone_links: 20,
            compute_per_zone: 600,
            storage_hosts: 180,
        }
    }

    /// A scaled-down variant with the same shape (for simulation speed).
    pub fn scaled(compute_per_zone: usize, storage_hosts: usize) -> Self {
        let leaf_down = 8;
        let spines = 4;
        let need = compute_per_zone + storage_hosts + 1;
        let leaves = need.div_ceil(leaf_down).max(2);
        TwoZoneSpec {
            zone: FatTreeSpec {
                radix: leaf_down + spines,
                leaf_down,
                leaves,
                spines,
                link_capacity: IB_200G,
            },
            interzone_links: 2,
            compute_per_zone,
            storage_hosts,
        }
    }
}

/// The built two-zone network with host inventories.
#[derive(Debug, Clone)]
pub struct TwoZoneNetwork {
    /// The topology graph.
    pub topo: Topology,
    /// Per-zone switch ids.
    pub zones: [ZoneIds; 2],
    /// Compute hosts, zone 0 then zone 1.
    pub compute: Vec<NodeId>,
    /// Storage hosts (dual-homed).
    pub storage: Vec<NodeId>,
}

impl TwoZoneNetwork {
    /// Build the full network from a spec.
    pub fn build(spec: &TwoZoneSpec) -> Self {
        let mut topo = Topology::new();
        let mut z0 = build_zone(&mut topo, &spec.zone, 0);
        let mut z1 = build_zone(&mut topo, &spec.zone, 1);
        // Inter-zone links pair spines across zones, round-robin.
        assert!(spec.interzone_links <= spec.zone.spines * spec.zone.spines);
        for i in 0..spec.interzone_links {
            let a = z0.spines[i % z0.spines.len()];
            let b = z1.spines[i % z1.spines.len()];
            topo.add_link(a, b, spec.zone.link_capacity);
        }
        let mut compute = Vec::new();
        for z in 0..2u8 {
            for i in 0..spec.compute_per_zone {
                let h = topo.add_node(NodeKind::ComputeHost, format!("z{z}-gpu{i:04}"), Some(z));
                let zone = if z == 0 { &mut z0 } else { &mut z1 };
                attach_host(&mut topo, zone, h, spec.zone.link_capacity);
                compute.push(h);
            }
        }
        let mut storage = Vec::new();
        for i in 0..spec.storage_hosts {
            // Dual-homed: no zone tag on the host itself.
            let h = topo.add_node(NodeKind::StorageHost, format!("stor{i:03}"), None);
            attach_host(&mut topo, &mut z0, h, spec.zone.link_capacity);
            attach_host(&mut topo, &mut z1, h, spec.zone.link_capacity);
            storage.push(h);
        }
        TwoZoneNetwork {
            topo,
            zones: [z0, z1],
            compute,
            storage,
        }
    }

    /// Compute hosts in `zone`.
    pub fn compute_in_zone(&self, zone: u8) -> Vec<NodeId> {
        self.compute
            .iter()
            .copied()
            .filter(|&h| self.topo.zone(h) == Some(zone))
            .collect()
    }
}

/// Parameters of a generic three-layer fat-tree (for cost comparison).
#[derive(Debug, Clone, Copy)]
pub struct ThreeLayerSpec {
    /// Switch radix.
    pub radix: usize,
    /// Total endpoints required.
    pub endpoints: usize,
}

/// Switch counts for a three-layer fat-tree built from `radix`-port
/// switches: pods of (radix/2 leaves + radix/2 spines) serving
/// `(radix/2)²` endpoints each, with core switches matching the spine
/// uplink count. Returns `(leaf, spine, core)`.
pub fn three_layer_counts(spec: &ThreeLayerSpec) -> (usize, usize, usize) {
    let half = spec.radix / 2;
    let leaves = spec.endpoints.div_ceil(half);
    // Spines pair leaves one-to-one within pods (full bisection).
    let spines = leaves;
    // Every spine has `half` uplinks; a core switch terminates `radix` of
    // them.
    let core = (spines * half).div_ceil(spec.radix);
    (leaves, spines, core)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_zone_has_800_ports_and_60_switches() {
        let z = FatTreeSpec::paper_zone();
        z.validate();
        assert_eq!(z.endpoints(), 800);
        assert_eq!(z.switch_count(), 60);
        assert!(z.is_nonblocking());
        assert_eq!(z.leaf_up(), 20);
    }

    #[test]
    fn built_zone_is_fully_connected() {
        let mut topo = Topology::new();
        let spec = FatTreeSpec::small(4, 2, 4);
        let z = build_zone(&mut topo, &spec, 0);
        assert_eq!(z.leaves.len(), 4);
        assert_eq!(z.spines.len(), 2);
        // Each leaf links to each spine once (leaf_up=2, spines=2).
        assert_eq!(topo.link_count(), 4 * 2);
        // Any leaf can reach any other in 2 hops via a spine.
        let d = topo.bfs_distances(z.leaves[0]);
        assert_eq!(d[z.leaves[3].0 as usize], 2);
    }

    #[test]
    fn attach_spreads_hosts_evenly() {
        let mut topo = Topology::new();
        let spec = FatTreeSpec::small(3, 1, 2);
        let mut z = build_zone(&mut topo, &spec, 0);
        let mut used = Vec::new();
        for i in 0..6 {
            let h = topo.add_node(NodeKind::ComputeHost, format!("h{i}"), Some(0));
            used.push(attach_host(&mut topo, &mut z, h, 1e9));
        }
        // 6 hosts over 3 leaves of 2 ports -> 2 per leaf.
        for leaf in &z.leaves {
            assert_eq!(used.iter().filter(|&&l| l == *leaf).count(), 2);
        }
    }

    #[test]
    #[should_panic(expected = "zone is full")]
    fn attach_panics_when_full() {
        let mut topo = Topology::new();
        let spec = FatTreeSpec::small(1, 1, 1);
        let mut z = build_zone(&mut topo, &spec, 0);
        for i in 0..2 {
            let h = topo.add_node(NodeKind::ComputeHost, format!("h{i}"), Some(0));
            attach_host(&mut topo, &mut z, h, 1e9);
        }
    }

    #[test]
    fn two_zone_network_shape() {
        let spec = TwoZoneSpec::scaled(8, 3);
        let net = TwoZoneNetwork::build(&spec);
        assert_eq!(net.compute.len(), 16);
        assert_eq!(net.storage.len(), 3);
        assert_eq!(net.compute_in_zone(0).len(), 8);
        assert_eq!(net.compute_in_zone(1).len(), 8);
        // Storage hosts are dual-homed.
        for &s in &net.storage {
            assert_eq!(net.topo.access_switches(s).len(), 2);
        }
        // Cross-zone compute hosts can reach each other (via interzone).
        let a = net.compute_in_zone(0)[0];
        let b = net.compute_in_zone(1)[0];
        assert!(!net.topo.shortest_paths(a, b, 1).is_empty());
    }

    #[test]
    fn cross_zone_path_goes_through_interzone_spines() {
        let spec = TwoZoneSpec::scaled(4, 1);
        let net = TwoZoneNetwork::build(&spec);
        let a = net.compute_in_zone(0)[0];
        let b = net.compute_in_zone(1)[0];
        let paths = net.topo.shortest_paths(a, b, 4);
        // host→leaf→spine →(interzone)→ spine→leaf→host = 5 links.
        assert_eq!(paths[0].len(), 5);
    }

    #[test]
    fn paper_two_zone_builds() {
        let net = TwoZoneNetwork::build(&TwoZoneSpec::paper());
        // 2×(40+20) switches.
        assert_eq!(net.topo.switches().len(), 120);
        // 1200 compute + 180 storage hosts.
        assert_eq!(net.topo.hosts().len(), 1380);
        // Port budget per zone: 600 compute + 180 storage + free ≤ 800.
        assert_eq!(net.compute_in_zone(0).len(), 600);
    }

    #[test]
    fn three_layer_counts_match_known_configs() {
        // 1,600 endpoints from 40-port switches: paper says 40 core and
        // 160 spine+leaf (Table III).
        let (l, s, c) = three_layer_counts(&ThreeLayerSpec {
            radix: 40,
            endpoints: 1600,
        });
        assert_eq!(l + s, 160);
        assert_eq!(c, 40);
        // 10,000 endpoints: paper says 500 leaf, 500 spine (320 core incl.
        // overprovisioning; the textbook minimum is 250).
        let (l, s, c) = three_layer_counts(&ThreeLayerSpec {
            radix: 40,
            endpoints: 10_000,
        });
        assert_eq!(l, 500);
        assert_eq!(s, 500);
        assert!((250..=320).contains(&c));
    }
}
