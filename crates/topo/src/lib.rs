//! # ff-topo — network topology, routing, and collective trees
//!
//! Reproduces the structural side of the paper:
//!
//! * [`graph`] — a typed topology graph (hosts, leaf/spine/core switches,
//!   bidirectional links) with shortest-path machinery.
//! * [`fattree`] — builders for the paper's networks: a single two-layer
//!   fat-tree zone (§III-B: QM8700 40-port switches, 20 spine + 40 leaf =
//!   800 endpoints), the production **two-zone** topology with limited
//!   inter-zone links, and a generic three-layer fat-tree for the cost
//!   comparison.
//! * [`routing`] — static (destination-hashed, the paper's choice, §VI-A2),
//!   ECMP, and adaptive route selection over up/down paths.
//! * [`cost`] — the switch-count and relative-price model behind Table III.
//! * [`dbtree`] — double binary trees (Sanders et al.), the inter-node
//!   allreduce structure shared by HFReduce and NCCL (§IV-A).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod dbtree;
pub mod dragonfly;
pub mod fattree;
pub mod graph;
pub mod multiplane;
pub mod routing;

pub use dbtree::{DoubleBinaryTree, Tree};
pub use fattree::{FatTreeSpec, ThreeLayerSpec, TwoZoneSpec};
pub use graph::{LinkId, NodeId, NodeKind, Topology};
pub use routing::{RoutePolicy, Router};
