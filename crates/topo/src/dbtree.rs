//! Double binary trees (Sanders, Speck & Träff), the inter-node allreduce
//! structure used by both HFReduce and NCCL (§IV-A).
//!
//! The allreduce sends half of the data up/down each of two binary trees
//! built over the same ranks. The trees are constructed so that **every
//! rank is an interior node in at most one tree**: a rank's full send/recv
//! bandwidth is therefore never needed by both trees at once, giving full
//! bandwidth utilization — the property the original paper proves.
//!
//! Construction: tree A is the "in-order" binary tree over ranks `0..n`
//! (interior nodes sit at odd offsets). Tree B relabels tree A by mirroring
//! (`r ↦ n−1−r`, when `n` is even) or shifting (`r ↦ (r+1) mod n`, when `n`
//! is odd); either way A's interior ranks become B's leaves.

/// One rooted tree over ranks `0..n`.
#[derive(Debug, Clone)]
pub struct Tree {
    /// `parent[r]` is `None` for the root.
    pub parent: Vec<Option<usize>>,
    /// Children of each rank (0, 1 or 2 of them).
    pub children: Vec<Vec<usize>>,
    /// The root rank.
    pub root: usize,
}

impl Tree {
    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// True if `r` has children.
    pub fn is_interior(&self, r: usize) -> bool {
        !self.children[r].is_empty()
    }

    /// Height: the longest root-to-leaf path, in edges.
    pub fn height(&self) -> usize {
        fn depth(t: &Tree, r: usize) -> usize {
            t.children[r]
                .iter()
                .map(|&c| 1 + depth(t, c))
                .max()
                .unwrap_or(0)
        }
        depth(self, self.root)
    }

    /// Ranks in post-order (children before parents) — the reduce schedule.
    pub fn post_order(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.len());
        fn walk(t: &Tree, r: usize, out: &mut Vec<usize>) {
            for &c in &t.children[r] {
                walk(t, c, out);
            }
            out.push(r);
        }
        walk(self, self.root, &mut out);
        out
    }

    /// Build the in-order binary tree over `0..n`: the rank sequence is the
    /// in-order traversal, interior nodes sit at odd ranks, rank ranges
    /// split at power-of-two boundaries (the classic MPI/NCCL shape).
    fn inorder(n: usize) -> Tree {
        assert!(n >= 1);
        let mut parent = vec![None; n];
        let mut children = vec![Vec::new(); n];
        // Recursive split: the root of [lo, hi) is lo + p - 1 where p is
        // the largest power of two ≤ (hi - lo).
        fn build(
            lo: usize,
            hi: usize,
            par: Option<usize>,
            parent: &mut [Option<usize>],
            children: &mut [Vec<usize>],
        ) -> usize {
            let size = hi - lo;
            debug_assert!(size >= 1);
            if size == 1 {
                parent[lo] = par;
                return lo;
            }
            let mut p = 1usize;
            while p * 2 <= size {
                p *= 2;
            }
            let root = lo + p - 1;
            parent[root] = par;
            if root > lo {
                let c = build(lo, root, Some(root), parent, children);
                children[root].push(c);
            }
            if root + 1 < hi {
                let c = build(root + 1, hi, Some(root), parent, children);
                children[root].push(c);
            }
            root
        }
        let root = build(0, n, None, &mut parent, &mut children);
        Tree {
            parent,
            children,
            root,
        }
    }

    /// Relabel every rank through `f` (a bijection on `0..n`).
    fn relabel(&self, f: impl Fn(usize) -> usize) -> Tree {
        let n = self.len();
        let mut parent = vec![None; n];
        let mut children = vec![Vec::new(); n];
        for r in 0..n {
            let fr = f(r);
            parent[fr] = self.parent[r].map(&f);
            children[fr] = self.children[r].iter().map(|&c| f(c)).collect();
        }
        Tree {
            parent,
            children,
            root: f(self.root),
        }
    }
}

/// The pair of trees driving a double-binary-tree allreduce.
#[derive(Debug, Clone)]
pub struct DoubleBinaryTree {
    /// First tree (carries the even half of the data).
    pub a: Tree,
    /// Second tree (carries the odd half).
    pub b: Tree,
}

impl DoubleBinaryTree {
    /// Build the double tree over `n` ranks (`n ≥ 1`).
    pub fn new(n: usize) -> Self {
        let a = Tree::inorder(n);
        let b = if n.is_multiple_of(2) {
            a.relabel(|r| n - 1 - r)
        } else {
            a.relabel(|r| (r + 1) % n)
        };
        DoubleBinaryTree { a, b }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.a.len()
    }

    /// True when empty (never: `new` requires `n ≥ 1`).
    pub fn is_empty(&self) -> bool {
        self.a.is_empty()
    }

    /// The defining property: no rank is interior in both trees.
    pub fn interior_disjoint(&self) -> bool {
        (0..self.len()).all(|r| !(self.a.is_interior(r) && self.b.is_interior(r)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn assert_valid_tree(t: &Tree) {
        let n = t.len();
        // Exactly one root.
        assert_eq!(t.parent.iter().filter(|p| p.is_none()).count(), 1);
        assert!(t.parent[t.root].is_none());
        // parent/children agree.
        for r in 0..n {
            for &c in &t.children[r] {
                assert_eq!(t.parent[c], Some(r));
            }
            assert!(t.children[r].len() <= 2, "rank {r} has >2 children");
        }
        // Connected: walking up from every rank reaches the root.
        for mut r in 0..n {
            let mut hops = 0;
            while let Some(p) = t.parent[r] {
                r = p;
                hops += 1;
                assert!(hops <= n, "cycle detected");
            }
            assert_eq!(r, t.root);
        }
        // Post-order covers all ranks once.
        let po = t.post_order();
        assert_eq!(po.len(), n);
        assert_eq!(po.iter().copied().collect::<HashSet<_>>().len(), n);
    }

    #[test]
    fn trees_are_valid_for_all_small_sizes() {
        for n in 1..=130 {
            let dt = DoubleBinaryTree::new(n);
            assert_valid_tree(&dt.a);
            assert_valid_tree(&dt.b);
        }
    }

    #[test]
    fn interior_sets_are_disjoint() {
        for n in 1..=130 {
            let dt = DoubleBinaryTree::new(n);
            assert!(dt.interior_disjoint(), "interior overlap at n={n}");
        }
    }

    #[test]
    fn height_is_logarithmic() {
        for n in [4usize, 16, 64, 128, 1024] {
            let dt = DoubleBinaryTree::new(n);
            let bound = 2 * (usize::BITS - n.leading_zeros()) as usize;
            assert!(
                dt.a.height() <= bound,
                "height {} exceeds 2·log2({n})",
                dt.a.height()
            );
        }
    }

    #[test]
    fn in_order_structure_known_small_cases() {
        // n=4: ranks 0..4, root = 3 (p=4), chain 3 -> 1 -> {0, 2}.
        let t = Tree::inorder(4);
        assert_eq!(t.root, 3);
        assert_eq!(t.children[3], vec![1]);
        assert_eq!(t.children[1], vec![0, 2]);
        assert!(t.is_interior(1) && t.is_interior(3));
        assert!(!t.is_interior(0) && !t.is_interior(2));
    }

    #[test]
    fn interior_ranks_are_odd_in_tree_a() {
        for n in 2..=64 {
            let t = Tree::inorder(n);
            for r in 0..n {
                if t.is_interior(r) {
                    assert_eq!(r % 2, 1, "interior rank {r} is even (n={n})");
                }
            }
        }
    }

    #[test]
    fn single_rank_tree() {
        let dt = DoubleBinaryTree::new(1);
        assert_eq!(dt.a.root, 0);
        assert!(dt.a.children[0].is_empty());
        assert!(dt.interior_disjoint());
    }

    #[test]
    fn post_order_children_before_parents() {
        let t = Tree::inorder(13);
        let pos: Vec<usize> = {
            let po = t.post_order();
            let mut pos = vec![0; 13];
            for (i, &r) in po.iter().enumerate() {
                pos[r] = i;
            }
            pos
        };
        for r in 0..13 {
            for &c in &t.children[r] {
                assert!(pos[c] < pos[r]);
            }
        }
    }
}
