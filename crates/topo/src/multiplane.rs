//! The next-generation architecture of §IX: multi-plane two-layer
//! fat-trees for MoE training.
//!
//! "The next-gen nodes feature a 1:1 GPU to NIC ratio ... We are
//! considering implementing a multi-plane network to reduce costs while
//! maintaining performance. ... With a 128-port 400 Gbps RoCE switch, a
//! 4-Plane Two-Layer Fat-Trees network can support up to 32,768 GPUs."
//!
//! In a k-plane network, each node's NIC *i* connects to plane *i mod k* —
//! k disjoint two-layer fat-trees. Each plane only needs ports for
//! `gpus / k` endpoints, so each stays within a two-layer radix budget
//! instead of forcing a three-layer tree.

/// Parameters of a multi-plane deployment.
#[derive(Debug, Clone, Copy)]
pub struct MultiPlaneSpec {
    /// Number of planes (parallel fat-trees).
    pub planes: usize,
    /// Switch radix per plane (128-port RoCE in §IX).
    pub radix: usize,
    /// Link speed, bytes/second per direction (400 Gbps = 50e9).
    pub link_bps: f64,
    /// NICs per node (1 per GPU in the next-gen node).
    pub nics_per_node: usize,
}

impl MultiPlaneSpec {
    /// The paper's §IX sketch: 4 planes of 128-port 400 Gbps switches,
    /// 8 NICs per node (2 NICs of each node per plane).
    pub fn paper_next_gen() -> Self {
        MultiPlaneSpec {
            planes: 4,
            radix: 128,
            link_bps: 50e9,
            nics_per_node: 8,
        }
    }

    /// Endpoints (NIC ports) one two-layer plane supports at full
    /// bisection: `(radix/2) × radix` — leaves use half their ports down.
    pub fn endpoints_per_plane(&self) -> usize {
        (self.radix / 2) * self.radix
    }

    /// Maximum GPUs the whole network supports (1 GPU per NIC):
    /// `planes × endpoints_per_plane / (nics_per_node / gpus...)`. With a
    /// 1:1 GPU:NIC ratio and NICs spread round-robin over planes, each
    /// plane carries `nics_per_node / planes` NICs of every node.
    pub fn max_gpus(&self) -> usize {
        assert!(self.nics_per_node.is_multiple_of(self.planes));
        let nics_per_plane_per_node = self.nics_per_node / self.planes;
        let nodes = self.endpoints_per_plane() / nics_per_plane_per_node;
        nodes * self.nics_per_node // 1 GPU per NIC
    }

    /// Switches per plane (two-layer: leaves + spines).
    pub fn switches_per_plane(&self) -> usize {
        let leaves = self.radix; // radix/2 down each → (r/2)·r endpoints
        let spines = self.radix / 2;
        leaves + spines
    }

    /// Total switches.
    pub fn total_switches(&self) -> usize {
        self.planes * self.switches_per_plane()
    }

    /// Per-node aggregate injection bandwidth, bytes/second.
    pub fn node_injection_bw(&self) -> f64 {
        self.nics_per_node as f64 * self.link_bps
    }

    /// The all2all time for `bytes_per_gpu` of MoE dispatch traffic per
    /// GPU with cross-node fraction `cross` — the metric §IX optimizes
    /// ("all-to-all performance is crucial").
    pub fn all2all_time(&self, gpus_per_node: usize, bytes_per_gpu: f64, cross: f64) -> f64 {
        let node_bytes = gpus_per_node as f64 * bytes_per_gpu * cross;
        node_bytes / self.node_injection_bw()
    }
}

/// The current Fire-Flyer 2 node's all2all time for the same traffic:
/// one 200 Gbps NIC for all 8 GPUs.
pub fn current_gen_all2all_time(gpus_per_node: usize, bytes_per_gpu: f64, cross: f64) -> f64 {
    let node_bytes = gpus_per_node as f64 * bytes_per_gpu * cross;
    node_bytes / 25e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_supports_32768_gpus() {
        // "a 4-Plane Two-Layer Fat-Trees network can support up to 32,768
        // GPUs."
        let s = MultiPlaneSpec::paper_next_gen();
        assert_eq!(s.endpoints_per_plane(), 8192);
        assert_eq!(s.max_gpus(), 32_768);
    }

    #[test]
    fn planes_stay_two_layer() {
        // A single-plane build at the same GPU count would need
        // 32,768 endpoints — four times one plane's two-layer maximum.
        let s = MultiPlaneSpec::paper_next_gen();
        assert!(s.max_gpus() > s.endpoints_per_plane());
    }

    #[test]
    fn next_gen_all2all_is_an_order_of_magnitude_faster() {
        // 16× the injection bandwidth per node (8×400G vs 1×200G).
        let s = MultiPlaneSpec::paper_next_gen();
        let cur = current_gen_all2all_time(8, 1e9, 7.0 / 8.0);
        let next = s.all2all_time(8, 1e9, 7.0 / 8.0);
        assert!((cur / next - 16.0).abs() < 1e-9, "{}", cur / next);
    }

    #[test]
    fn switch_count_scales_with_planes() {
        let s = MultiPlaneSpec::paper_next_gen();
        assert_eq!(s.switches_per_plane(), 192);
        assert_eq!(s.total_switches(), 768);
        // Far below a three-layer build for 32k endpoints at radix 128:
        // leaves 512 + spines 512 + core ≥ 256 ⇒ ≥ 1280 switches... the
        // multi-plane build is cheaper because each NIC's plane is fixed.
        let three_layer_min = 512 + 512 + 256;
        assert!(s.total_switches() < three_layer_min);
    }
}
