//! Randomized property tests for topology construction and the double
//! trees (seeded, reproducible).

use ff_topo::dbtree::DoubleBinaryTree;
use ff_topo::fattree::{attach_host, build_zone, FatTreeSpec};
use ff_topo::graph::{NodeKind, Topology};
use ff_util::rng::ChaCha8Rng;

/// Any valid two-layer zone is fully connected with diameter ≤ 2
/// between switches, and hosts spread within one of each other.
#[test]
fn zones_are_wellformed() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x20E5);
    for _ in 0..64 {
        let leaves = rng.gen_range(2usize..8);
        let spines = rng.gen_range(2usize..6);
        let down = rng.gen_range(2usize..8);
        let hosts = rng.gen_range(1usize..32);
        let leaves = leaves.min(spines + down);
        let spec = FatTreeSpec::small(leaves, spines, down);
        let mut topo = Topology::new();
        let mut zone = build_zone(&mut topo, &spec, 0);
        assert_eq!(topo.switches().len(), leaves + spines);
        assert_eq!(
            topo.link_count(),
            leaves * spines * (spec.leaf_up() / spines)
        );
        let n = hosts.min(spec.endpoints());
        let mut per_leaf = vec![0usize; leaves];
        for i in 0..n {
            let h = topo.add_node(NodeKind::ComputeHost, format!("h{i}"), Some(0));
            let leaf = attach_host(&mut topo, &mut zone, h, 25e9);
            let li = zone
                .leaves
                .iter()
                .position(|&l| l == leaf)
                .expect("known leaf");
            per_leaf[li] += 1;
        }
        // Even spread: counts differ by at most 1.
        let (mn, mx) = (
            *per_leaf.iter().min().expect("leaves"),
            *per_leaf.iter().max().expect("leaves"),
        );
        assert!(mx - mn <= 1, "{per_leaf:?}");
        // Leaf-to-leaf distance is exactly 2 (via any spine).
        let d = topo.bfs_distances(zone.leaves[0]);
        for &l in &zone.leaves[1..] {
            assert_eq!(d[l.0 as usize], 2);
        }
    }
}

/// Double-binary-tree invariants for every size: valid spanning trees,
/// ≤2 children, disjoint interiors, logarithmic height.
#[test]
fn double_tree_invariants() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xDB);
    let mut sizes: Vec<usize> = (1..=64).collect();
    sizes.extend((0..64).map(|_| rng.gen_range(65usize..600)));
    for n in sizes {
        let dt = DoubleBinaryTree::new(n);
        assert!(dt.interior_disjoint());
        for t in [&dt.a, &dt.b] {
            assert_eq!(t.len(), n);
            // Exactly one root; parents consistent; all reachable.
            let roots = t.parent.iter().filter(|p| p.is_none()).count();
            assert_eq!(roots, 1);
            let mut seen = 0usize;
            let mut stack = vec![t.root];
            while let Some(r) = stack.pop() {
                seen += 1;
                assert!(t.children[r].len() <= 2);
                for &c in &t.children[r] {
                    assert_eq!(t.parent[c], Some(r));
                    stack.push(c);
                }
            }
            assert_eq!(seen, n);
            let bound = 2 * (usize::BITS - n.leading_zeros()) as usize + 2;
            assert!(t.height() <= bound, "height {} at n={n}", t.height());
        }
    }
}

/// The post-order schedule is a valid reduce order: every child
/// appears before its parent, each rank exactly once.
#[test]
fn post_order_is_topological() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x9057);
    let mut sizes: Vec<usize> = (1..=32).collect();
    sizes.extend((0..32).map(|_| rng.gen_range(33usize..300)));
    for n in sizes {
        let dt = DoubleBinaryTree::new(n);
        for t in [&dt.a, &dt.b] {
            let po = t.post_order();
            assert_eq!(po.len(), n);
            let mut pos = vec![usize::MAX; n];
            for (i, &r) in po.iter().enumerate() {
                assert_eq!(pos[r], usize::MAX, "duplicate rank");
                pos[r] = i;
            }
            for r in 0..n {
                if let Some(p) = t.parent[r] {
                    assert!(pos[r] < pos[p]);
                }
            }
        }
    }
}
