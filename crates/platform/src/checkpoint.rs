//! The checkpoint manager (§VII-A), on top of the real 3FS client.
//!
//! "Parameters and optimization states are divided into chunks and written
//! to 3FS using the 3FS batch write API ... During the saving process,
//! each tensor is recorded with its index and the offset within the
//! checkpoint, which makes the location of tensors more convenient during
//! the loading process." Saves run on a background thread so training is
//! never blocked; loads verify per-tensor checksums.

use ff_3fs::client::{Fs3Client, FsError};
use ff_3fs::meta::{FileAttr, MetaError, ROOT};
use ff_obs::{Recorder, TrackId};
use ff_util::bytes::Bytes;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// One tensor's location inside a checkpoint file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TensorIndex {
    /// Tensor name.
    pub name: String,
    /// Byte offset within the checkpoint file.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
    /// FNV-1a checksum of the bytes.
    pub checksum: u64,
}

/// A saved checkpoint's metadata: the step and the tensor index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// Training step the checkpoint captures.
    pub step: u64,
    /// Per-tensor locations.
    pub tensors: Vec<TensorIndex>,
}

/// Errors from checkpoint operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// Underlying file-system failure.
    Fs(FsError),
    /// A tensor's checksum did not match on load (§VII-C's silent data
    /// corruption made visible).
    Corrupt(String),
    /// No checkpoint found.
    Missing,
}

impl From<FsError> for CkptError {
    fn from(e: FsError) -> Self {
        CkptError::Fs(e)
    }
}
impl From<MetaError> for CkptError {
    fn from(e: MetaError) -> Self {
        CkptError::Fs(FsError::Meta(e))
    }
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::Fs(e) => write!(f, "checkpoint I/O: {e}"),
            CkptError::Corrupt(what) => write!(f, "checkpoint corrupt: {what}"),
            CkptError::Missing => write!(f, "no checkpoint found"),
        }
    }
}

impl std::error::Error for CkptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CkptError::Fs(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CkptError> for ff_util::FfError {
    fn from(e: CkptError) -> Self {
        ff_util::FfError::with_source(ff_util::FfKind::Checkpoint, e.to_string(), e)
    }
}

/// FNV-1a over 8-byte words (plus a byte-wise tail and a length fold):
/// the same error-detection role as byte-wise FNV at ~8× the speed —
/// checksumming must not be the checkpoint bottleneck.
fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut words = data.chunks_exact(8);
    for w in &mut words {
        h ^= u64::from_le_bytes(w.try_into().expect("8-byte chunk"));
        h = h.wrapping_mul(0x100000001b3);
    }
    for &b in words.remainder() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h ^ (data.len() as u64)
}

/// The checkpoint manager: a directory of `step-N.bin` + `step-N.idx`
/// pairs on 3FS.
pub struct CheckpointManager {
    client: Arc<Fs3Client>,
    dir: FileAttr,
    chunk_bytes: u64,
    /// In-flight background saves, reaped opportunistically.
    pending: Mutex<Vec<JoinHandle<Result<CheckpointMeta, CkptError>>>>,
    /// First background-save failure not yet reported to a caller. A
    /// failed async save must never vanish silently: the next `save`,
    /// `load` or [`wait_saves`](Self::wait_saves) returns it, and `Drop`
    /// complains about anything still unclaimed.
    async_error: Mutex<Option<CkptError>>,
    /// Observability sink: saves/loads become spans keyed to the *step*
    /// (a logical clock — wall time would ruin trace determinism).
    obs: Mutex<Option<(Arc<Recorder>, TrackId)>>,
}

impl CheckpointManager {
    /// Create (or reopen) the checkpoint directory `name`.
    pub fn new(
        client: Arc<Fs3Client>,
        name: &str,
        chunk_bytes: u64,
    ) -> Result<Arc<Self>, CkptError> {
        let dir = match client.meta().mkdir(ROOT, name) {
            Ok(d) => d,
            Err(MetaError::Exists) => {
                let ino = client.meta().lookup(ROOT, name)?;
                client.meta().stat(ino)?
            }
            Err(e) => return Err(e.into()),
        };
        Ok(Arc::new(CheckpointManager {
            client,
            dir,
            chunk_bytes: chunk_bytes.max(1),
            pending: Mutex::new(Vec::new()),
            async_error: Mutex::new(None),
            obs: Mutex::new(None),
        }))
    }

    /// Attach an observability recorder: each save/load becomes a span on
    /// `track` at `ts = step × 1s` (matching the per-step timeline the
    /// training loop records), with the byte volume as the span value.
    pub fn attach_recorder(&self, rec: &Arc<Recorder>, track: &str) {
        let id = rec.track(track);
        *self.obs.lock().expect("obs lock") = Some((Arc::clone(rec), id));
    }

    fn note(&self, name: &str, step: u64, bytes: u64, instant: bool) {
        if let Some((rec, track)) = self.obs.lock().expect("obs lock").as_ref() {
            let ts = step.saturating_mul(1_000_000_000);
            if instant {
                rec.instant(*track, name, ts, bytes as f64);
            } else {
                rec.span(*track, name, ts, bytes.max(1), bytes as f64);
            }
        }
    }

    /// The 3FS client the manager writes through.
    pub fn client(&self) -> &Arc<Fs3Client> {
        &self.client
    }

    /// Join completed background saves, stashing the first failure.
    /// With `block`, wait for every in-flight save.
    fn reap(&self, block: bool) {
        let handles: Vec<_> = {
            let mut pending = self.pending.lock().expect("pending lock");
            if block {
                pending.drain(..).collect()
            } else {
                let mut done = Vec::new();
                let mut i = 0;
                while i < pending.len() {
                    if pending[i].is_finished() {
                        done.push(pending.swap_remove(i));
                    } else {
                        i += 1;
                    }
                }
                done
            }
        };
        for h in handles {
            let result = h.join().unwrap_or(Err(CkptError::Corrupt(
                "background save thread panicked".into(),
            )));
            if let Err(e) = result {
                let mut slot = self.async_error.lock().expect("error lock");
                slot.get_or_insert(e);
            }
        }
    }

    /// The stashed background-save failure, if any, clearing it.
    fn take_async_error(&self) -> Option<CkptError> {
        self.reap(false);
        self.async_error.lock().expect("error lock").take()
    }

    /// Block until all background saves land; the first failure (from
    /// these or any earlier async save) is returned exactly once.
    pub fn wait_saves(&self) -> Result<(), CkptError> {
        self.reap(true);
        match self.async_error.lock().expect("error lock").take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Save `tensors` as checkpoint `step` via the batch-write API.
    /// Returns the metadata (also persisted as the `.idx` file).
    ///
    /// Steps are write-once: saving a step that already exists returns
    /// `CkptError::Fs(FsError::Meta(MetaError::Exists))` — never a silent
    /// overwrite of a checkpoint a recovery might be reading. Re-saving
    /// after a rollback requires pruning or a fresh step number.
    pub fn save(
        &self,
        step: u64,
        tensors: &[(String, Vec<u8>)],
    ) -> Result<CheckpointMeta, CkptError> {
        if let Some(e) = self.take_async_error() {
            return Err(e);
        }
        self.save_inner(step, tensors)
    }

    fn save_inner(
        &self,
        step: u64,
        tensors: &[(String, Vec<u8>)],
    ) -> Result<CheckpointMeta, CkptError> {
        let file = self.client.meta().create(
            self.dir.ino,
            &format!("step-{step:012}.bin"),
            self.chunk_bytes,
            4,
        )?;
        // Lay tensors out chunk-aligned: parallel batch writers then never
        // share a file chunk, so no read-modify-write races between the
        // writer threads (and chunk-replace writes skip the read entirely).
        let mut index = Vec::with_capacity(tensors.len());
        let mut parts: Vec<(u64, Bytes)> = Vec::new();
        let mut offset = 0u64;
        for (name, data) in tensors {
            offset = offset.div_ceil(self.chunk_bytes) * self.chunk_bytes;
            index.push(TensorIndex {
                name: name.clone(),
                offset,
                len: data.len() as u64,
                checksum: fnv1a(data),
            });
            // One copy into a refcounted buffer; chunk parts are zero-copy
            // slices of it, and chunk-aligned parts go down the chain
            // without further copies.
            let shared = Bytes::copy_from_slice(data);
            let mut at = 0usize;
            while at < data.len() {
                let n = (self.chunk_bytes as usize).min(data.len() - at);
                parts.push((offset + at as u64, shared.slice(at..at + n)));
                at += n;
            }
            offset += data.len() as u64;
        }
        let client = Arc::clone(&self.client);
        client.batch_write(&file, parts)?;
        // Persist the index.
        let meta = CheckpointMeta {
            step,
            tensors: index,
        };
        let idx_bytes = encode_meta(&meta);
        let idx = self.client.meta().create(
            self.dir.ino,
            &format!("step-{step:012}.idx"),
            self.chunk_bytes,
            1,
        )?;
        self.client.write_at(&idx, 0, &idx_bytes)?;
        let total: u64 = meta.tensors.iter().map(|t| t.len).sum();
        self.note(&format!("ckpt save step {step}"), step, total, false);
        Ok(meta)
    }

    /// Save on a background thread ("asynchronously transferred ... with
    /// checkpoint saving performed periodically"): the training loop keeps
    /// going while 3FS absorbs the write. A failure is *not* lost with the
    /// thread: it resurfaces from the next `save`/`load`/
    /// [`wait_saves`](Self::wait_saves) call, and a failed save is never
    /// visible through [`latest_step`](Self::latest_step).
    pub fn save_async(self: &Arc<Self>, step: u64, tensors: Vec<(String, Vec<u8>)>) {
        self.reap(false);
        let mgr = Arc::clone(self);
        let handle = std::thread::spawn(move || mgr.save_inner(step, &tensors));
        self.pending.lock().expect("pending lock").push(handle);
    }

    /// All fully-written checkpoint steps, ascending. A step counts only
    /// once its index file exists *and* is non-empty — the index is
    /// written last, so interrupted or failed saves never appear.
    pub fn steps(&self) -> Result<Vec<u64>, CkptError> {
        let entries = self.client.meta().readdir(self.dir.ino)?;
        let mut steps = Vec::new();
        for (name, ino) in &entries {
            let step = match name
                .strip_prefix("step-")
                .and_then(|s| s.strip_suffix(".idx"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                Some(s) => s,
                None => continue,
            };
            if self.client.meta().stat(*ino)?.size > 0 {
                steps.push(step);
            }
        }
        steps.sort_unstable();
        Ok(steps)
    }

    /// The most recent checkpoint step, if any.
    pub fn latest_step(&self) -> Result<Option<u64>, CkptError> {
        Ok(self.steps()?.pop())
    }

    /// Delete checkpoint `step` (index first, so a concurrent
    /// [`latest_step`](Self::latest_step) never selects a half-deleted
    /// checkpoint). Used to discard a checkpoint that failed its checksum
    /// so the step number can be written again after a rollback.
    pub fn remove_step(&self, step: u64) -> Result<(), CkptError> {
        self.client
            .meta()
            .unlink(self.dir.ino, &format!("step-{step:012}.idx"))?;
        self.client
            .meta()
            .unlink(self.dir.ino, &format!("step-{step:012}.bin"))?;
        Ok(())
    }

    /// Load checkpoint `step` via the batch-read API, verifying checksums.
    pub fn load(&self, step: u64) -> Result<Vec<(String, Vec<u8>)>, CkptError> {
        if let Some(e) = self.take_async_error() {
            return Err(e);
        }
        let idx_ino = self
            .client
            .meta()
            .lookup(self.dir.ino, &format!("step-{step:012}.idx"))
            .map_err(|_| CkptError::Missing)?;
        let idx_attr = self.client.meta().stat(idx_ino)?;
        let idx_bytes = self.client.read_at(&idx_attr, 0, idx_attr.size as usize)?;
        let meta =
            decode_meta(&idx_bytes).ok_or_else(|| CkptError::Corrupt("checkpoint index".into()))?;
        let bin_ino = self
            .client
            .meta()
            .lookup(self.dir.ino, &format!("step-{step:012}.bin"))
            .map_err(|_| CkptError::Missing)?;
        let bin_attr = self.client.meta().stat(bin_ino)?;
        let parts: Vec<(u64, usize)> = meta
            .tensors
            .iter()
            .map(|t| (t.offset, t.len as usize))
            .collect();
        let blobs = self.client.batch_read(&bin_attr, parts)?;
        let mut out = Vec::with_capacity(meta.tensors.len());
        for (t, blob) in meta.tensors.iter().zip(blobs) {
            if fnv1a(&blob) != t.checksum {
                self.note(&format!("ckpt corrupt step {step}"), step, t.len, true);
                return Err(CkptError::Corrupt(t.name.clone()));
            }
            out.push((t.name.clone(), blob));
        }
        let total: u64 = meta.tensors.iter().map(|t| t.len).sum();
        self.note(&format!("ckpt load step {step}"), step, total, false);
        Ok(out)
    }

    /// Delete old checkpoints, keeping the newest `keep`.
    pub fn prune(&self, keep: usize) -> Result<usize, CkptError> {
        let entries = self.client.meta().readdir(self.dir.ino)?;
        let mut steps: Vec<u64> = entries
            .iter()
            .filter_map(|(n, _)| {
                n.strip_prefix("step-")
                    .and_then(|s| s.strip_suffix(".idx"))
                    .and_then(|s| s.parse().ok())
            })
            .collect();
        steps.sort_unstable();
        let evict = steps.len().saturating_sub(keep);
        for &s in &steps[..evict] {
            let _ = self
                .client
                .meta()
                .unlink(self.dir.ino, &format!("step-{s:012}.idx"));
            let _ = self
                .client
                .meta()
                .unlink(self.dir.ino, &format!("step-{s:012}.bin"));
        }
        Ok(evict)
    }
}

impl Drop for CheckpointManager {
    fn drop(&mut self) {
        // Background threads hold an Arc to the manager, so by the time
        // Drop runs they have all finished; joining cannot block.
        self.reap(true);
        if let Some(e) = self.async_error.lock().expect("error lock").take() {
            eprintln!(
                "CheckpointManager dropped with an unreported background save failure: {e:?}"
            );
        }
    }
}

fn encode_meta(meta: &CheckpointMeta) -> Vec<u8> {
    let mut v = Vec::new();
    v.extend_from_slice(&meta.step.to_be_bytes());
    v.extend_from_slice(&(meta.tensors.len() as u64).to_be_bytes());
    for t in &meta.tensors {
        v.extend_from_slice(&(t.name.len() as u32).to_be_bytes());
        v.extend_from_slice(t.name.as_bytes());
        v.extend_from_slice(&t.offset.to_be_bytes());
        v.extend_from_slice(&t.len.to_be_bytes());
        v.extend_from_slice(&t.checksum.to_be_bytes());
    }
    v
}

/// Decode an index file; `None` on any truncation or malformed field, so
/// a partially written index surfaces as corruption instead of a panic.
fn decode_meta(b: &[u8]) -> Option<CheckpointMeta> {
    let u64at = |at: usize| Some(u64::from_be_bytes(b.get(at..at + 8)?.try_into().ok()?));
    let step = u64at(0)?;
    let n = usize::try_from(u64at(8)?).ok()?;
    let mut at = 16;
    let mut tensors = Vec::new();
    for _ in 0..n {
        let name_len = u32::from_be_bytes(b.get(at..at + 4)?.try_into().ok()?) as usize;
        at += 4;
        let name = String::from_utf8(b.get(at..at + name_len)?.to_vec()).ok()?;
        at += name_len;
        let offset = u64at(at)?;
        let len = u64at(at + 8)?;
        let checksum = u64at(at + 16)?;
        at += 24;
        tensors.push(TensorIndex {
            name,
            offset,
            len,
            checksum,
        });
    }
    Some(CheckpointMeta { step, tensors })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_3fs::chain::{Chain, ChainTable};
    use ff_3fs::kvstore::KvStore;
    use ff_3fs::meta::MetaService;
    use ff_3fs::target::{Disk, StorageTarget};

    fn client() -> Arc<Fs3Client> {
        let chains: Vec<_> = (0..8)
            .map(|c| {
                Chain::new(
                    c,
                    vec![
                        StorageTarget::new(format!("c{c}a"), Disk::new(256 << 20)),
                        StorageTarget::new(format!("c{c}b"), Disk::new(256 << 20)),
                    ],
                )
            })
            .collect();
        let table = Arc::new(ChainTable::new(chains));
        let meta = MetaService::new(KvStore::new(8, 2), table.len());
        Fs3Client::new(meta, table, 16)
    }

    fn fake_tensors(seed: u8, n: usize, bytes: usize) -> Vec<(String, Vec<u8>)> {
        (0..n)
            .map(|i| {
                let data: Vec<u8> = (0..bytes)
                    .map(|j| (seed as usize + i * 31 + j) as u8)
                    .collect();
                (format!("layer{i}.weight"), data)
            })
            .collect()
    }

    #[test]
    fn save_load_roundtrip() {
        let mgr = CheckpointManager::new(client(), "ckpt", 64 << 10).unwrap();
        let tensors = fake_tensors(1, 8, 100_000);
        let meta = mgr.save(100, &tensors).unwrap();
        assert_eq!(meta.tensors.len(), 8);
        let loaded = mgr.load(100).unwrap();
        assert_eq!(loaded, tensors);
    }

    #[test]
    fn index_records_offsets_in_layout_order() {
        let mgr = CheckpointManager::new(client(), "ckpt", 1 << 10).unwrap();
        let tensors = fake_tensors(2, 3, 1000);
        let meta = mgr.save(1, &tensors).unwrap();
        // Offsets are chunk-aligned (1 KiB chunks) and monotone.
        assert_eq!(meta.tensors[0].offset, 0);
        assert_eq!(meta.tensors[1].offset, 1024);
        assert_eq!(meta.tensors[2].offset, 2048);
        for t in &meta.tensors {
            assert_eq!(t.offset % 1024, 0);
            assert_eq!(t.len, 1000);
        }
    }

    #[test]
    fn latest_step_and_prune() {
        let mgr = CheckpointManager::new(client(), "ckpt", 1 << 10).unwrap();
        for step in [10u64, 20, 30] {
            mgr.save(step, &fake_tensors(3, 2, 500)).unwrap();
        }
        assert_eq!(mgr.latest_step().unwrap(), Some(30));
        assert_eq!(mgr.prune(1).unwrap(), 2);
        assert_eq!(mgr.latest_step().unwrap(), Some(30));
        assert!(matches!(mgr.load(10), Err(CkptError::Missing)));
        // The survivor still loads.
        assert_eq!(mgr.load(30).unwrap().len(), 2);
    }

    #[test]
    fn async_save_does_not_block() {
        let mgr = CheckpointManager::new(client(), "ckpt", 16 << 10).unwrap();
        mgr.save_async(5, fake_tensors(4, 4, 200_000));
        // "Training" continues here...
        mgr.wait_saves().unwrap();
        assert_eq!(mgr.load(5).unwrap().len(), 4);
    }

    #[test]
    fn async_save_failure_surfaces_on_next_call() {
        let mgr = CheckpointManager::new(client(), "ckpt", 1 << 10).unwrap();
        mgr.save(5, &fake_tensors(1, 2, 500)).unwrap();
        // Steps are write-once, so this background save must fail.
        mgr.save_async(5, fake_tensors(1, 2, 500));
        mgr.reap(true);
        let err = mgr.save(6, &fake_tensors(1, 2, 500)).unwrap_err();
        assert!(
            matches!(err, CkptError::Fs(FsError::Meta(MetaError::Exists))),
            "{err:?}"
        );
        // Reported exactly once: the retry goes through, state intact.
        mgr.save(6, &fake_tensors(1, 2, 500)).unwrap();
        assert_eq!(mgr.latest_step().unwrap(), Some(6));
    }

    #[test]
    fn async_save_failure_surfaces_on_load_and_wait() {
        let mgr = CheckpointManager::new(client(), "ckpt", 1 << 10).unwrap();
        mgr.save(3, &fake_tensors(2, 1, 100)).unwrap();
        mgr.save_async(3, fake_tensors(2, 1, 100));
        mgr.reap(true);
        assert!(mgr.load(3).is_err(), "pending failure must preempt load");
        // Once reported, the checkpoint itself is fine.
        assert_eq!(mgr.load(3).unwrap().len(), 1);
        mgr.save_async(3, fake_tensors(2, 1, 100));
        assert!(mgr.wait_saves().is_err());
        assert!(mgr.wait_saves().is_ok(), "error reported exactly once");
    }

    #[test]
    fn partial_index_is_never_the_latest_step() {
        let c = client();
        let mgr = CheckpointManager::new(c.clone(), "ckpt", 1 << 10).unwrap();
        mgr.save(10, &fake_tensors(6, 1, 100)).unwrap();
        // An index file created but never written — the footprint of a
        // save that died between create and write.
        c.meta()
            .create(mgr.dir.ino, &format!("step-{:012}.idx", 99u64), 1 << 10, 1)
            .unwrap();
        assert_eq!(mgr.steps().unwrap(), vec![10]);
        assert_eq!(mgr.latest_step().unwrap(), Some(10));
    }

    #[test]
    fn truncated_index_reads_as_corrupt() {
        let c = client();
        let mgr = CheckpointManager::new(c.clone(), "ckpt", 1 << 10).unwrap();
        mgr.save(7, &fake_tensors(6, 2, 300)).unwrap();
        // Smash the tensor-count field: the index now claims far more
        // entries than the file holds, as a half-written index would.
        let attr = c.meta().resolve("/ckpt/step-000000000007.idx").unwrap();
        c.write_at(&attr, 8, &[0xFF; 8]).unwrap();
        match mgr.load(7) {
            Err(CkptError::Corrupt(what)) => assert_eq!(what, "checkpoint index"),
            other => panic!("expected index corruption, got {other:?}"),
        }
    }

    #[test]
    fn remove_step_allows_rewriting_after_rollback() {
        let mgr = CheckpointManager::new(client(), "ckpt", 1 << 10).unwrap();
        mgr.save(20, &fake_tensors(1, 2, 400)).unwrap();
        assert!(
            mgr.save(20, &fake_tensors(9, 2, 400)).is_err(),
            "write-once"
        );
        mgr.remove_step(20).unwrap();
        assert_eq!(mgr.latest_step().unwrap(), None);
        let meta = mgr.save(20, &fake_tensors(9, 2, 400)).unwrap();
        assert_eq!(meta.step, 20);
        assert_eq!(mgr.load(20).unwrap(), fake_tensors(9, 2, 400));
    }

    #[test]
    fn corruption_detected_on_load() {
        let c = client();
        let mgr = CheckpointManager::new(c.clone(), "ckpt", 1 << 10).unwrap();
        mgr.save(7, &fake_tensors(5, 2, 4000)).unwrap();
        // Flip a byte in the checkpoint file behind the manager's back.
        let attr = c.meta().resolve("/ckpt/step-000000000007.bin").unwrap();
        let mut byte = c.read_at(&attr, 123, 1).unwrap();
        byte[0] ^= 0xFF;
        c.write_at(&attr, 123, &byte).unwrap();
        match mgr.load(7) {
            Err(CkptError::Corrupt(name)) => assert_eq!(name, "layer0.weight"),
            other => panic!("expected corruption, got {other:?}"),
        }
    }

    #[test]
    fn meta_encoding_roundtrip() {
        let meta = CheckpointMeta {
            step: 42,
            tensors: vec![TensorIndex {
                name: "w".into(),
                offset: 7,
                len: 9,
                checksum: 0xdeadbeef,
            }],
        };
        assert_eq!(decode_meta(&encode_meta(&meta)), Some(meta.clone()));
        // Any truncation decodes to None, not a panic.
        let full = encode_meta(&meta);
        for cut in 0..full.len() {
            assert_eq!(decode_meta(&full[..cut]), None, "truncated at {cut}");
        }
    }

    #[test]
    fn missing_checkpoint_reported() {
        let mgr = CheckpointManager::new(client(), "ckpt", 1 << 10).unwrap();
        assert!(matches!(mgr.load(99), Err(CkptError::Missing)));
        assert_eq!(mgr.latest_step().unwrap(), None);
    }
}
