//! Time-sharing scheduling (§VI-C).
//!
//! "Users submit tasks ... and the platform interrupts and loads tasks
//! according to current resource requirements, cluster busyness, etc."
//! Tasks follow the breakpoint-continue protocol: accept the interruption
//! signal, save a checkpoint, notify the cluster, and later recover from
//! the checkpoint. Nodes are not pooled but "classified and marked based
//! on computing nodes as basic units, according to resource types, network
//! areas" — here, zones. The scheduler enforces the §III-B rule that at
//! most one running task spans both fat-tree zones.

use std::collections::HashMap;

/// Identifies a submitted task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u64);

/// Task lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Waiting for nodes.
    Queued,
    /// Running on assigned nodes.
    Running,
    /// Interrupted (preempted); will resume from its checkpoint.
    Interrupted,
    /// Finished all its work.
    Succeeded,
}

#[derive(Debug, Clone)]
struct Task {
    name: String,
    nodes_required: usize,
    priority: i32,
    work_s: u64,
    /// Seconds of completed work.
    progress_s: u64,
    /// Progress captured by the last checkpoint.
    checkpoint_s: u64,
    /// Wall seconds of work since the last periodic checkpoint.
    since_ckpt_s: u64,
    state: TaskState,
    assigned: Vec<usize>,
    cross_zone: bool,
}

#[derive(Debug, Clone)]
struct Node {
    zone: u8,
    healthy: bool,
    running: Option<TaskId>,
}

/// The scheduling platform.
///
/// ```
/// use ff_platform::{Platform, TaskState};
/// let mut p = Platform::new([4, 4], 300);
/// let job = p.submit("train", 4, 0, 3600);
/// assert_eq!(p.state(job), TaskState::Running);
/// p.tick(3600);
/// assert_eq!(p.state(job), TaskState::Succeeded);
/// ```
pub struct Platform {
    nodes: Vec<Node>,
    tasks: HashMap<TaskId, Task>,
    next_id: u64,
    now_s: u64,
    ckpt_interval_s: u64,
    busy_node_s: u64,
    healthy_node_s: u64,
    /// Work lost to failures (rolled back to checkpoints), node-seconds.
    pub lost_work_s: u64,
}

impl Platform {
    /// A platform over two zones with `per_zone` nodes each, checkpointing
    /// every `ckpt_interval_s` seconds of task runtime (§VII-A: typically
    /// 300).
    pub fn new(per_zone: [usize; 2], ckpt_interval_s: u64) -> Platform {
        let mut nodes = Vec::new();
        for (z, &n) in per_zone.iter().enumerate() {
            nodes.extend((0..n).map(|_| Node {
                zone: z as u8,
                healthy: true,
                running: None,
            }));
        }
        Platform {
            nodes,
            tasks: HashMap::new(),
            next_id: 1,
            now_s: 0,
            ckpt_interval_s: ckpt_interval_s.max(1),
            busy_node_s: 0,
            healthy_node_s: 0,
            lost_work_s: 0,
        }
    }

    /// Submit a task needing `nodes_required` nodes for `work_s` seconds
    /// of work at `priority` (higher preempts lower).
    pub fn submit(
        &mut self,
        name: impl Into<String>,
        nodes_required: usize,
        priority: i32,
        work_s: u64,
    ) -> TaskId {
        assert!(nodes_required >= 1 && work_s >= 1);
        let id = TaskId(self.next_id);
        self.next_id += 1;
        self.tasks.insert(
            id,
            Task {
                name: name.into(),
                nodes_required,
                priority,
                work_s,
                progress_s: 0,
                checkpoint_s: 0,
                since_ckpt_s: 0,
                state: TaskState::Queued,
                assigned: Vec::new(),
                cross_zone: false,
            },
        );
        self.schedule();
        id
    }

    /// Advance wall time by `dt_s`, progressing running tasks, taking
    /// periodic checkpoints, completing finished tasks, and rescheduling.
    pub fn tick(&mut self, dt_s: u64) {
        self.now_s += dt_s;
        let healthy = self.nodes.iter().filter(|n| n.healthy).count() as u64;
        self.healthy_node_s += healthy * dt_s;
        let mut finished = Vec::new();
        for (&id, t) in self.tasks.iter_mut() {
            if t.state != TaskState::Running {
                continue;
            }
            // Charge only the work actually performed this tick: a task
            // finishing mid-tick must not inflate utilization.
            let advanced = dt_s.min(t.work_s - t.progress_s);
            self.busy_node_s += t.assigned.len() as u64 * advanced;
            t.progress_s = (t.progress_s + dt_s).min(t.work_s);
            t.since_ckpt_s += dt_s;
            while t.since_ckpt_s >= self.ckpt_interval_s {
                t.since_ckpt_s -= self.ckpt_interval_s;
                t.checkpoint_s = t.progress_s - t.since_ckpt_s;
            }
            if t.progress_s >= t.work_s {
                finished.push(id);
            }
        }
        for id in finished {
            self.release(id, TaskState::Succeeded, true);
        }
        self.schedule();
    }

    /// A node fails: the task running on it loses work back to its last
    /// checkpoint and re-queues (§VII-A: "only the last 5 minutes of
    /// progress are lost").
    pub fn fail_node(&mut self, node: usize) {
        self.nodes[node].healthy = false;
        if let Some(id) = self.nodes[node].running {
            let t = self.tasks.get_mut(&id).expect("running task exists");
            let lost = t.progress_s - t.checkpoint_s;
            self.lost_work_s += lost * t.assigned.len() as u64;
            t.progress_s = t.checkpoint_s;
            t.since_ckpt_s = 0;
            self.release(id, TaskState::Queued, false);
        }
        self.schedule();
    }

    /// Return a repaired node to the pool.
    pub fn heal_node(&mut self, node: usize) {
        self.nodes[node].healthy = true;
        self.schedule();
    }

    /// Task state.
    pub fn state(&self, id: TaskId) -> TaskState {
        self.tasks[&id].state
    }

    /// Task name as submitted.
    pub fn name(&self, id: TaskId) -> &str {
        &self.tasks[&id].name
    }

    /// Task progress, seconds of completed work.
    pub fn progress(&self, id: TaskId) -> u64 {
        self.tasks[&id].progress_s
    }

    /// The nodes a task runs on.
    pub fn assignment(&self, id: TaskId) -> &[usize] {
        &self.tasks[&id].assigned
    }

    /// Fraction of healthy node-time spent running tasks.
    pub fn utilization(&self) -> f64 {
        if self.healthy_node_s == 0 {
            0.0
        } else {
            self.busy_node_s as f64 / self.healthy_node_s as f64
        }
    }

    /// Free healthy nodes per zone.
    fn free_by_zone(&self) -> [Vec<usize>; 2] {
        let mut free = [Vec::new(), Vec::new()];
        for (i, n) in self.nodes.iter().enumerate() {
            if n.healthy && n.running.is_none() {
                free[n.zone as usize].push(i);
            }
        }
        free
    }

    fn cross_zone_running(&self) -> bool {
        self.tasks
            .values()
            .any(|t| t.state == TaskState::Running && t.cross_zone)
    }

    /// Stop a task, releasing its nodes. `graceful` tasks checkpoint their
    /// current progress first (the interruption-signal protocol).
    fn release(&mut self, id: TaskId, new_state: TaskState, graceful: bool) {
        let t = self.tasks.get_mut(&id).expect("task exists");
        if graceful {
            t.checkpoint_s = t.progress_s;
            t.since_ckpt_s = 0;
        }
        for &n in &t.assigned {
            self.nodes[n].running = None;
        }
        t.assigned.clear();
        t.cross_zone = false;
        t.state = new_state;
    }

    /// Priority scheduling with preemption and the cross-zone rule, plus
    /// backfill: smaller tasks run whenever nodes would otherwise idle.
    fn schedule(&mut self) {
        // Preemption pass for the highest-priority waiting task only.
        let top = self
            .tasks
            .iter()
            .filter(|(_, t)| matches!(t.state, TaskState::Queued | TaskState::Interrupted))
            .min_by_key(|(&id, t)| (-t.priority, id))
            .map(|(&id, t)| (id, t.nodes_required, t.priority));
        if let Some((id, need, prio)) = top {
            if !self.try_place(id, need) {
                // Preempt strictly-lower-priority tasks until it fits.
                // Victims checkpoint and go back to the queue (graceful).
                let mut victims: Vec<(i32, TaskId)> = self
                    .tasks
                    .iter()
                    .filter(|(_, t)| t.state == TaskState::Running && t.priority < prio)
                    .map(|(&vid, t)| (t.priority, vid))
                    .collect();
                victims.sort(); // lowest priority first
                let mut freed = self.free_healthy_count();
                let mut to_evict = Vec::new();
                for (_, vid) in victims {
                    if freed >= need {
                        break;
                    }
                    freed += self.tasks[&vid].assigned.len();
                    to_evict.push(vid);
                }
                if freed >= need {
                    for vid in to_evict {
                        self.release(vid, TaskState::Interrupted, true);
                    }
                    // Placement can still fail on the cross-zone rule
                    // (enough nodes, but split across zones with another
                    // spanning task active); the victims then simply
                    // re-place in the backfill pass below.
                    let _ = self.try_place(id, need);
                }
            }
        }
        // Backfill pass: place whatever still fits, in priority order.
        let mut waiting: Vec<(i32, TaskId, usize)> = self
            .tasks
            .iter()
            .filter(|(_, t)| matches!(t.state, TaskState::Queued | TaskState::Interrupted))
            .map(|(&id, t)| (-t.priority, id, t.nodes_required))
            .collect();
        waiting.sort();
        for (_, id, need) in waiting {
            let _ = self.try_place(id, need);
        }
    }

    fn free_healthy_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.healthy && n.running.is_none())
            .count()
    }

    /// Try to place a task: single-zone first; cross-zone only when no
    /// other cross-zone task runs.
    fn try_place(&mut self, id: TaskId, need: usize) -> bool {
        let free = self.free_by_zone();
        let pick: Option<(Vec<usize>, bool)> = if free[0].len() >= need {
            Some((free[0][..need].to_vec(), false))
        } else if free[1].len() >= need {
            Some((free[1][..need].to_vec(), false))
        } else if free[0].len() + free[1].len() >= need && !self.cross_zone_running() {
            let mut all = free[0].clone();
            all.extend(&free[1]);
            Some((all[..need].to_vec(), true))
        } else {
            None
        };
        let Some((nodes, cross)) = pick else {
            return false;
        };
        for &n in &nodes {
            self.nodes[n].running = Some(id);
        }
        let t = self.tasks.get_mut(&id).expect("task exists");
        t.assigned = nodes;
        t.cross_zone = cross;
        t.state = TaskState::Running;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_task_runs_to_completion() {
        let mut p = Platform::new([4, 4], 300);
        let t = p.submit("resnet", 2, 0, 100);
        assert_eq!(p.state(t), TaskState::Running);
        p.tick(100);
        assert_eq!(p.state(t), TaskState::Succeeded);
        assert_eq!(p.progress(t), 100);
    }

    #[test]
    fn queueing_when_full_then_backfill() {
        let mut p = Platform::new([2, 0], 300);
        let a = p.submit("a", 2, 0, 50);
        let b = p.submit("b", 2, 0, 50);
        assert_eq!(p.state(a), TaskState::Running);
        assert_eq!(p.state(b), TaskState::Queued);
        p.tick(50);
        assert_eq!(p.state(a), TaskState::Succeeded);
        assert_eq!(p.state(b), TaskState::Running);
    }

    #[test]
    fn priority_preempts_and_resumes_from_checkpoint() {
        let mut p = Platform::new([2, 0], 300);
        let low = p.submit("low", 2, 0, 100);
        p.tick(40);
        let high = p.submit("high", 2, 10, 30);
        // Preemption is immediate and graceful: low checkpoints at 40.
        assert_eq!(p.state(low), TaskState::Interrupted);
        assert_eq!(p.state(high), TaskState::Running);
        p.tick(30);
        assert_eq!(p.state(high), TaskState::Succeeded);
        assert_eq!(p.state(low), TaskState::Running);
        // No work lost on graceful interrupt.
        p.tick(60);
        assert_eq!(p.state(low), TaskState::Succeeded);
        assert_eq!(p.lost_work_s, 0);
    }

    #[test]
    fn node_failure_loses_at_most_one_interval() {
        let mut p = Platform::new([4, 0], 300);
        let t = p.submit("llm", 4, 0, 10_000);
        p.tick(640); // checkpoints at 300 and 600
        let node = p.assignment(t)[0];
        p.fail_node(node);
        // Rolled back to the 600 s checkpoint: 40 s × 4 nodes lost.
        assert_eq!(p.progress(t), 600);
        assert_eq!(p.lost_work_s, 160);
        // Only 3 healthy nodes remain: the 4-node task cannot run.
        assert_eq!(p.state(t), TaskState::Queued);
        p.heal_node(node);
        assert_eq!(p.state(t), TaskState::Running);
    }

    #[test]
    fn cross_zone_limited_to_one_task() {
        let mut p = Platform::new([2, 2], 300);
        // 3-node tasks must span zones (each zone has only 2).
        let a = p.submit("span-a", 3, 0, 100);
        let b = p.submit("span-b", 3, 0, 100);
        assert_eq!(p.state(a), TaskState::Running);
        assert_eq!(p.state(b), TaskState::Queued, "only one cross-zone task");
        p.tick(100);
        assert_eq!(p.state(a), TaskState::Succeeded);
        assert_eq!(p.state(b), TaskState::Running);
    }

    #[test]
    fn single_zone_tasks_fill_both_zones_concurrently() {
        let mut p = Platform::new([2, 2], 300);
        let a = p.submit("a", 2, 0, 100);
        let b = p.submit("b", 2, 0, 100);
        assert_eq!(p.state(a), TaskState::Running);
        assert_eq!(p.state(b), TaskState::Running);
    }

    #[test]
    fn utilization_accounts_busy_fraction() {
        let mut p = Platform::new([4, 0], 300);
        p.submit("half", 2, 0, 100);
        p.tick(100);
        // 2 of 4 nodes busy for the whole window.
        assert!((p.utilization() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn time_sharing_keeps_utilization_high() {
        // The 99%-utilization story: an over-subscribed queue of small
        // tasks keeps every node busy.
        let mut p = Platform::new([4, 4], 300);
        for i in 0..20 {
            p.submit(format!("job{i}"), 2, 0, 50);
        }
        for _ in 0..25 {
            p.tick(10);
        }
        assert!(p.utilization() > 0.98, "utilization {}", p.utilization());
    }

    #[test]
    fn unplaceable_task_waits_without_blocking_others() {
        let mut p = Platform::new([2, 1], 300);
        let huge = p.submit("huge", 5, 5, 10);
        let small = p.submit("small", 1, 0, 10);
        assert_eq!(p.state(huge), TaskState::Queued);
        assert_eq!(p.state(small), TaskState::Running);
    }
}
