//! Event-driven time-sharing scheduling (§VI-C).
//!
//! "Users submit tasks ... and the platform interrupts and loads tasks
//! according to current resource requirements, cluster busyness, etc."
//! Tasks follow the breakpoint-continue protocol: accept the interruption
//! signal, save a checkpoint, notify the cluster, and later recover from
//! the checkpoint. Nodes are not pooled but "classified and marked based
//! on computing nodes as basic units, according to resource types, network
//! areas" — here, zones. The scheduler enforces the §III-B rule that at
//! most one running task spans both fat-tree zones.
//!
//! The platform advances on [`ff_desim`] simulated time and runs in one of
//! two modes, chosen at build time by [`PlatformConfig`]:
//!
//! * **Declared** (no cluster model): each task declares its work in
//!   seconds and runs for exactly that long. Progress, periodic
//!   checkpoints and interruptions are computed analytically, so a 30-day
//!   operations run costs O(scheduling events), not O(seconds).
//! * **Fluid** (a [`ClusterModel`] is attached): each unit of work is one
//!   *training step* whose gradient-allreduce ring and periodic
//!   checkpoint shards become real flows on the shared bandwidth model
//!   ([`ff_reduce::jobflow`]) and real records on 3FS chains. Step
//!   duration, queueing delay and preemption cost then *emerge* from
//!   contention between jobs, storage traffic, degraded links and
//!   failures instead of being declared.
//!
//! Node failures flow through the cluster manager's health lifecycle
//! (Healthy → Suspect → Quarantined → Validating → Healthy, §VI-B3) and a
//! failed node's task rolls back to its last durable checkpoint — the
//! §VII-A claim that "only the last 5 minutes of progress are lost".

use crate::detector::{Detector, DetectorConfig};
use ff_3fs::target::Disk;
use ff_3fs::{Chain, ChunkId, ClusterManager, HealthState, ServiceRole, StorageTarget};
use ff_desim::envelope::Envelope;
use ff_desim::fluid::FluidSim;
use ff_desim::{EventQueue, FlowId, ResourceId, Route, SimDuration, SimTime};
use ff_failures::plan::FLASH_CUT_FACTOR;
use ff_failures::{FaultAction, FaultPlan, GrayFault, GrayPlan};
use ff_obs::{Recorder, TrackId};
use ff_reduce::{jobflow, ClusterModel};
use ff_util::bytes::Bytes;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Seconds between a node falling suspect and the manager confirming the
/// failure (hostping + heartbeat loss, §VII-A's detection path).
const DETECT_CONFIRM_S: u64 = 2;

/// Seconds an IB flash cut leaves a link degraded before the subnet
/// manager re-trains it.
const FLASH_CUT_REPAIR_S: u64 = 90;

/// Identifies a submitted task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u64);

/// Task lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Waiting for nodes.
    Queued,
    /// Running on assigned nodes.
    Running,
    /// Received the interruption signal and is writing its checkpoint
    /// before releasing its nodes (fluid mode only — declared-mode
    /// checkpoints are instantaneous).
    Interrupting,
    /// Interrupted (preempted); will resume from its checkpoint.
    Interrupted,
    /// Finished all its work.
    Succeeded,
}

/// Why a submission was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The job asked for zero nodes.
    ZeroNodes,
    /// The job declared zero work.
    ZeroWork,
    /// The job needs more nodes than the cluster has — it could never be
    /// placed, even with every other task preempted.
    TooLarge {
        /// Nodes the job asked for.
        need: usize,
        /// Compute nodes in the whole cluster.
        cluster: usize,
    },
    /// A serving trace contains a request whose full KV-cache footprint
    /// exceeds the per-replica budget — it could never be admitted.
    KvOverflow {
        /// Largest single-request KV footprint in the trace.
        need_bytes: u64,
        /// Configured per-replica KV capacity.
        capacity_bytes: u64,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::ZeroNodes => write!(f, "job requests zero nodes"),
            SubmitError::ZeroWork => write!(f, "job declares zero work"),
            SubmitError::TooLarge { need, cluster } => {
                write!(f, "job needs {need} nodes but the cluster has {cluster}")
            }
            SubmitError::KvOverflow {
                need_bytes,
                capacity_bytes,
            } => {
                write!(
                    f,
                    "a request needs {need_bytes} KV bytes but a replica holds {capacity_bytes}"
                )
            }
        }
    }
}

impl std::error::Error for SubmitError {}

impl From<SubmitError> for ff_util::FfError {
    fn from(e: SubmitError) -> Self {
        ff_util::FfError::with_source(ff_util::FfKind::Sched, e.to_string(), e)
    }
}

/// Why a [`PlatformConfig`] could not build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// The configuration yields no compute nodes at all.
    NoNodes,
    /// More storage nodes were reserved than the cluster model has.
    StorageExceedsCluster {
        /// Storage nodes requested.
        storage: usize,
        /// Nodes in the cluster model.
        nodes: usize,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NoNodes => write!(f, "platform has no compute nodes"),
            ConfigError::StorageExceedsCluster { storage, nodes } => {
                write!(
                    f,
                    "{storage} storage nodes leave no compute nodes in a {nodes}-node cluster"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<ConfigError> for ff_util::FfError {
    fn from(e: ConfigError) -> Self {
        ff_util::FfError::with_source(ff_util::FfKind::Config, e.to_string(), e)
    }
}

/// A job submission: name, shape and traffic profile.
///
/// Work is measured in *units*: seconds of runtime in declared mode,
/// training steps in fluid mode. The traffic fields only matter in fluid
/// mode, where they size the allreduce and checkpoint flows.
#[derive(Debug, Clone)]
pub struct JobSpec {
    name: String,
    nodes: usize,
    work: u64,
    priority: i32,
    step_bytes: f64,
    ckpt_bytes: f64,
}

impl JobSpec {
    /// A job named `name` over `nodes` nodes performing `work` units.
    /// Defaults: priority 0, 128 MiB of gradients per step, 1 GiB of
    /// checkpoint state.
    pub fn new(name: impl Into<String>, nodes: usize, work: u64) -> JobSpec {
        JobSpec {
            name: name.into(),
            nodes,
            work,
            priority: 0,
            step_bytes: (128u64 << 20) as f64,
            ckpt_bytes: (1u64 << 30) as f64,
        }
    }

    /// Scheduling priority — higher preempts lower.
    pub fn priority(mut self, p: i32) -> JobSpec {
        self.priority = p;
        self
    }

    /// Gradient bytes allreduced per training step (fluid mode).
    pub fn step_bytes(mut self, bytes: f64) -> JobSpec {
        self.step_bytes = bytes;
        self
    }

    /// Checkpoint bytes written per save, sharded over the job's nodes
    /// (fluid mode).
    pub fn ckpt_bytes(mut self, bytes: f64) -> JobSpec {
        self.ckpt_bytes = bytes;
        self
    }
}

/// Builder for [`Platform`].
///
/// ```
/// use ff_platform::{JobSpec, PlatformConfig, TaskState};
/// let mut p = PlatformConfig::new()
///     .zones([4, 4])
///     .ckpt_interval(300)
///     .build()
///     .unwrap();
/// let job = p.submit(JobSpec::new("train", 4, 3600)).unwrap();
/// assert_eq!(p.state(job), Some(TaskState::Running));
/// p.tick(3600);
/// assert_eq!(p.state(job), Some(TaskState::Succeeded));
/// ```
#[derive(Default)]
pub struct PlatformConfig {
    zones: [usize; 2],
    ckpt_interval: u64,
    cluster: Option<ClusterModel>,
    storage_nodes: usize,
    recorder: Option<Arc<Recorder>>,
    repair_delay_s: u64,
    validation_s: u64,
    solver_threads: usize,
    replication: usize,
    detector: Option<DetectorConfig>,
}

impl PlatformConfig {
    /// An empty configuration: declared mode, no nodes yet, 300-unit
    /// checkpoint cadence (§VII-A: every 5 minutes).
    pub fn new() -> PlatformConfig {
        PlatformConfig {
            zones: [0, 0],
            ckpt_interval: 300,
            cluster: None,
            storage_nodes: 0,
            recorder: None,
            repair_delay_s: 3600,
            validation_s: 60,
            solver_threads: 1,
            replication: 2,
            detector: None,
        }
    }

    /// Attach a signal-driven gray-failure detector (hai-monitor style):
    /// the platform runs periodic probe sweeps, watches heartbeat jitter
    /// and step-time EWMAs, and quarantines nodes on confirmed suspect
    /// verdicts — with detection latency, false positives and false
    /// negatives set by `cfg`. Nodes readmitted after a detector
    /// quarantine pass through the probation state with per-node
    /// exponential backoff on repeated flaps.
    pub fn detector(mut self, cfg: DetectorConfig) -> PlatformConfig {
        self.detector = Some(cfg);
        self
    }

    /// Worker threads for the fluid bandwidth solver (fluid mode only).
    /// Results are bit-identical at any thread count; this only trades
    /// wall-clock for cores on large clusters.
    pub fn solver_threads(mut self, n: usize) -> PlatformConfig {
        self.solver_threads = n.max(1);
        self
    }

    /// Compute nodes per fat-tree zone (declared mode). Ignored when a
    /// cluster model is attached — zones then come from the model.
    pub fn zones(mut self, per_zone: [usize; 2]) -> PlatformConfig {
        self.zones = per_zone;
        self
    }

    /// Checkpoint cadence in work units (seconds declared / steps fluid).
    pub fn ckpt_interval(mut self, units: u64) -> PlatformConfig {
        self.ckpt_interval = units;
        self
    }

    /// Attach a bandwidth cluster model: the platform switches to fluid
    /// mode, where training and checkpoint traffic are simulated flows.
    pub fn cluster(mut self, model: ClusterModel) -> PlatformConfig {
        self.cluster = Some(model);
        self
    }

    /// How many nodes at the tail of the cluster model serve as 3FS
    /// storage nodes instead of compute (fluid mode). `0` picks
    /// `max(1, nodes/25)`, roughly the paper's 1:25 storage:compute ratio.
    pub fn storage_nodes(mut self, n: usize) -> PlatformConfig {
        self.storage_nodes = n;
        self
    }

    /// Record scheduling activity on a `platform/sched` observability
    /// track of this recorder.
    pub fn recorder(mut self, rec: Arc<Recorder>) -> PlatformConfig {
        self.recorder = Some(rec);
        self
    }

    /// Seconds from a confirmed node failure to the repaired node entering
    /// validation (auto-repair path used by injected fault plans).
    pub fn repair_delay_s(mut self, s: u64) -> PlatformConfig {
        self.repair_delay_s = s;
        self
    }

    /// Seconds a repaired node spends in validation before rejoining.
    pub fn validation_s(mut self, s: u64) -> PlatformConfig {
        self.validation_s = s;
        self
    }

    /// 3FS chain replication factor for checkpoint chains (fluid mode):
    /// each chain places its head on one storage host and `r - 1` mirrors
    /// on the following hosts. Clamped to `1..=storage hosts`; the default
    /// of 2 is the paper's head+mirror CRAQ deployment. `r = 1` means no
    /// redundancy — a storage-host loss takes its chains' checkpoints with
    /// it until repair.
    pub fn replication(mut self, r: usize) -> PlatformConfig {
        self.replication = r.max(1);
        self
    }

    /// Build the platform.
    pub fn build(self) -> Result<Platform, ConfigError> {
        let manager = ClusterManager::new(30_000, 10_000);
        let mut nodes = Vec::new();
        let mut engine = None;
        if let Some(mut cluster) = self.cluster {
            cluster.fluid.set_threads(self.solver_threads);
            let total = cluster.nodes();
            let storage = if self.storage_nodes == 0 {
                (total / 25).max(1)
            } else {
                self.storage_nodes
            };
            if storage >= total {
                return Err(ConfigError::StorageExceedsCluster {
                    storage,
                    nodes: total,
                });
            }
            let compute = total - storage;
            for i in 0..compute {
                nodes.push(Node {
                    zone: cluster.zone_of(i),
                    up: true,
                    running: None,
                    gen: 0,
                });
            }
            let storage_hosts: Vec<usize> = (compute..total).collect();
            // One CRAQ chain per storage host; member k of chain j lands
            // on host (j + k) % storage, so `replication - 1` mirrors
            // spread over the following hosts and a single host loss
            // never loses checkpoints (at the default factor of 2).
            let repl = self.replication.min(storage);
            let mut host_targets: Vec<Vec<(usize, Arc<StorageTarget>)>> = vec![Vec::new(); storage];
            let mut chains = Vec::new();
            for j in 0..storage {
                let mut members = Vec::with_capacity(repl);
                for k in 0..repl {
                    let m = (j + k) % storage;
                    let t = StorageTarget::new(format!("s{m}.c{j}"), Disk::new(64 << 20));
                    host_targets[m].push((j, t.clone()));
                    members.push(t);
                }
                let chain = Chain::new(j, members);
                if let Some(rec) = &self.recorder {
                    chain.attach_recorder(rec, &format!("platform/ckpt-chain{j}"));
                }
                chains.push(chain);
            }
            for j in 0..storage {
                manager.register(storage_name(j), ServiceRole::Storage);
            }
            engine = Some(FluidEngine {
                cluster,
                storage_hosts,
                storage_up: vec![true; storage],
                chains,
                host_targets,
                flow_owner: BTreeMap::new(),
            });
        } else {
            for (z, &n) in self.zones.iter().enumerate() {
                nodes.extend((0..n).map(|_| Node {
                    zone: z as u8,
                    up: true,
                    running: None,
                    gen: 0,
                }));
            }
        }
        if nodes.is_empty() {
            return Err(ConfigError::NoNodes);
        }
        for i in 0..nodes.len() {
            manager.register(node_name(i), ServiceRole::Compute);
        }
        let up_nodes = nodes.len();
        let obs = self.recorder.map(|rec| {
            let t = rec.track("platform/sched");
            (rec, t)
        });
        let mut timers = EventQueue::new();
        let detector = self.detector.map(|cfg| {
            timers.schedule(
                SimTime(0) + SimDuration::from_secs(cfg.probe_period_s),
                Ev::DetectorSweep,
            );
            Detector::new(cfg)
        });
        let flaps = vec![0u32; nodes.len()];
        Ok(Platform {
            now: SimTime(0),
            ckpt_interval: self.ckpt_interval.max(1),
            nodes,
            tasks: BTreeMap::new(),
            next_id: 1,
            timers,
            manager,
            engine,
            repair_delay_s: self.repair_delay_s,
            validation_s: self.validation_s.max(1),
            busy_node_ns: 0,
            healthy_node_ns: 0,
            busy_nodes: 0,
            up_nodes,
            lost_work: 0,
            preemptions: 0,
            failures: 0,
            recovering: BTreeMap::new(),
            recovery_s: Vec::new(),
            obs,
            serve_track: None,
            serving: BTreeMap::new(),
            next_serving: 1,
            dirty: false,
            detector,
            gray: None,
            flaps,
            detector_quarantines: 0,
        })
    }
}

fn node_name(i: usize) -> String {
    format!("node{i:04}")
}

fn storage_name(j: usize) -> String {
    format!("sched-s{j}")
}

/// The two per-node resources gray faults act on and probe sweeps
/// measure: the node's memory bus (compute-side, first hop of its IB
/// send route) and its NIC uplink (last hop).
fn node_probe_resources(eng: &FluidEngine, node: usize) -> (ResourceId, ResourceId) {
    let route = eng.cluster.hw[node].ib_send(0);
    let mem = route.0.first().expect("IB route has hops").0;
    let nic = route.0.last().expect("IB route has hops").0;
    (mem, nic)
}

/// A hostping-style active probe: saturate `r` with a greedy flow for
/// zero simulated time and read off the achievable load — the effective
/// (possibly degraded) capacity, measured rather than peeked at.
fn probe_resource(fluid: &mut FluidSim, r: ResourceId) -> f64 {
    let f = fluid.start_flow(1e12, &Route::unit([r]));
    let measured = fluid.resource_load(r);
    fluid.cancel_flow(f);
    measured
}

/// Wall-clock for `remaining` declared work units under a gray compute
/// stretch, keeping the exact integer path when nominal.
fn stretched_secs(remaining: u64, stretch: f64) -> SimDuration {
    if stretch == 1.0 {
        SimDuration::from_secs(remaining)
    } else {
        SimDuration::from_secs_f64(remaining as f64 * stretch)
    }
}

/// Who occupies a compute node: a (preemptible) training task or a
/// (non-preemptible) serving replica. Keeping the two in one typed slot
/// makes it impossible for victim selection — which only ever walks the
/// training task map — to evict a serving replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum Owner {
    /// A training task from [`Platform::submit`].
    Train(TaskId),
    /// Replica `.1` of serving job `.0` from [`Platform::submit_serving`].
    Serve(crate::serving::ServingId, u32),
}

/// What a fluid-mode task is currently doing on the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    Restore,
    Step,
    Ckpt,
}

#[derive(Debug, Clone)]
struct Task {
    name: String,
    need: usize,
    priority: i32,
    /// Total work in units (seconds declared / steps fluid).
    work: u64,
    step_bytes: f64,
    ckpt_bytes: f64,
    state: TaskState,
    assigned: Vec<usize>,
    cross_zone: bool,
    /// Committed completed work. In declared mode this is only updated at
    /// scheduling events; [`Platform::progress`] adds the elapsed run time.
    progress: u64,
    /// Progress captured by the last (durable) checkpoint.
    ckpt: u64,
    /// The checkpoint before that — the fallback when the latest one turns
    /// out corrupt.
    prev_ckpt: u64,
    /// Set by a silent-corruption fault: the latest checkpoint cannot be
    /// trusted and recovery must fall back one interval.
    ckpt_poisoned: bool,
    placed_at: SimTime,
    /// Bumped on every placement/release; stale timer events carry the old
    /// epoch and are dropped.
    epoch: u64,
    phase: Phase,
    flows: Vec<FlowId>,
    /// Durable checkpoint records written so far (fluid mode); the latest
    /// lives at chunk index `ckpt_seq - 1`.
    ckpt_seq: u64,
    /// State to enter once the in-flight checkpoint completes (the
    /// interruption-signal protocol's hand-off).
    pending: Option<TaskState>,
    /// Declared-mode wall-clock stretch from gray compute degradation on
    /// the task's assigned nodes: each work unit takes `stretch` seconds
    /// (1.0 = nominal, the fast integer-arithmetic path).
    stretch: f64,
    /// When the in-flight training step started (fluid mode) — the
    /// detector's step-time signal.
    step_started: SimTime,
}

#[derive(Debug, Clone)]
pub(crate) struct Node {
    pub(crate) zone: u8,
    pub(crate) up: bool,
    pub(crate) running: Option<Owner>,
    /// Bumped on every fail/heal; stale timer events are dropped.
    gen: u64,
}

/// Timer events driving the platform.
pub(crate) enum Ev {
    /// A declared-mode task finishes its remaining work.
    TaskDone { id: TaskId, epoch: u64 },
    /// Failure detection confirms a suspect node (Suspect → Quarantined).
    ConfirmFail { node: usize, gen: u64 },
    /// A quarantined node's repair completes; validation begins.
    RepairDone { node: usize, gen: u64 },
    /// Validation passes; the node rejoins the pool.
    ValidationDone { node: usize, gen: u64 },
    /// An injected fault from a [`FaultPlan`] lands.
    Fault { node: usize, action: FaultAction },
    /// A flash-cut link re-trains to full capacity.
    LinkRestore { node: usize },
    /// A failed storage host comes back and its targets re-sync.
    StorageRepair { host: usize },
    /// The next request of a serving job's arrival trace lands.
    ServeArrive { sid: crate::serving::ServingId },
    /// A serving replica's in-flight decode segment finishes its compute
    /// time (declared: the segment is done; fluid: the tensor-parallel
    /// flows start now). Stale epochs are dropped.
    ServeSeg {
        sid: crate::serving::ServingId,
        rep: u32,
        epoch: u64,
    },
    /// A gray-fault envelope phase boundary: the node's link and/or
    /// memory-bus capacity factors step to new values (`None` leaves a
    /// factor unchanged).
    GrayPhase {
        node: usize,
        link: Option<f64>,
        mem: Option<f64>,
    },
    /// The detector's periodic probe sweep over all up nodes.
    DetectorSweep,
    /// A readmitted node's probation window ends cleanly.
    ProbationEnd { node: usize, gen: u64 },
}

/// Per-node gray degradation factors, realized from applied
/// [`GrayPlan`]s. `link` scales the node's NIC capacity, `mem` its
/// memory-bus (compute-side) capacity; `1.0` everywhere means nominal.
/// Allocated lazily by the first [`Platform::apply_gray_plan`] so
/// gray-free runs carry no state (and keep their digests).
struct GrayState {
    link: Vec<f64>,
    mem: Vec<f64>,
}

/// Fluid-mode machinery: the bandwidth model, the storage pool and the
/// flow → owner ownership map.
pub(crate) struct FluidEngine {
    pub(crate) cluster: ClusterModel,
    /// Absolute node indices (in the cluster model) serving storage.
    storage_hosts: Vec<usize>,
    storage_up: Vec<bool>,
    chains: Vec<Arc<Chain>>,
    /// Per storage-pool index: the (chain, target) replicas it hosts.
    host_targets: Vec<Vec<(usize, Arc<StorageTarget>)>>,
    pub(crate) flow_owner: BTreeMap<FlowId, Owner>,
}

impl FluidEngine {
    fn alive_storage(&self) -> Vec<usize> {
        self.storage_hosts
            .iter()
            .enumerate()
            .filter(|&(j, _)| self.storage_up[j])
            .map(|(_, &h)| h)
            .collect()
    }
}

/// The scheduling platform — see the module docs for the two modes.
pub struct Platform {
    pub(crate) now: SimTime,
    ckpt_interval: u64,
    pub(crate) nodes: Vec<Node>,
    tasks: BTreeMap<TaskId, Task>,
    next_id: u64,
    pub(crate) timers: EventQueue<Ev>,
    manager: Arc<ClusterManager>,
    pub(crate) engine: Option<FluidEngine>,
    repair_delay_s: u64,
    validation_s: u64,
    busy_node_ns: u128,
    healthy_node_ns: u128,
    pub(crate) busy_nodes: usize,
    up_nodes: usize,
    /// Work lost to failures, in node-units.
    lost_work: u64,
    preemptions: u64,
    failures: u64,
    /// Tasks rolled back by a failure and not yet re-placed, with the
    /// rollback time — the open end of a recovery interval.
    recovering: BTreeMap<TaskId, SimTime>,
    /// Closed failure-recovery intervals: whole seconds from a failure
    /// rollback to the task running again, one entry per recovery.
    recovery_s: Vec<u64>,
    pub(crate) obs: Option<(Arc<Recorder>, TrackId)>,
    /// Lazily-created `platform/serve` observability track (created on the
    /// first serving submission so train-only runs keep their digests).
    pub(crate) serve_track: Option<TrackId>,
    pub(crate) serving: BTreeMap<crate::serving::ServingId, crate::serving::ServingJob>,
    pub(crate) next_serving: u64,
    pub(crate) dirty: bool,
    /// The signal-driven gray-failure detector, when configured.
    detector: Option<Detector>,
    /// Current gray degradation factors (lazily allocated).
    gray: Option<GrayState>,
    /// Per-node count of detector quarantines, decayed on clean
    /// probation — the exponent of the adaptive readmission backoff.
    flaps: Vec<u32>,
    /// Nodes quarantined by detector verdicts (as opposed to hard
    /// failures) so far.
    detector_quarantines: u64,
}

impl Platform {
    /// Submit a job. It is placed immediately if resources allow,
    /// otherwise queued (possibly preempting lower-priority tasks).
    pub fn submit(&mut self, spec: JobSpec) -> Result<TaskId, SubmitError> {
        if spec.nodes == 0 {
            return Err(SubmitError::ZeroNodes);
        }
        if spec.work == 0 {
            return Err(SubmitError::ZeroWork);
        }
        if spec.nodes > self.nodes.len() {
            return Err(SubmitError::TooLarge {
                need: spec.nodes,
                cluster: self.nodes.len(),
            });
        }
        let id = TaskId(self.next_id);
        self.next_id += 1;
        self.tasks.insert(
            id,
            Task {
                name: spec.name,
                need: spec.nodes,
                priority: spec.priority,
                work: spec.work,
                step_bytes: spec.step_bytes,
                ckpt_bytes: spec.ckpt_bytes,
                state: TaskState::Queued,
                assigned: Vec::new(),
                cross_zone: false,
                progress: 0,
                ckpt: 0,
                prev_ckpt: 0,
                ckpt_poisoned: false,
                placed_at: self.now,
                epoch: 0,
                phase: Phase::Idle,
                flows: Vec::new(),
                ckpt_seq: 0,
                pending: None,
                stretch: 1.0,
                step_started: self.now,
            },
        );
        self.schedule_now();
        Ok(id)
    }

    /// Advance simulated time by `dt_s` seconds, processing every
    /// scheduling event (completions, failures, repairs, flow endings) on
    /// the way.
    pub fn tick(&mut self, dt_s: u64) {
        self.run_for(SimDuration::from_secs(dt_s));
    }

    /// Advance simulated time by `d`.
    pub fn run_for(&mut self, d: SimDuration) {
        self.run_until(self.now + d);
    }

    /// Advance simulated time to `t` (which must not be in the past).
    pub fn run_until(&mut self, t: SimTime) {
        assert!(t.0 >= self.now.0, "cannot run the platform backwards");
        loop {
            let timer_next = self.timers.peek_time();
            let fluid_next = self
                .engine
                .as_mut()
                .and_then(|e| e.cluster.fluid.next_completion_time());
            let next = match (timer_next, fluid_next) {
                (Some(a), Some(b)) => Some(if a.0 <= b.0 { a } else { b }),
                (a, b) => a.or(b),
            };
            match next {
                Some(n) if n.0 <= t.0 => {
                    self.advance_to(n);
                    // Timers first: a failure at t must cancel flows before
                    // the fluid sim hands us their completions at t.
                    while self.timers.peek_time() == Some(n) {
                        let (_, ev) = self.timers.pop().expect("peeked event exists");
                        self.handle_event(ev);
                    }
                    // Re-peek each round — handlers may have canceled flows.
                    loop {
                        let due = self
                            .engine
                            .as_mut()
                            .and_then(|e| e.cluster.fluid.next_completion_time());
                        if due != Some(n) {
                            break;
                        }
                        let done = self
                            .engine
                            .as_mut()
                            .and_then(|e| e.cluster.fluid.advance_to_next_completion())
                            .map(|(_, f)| f)
                            .unwrap_or_default();
                        self.handle_flows(done);
                    }
                    if self.dirty {
                        self.schedule_now();
                    }
                }
                _ => {
                    self.advance_to(t);
                    break;
                }
            }
        }
        if self.dirty {
            self.schedule_now();
        }
    }

    /// Move the clock (and the fluid sim) to `t`, integrating busy and
    /// healthy node-time on the way.
    fn advance_to(&mut self, t: SimTime) {
        let dt = (t.0 - self.now.0) as u128;
        if dt == 0 {
            return;
        }
        self.busy_node_ns += self.busy_nodes as u128 * dt;
        self.healthy_node_ns += self.up_nodes as u128 * dt;
        self.now = t;
        if let Some(e) = self.engine.as_mut() {
            e.cluster.fluid.advance_to(t);
        }
    }

    // ----- failures and repairs ------------------------------------------

    /// A node fails *now*: the task running on it rolls back to its last
    /// durable checkpoint and re-queues (§VII-A: "only the last 5 minutes
    /// of progress are lost"), and the node enters the Suspect →
    /// Quarantined health lifecycle. The node stays out of the pool until
    /// [`Platform::heal_node`] (operator repair) — injected fault plans
    /// auto-repair instead.
    pub fn fail_node(&mut self, node: usize) {
        self.fail_node_internal(node, false);
        self.schedule_now();
    }

    fn fail_node_internal(&mut self, node: usize, auto_repair: bool) {
        if !self.nodes[node].up {
            return;
        }
        self.nodes[node].up = false;
        self.up_nodes -= 1;
        self.nodes[node].gen += 1;
        let gen = self.nodes[node].gen;
        self.failures += 1;
        self.manager.mark_suspect(&node_name(node));
        self.note("node-fail");
        self.timers.schedule(
            self.now + SimDuration::from_secs(DETECT_CONFIRM_S),
            Ev::ConfirmFail { node, gen },
        );
        match self.nodes[node].running {
            Some(Owner::Train(id)) => self.rollback_and_requeue(id),
            Some(Owner::Serve(sid, rep)) => self.serve_replica_down(sid, rep),
            None => {}
        }
        if auto_repair {
            let delay = self.repair_delay_s.max(DETECT_CONFIRM_S + 1);
            self.timers.schedule(
                self.now + SimDuration::from_secs(delay),
                Ev::RepairDone { node, gen },
            );
        }
        self.dirty = true;
    }

    /// Return a repaired node to the pool immediately (the operator path:
    /// repair + validation have already happened off-line). A no-op on
    /// healthy nodes, so sweeps may call it unconditionally.
    pub fn heal_node(&mut self, node: usize) {
        if self.nodes[node].up {
            return;
        }
        self.nodes[node].gen += 1; // invalidate pending repair timers
        let name = node_name(node);
        if self.manager.health(&name) == Some(HealthState::Suspect) {
            self.manager.mark_failed(&name);
        }
        if self.manager.health(&name) == Some(HealthState::Quarantined) {
            self.manager.begin_validation(&name);
        }
        self.manager.conclude_validation(&name, true);
        self.nodes[node].up = true;
        self.up_nodes += 1;
        self.note("node-rejoin");
        self.schedule_now();
    }

    /// Schedule every fault in `plan` for injection at its planned time
    /// (clamped to now at the earliest). Failed nodes auto-repair after
    /// the configured repair delay and re-validate before rejoining.
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan) {
        for f in &plan.faults {
            let at_ns = if f.at_s <= 0.0 {
                0
            } else {
                (f.at_s * 1e9) as u64
            };
            let at = SimTime(at_ns.max(self.now.0));
            self.timers.schedule(
                at,
                Ev::Fault {
                    node: f.node,
                    action: f.action,
                },
            );
        }
    }

    /// Schedule every gray episode in `plan` (clamped to now at the
    /// earliest). Each episode expands into a piecewise-constant
    /// [`Envelope`] replayed as timer events: a straggler or thermal
    /// throttle stretches the node's compute (memory-bus capacity in
    /// fluid mode, wall-clock stretch in declared mode), a flapping link
    /// square-waves the node's NIC between nominal and the flash-cut
    /// trickle. Nothing is announced to the scheduler or the health
    /// machine — only the configured detector can notice, from signals.
    pub fn apply_gray_plan(&mut self, plan: &GrayPlan) {
        for e in &plan.events {
            let node = e.node % self.nodes.len();
            let start_ns = if e.at_s <= 0.0 {
                0
            } else {
                (e.at_s * 1e9) as u64
            };
            let start = SimTime(start_ns.max(self.now.0));
            let (env, is_link) = match e.fault {
                GrayFault::Straggler {
                    slowdown,
                    onset_ramp_s,
                } => (
                    Envelope::ramp(1.0 / slowdown, onset_ramp_s, e.duration_s),
                    false,
                ),
                GrayFault::ThermalThrottle {
                    factor,
                    onset_ramp_s,
                } => (Envelope::ramp(factor, onset_ramp_s, e.duration_s), false),
                GrayFault::FlappingLink { period_s, duty } => (
                    Envelope::square(period_s, duty, FLASH_CUT_FACTOR, e.duration_s),
                    true,
                ),
            };
            for ph in env.phases() {
                let (link, mem) = if is_link {
                    (Some(ph.factor), None)
                } else {
                    (None, Some(ph.factor))
                };
                self.timers
                    .schedule(start + ph.offset, Ev::GrayPhase { node, link, mem });
            }
        }
    }

    /// One gray envelope phase lands: update the node's factors and
    /// realize them — fluid mode degrades the node's NIC / memory-bus
    /// resources in the bandwidth model; declared mode re-times any
    /// running task on the node under the new compute stretch.
    fn apply_gray_phase(&mut self, node: usize, link: Option<f64>, mem: Option<f64>) {
        let n = self.nodes.len();
        let gray = self.gray.get_or_insert_with(|| GrayState {
            link: vec![1.0; n],
            mem: vec![1.0; n],
        });
        if let Some(f) = link {
            gray.link[node] = f;
        }
        if let Some(f) = mem {
            gray.mem[node] = f;
        }
        let (l, m) = (gray.link[node], gray.mem[node]);
        if self.engine.is_some() {
            self.with_engine(|_, eng| {
                let (mem_r, nic_r) = node_probe_resources(eng, node);
                if link.is_some() {
                    eng.cluster
                        .fluid
                        .modulate(nic_r, l)
                        .expect("gray link factor in (0, 1]");
                }
                if mem.is_some() {
                    eng.cluster
                        .fluid
                        .modulate(mem_r, m)
                        .expect("gray compute factor in (0, 1]");
                }
            });
        } else if mem.is_some() {
            self.resync_declared_node(node);
        }
        self.note("gray-phase");
    }

    /// The compute stretch a gray degradation imposes on `node`: steps
    /// there take `stretch ×` nominal wall-clock (1.0 when nominal).
    fn gray_stretch(&self, node: usize) -> f64 {
        self.gray.as_ref().map_or(1.0, |g| 1.0 / g.mem[node])
    }

    /// The link capacity factor gray degradation leaves on `node`.
    fn gray_link(&self, node: usize) -> f64 {
        self.gray.as_ref().map_or(1.0, |g| g.link[node])
    }

    /// The stretch of a declared-mode task: the slowest of its nodes
    /// (the synchronous-training property — every step waits for the
    /// straggler).
    fn assigned_stretch(&self, assigned: &[usize]) -> f64 {
        let mut s = 1.0f64;
        for &n in assigned {
            s = s.max(self.gray_stretch(n));
        }
        s
    }

    /// A gray phase boundary re-times the declared-mode task running on
    /// `node`: commit the analytically-earned progress, restart the
    /// clock under the new stretch, and reschedule completion. The
    /// runtime captures a synchronization checkpoint at the boundary
    /// (progress == ckpt), mirroring what [`try_place`] does on
    /// placement.
    fn resync_declared_node(&mut self, node: usize) {
        debug_assert!(self.engine.is_none());
        let Some(Owner::Train(id)) = self.nodes[node].running else {
            return;
        };
        if self.tasks[&id].state != TaskState::Running {
            return;
        }
        let live = self.live_progress(&self.tasks[&id]);
        let stretch = self.assigned_stretch(&self.tasks[&id].assigned);
        let t = self.tasks.get_mut(&id).expect("running task exists");
        t.progress = live;
        t.ckpt = live;
        t.placed_at = self.now;
        t.stretch = stretch;
        t.epoch += 1;
        let epoch = t.epoch;
        let remaining = t.work - t.progress;
        self.timers.schedule(
            self.now + stretched_secs(remaining, stretch),
            Ev::TaskDone { id, epoch },
        );
    }

    /// Roll a running task back to its last durable checkpoint and
    /// re-queue it. With a poisoned checkpoint the rollback falls back one
    /// more interval (§VII-A: checksum-exposed corruption).
    fn rollback_and_requeue(&mut self, id: TaskId) {
        self.cancel_task_flows(id);
        let interval = self.ckpt_interval;
        let fluid = self.engine.is_some();
        let (live, target) = {
            let t = &self.tasks[&id];
            if fluid {
                let target = if t.ckpt_poisoned {
                    t.prev_ckpt.min(t.ckpt)
                } else {
                    t.ckpt
                };
                (t.progress, target)
            } else {
                let live = self.live_progress(t);
                let ck = self.live_ckpt(t);
                let target = if t.ckpt_poisoned {
                    ck.saturating_sub(interval).max(t.progress)
                } else {
                    ck
                };
                (live, target)
            }
        };
        let t = self.tasks.get_mut(&id).expect("rolled-back task exists");
        if t.ckpt_poisoned {
            t.ckpt_seq = t.ckpt_seq.saturating_sub(1);
        }
        self.lost_work += (live - target) * t.assigned.len() as u64;
        t.progress = target;
        t.ckpt = target;
        t.ckpt_poisoned = false;
        self.recovering.insert(id, self.now);
        self.note("rollback");
        self.release(id, TaskState::Queued);
    }

    fn handle_event(&mut self, ev: Ev) {
        match ev {
            Ev::TaskDone { id, epoch } => {
                let valid = self
                    .tasks
                    .get(&id)
                    .is_some_and(|t| t.epoch == epoch && t.state == TaskState::Running);
                if valid {
                    let t = self.tasks.get_mut(&id).expect("checked above");
                    t.progress = t.work;
                    t.ckpt = t.work;
                    self.release(id, TaskState::Succeeded);
                }
            }
            Ev::ConfirmFail { node, gen } => {
                if self.nodes[node].gen == gen && !self.nodes[node].up {
                    self.manager.mark_failed(&node_name(node));
                    self.note("quarantine");
                }
            }
            Ev::RepairDone { node, gen } => {
                if self.nodes[node].gen == gen && !self.nodes[node].up {
                    let name = node_name(node);
                    if self.manager.health(&name) == Some(HealthState::Suspect) {
                        self.manager.mark_failed(&name);
                    }
                    self.manager.begin_validation(&name);
                    self.timers.schedule(
                        self.now + SimDuration::from_secs(self.validation_s),
                        Ev::ValidationDone { node, gen },
                    );
                }
            }
            Ev::ValidationDone { node, gen } => {
                if self.nodes[node].gen == gen && !self.nodes[node].up {
                    let name = node_name(node);
                    if let Some(det) = &self.detector {
                        // Detector mode: readmission goes through the
                        // probation leash instead of straight to Healthy.
                        self.manager.conclude_validation_to_probation(&name);
                        self.timers.schedule(
                            self.now + SimDuration::from_secs(det.config().probation_s.max(1)),
                            Ev::ProbationEnd { node, gen },
                        );
                        self.note("node-probation");
                    } else {
                        self.manager.conclude_validation(&name, true);
                        self.note("node-rejoin");
                    }
                    self.nodes[node].up = true;
                    self.up_nodes += 1;
                    self.dirty = true;
                }
            }
            Ev::ProbationEnd { node, gen } => {
                if self.nodes[node].gen == gen
                    && self.nodes[node].up
                    && self.manager.probation_pass(&node_name(node))
                {
                    // A clean probation decays the flap backoff.
                    self.flaps[node] = self.flaps[node].saturating_sub(1);
                    self.note("node-rejoin");
                }
            }
            Ev::GrayPhase { node, link, mem } => self.apply_gray_phase(node, link, mem),
            Ev::DetectorSweep => self.detector_sweep(),
            Ev::Fault { node, action } => self.handle_fault(node, action),
            Ev::ServeArrive { sid } => self.serve_arrival(sid),
            Ev::ServeSeg { sid, rep, epoch } => self.serve_seg_event(sid, rep, epoch),
            Ev::LinkRestore { node } => {
                if let Some(eng) = self.engine.as_mut() {
                    if let Some(&(r, _)) = eng.cluster.hw[node].ib_send(0).0.last() {
                        eng.cluster
                            .fluid
                            .restore(r)
                            .expect("cluster IB resource registered");
                    }
                }
                self.note("link-restored");
            }
            Ev::StorageRepair { host } => self.repair_storage_host(host),
        }
    }

    fn handle_fault(&mut self, node: usize, action: FaultAction) {
        match action {
            FaultAction::KillRank { .. } => {
                let n = node % self.nodes.len();
                self.fail_node_internal(n, true);
            }
            FaultAction::DegradeLink { factor, .. } => {
                let n = node % self.nodes.len();
                if let Some(eng) = self.engine.as_mut() {
                    if let Some(&(r, _)) = eng.cluster.hw[n].ib_send(0).0.last() {
                        eng.cluster
                            .fluid
                            .degrade(r, factor)
                            .expect("fault plan degrade factor in (0, 1]");
                        self.timers.schedule(
                            self.now + SimDuration::from_secs(FLASH_CUT_REPAIR_S),
                            Ev::LinkRestore { node: n },
                        );
                    }
                }
                self.note("link-degraded");
            }
            FaultAction::CorruptData { .. } => {
                let n = node % self.nodes.len();
                // Serving replicas hold no checkpoints to poison; a flipped
                // bit in a KV cache surfaces as one bad response, not a
                // recovery hazard.
                if let Some(Owner::Train(id)) = self.nodes[n].running {
                    let t = self.tasks.get_mut(&id).expect("running task exists");
                    t.ckpt_poisoned = true;
                    self.note("ckpt-poisoned");
                }
            }
            FaultAction::Tolerate { .. } => {
                // In-band retries cost nothing visible in the trajectory,
                // which is exactly why they need their own counter — a
                // fleet quietly retrying thousands of NVLink errors looks
                // healthy until it is not.
                if let Some((rec, _)) = &self.obs {
                    rec.counter_add("platform/sched/tolerated", 1.0);
                }
                self.note("tolerated")
            }
            FaultAction::KillStorageTarget { target } => self.fail_storage_host(target),
        }
    }

    /// Kill a storage host: its targets die, affected chains shed the dead
    /// member and keep serving from the mirror, repair is scheduled.
    fn fail_storage_host(&mut self, target: usize) {
        let Some(eng) = self.engine.as_mut() else {
            self.note("storage-fault-ignored");
            return;
        };
        let host = target % eng.storage_hosts.len();
        if !eng.storage_up[host] {
            return;
        }
        eng.storage_up[host] = false;
        for (chain_idx, t) in &eng.host_targets[host] {
            t.fail();
            let chain = &eng.chains[*chain_idx];
            if chain.replicas() > 1 {
                chain.remove_dead();
            }
        }
        self.manager.mark_failed(&storage_name(host));
        self.timers.schedule(
            self.now + SimDuration::from_secs(self.repair_delay_s.max(1)),
            Ev::StorageRepair { host },
        );
        self.note("storage-host-fail");
    }

    fn repair_storage_host(&mut self, host: usize) {
        let Some(eng) = self.engine.as_mut() else {
            return;
        };
        if eng.storage_up[host] {
            return;
        }
        for (chain_idx, t) in &eng.host_targets[host] {
            let chain = &eng.chains[*chain_idx];
            if chain.target_names().iter().any(|n| n == t.name()) {
                // Still a member (the chain could not afford to drop it):
                // its data survives the outage.
                t.revive();
            } else {
                // Evicted: rejoin empty and let the chain re-sync it.
                t.wipe();
                t.revive();
                let _ = chain.add_replica(t.clone());
            }
        }
        eng.storage_up[host] = true;
        let name = storage_name(host);
        self.manager.begin_validation(&name);
        self.manager.conclude_validation(&name, true);
        self.note("storage-host-rejoin");
    }

    // ----- signal-driven detection ---------------------------------------

    /// One detector sweep: gather the observable signals for every up
    /// node — NIC and memory-bus probe throughput (measured in the fluid
    /// model by a hostping-style saturating probe; in declared mode the
    /// probes see the realized capacity factors directly) plus the
    /// heartbeat stretch ratio — feed them to the detector, and
    /// quarantine any node whose breach streak confirms. Down nodes are
    /// skipped and their learned state reset so rejoining hardware
    /// relearns a fresh baseline.
    fn detector_sweep(&mut self) {
        let Some(mut det) = self.detector.take() else {
            return;
        };
        let n = self.nodes.len();
        let mut samples: Vec<Option<[f64; 2]>> = vec![None; n];
        self.with_opt_engine(|p, mut eng| {
            for (node, slot) in samples.iter_mut().enumerate() {
                if !p.nodes[node].up {
                    continue;
                }
                *slot = Some(match eng.as_deref_mut() {
                    Some(eng) => {
                        let (mem_r, nic_r) = node_probe_resources(eng, node);
                        [
                            probe_resource(&mut eng.cluster.fluid, nic_r),
                            probe_resource(&mut eng.cluster.fluid, mem_r),
                        ]
                    }
                    // Declared mode has no bandwidth model; the probe
                    // measures the realized capacity factor of the path.
                    None => [p.gray_link(node), 1.0 / p.gray_stretch(node)],
                });
            }
        });
        let mut suspects = Vec::new();
        for (node, sample) in samples.into_iter().enumerate() {
            match sample {
                Some(m) => {
                    let hb = self.gray_stretch(node);
                    if det.sweep_node(self.now, node, m, hb) {
                        suspects.push(node);
                    }
                }
                None => det.reset_node(node),
            }
        }
        let period = det.config().probe_period_s;
        self.detector = Some(det);
        for node in suspects {
            if let Some((rec, _)) = &self.obs {
                rec.counter_add("platform/detector/suspects", 1.0);
            }
            self.note("detector-suspect");
            self.quarantine_from_detector(node);
        }
        self.timers
            .schedule(self.now + SimDuration::from_secs(period), Ev::DetectorSweep);
    }

    /// Act on a confirmed suspect verdict: pull the node from the pool
    /// exactly as a hard failure would (rollback / replica loss, Suspect
    /// → Quarantined confirmation), then hold it for the adaptive
    /// backoff — `quarantine_hold_s × 2^flaps` — before repair enters
    /// validation and the probation leash. The detector can be wrong;
    /// when it is, this is the false-quarantine capacity cost the bench
    /// measures.
    fn quarantine_from_detector(&mut self, node: usize) {
        if !self.nodes[node].up {
            return;
        }
        let cfg = *self
            .detector
            .as_ref()
            .expect("sweep only runs with a detector")
            .config();
        self.nodes[node].up = false;
        self.up_nodes -= 1;
        self.nodes[node].gen += 1;
        let gen = self.nodes[node].gen;
        self.detector_quarantines += 1;
        if let Some((rec, _)) = &self.obs {
            rec.counter_add("platform/detector/quarantines", 1.0);
        }
        self.manager.mark_suspect(&node_name(node));
        self.note("detector-quarantine");
        self.timers.schedule(
            self.now + SimDuration::from_secs(DETECT_CONFIRM_S),
            Ev::ConfirmFail { node, gen },
        );
        match self.nodes[node].running {
            Some(Owner::Train(id)) => self.rollback_and_requeue(id),
            Some(Owner::Serve(sid, rep)) => self.serve_replica_down(sid, rep),
            None => {}
        }
        let backoff = 1u64 << self.flaps[node].min(cfg.max_flap_backoff);
        self.flaps[node] += 1;
        let hold = (cfg.quarantine_hold_s.max(1) * backoff).max(DETECT_CONFIRM_S + 1);
        self.timers.schedule(
            self.now + SimDuration::from_secs(hold),
            Ev::RepairDone { node, gen },
        );
        self.dirty = true;
    }

    // ----- fluid-mode phases ---------------------------------------------

    /// Run `f` with the engine detached so it can borrow the rest of
    /// `self` freely. No-op (None) in declared mode.
    pub(crate) fn with_engine<R>(
        &mut self,
        f: impl FnOnce(&mut Self, &mut FluidEngine) -> R,
    ) -> Option<R> {
        let mut eng = self.engine.take()?;
        let r = f(self, &mut eng);
        self.engine = Some(eng);
        Some(r)
    }

    /// Like [`with_engine`], but also runs `f` in declared mode (with
    /// `None`) — for code paths serving shares between the two modes.
    pub(crate) fn with_opt_engine<R>(
        &mut self,
        f: impl FnOnce(&mut Self, Option<&mut FluidEngine>) -> R,
    ) -> R {
        let mut eng = self.engine.take();
        let r = f(self, eng.as_mut());
        self.engine = eng;
        r
    }

    fn cancel_task_flows(&mut self, id: TaskId) {
        self.with_engine(|p, eng| {
            let t = p.tasks.get_mut(&id).expect("task exists");
            for f in t.flows.drain(..) {
                eng.flow_owner.remove(&f);
                eng.cluster.fluid.cancel_flow(f);
            }
            t.phase = Phase::Idle;
        });
    }

    /// Flow completions from the fluid sim: group by owner and fire phase
    /// transitions for owners whose whole flow set finished.
    fn handle_flows(&mut self, done: Vec<FlowId>) {
        self.with_engine(|p, eng| {
            let mut by_owner: BTreeMap<Owner, Vec<FlowId>> = BTreeMap::new();
            for f in done {
                if let Some(o) = eng.flow_owner.remove(&f) {
                    by_owner.entry(o).or_default().push(f);
                }
            }
            for (owner, fs) in by_owner {
                match owner {
                    Owner::Train(id) => {
                        let t = p.tasks.get_mut(&id).expect("flow owner exists");
                        t.flows.retain(|f| !fs.contains(f));
                        if t.flows.is_empty() {
                            p.phase_complete(eng, id);
                        }
                    }
                    Owner::Serve(sid, rep) => p.serve_flows_done(eng, sid, rep, &fs),
                }
            }
        });
    }

    fn phase_complete(&mut self, eng: &mut FluidEngine, id: TaskId) {
        let phase = self.tasks[&id].phase;
        match phase {
            Phase::Idle => {}
            Phase::Restore => {
                self.verify_restore(eng, id);
                self.start_step(eng, id);
            }
            Phase::Step => {
                if let Some(mut det) = self.detector.take() {
                    let dur = self.now.0 - self.tasks[&id].step_started.0;
                    if det.observe_step(self.now, id.0, dur) {
                        if let Some((rec, _)) = &self.obs {
                            rec.counter_add("platform/detector/slow_jobs", 1.0);
                        }
                        self.note("detector-slow-job");
                    }
                    self.detector = Some(det);
                }
                let t = self.tasks.get_mut(&id).expect("task exists");
                t.progress += 1;
                if t.progress >= t.work {
                    t.ckpt = t.work;
                    self.release(id, TaskState::Succeeded);
                } else if t.progress - t.ckpt >= self.ckpt_interval {
                    self.start_ckpt(eng, id);
                } else {
                    self.start_step(eng, id);
                }
            }
            Phase::Ckpt => {
                let durable = self.write_ckpt_record(eng, id);
                let t = self.tasks.get_mut(&id).expect("task exists");
                if durable {
                    t.prev_ckpt = t.ckpt;
                    t.ckpt = t.progress;
                    t.ckpt_seq += 1;
                    t.ckpt_poisoned = false;
                }
                if let Some(next) = t.pending.take() {
                    if next == TaskState::Interrupted {
                        // The interruption signal was honored: the job had
                        // the chance to save, so no work is lost.
                        t.ckpt = t.progress;
                    }
                    self.note("interrupt-complete");
                    self.release(id, next);
                } else if durable {
                    self.note("ckpt");
                    self.start_step(eng, id);
                } else {
                    self.note("ckpt-failed");
                    self.start_step(eng, id);
                }
            }
        }
    }

    fn start_step(&mut self, eng: &mut FluidEngine, id: TaskId) {
        let (assigned, step_bytes) = {
            let t = &self.tasks[&id];
            (t.assigned.clone(), t.step_bytes)
        };
        let routes = jobflow::step_routes(&eng.cluster, &assigned);
        let work = jobflow::ring_edge_bytes(assigned.len(), step_bytes).max(1.0);
        let t = self.tasks.get_mut(&id).expect("task exists");
        t.phase = Phase::Step;
        t.step_started = self.now;
        for route in &routes {
            let f = eng.cluster.fluid.start_flow(work, route);
            eng.flow_owner.insert(f, Owner::Train(id));
            t.flows.push(f);
        }
    }

    fn start_ckpt(&mut self, eng: &mut FluidEngine, id: TaskId) {
        let alive = eng.alive_storage();
        if alive.is_empty() {
            // Nowhere to write: skip this save and keep training; an
            // interrupt hand-off proceeds with the in-memory state.
            self.note("ckpt-skipped");
            let t = self.tasks.get_mut(&id).expect("task exists");
            if let Some(next) = t.pending.take() {
                if next == TaskState::Interrupted {
                    t.ckpt = t.progress;
                }
                self.release(id, next);
            } else {
                self.start_step(eng, id);
            }
            return;
        }
        let (assigned, ckpt_bytes) = {
            let t = &self.tasks[&id];
            (t.assigned.clone(), t.ckpt_bytes)
        };
        let routes = jobflow::ckpt_routes(&eng.cluster, &assigned, &alive);
        let work = (ckpt_bytes / assigned.len() as f64).max(1.0);
        let t = self.tasks.get_mut(&id).expect("task exists");
        t.phase = Phase::Ckpt;
        for route in &routes {
            let f = eng.cluster.fluid.start_flow(work, route);
            eng.flow_owner.insert(f, Owner::Train(id));
            t.flows.push(f);
        }
    }

    fn start_restore(&mut self, eng: &mut FluidEngine, id: TaskId) {
        let alive = eng.alive_storage();
        if alive.is_empty() {
            self.start_step(eng, id);
            return;
        }
        let (assigned, ckpt_bytes) = {
            let t = &self.tasks[&id];
            (t.assigned.clone(), t.ckpt_bytes)
        };
        let routes = jobflow::restore_routes(&eng.cluster, &assigned, &alive);
        let work = (ckpt_bytes / assigned.len() as f64).max(1.0);
        let t = self.tasks.get_mut(&id).expect("task exists");
        t.phase = Phase::Restore;
        for route in &routes {
            let f = eng.cluster.fluid.start_flow(work, route);
            eng.flow_owner.insert(f, Owner::Train(id));
            t.flows.push(f);
        }
    }

    /// Write this task's checkpoint record (task id, progress, sequence)
    /// to its 3FS chain. One retry after shedding dead members.
    fn write_ckpt_record(&mut self, eng: &mut FluidEngine, id: TaskId) -> bool {
        let (progress, seq) = {
            let t = &self.tasks[&id];
            (t.progress, t.ckpt_seq)
        };
        let chain = &eng.chains[id.0 as usize % eng.chains.len()];
        let mut data = Vec::with_capacity(24);
        data.extend_from_slice(&id.0.to_le_bytes());
        data.extend_from_slice(&progress.to_le_bytes());
        data.extend_from_slice(&seq.to_le_bytes());
        let chunk = ChunkId {
            ino: id.0,
            idx: seq,
        };
        let bytes = Bytes::copy_from_slice(&data);
        match chain.write(chunk, bytes.clone()) {
            Ok(_) => true,
            Err(_) => {
                if chain.replicas() > 1 {
                    chain.remove_dead();
                }
                chain.write(chunk, bytes).is_ok()
            }
        }
    }

    /// Cross-check the restored state against the durable record. Purely
    /// observational: a mismatch or degraded read is noted, not fatal.
    fn verify_restore(&mut self, eng: &mut FluidEngine, id: TaskId) {
        let (progress, seq) = {
            let t = &self.tasks[&id];
            (t.progress, t.ckpt_seq)
        };
        if seq == 0 {
            return;
        }
        let chain = &eng.chains[id.0 as usize % eng.chains.len()];
        match chain.read(ChunkId {
            ino: id.0,
            idx: seq - 1,
        }) {
            Ok(b) if b.len() == 24 => {
                let rec = u64::from_le_bytes(b.as_slice()[8..16].try_into().expect("8 bytes"));
                if rec != progress {
                    self.note("restore-mismatch");
                }
            }
            Ok(_) => self.note("restore-mismatch"),
            Err(_) => self.note("restore-degraded"),
        }
    }

    // ----- scheduling ----------------------------------------------------

    /// Deliver the interruption signal: checkpoint, then release.
    /// Declared-mode saves are instantaneous; fluid-mode tasks enter
    /// `Interrupting` and keep their nodes until the save lands on 3FS.
    pub(crate) fn signal_interrupt(&mut self, id: TaskId) {
        self.preemptions += 1;
        self.note("interrupt-signal");
        if self.engine.is_none() {
            let t = &self.tasks[&id];
            let live = self.live_progress(t);
            let t = self.tasks.get_mut(&id).expect("task exists");
            t.progress = live;
            t.ckpt = live;
            self.release(id, TaskState::Interrupted);
            return;
        }
        let phase = self.tasks[&id].phase;
        match phase {
            Phase::Step => {
                self.cancel_task_flows(id);
                let t = self.tasks.get_mut(&id).expect("task exists");
                t.pending = Some(TaskState::Interrupted);
                t.state = TaskState::Interrupting;
                self.with_engine(|p, eng| p.start_ckpt(eng, id));
            }
            Phase::Ckpt => {
                let t = self.tasks.get_mut(&id).expect("task exists");
                t.pending = Some(TaskState::Interrupted);
                t.state = TaskState::Interrupting;
            }
            Phase::Restore | Phase::Idle => {
                self.cancel_task_flows(id);
                self.release(id, TaskState::Interrupted);
            }
        }
    }

    /// Stop a task and free its nodes, entering `new_state`.
    fn release(&mut self, id: TaskId, new_state: TaskState) {
        let t = self.tasks.get_mut(&id).expect("task exists");
        let assigned = std::mem::take(&mut t.assigned);
        let (name, placed_at, progress) = (t.name.clone(), t.placed_at, t.progress);
        t.cross_zone = false;
        t.state = new_state;
        t.phase = Phase::Idle;
        t.pending = None;
        t.epoch += 1;
        debug_assert!(t.flows.is_empty(), "released task has no live flows");
        for &n in &assigned {
            self.nodes[n].running = None;
        }
        self.busy_nodes -= assigned.len();
        self.dirty = true;
        if let Some((rec, track)) = &self.obs {
            rec.span(
                *track,
                &name,
                placed_at.0,
                self.now.0 - placed_at.0,
                progress as f64,
            );
        }
    }

    /// Priority scheduling with preemption and the cross-zone rule, plus
    /// backfill: smaller tasks run whenever nodes would otherwise idle.
    pub(crate) fn schedule_now(&mut self) {
        self.dirty = false;
        // Serving first: replicas are latency-bound and non-preemptible, so
        // they get first pick of free nodes (and may signal training
        // victims) before any training placement runs.
        self.schedule_serving();
        // Preemption pass for the highest-priority waiting task only.
        let top = self
            .tasks
            .iter()
            .filter(|(_, t)| matches!(t.state, TaskState::Queued | TaskState::Interrupted))
            .min_by_key(|(&id, t)| (-t.priority, id))
            .map(|(&id, t)| (id, t.need, t.priority));
        if let Some((id, need, prio)) = top {
            if !self.try_place(id, need) {
                // Count nodes already being freed by in-flight interrupts
                // before signaling more victims.
                let mut freed = self.free_up_count()
                    + self
                        .tasks
                        .values()
                        .filter(|t| t.state == TaskState::Interrupting)
                        .map(|t| t.assigned.len())
                        .sum::<usize>();
                if freed < need {
                    let mut victims: Vec<(i32, TaskId)> = self
                        .tasks
                        .iter()
                        .filter(|(_, t)| t.state == TaskState::Running && t.priority < prio)
                        .map(|(&vid, t)| (t.priority, vid))
                        .collect();
                    victims.sort(); // lowest priority first
                    let mut to_evict = Vec::new();
                    for (_, vid) in victims {
                        if freed >= need {
                            break;
                        }
                        freed += self.tasks[&vid].assigned.len();
                        to_evict.push(vid);
                    }
                    if freed >= need {
                        for vid in to_evict {
                            self.signal_interrupt(vid);
                        }
                        // Declared-mode interrupts complete instantly, so
                        // the nodes may already be free; fluid-mode victims
                        // finish their saves first and re-trigger us.
                        let _ = self.try_place(id, need);
                    }
                }
            }
        }
        // Backfill pass — but not while an interruption is in flight:
        // backfill would steal the partially-freed nodes the signaled
        // preemptor is waiting for.
        let interrupting = self
            .tasks
            .values()
            .any(|t| t.state == TaskState::Interrupting);
        if !interrupting {
            let mut waiting: Vec<(i32, TaskId, usize)> = self
                .tasks
                .iter()
                .filter(|(_, t)| matches!(t.state, TaskState::Queued | TaskState::Interrupted))
                .map(|(&id, t)| (-t.priority, id, t.need))
                .collect();
            waiting.sort();
            for (_, id, need) in waiting {
                let _ = self.try_place(id, need);
            }
        }
        self.record_gauges();
    }

    fn free_up_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.up && n.running.is_none())
            .count()
    }

    pub(crate) fn free_by_zone(&self) -> [Vec<usize>; 2] {
        let mut free = [Vec::new(), Vec::new()];
        for (i, n) in self.nodes.iter().enumerate() {
            if n.up && n.running.is_none() {
                free[n.zone as usize].push(i);
            }
        }
        free
    }

    /// Per-zone count of nodes currently being freed by in-flight
    /// interrupts (tasks in `Interrupting` finishing their saves).
    pub(crate) fn interrupting_by_zone(&self) -> [usize; 2] {
        let mut n = [0usize; 2];
        for t in self.tasks.values() {
            if t.state == TaskState::Interrupting {
                for &node in &t.assigned {
                    n[self.nodes[node].zone as usize] += 1;
                }
            }
        }
        n
    }

    /// Running training tasks as preemption candidates, lowest priority
    /// first, with their node counts per zone. Serving replicas are not in
    /// this map and therefore can never appear as victims.
    pub(crate) fn victims_by_zone(&self) -> Vec<(TaskId, [usize; 2])> {
        let mut v: Vec<(i32, TaskId, [usize; 2])> = self
            .tasks
            .iter()
            .filter(|(_, t)| t.state == TaskState::Running)
            .map(|(&id, t)| {
                let mut n = [0usize; 2];
                for &node in &t.assigned {
                    n[self.nodes[node].zone as usize] += 1;
                }
                (t.priority, id, n)
            })
            .collect();
        v.sort();
        v.into_iter().map(|(_, id, n)| (id, n)).collect()
    }

    fn cross_zone_active(&self) -> bool {
        self.tasks.values().any(|t| {
            matches!(t.state, TaskState::Running | TaskState::Interrupting) && t.cross_zone
        })
    }

    /// Try to place a task: single-zone first; cross-zone only when no
    /// other cross-zone task is active.
    fn try_place(&mut self, id: TaskId, need: usize) -> bool {
        let free = self.free_by_zone();
        let pick: Option<(Vec<usize>, bool)> = if free[0].len() >= need {
            Some((free[0][..need].to_vec(), false))
        } else if free[1].len() >= need {
            Some((free[1][..need].to_vec(), false))
        } else if free[0].len() + free[1].len() >= need && !self.cross_zone_active() {
            let mut all = free[0].clone();
            all.extend(&free[1]);
            Some((all[..need].to_vec(), true))
        } else {
            None
        };
        let Some((nodes, cross)) = pick else {
            return false;
        };
        let stretch = if self.engine.is_none() {
            self.assigned_stretch(&nodes)
        } else {
            1.0
        };
        for &n in &nodes {
            self.nodes[n].running = Some(Owner::Train(id));
        }
        self.busy_nodes += nodes.len();
        if let Some(since) = self.recovering.remove(&id) {
            self.recovery_s.push((self.now.0 - since.0) / 1_000_000_000);
        }
        let t = self.tasks.get_mut(&id).expect("task exists");
        t.assigned = nodes;
        t.cross_zone = cross;
        t.state = TaskState::Running;
        t.placed_at = self.now;
        t.ckpt = t.progress; // cadence restarts from the resume point
        t.epoch += 1;
        t.stretch = stretch;
        let epoch = t.epoch;
        let resume = t.progress > 0;
        let remaining = t.work - t.progress;
        self.note("place");
        if self.engine.is_some() {
            if resume {
                self.with_engine(|p, eng| p.start_restore(eng, id));
            } else {
                self.with_engine(|p, eng| p.start_step(eng, id));
            }
        } else {
            self.timers.schedule(
                self.now + stretched_secs(remaining, stretch),
                Ev::TaskDone { id, epoch },
            );
        }
        true
    }

    // ----- declared-mode analytics ---------------------------------------

    /// Whole work units a declared-mode task has earned since placement:
    /// elapsed seconds at nominal speed, divided by the gray compute
    /// stretch when one is in effect (the float path is gated so
    /// gray-free runs keep exact integer arithmetic).
    fn elapsed_units(&self, t: &Task) -> u64 {
        let ns = self.now.0 - t.placed_at.0;
        if t.stretch == 1.0 {
            ns / 1_000_000_000
        } else {
            (ns as f64 / t.stretch / 1e9) as u64
        }
    }

    /// Committed progress plus the analytically-earned run time.
    fn live_progress(&self, t: &Task) -> u64 {
        if self.engine.is_none() && t.state == TaskState::Running {
            (t.progress + self.elapsed_units(t)).min(t.work)
        } else {
            t.progress
        }
    }

    /// The last periodic-checkpoint position of a declared-mode task.
    fn live_ckpt(&self, t: &Task) -> u64 {
        if self.engine.is_none() && t.state == TaskState::Running {
            let periodic =
                t.progress + (self.elapsed_units(t) / self.ckpt_interval) * self.ckpt_interval;
            periodic.min(self.live_progress(t))
        } else {
            t.ckpt
        }
    }

    // ----- accessors ------------------------------------------------------

    /// Task state, or `None` for an unknown id.
    pub fn state(&self, id: TaskId) -> Option<TaskState> {
        self.tasks.get(&id).map(|t| t.state)
    }

    /// Task name as submitted, or `None` for an unknown id.
    pub fn name(&self, id: TaskId) -> Option<&str> {
        self.tasks.get(&id).map(|t| t.name.as_str())
    }

    /// Completed work units (live for a running declared-mode task), or
    /// `None` for an unknown id.
    pub fn progress(&self, id: TaskId) -> Option<u64> {
        self.tasks.get(&id).map(|t| self.live_progress(t))
    }

    /// Work units captured by the last checkpoint, or `None` for an
    /// unknown id.
    pub fn checkpoint(&self, id: TaskId) -> Option<u64> {
        self.tasks.get(&id).map(|t| self.live_ckpt(t))
    }

    /// The nodes a task runs on (empty when not running), or `None` for an
    /// unknown id.
    pub fn assignment(&self, id: TaskId) -> Option<&[usize]> {
        self.tasks.get(&id).map(|t| t.assigned.as_slice())
    }

    /// The training task occupying a compute node right now, or `None`
    /// when the node is free, down, unknown, or held by a serving
    /// replica. Unlike [`Platform::assignment`] this reads the node slot
    /// directly, so it can never report a task that has since released
    /// the node — the slot is cleared before any requeue.
    pub fn node_task(&self, node: usize) -> Option<TaskId> {
        match self.nodes.get(node)?.running {
            Some(Owner::Train(id)) => Some(id),
            _ => None,
        }
    }

    /// Fraction of healthy node-time spent running tasks.
    pub fn utilization(&self) -> f64 {
        if self.healthy_node_ns == 0 {
            0.0
        } else {
            self.busy_node_ns as f64 / self.healthy_node_ns as f64
        }
    }

    /// Work lost to failures (rolled back past checkpoints), in
    /// node-units: node-seconds in declared mode, node-steps in fluid.
    pub fn lost_work_s(&self) -> u64 {
        self.lost_work
    }

    /// Completed failure-recovery intervals, whole seconds each: the time
    /// from a failure rolling a task back to that task running again, in
    /// completion order. Preemptions are not recoveries and do not appear;
    /// a task still waiting for nodes at the end of a run has an open
    /// interval and is likewise not counted.
    pub fn recovery_times_s(&self) -> &[u64] {
        &self.recovery_s
    }

    /// Tasks waiting for nodes (queued or interrupted).
    pub fn queue_depth(&self) -> usize {
        self.tasks
            .values()
            .filter(|t| matches!(t.state, TaskState::Queued | TaskState::Interrupted))
            .count()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Compute nodes in the pool (up or not).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Compute nodes currently up.
    pub fn healthy_nodes(&self) -> usize {
        self.up_nodes
    }

    /// The manager's health state for a compute node.
    pub fn node_health(&self, node: usize) -> Option<HealthState> {
        self.manager.health(&node_name(node))
    }

    /// Interruption signals delivered so far.
    pub fn preemptions(&self) -> u64 {
        self.preemptions
    }

    /// Node failures seen so far.
    pub fn failures(&self) -> u64 {
        self.failures
    }

    /// Quarantines initiated by the signal-driven detector. Disjoint from
    /// [`Platform::failures`], which counts injected hard faults — on a
    /// calm fleet every one of these is a false positive.
    pub fn detector_quarantines(&self) -> u64 {
        self.detector_quarantines
    }

    /// The detector's verdict stream so far (empty when no detector is
    /// configured).
    pub fn detector_verdicts(&self) -> &[crate::detector::Verdict] {
        self.detector.as_ref().map_or(&[], |d| d.verdicts())
    }

    /// Canonical one-line-per-verdict rendering of the detector stream,
    /// suitable for digesting in determinism checks.
    pub fn detector_canonical(&self) -> String {
        self.detector
            .as_ref()
            .map_or_else(String::new, |d| d.canonical())
    }

    /// Node-seconds the pool has spent *down* (failed, quarantined,
    /// validating, or awaiting repair) since t=0 — the capacity cost of
    /// outages, whether from real faults or detector false positives.
    pub fn down_node_seconds(&self) -> u64 {
        let total = self.nodes.len() as u128 * self.now.0 as u128;
        ((total - self.healthy_node_ns) / 1_000_000_000) as u64
    }

    /// The cluster manager tracking node health (§VI-B3's registry).
    pub fn manager(&self) -> &Arc<ClusterManager> {
        &self.manager
    }

    pub(crate) fn note(&self, what: &str) {
        if let Some((rec, track)) = &self.obs {
            rec.instant(*track, what, self.now.0, 1.0);
        }
    }

    fn record_gauges(&self) {
        if let Some((rec, _)) = &self.obs {
            rec.gauge_set("platform/utilization", self.utilization());
            rec.gauge_set("platform/queue_depth", self.queue_depth() as f64);
            rec.gauge_set("platform/lost_work", self.lost_work as f64);
            // Serving gauges only once a serving job exists, so train-only
            // runs keep their historical digests.
            if !self.serving.is_empty() {
                let (mut done, mut met, mut inflight) = (0u64, 0u64, 0usize);
                for j in self.serving.values() {
                    done += j.completed();
                    met += j.slo_met();
                    inflight += j.in_flight();
                }
                let attain = if done == 0 {
                    1.0
                } else {
                    met as f64 / done as f64
                };
                rec.gauge_set("platform/serve/completed", done as f64);
                rec.gauge_set("platform/serve/slo_attainment", attain);
                rec.gauge_set("platform/serve/inflight", inflight as f64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn declared(per_zone: [usize; 2], interval: u64) -> Platform {
        PlatformConfig::new()
            .zones(per_zone)
            .ckpt_interval(interval)
            .build()
            .unwrap()
    }

    #[test]
    fn simple_task_runs_to_completion() {
        let mut p = declared([4, 4], 300);
        let t = p.submit(JobSpec::new("resnet", 2, 100)).unwrap();
        assert_eq!(p.state(t), Some(TaskState::Running));
        p.tick(100);
        assert_eq!(p.state(t), Some(TaskState::Succeeded));
        assert_eq!(p.progress(t), Some(100));
    }

    #[test]
    fn queueing_when_full_then_backfill() {
        let mut p = declared([2, 0], 300);
        let a = p.submit(JobSpec::new("a", 2, 50)).unwrap();
        let b = p.submit(JobSpec::new("b", 2, 50)).unwrap();
        assert_eq!(p.state(a), Some(TaskState::Running));
        assert_eq!(p.state(b), Some(TaskState::Queued));
        p.tick(50);
        assert_eq!(p.state(a), Some(TaskState::Succeeded));
        assert_eq!(p.state(b), Some(TaskState::Running));
    }

    #[test]
    fn priority_preempts_and_resumes_from_checkpoint() {
        let mut p = declared([2, 0], 300);
        let low = p.submit(JobSpec::new("low", 2, 100)).unwrap();
        p.tick(40);
        let high = p.submit(JobSpec::new("high", 2, 30).priority(10)).unwrap();
        // Preemption is immediate and graceful: low checkpoints at 40.
        assert_eq!(p.state(low), Some(TaskState::Interrupted));
        assert_eq!(p.progress(low), Some(40));
        assert_eq!(p.state(high), Some(TaskState::Running));
        p.tick(30);
        assert_eq!(p.state(high), Some(TaskState::Succeeded));
        assert_eq!(p.state(low), Some(TaskState::Running));
        // No work lost on graceful interrupt.
        p.tick(60);
        assert_eq!(p.state(low), Some(TaskState::Succeeded));
        assert_eq!(p.lost_work_s(), 0);
        assert_eq!(p.preemptions(), 1);
    }

    #[test]
    fn node_failure_loses_at_most_one_interval() {
        let mut p = declared([4, 0], 300);
        let t = p.submit(JobSpec::new("llm", 4, 10_000)).unwrap();
        p.tick(640); // checkpoints at 300 and 600
        let node = p.assignment(t).unwrap()[0];
        p.fail_node(node);
        // Rolled back to the 600 s checkpoint: 40 s × 4 nodes lost.
        assert_eq!(p.progress(t), Some(600));
        assert_eq!(p.lost_work_s(), 160);
        // Only 3 healthy nodes remain: the 4-node task cannot run.
        assert_eq!(p.state(t), Some(TaskState::Queued));
        p.heal_node(node);
        assert_eq!(p.state(t), Some(TaskState::Running));
    }

    #[test]
    fn failed_node_walks_the_health_lifecycle() {
        let mut p = declared([4, 0], 300);
        p.submit(JobSpec::new("job", 2, 1000)).unwrap();
        p.fail_node(0);
        assert_eq!(p.node_health(0), Some(HealthState::Suspect));
        assert_eq!(p.healthy_nodes(), 3);
        p.tick(5); // detection confirms at +2 s
        assert_eq!(p.node_health(0), Some(HealthState::Quarantined));
        p.heal_node(0);
        assert_eq!(p.node_health(0), Some(HealthState::Healthy));
        assert_eq!(p.healthy_nodes(), 4);
        // Healing an up node is a no-op (weekly sweeps call it blindly).
        p.heal_node(0);
        assert_eq!(p.healthy_nodes(), 4);
    }

    #[test]
    fn fault_plan_kill_auto_repairs() {
        use ff_failures::{FailureEvent, FailureKind};
        let mut p = PlatformConfig::new()
            .zones([4, 0])
            .ckpt_interval(300)
            .repair_delay_s(100)
            .validation_s(20)
            .build()
            .unwrap();
        let t = p.submit(JobSpec::new("llm", 4, 10_000)).unwrap();
        let plan = FaultPlan::from_events(
            &[FailureEvent {
                at_s: 640.0,
                node: 1,
                kind: FailureKind::MainMemoryEcc,
            }],
            4,
        );
        p.apply_fault_plan(&plan);
        p.tick(650);
        // Killed at 640, rolled back to the 600 s checkpoint and queued.
        assert_eq!(p.state(t), Some(TaskState::Queued));
        assert_eq!(p.progress(t), Some(600));
        assert_eq!(p.node_health(1), Some(HealthState::Quarantined));
        // Repair (100 s) + validation (20 s) put the node back and the
        // task resumes without operator intervention.
        p.tick(200);
        assert_eq!(p.node_health(1), Some(HealthState::Healthy));
        assert_eq!(p.state(t), Some(TaskState::Running));
        assert_eq!(p.lost_work_s(), 160);
    }

    #[test]
    fn cross_zone_limited_to_one_task() {
        let mut p = declared([2, 2], 300);
        // 3-node tasks must span zones (each zone has only 2).
        let a = p.submit(JobSpec::new("span-a", 3, 100)).unwrap();
        let b = p.submit(JobSpec::new("span-b", 3, 100)).unwrap();
        assert_eq!(p.state(a), Some(TaskState::Running));
        assert_eq!(
            p.state(b),
            Some(TaskState::Queued),
            "only one cross-zone task"
        );
        p.tick(100);
        assert_eq!(p.state(a), Some(TaskState::Succeeded));
        assert_eq!(p.state(b), Some(TaskState::Running));
    }

    #[test]
    fn single_zone_tasks_fill_both_zones_concurrently() {
        let mut p = declared([2, 2], 300);
        let a = p.submit(JobSpec::new("a", 2, 100)).unwrap();
        let b = p.submit(JobSpec::new("b", 2, 100)).unwrap();
        assert_eq!(p.state(a), Some(TaskState::Running));
        assert_eq!(p.state(b), Some(TaskState::Running));
    }

    #[test]
    fn utilization_accounts_busy_fraction() {
        let mut p = declared([4, 0], 300);
        p.submit(JobSpec::new("half", 2, 100)).unwrap();
        p.tick(100);
        // 2 of 4 nodes busy for the whole window.
        assert!((p.utilization() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn time_sharing_keeps_utilization_high() {
        // The 99%-utilization story: an over-subscribed queue of small
        // tasks keeps every node busy.
        let mut p = declared([4, 4], 300);
        for i in 0..20 {
            p.submit(JobSpec::new(format!("job{i}"), 2, 50)).unwrap();
        }
        for _ in 0..25 {
            p.tick(10);
        }
        assert!(p.utilization() > 0.98, "utilization {}", p.utilization());
    }

    #[test]
    fn oversized_and_empty_submissions_are_rejected() {
        let mut p = declared([2, 1], 300);
        assert_eq!(
            p.submit(JobSpec::new("huge", 5, 10)),
            Err(SubmitError::TooLarge {
                need: 5,
                cluster: 3
            })
        );
        assert_eq!(
            p.submit(JobSpec::new("none", 0, 10)),
            Err(SubmitError::ZeroNodes)
        );
        assert_eq!(
            p.submit(JobSpec::new("idle", 1, 0)),
            Err(SubmitError::ZeroWork)
        );
        let small = p.submit(JobSpec::new("small", 1, 10)).unwrap();
        assert_eq!(p.state(small), Some(TaskState::Running));
    }

    #[test]
    fn unknown_task_accessors_return_none() {
        let p = declared([2, 0], 300);
        let ghost = TaskId(999);
        assert_eq!(p.state(ghost), None);
        assert_eq!(p.name(ghost), None);
        assert_eq!(p.progress(ghost), None);
        assert_eq!(p.checkpoint(ghost), None);
        assert_eq!(p.assignment(ghost), None);
    }

    #[test]
    fn builder_is_the_only_constructor_and_schedules() {
        let mut p = PlatformConfig::new()
            .zones([2, 0])
            .ckpt_interval(300)
            .build()
            .unwrap();
        let t = p.submit(JobSpec::new("builder-api", 2, 10)).unwrap();
        p.tick(10);
        assert_eq!(p.state(t), Some(TaskState::Succeeded));
    }

    // ----- fluid mode -----------------------------------------------------

    use ff_reduce::ClusterConfig;

    fn fluid(nodes: usize, storage: usize, interval: u64) -> Platform {
        PlatformConfig::new()
            .cluster(ClusterModel::build(&ClusterConfig::fire_flyer(nodes)))
            .storage_nodes(storage)
            .ckpt_interval(interval)
            .build()
            .unwrap()
    }

    /// Run until the predicate holds, polling every `dt`, bailing out
    /// after `max_iters` polls so a broken event loop cannot hang the
    /// suite. Steps on this small cluster take milliseconds of simulated
    /// time, so observation granularity must be comparably fine.
    fn run_till(
        p: &mut Platform,
        dt: SimDuration,
        max_iters: u64,
        mut pred: impl FnMut(&Platform) -> bool,
    ) {
        for _ in 0..max_iters {
            if pred(p) {
                return;
            }
            p.run_for(dt);
        }
        panic!("condition not reached within {max_iters} polls");
    }

    #[test]
    fn fluid_step_durations_emerge_from_bandwidth() {
        let mut p = fluid(6, 2, 10);
        let t = p
            .submit(
                JobSpec::new("train", 4, 25)
                    .step_bytes(6.4e7)
                    .ckpt_bytes(2.56e8),
            )
            .unwrap();
        assert_eq!(p.state(t), Some(TaskState::Running));
        run_till(&mut p, SimDuration::from_secs(1), 100_000, |p| {
            p.state(t) == Some(TaskState::Succeeded)
        });
        // Steps took real simulated time and checkpoints were durable.
        assert!(p.now().0 > 0);
        assert_eq!(p.progress(t), Some(25));
        assert_eq!(p.checkpoint(t), Some(25));
        assert!(p.utilization() > 0.0);
    }

    #[test]
    fn fluid_interruption_signal_protocol() {
        let ms = SimDuration::from_millis(5);
        let mut p = fluid(6, 2, 5);
        let low = p
            .submit(
                JobSpec::new("low", 4, 2000)
                    .step_bytes(6.4e7)
                    .ckpt_bytes(2.56e8),
            )
            .unwrap();
        // Let it make some progress.
        run_till(&mut p, ms, 1_000_000, |p| p.progress(low).unwrap() >= 8);
        let high = p
            .submit(JobSpec::new("high", 4, 10).priority(9).step_bytes(6.4e7))
            .unwrap();
        // The signal is delivered; low finishes its save before releasing.
        assert!(matches!(
            p.state(low),
            Some(TaskState::Interrupting | TaskState::Interrupted)
        ));
        run_till(&mut p, ms, 1_000_000, |p| {
            p.state(low) == Some(TaskState::Interrupted)
        });
        // The interruption signal was honored: the save captured exactly
        // the committed progress, so nothing replays on resume.
        assert_eq!(p.progress(low), p.checkpoint(low));
        run_till(&mut p, ms, 1_000_000, |p| {
            p.state(high) == Some(TaskState::Succeeded)
        });
        // After high completes, low resumes from its checkpoint.
        run_till(&mut p, ms, 1_000_000, |p| {
            p.state(low) == Some(TaskState::Running)
        });
        assert_eq!(p.lost_work_s(), 0, "graceful interruption loses no work");
        assert!(p.preemptions() >= 1);
    }

    #[test]
    fn fluid_node_failure_bounds_lost_work() {
        let ms = SimDuration::from_millis(5);
        let mut p = fluid(6, 2, 5);
        let t = p
            .submit(
                JobSpec::new("train", 4, 400)
                    .step_bytes(6.4e7)
                    .ckpt_bytes(2.56e8),
            )
            .unwrap();
        run_till(&mut p, ms, 1_000_000, |p| p.progress(t).unwrap() >= 12);
        assert_eq!(p.state(t), Some(TaskState::Running));
        let node = p.assignment(t).unwrap()[0];
        p.fail_node(node);
        // ≤ one checkpoint interval of steps lost, over 4 nodes.
        assert!(
            p.lost_work_s() <= 5 * 4,
            "lost {} node-steps, expected ≤ {}",
            p.lost_work_s(),
            5 * 4
        );
        assert_eq!(p.state(t), Some(TaskState::Queued));
        p.heal_node(node);
        run_till(&mut p, SimDuration::from_secs(1), 100_000, |p| {
            p.state(t) == Some(TaskState::Succeeded)
        });
    }
}
