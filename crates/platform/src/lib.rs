//! # ff-platform — the HAI Platform (§VI-C, §VII)
//!
//! The cluster-side software that makes the hardware usable and keeps it
//! at "99% utilization":
//!
//! * [`scheduler`] — event-driven time-sharing task scheduling on
//!   simulated time over tagged nodes (resource type, network zone), with
//!   the interrupt/checkpoint/resume protocol of §VI-C, priority
//!   preemption, the ≤1 cross-zone-task rule of §III-B, node failures
//!   flowing through the cluster manager's health lifecycle, and an
//!   optional fluid-traffic mode where step and checkpoint durations
//!   emerge from bandwidth contention. Built via [`PlatformConfig`].
//! * [`detector`] — the hai-monitor-style gray-failure detector: sees
//!   only observable signals (probe sweeps, heartbeat jitter, step-time
//!   EWMAs), so detection has latency, false positives, and false
//!   negatives by construction; verdicts feed the cluster manager's
//!   Suspect → Quarantined → Validating → Probation lifecycle.
//! * [`checkpoint`] — the checkpoint manager of §VII-A: tensors chunked
//!   and batch-written to 3FS with a per-tensor index, periodic (5-minute)
//!   cadence, asynchronous saves, checksum-verified loads.
//! * [`recovery`] — the closed fault-recovery loop of §VII-A: a
//!   deterministic training job on the real threaded allreduce, with
//!   injected rank deaths, checkpoint corruption and link degradation;
//!   detect (typed comm errors, hostping) → resume (last good 3FS
//!   checkpoint) → requeue (scheduler spares).
//! * [`validator`] — the weekly hardware validator of §VII-B: frequency /
//!   link checks, CPU stress, memory-bandwidth, GPU-memory byte patterns,
//!   full-occupancy GEMM logic checks, intra-node allreduce, storage
//!   stress; failing nodes leave the scheduling pool.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod detector;
pub mod hostping;
pub mod recovery;
pub mod scheduler;
pub mod serving;
pub mod storage_health;
pub mod validator;

pub use checkpoint::{CheckpointManager, CheckpointMeta};
pub use detector::{Detector, DetectorConfig, Signal, Verdict};
pub use ff_util::error::{FfError, FfKind};
pub use hostping::{bottlenecks, bottlenecks_with, hostping, PathProbe, ProbeConfig};
pub use recovery::{
    train_with_recovery, train_with_recovery_traced, JobFaults, RecoveryEvent, RecoveryReport,
    TrainerConfig, STORAGE_REJOIN_DELAY_STEPS,
};
pub use scheduler::{
    ConfigError, JobSpec, Platform, PlatformConfig, SubmitError, TaskId, TaskState,
};
pub use serving::{ServingId, ServingReport, ServingSpec};
pub use storage_health::StoragePlane;
pub use validator::{run_all_checks, CheckOutcome, NodeUnderTest};
