//! A hostping-style intra-host bottleneck diagnostic (§VII-B cites
//! hostping [NSDI'23] as integrated into the platform).
//!
//! Sweeps every intra-node path — D2H/H2D per GPU, GPU↔NIC peer-to-peer,
//! NVLink pairs — measuring each path's standalone bandwidth on the node's
//! resource model and flagging paths below their expected floor. Degraded
//! links (a PCIe lane trained down, a weak NVLink bridge) show up exactly
//! the way hostping finds them in production: one path far under spec
//! while its siblings are healthy.

use ff_desim::{FluidSim, Route};
use ff_hw::spec::{NVLINK_DIR_BPS, PCIE4_X16_BPS, ROME_P2P_BPS};
use ff_hw::{NodeHw, TransferMethod};

/// Probe-sweep tuning. The health margin used to be a hard-coded 10%;
/// making it a field lets operators trade sensitivity (small margin
/// catches mild lane degradation) against robustness to measurement
/// noise (large margin avoids flagging contention blips).
#[derive(Debug, Clone, Copy)]
pub struct ProbeConfig {
    /// Allowed shortfall below the expected floor before a path is
    /// unhealthy, as a fraction in `[0, 1)`. Default `0.10`.
    pub margin: f64,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig { margin: 0.10 }
    }
}

/// One probed path's result.
#[derive(Debug, Clone)]
pub struct PathProbe {
    /// Path label, e.g. `d2h/gpu3`.
    pub path: String,
    /// Measured standalone bandwidth, bytes/second.
    pub measured_bps: f64,
    /// The expected floor for a healthy path.
    pub expected_bps: f64,
}

impl PathProbe {
    /// Healthy under the default 10% margin.
    pub fn healthy(&self) -> bool {
        self.healthy_with(&ProbeConfig::default())
    }

    /// Healthy when within `cfg.margin` of the expected floor. A path
    /// with no meaningful floor (`expected_bps <= 0`) is never flagged:
    /// every measurement clears a zero floor, and flagging such a probe
    /// would be a config bug masquerading as a hardware fault.
    pub fn healthy_with(&self, cfg: &ProbeConfig) -> bool {
        if self.expected_bps <= 0.0 {
            return true;
        }
        self.measured_bps >= self.expected_bps * (1.0 - cfg.margin)
    }
}

fn probe(fluid: &mut FluidSim, route: &Route) -> f64 {
    let f = fluid.start_flow(1e9, route);
    let rate = fluid.flow_rate(f);
    fluid.cancel_flow(f);
    rate
}

/// Probe every intra-node path of `hw` on `fluid` (the sim the node was
/// installed into — degradations applied there are what get detected).
pub fn hostping(fluid: &mut FluidSim, hw: &NodeHw) -> Vec<PathProbe> {
    let mut out = Vec::new();
    for g in 0..hw.gpus() {
        out.push(PathProbe {
            path: format!("d2h/gpu{g}"),
            measured_bps: probe(fluid, &hw.d2h(g)),
            expected_bps: PCIE4_X16_BPS,
        });
        out.push(PathProbe {
            path: format!("h2d/gpu{g}"),
            measured_bps: probe(fluid, &hw.h2d(g, TransferMethod::GdrCopy)),
            expected_bps: PCIE4_X16_BPS,
        });
        if let Some(peer) = hw.nvlink_peer(g) {
            if peer > g {
                out.push(PathProbe {
                    path: format!("nvlink/gpu{g}-gpu{peer}"),
                    measured_bps: probe(fluid, &hw.nvlink(g, peer)),
                    expected_bps: NVLINK_DIR_BPS,
                });
            }
        }
    }
    for nic in 0..hw.nics() {
        out.push(PathProbe {
            path: format!("gpu0-nic{nic}/p2p"),
            measured_bps: probe(fluid, &hw.gpu_nic_send(0, nic)),
            expected_bps: ROME_P2P_BPS,
        });
    }
    out
}

/// The unhealthy paths only, under the default margin.
pub fn bottlenecks(probes: &[PathProbe]) -> Vec<&PathProbe> {
    bottlenecks_with(probes, &ProbeConfig::default())
}

/// The unhealthy paths only, under `cfg`'s margin.
pub fn bottlenecks_with<'a>(probes: &'a [PathProbe], cfg: &ProbeConfig) -> Vec<&'a PathProbe> {
    probes.iter().filter(|p| !p.healthy_with(cfg)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_hw::NodeSpec;

    fn install() -> (FluidSim, NodeHw) {
        let mut fluid = FluidSim::new();
        let hw = NodeHw::install(&mut fluid, "probe", &NodeSpec::pcie_a100_nvlink());
        (fluid, hw)
    }

    #[test]
    fn healthy_node_has_no_bottlenecks() {
        let (mut fluid, hw) = install();
        let probes = hostping(&mut fluid, &hw);
        // 8 d2h + 8 h2d + 4 nvlink + 1 p2p.
        assert_eq!(probes.len(), 21);
        assert!(bottlenecks(&probes).is_empty(), "{probes:?}");
    }

    #[test]
    fn degraded_pcie_lane_found_by_name() {
        // A lane trained down to x4: cap the GPU3 upstream link.
        let (mut fluid, hw) = install();
        // The d2h route's first resource is the PCIe up link; cap via a
        // rate cap on the whole route's bottleneck by probing with a
        // parallel hog flow instead: hold a permanent flow on gpu3's link.
        let _hog = fluid.start_flow(1e18, &hw.d2h(3));
        let probes = hostping(&mut fluid, &hw);
        let bad = bottlenecks(&probes);
        assert!(bad.iter().any(|p| p.path == "d2h/gpu3"), "{bad:?}");
        // Sibling GPUs stay healthy.
        assert!(probes
            .iter()
            .find(|p| p.path == "d2h/gpu2")
            .unwrap()
            .healthy());
    }

    #[test]
    fn shared_root_port_pair_shows_up_together() {
        // Saturate GPU5's D2H: GPU6 shares the root port (Figure 4), so
        // hostping sees both degrade — the signature distinguishing a
        // root-port problem from a single bad lane.
        let (mut fluid, hw) = install();
        let _hog = fluid.start_flow(1e18, &hw.d2h(5));
        let probes = hostping(&mut fluid, &hw);
        let bad: Vec<String> = bottlenecks(&probes)
            .iter()
            .map(|p| p.path.clone())
            .collect();
        assert!(bad.contains(&"d2h/gpu5".to_string()));
        assert!(bad.contains(&"d2h/gpu6".to_string()), "{bad:?}");
        assert!(!bad.contains(&"d2h/gpu4".to_string()));
    }

    #[test]
    fn probing_leaves_no_residual_flows() {
        let (mut fluid, hw) = install();
        hostping(&mut fluid, &hw);
        assert_eq!(fluid.active_flows(), 0);
    }

    #[test]
    fn margin_is_tunable() {
        let p = PathProbe {
            path: "d2h/gpu0".into(),
            measured_bps: 80.0,
            expected_bps: 100.0,
        };
        // 20% short: unhealthy at the default 10% margin…
        assert!(!p.healthy());
        // …healthy under a forgiving 25% margin, unhealthy at a strict 5%.
        assert!(p.healthy_with(&ProbeConfig { margin: 0.25 }));
        assert!(!p.healthy_with(&ProbeConfig { margin: 0.05 }));
    }

    #[test]
    fn zero_floor_probe_is_never_flagged() {
        // A path with no expected floor must not be mis-flagged, even at
        // zero measured bandwidth — that's a config gap, not a fault.
        let p = PathProbe {
            path: "aux/unknown".into(),
            measured_bps: 0.0,
            expected_bps: 0.0,
        };
        assert!(p.healthy());
        assert!(p.healthy_with(&ProbeConfig { margin: 0.0 }));
        assert!(bottlenecks_with(std::slice::from_ref(&p), &ProbeConfig::default()).is_empty());
    }
}
