//! Inference serving as a first-class platform workload.
//!
//! A [`ServingSpec`] deploys `replicas` model replicas, each spanning
//! `nodes_per_replica` compute nodes of one zone, and feeds them an
//! open-loop [`ArrivalTrace`] (diurnal + bursty, seeded — see
//! `ff_util::scengen`). Serving co-schedules with training on the same
//! cluster with one asymmetry: training is preemptible through the §VI-C
//! interruption-signal path, serving is not. A serving replica that
//! cannot find free nodes signals training victims; nothing ever signals
//! a serving replica — by construction, since victim selection only walks
//! the training task map.
//!
//! **Batching discipline.** Each replica runs *continuous batching* at
//! iteration granularity, bounded by two admission gates checked in FIFO
//! arrival order: a batch-size cap and a KV-cache byte budget. A request
//! reserves its *full* potential KV footprint
//! (`(prompt + output) × kv_bytes_per_token`) at admission, so "KV bytes
//! never exceed replica memory" is an exact invariant, not a race.
//! Decode proceeds in *segments* of up to `admit_every` iterations (or
//! fewer if a batch member finishes sooner); the queue is polled for
//! admissions at every segment boundary. Segment compute time is
//! `prefill_ns · new_prompt_tokens + k · (iter_base + iter_per_req ·
//! batch)` — declared mode stops there, making a serving job O(events),
//! while fluid mode follows each segment's compute with the
//! tensor-parallel activation allreduce as real flows on the bandwidth
//! model (`ff_reduce::jobflow::decode_routes`), so serving latency
//! stretches under contention with training allreduce, checkpoint traffic
//! and degraded links.
//!
//! **SLO model.** Per-request latency is measured arrival → last token,
//! open-loop (arrivals never throttle). A request meets its SLO iff
//! latency ≤ `slo_ms`. Requests route to replica `id % replicas`; if the
//! home replica is down they fail over to the next running one, and a
//! replica lost to a node failure re-queues its in-flight requests with
//! their *original* arrival times — the latency clock never resets, so
//! failures surface as tail latency, exactly what the p99-under-failure
//! bench measures.

use crate::scheduler::{Ev, FluidEngine, Owner, Platform, SubmitError};
use ff_desim::{FlowId, SimTime};
use ff_reduce::jobflow;
use ff_util::scengen::{ArrivalTrace, Request};
use std::collections::VecDeque;

/// Identifies a submitted serving job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServingId(pub u64);

/// A serving deployment: replica shape, model timing/memory constants and
/// the request trace to serve.
///
/// Work constants are per *decode iteration* (one token for every batched
/// sequence): `iter_base_us + iter_per_req_us × batch` compute plus
/// `prefill_us_per_token` for each newly admitted prompt token. In fluid
/// mode each segment additionally allreduces `tp_bytes_per_token` per
/// generated/prefilled token over the replica's nodes.
#[derive(Debug, Clone)]
pub struct ServingSpec {
    name: String,
    replicas: u32,
    nodes_per_replica: usize,
    trace: ArrivalTrace,
    slo_ms: u64,
    max_batch: usize,
    kv_capacity_bytes: f64,
    kv_bytes_per_token: f64,
    iter_base_us: u64,
    iter_per_req_us: u64,
    prefill_us_per_token: u64,
    tp_bytes_per_token: f64,
    admit_every: u32,
}

impl ServingSpec {
    /// A serving job named `name`: `replicas` replicas of
    /// `nodes_per_replica` nodes each, serving `trace`. Defaults: 15 s
    /// completion SLO, batch ≤ 16, 8 GiB KV at 1 MiB/token, 20 ms + 1
    /// ms/req iterations, 200 µs/token prefill, 4 MiB/token
    /// tensor-parallel traffic, admission every 8 iterations.
    pub fn new(
        name: impl Into<String>,
        replicas: u32,
        nodes_per_replica: usize,
        trace: ArrivalTrace,
    ) -> ServingSpec {
        ServingSpec {
            name: name.into(),
            replicas,
            nodes_per_replica,
            trace,
            slo_ms: 15_000,
            max_batch: 16,
            kv_capacity_bytes: (8u64 << 30) as f64,
            kv_bytes_per_token: (1u64 << 20) as f64,
            iter_base_us: 20_000,
            iter_per_req_us: 1_000,
            prefill_us_per_token: 200,
            tp_bytes_per_token: (4u64 << 20) as f64,
            admit_every: 8,
        }
    }

    /// Completion-latency SLO in milliseconds.
    pub fn slo_ms(mut self, ms: u64) -> ServingSpec {
        self.slo_ms = ms.max(1);
        self
    }

    /// Maximum sequences decoded concurrently per replica.
    pub fn max_batch(mut self, n: usize) -> ServingSpec {
        self.max_batch = n.max(1);
        self
    }

    /// Per-replica KV-cache budget in bytes.
    pub fn kv_capacity_bytes(mut self, b: f64) -> ServingSpec {
        self.kv_capacity_bytes = b;
        self
    }

    /// KV-cache bytes per cached token.
    pub fn kv_bytes_per_token(mut self, b: f64) -> ServingSpec {
        self.kv_bytes_per_token = b;
        self
    }

    /// Fixed compute microseconds per decode iteration.
    pub fn iter_base_us(mut self, us: u64) -> ServingSpec {
        self.iter_base_us = us;
        self
    }

    /// Additional compute microseconds per batched sequence per iteration.
    pub fn iter_per_req_us(mut self, us: u64) -> ServingSpec {
        self.iter_per_req_us = us;
        self
    }

    /// Prefill compute microseconds per prompt token.
    pub fn prefill_us_per_token(mut self, us: u64) -> ServingSpec {
        self.prefill_us_per_token = us;
        self
    }

    /// Tensor-parallel allreduce bytes per token (fluid mode).
    pub fn tp_bytes_per_token(mut self, b: f64) -> ServingSpec {
        self.tp_bytes_per_token = b;
        self
    }

    /// Decode iterations between admission checks (segment cap). Smaller
    /// values react to arrivals faster at the cost of more events.
    pub fn admit_every(mut self, k: u32) -> ServingSpec {
        self.admit_every = k.max(1);
        self
    }
}

/// A snapshot of a serving job's SLO accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Requests fully decoded.
    pub completed: u64,
    /// Completed requests that met the SLO.
    pub slo_met: u64,
    /// `slo_met / completed` (1.0 when nothing completed yet).
    pub attainment: f64,
    /// Median completion latency in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile completion latency in milliseconds.
    pub p99_ms: f64,
    /// Mean completion latency in milliseconds.
    pub mean_ms: f64,
    /// Requests arrived but not yet completed (queued, batched or waiting
    /// for a replica).
    pub in_flight: usize,
    /// Replicas currently placed on nodes.
    pub replicas_up: usize,
    /// High-water KV-cache usage as a fraction of capacity, across all
    /// replicas over the whole run.
    pub max_kv_frac: f64,
    /// Requests served by a non-home replica (failover).
    pub redirects: u64,
    /// Requests discarded by [`Platform::stop_serving`].
    pub dropped: u64,
}

/// A request waiting in a replica queue (or for any replica), with its
/// original arrival time — the latency clock survives failover.
#[derive(Debug, Clone, Copy)]
struct Waiting {
    req: Request,
    arrived: SimTime,
}

/// A request admitted to a replica's running batch.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    req: Request,
    arrived: SimTime,
    /// Output tokens still to generate.
    remaining: u32,
    /// KV bytes reserved at admission, released at completion.
    kv: f64,
}

#[derive(Debug, Default)]
struct Replica {
    nodes: Vec<usize>,
    running: bool,
    /// Bumped on every placement/teardown; stale segment timers are
    /// dropped.
    epoch: u64,
    queue: VecDeque<Waiting>,
    batch: Vec<InFlight>,
    kv_used: f64,
    /// A decode segment is in flight (compute timer or flows outstanding).
    busy: bool,
    /// Fluid mode: compute finished, tensor-parallel flows outstanding.
    net_pending: bool,
    /// Iterations this segment credits when it lands.
    seg_iters: u32,
    /// Prompt tokens prefilled in this segment.
    seg_prompt: u64,
    flows: Vec<FlowId>,
}

/// Internal state of one serving job.
pub(crate) struct ServingJob {
    name: String,
    nodes_per_replica: usize,
    trace: ArrivalTrace,
    /// Next unprocessed index into `trace.requests`.
    cursor: usize,
    /// Platform time when the job was submitted; trace times are relative
    /// to it.
    t0: SimTime,
    slo_ns: u64,
    max_batch: usize,
    kv_capacity: f64,
    kv_per_token: f64,
    iter_base_ns: u64,
    iter_per_req_ns: u64,
    prefill_ns_per_token: u64,
    tp_bytes_per_token: f64,
    admit_every: u32,
    replicas: Vec<Replica>,
    /// Arrived requests with no running replica to go to.
    pending: VecDeque<Waiting>,
    /// `(request id, completion latency ns)` in completion order.
    latencies: Vec<(u64, u64)>,
    slo_met: u64,
    max_kv_frac: f64,
    redirects: u64,
    dropped: u64,
    stopped: bool,
}

impl ServingJob {
    pub(crate) fn completed(&self) -> u64 {
        self.latencies.len() as u64
    }

    pub(crate) fn slo_met(&self) -> u64 {
        self.slo_met
    }

    pub(crate) fn in_flight(&self) -> usize {
        self.pending.len()
            + self
                .replicas
                .iter()
                .map(|r| r.queue.len() + r.batch.len())
                .sum::<usize>()
    }

    /// Admit queued requests to replica `rep`'s batch, FIFO, until the
    /// batch cap or the KV budget blocks the queue head. Returns the
    /// prompt tokens newly admitted (they prefill in the next segment).
    fn admit(&mut self, rep: usize) -> u64 {
        let r = &mut self.replicas[rep];
        let mut prompt = 0u64;
        while r.batch.len() < self.max_batch {
            let Some(w) = r.queue.front() else { break };
            let kv = (w.req.prompt_tokens as f64 + w.req.output_tokens as f64) * self.kv_per_token;
            if r.kv_used + kv > self.kv_capacity {
                break;
            }
            let w = r.queue.pop_front().expect("peeked above");
            r.kv_used += kv;
            prompt += w.req.prompt_tokens as u64;
            r.batch.push(InFlight {
                req: w.req,
                arrived: w.arrived,
                remaining: w.req.output_tokens.max(1),
                kv,
            });
        }
        let frac = r.kv_used / self.kv_capacity;
        if frac > self.max_kv_frac {
            self.max_kv_frac = frac;
        }
        prompt
    }
}

impl Platform {
    /// Deploy a serving job. Replicas are placed immediately where nodes
    /// allow — preempting training if needed — and requests start arriving
    /// on the trace's schedule (relative to now).
    pub fn submit_serving(&mut self, spec: ServingSpec) -> Result<ServingId, SubmitError> {
        if spec.replicas == 0 || spec.nodes_per_replica == 0 {
            return Err(SubmitError::ZeroNodes);
        }
        if spec.trace.requests.is_empty() {
            return Err(SubmitError::ZeroWork);
        }
        if spec.nodes_per_replica > self.nodes.len() {
            return Err(SubmitError::TooLarge {
                need: spec.nodes_per_replica,
                cluster: self.nodes.len(),
            });
        }
        let max_req_kv = spec
            .trace
            .requests
            .iter()
            .map(|r| (r.prompt_tokens + r.output_tokens) as u64)
            .max()
            .unwrap_or(0) as f64
            * spec.kv_bytes_per_token;
        if max_req_kv > spec.kv_capacity_bytes {
            return Err(SubmitError::KvOverflow {
                need_bytes: max_req_kv as u64,
                capacity_bytes: spec.kv_capacity_bytes as u64,
            });
        }
        if let Some((rec, _)) = &self.obs {
            if self.serve_track.is_none() {
                self.serve_track = Some(rec.track("platform/serve"));
            }
        }
        let sid = ServingId(self.next_serving);
        self.next_serving += 1;
        let first_at = SimTime(self.now.0 + spec.trace.requests[0].at_ns);
        let job = ServingJob {
            name: spec.name,
            nodes_per_replica: spec.nodes_per_replica,
            trace: spec.trace,
            cursor: 0,
            t0: self.now,
            slo_ns: spec.slo_ms * 1_000_000,
            max_batch: spec.max_batch,
            kv_capacity: spec.kv_capacity_bytes,
            kv_per_token: spec.kv_bytes_per_token,
            iter_base_ns: spec.iter_base_us * 1_000,
            iter_per_req_ns: spec.iter_per_req_us * 1_000,
            prefill_ns_per_token: spec.prefill_us_per_token * 1_000,
            tp_bytes_per_token: spec.tp_bytes_per_token,
            admit_every: spec.admit_every,
            replicas: (0..spec.replicas).map(|_| Replica::default()).collect(),
            pending: VecDeque::new(),
            latencies: Vec::new(),
            slo_met: 0,
            max_kv_frac: 0.0,
            redirects: 0,
            dropped: 0,
            stopped: false,
        };
        self.serving.insert(sid, job);
        self.timers.schedule(first_at, Ev::ServeArrive { sid });
        self.schedule_now();
        Ok(sid)
    }

    /// Tear a serving job down: cancel its traffic, free its nodes and
    /// discard everything still in flight (counted in
    /// [`ServingReport::dropped`]). Returns false for unknown/stopped ids.
    pub fn stop_serving(&mut self, sid: ServingId) -> bool {
        if !self.serving.contains_key(&sid) || self.serving[&sid].stopped {
            return false;
        }
        self.with_opt_engine(|p, mut eng| {
            let job = p.serving.get_mut(&sid).expect("checked above");
            job.stopped = true;
            job.dropped += job.pending.len() as u64;
            job.pending.clear();
            let mut freed = Vec::new();
            for r in job.replicas.iter_mut() {
                job.dropped += (r.queue.len() + r.batch.len()) as u64;
                r.queue.clear();
                r.batch.clear();
                r.kv_used = 0.0;
                r.busy = false;
                r.net_pending = false;
                r.seg_iters = 0;
                r.seg_prompt = 0;
                r.epoch += 1;
                if let Some(eng) = eng.as_deref_mut() {
                    for f in r.flows.drain(..) {
                        eng.flow_owner.remove(&f);
                        eng.cluster.fluid.cancel_flow(f);
                    }
                }
                r.flows.clear();
                if r.running {
                    r.running = false;
                    freed.extend(std::mem::take(&mut r.nodes));
                }
            }
            for &n in &freed {
                p.nodes[n].running = None;
            }
            p.busy_nodes -= freed.len();
        });
        self.note_serve("serve-stop");
        self.schedule_now();
        true
    }

    /// SLO accounting snapshot, or `None` for an unknown id.
    pub fn serving_report(&self, sid: ServingId) -> Option<ServingReport> {
        let job = self.serving.get(&sid)?;
        let mut lats: Vec<u64> = job.latencies.iter().map(|&(_, l)| l).collect();
        lats.sort_unstable();
        let pct = |p: f64| -> f64 {
            if lats.is_empty() {
                return 0.0;
            }
            let idx = ((lats.len() as f64 * p).ceil() as usize).clamp(1, lats.len()) - 1;
            lats[idx] as f64 / 1e6
        };
        let completed = lats.len() as u64;
        Some(ServingReport {
            completed,
            slo_met: job.slo_met,
            attainment: if completed == 0 {
                1.0
            } else {
                job.slo_met as f64 / completed as f64
            },
            p50_ms: pct(0.50),
            p99_ms: pct(0.99),
            mean_ms: if lats.is_empty() {
                0.0
            } else {
                lats.iter().sum::<u64>() as f64 / lats.len() as f64 / 1e6
            },
            in_flight: job.in_flight(),
            replicas_up: job.replicas.iter().filter(|r| r.running).count(),
            max_kv_frac: job.max_kv_frac,
            redirects: job.redirects,
            dropped: job.dropped,
        })
    }

    /// Per-request `(id, completion latency ns)` in completion order, or
    /// `None` for an unknown id.
    pub fn serving_latencies(&self, sid: ServingId) -> Option<&[(u64, u64)]> {
        self.serving.get(&sid).map(|j| j.latencies.as_slice())
    }

    /// The nodes replica `rep` occupies (empty when down), or `None` for
    /// an unknown job/replica.
    pub fn serving_assignment(&self, sid: ServingId, rep: u32) -> Option<&[usize]> {
        self.serving
            .get(&sid)?
            .replicas
            .get(rep as usize)
            .map(|r| r.nodes.as_slice())
    }

    /// The serving job's name, or `None` for an unknown id.
    pub fn serving_name(&self, sid: ServingId) -> Option<&str> {
        self.serving.get(&sid).map(|j| j.name.as_str())
    }

    // ----- placement ------------------------------------------------------

    /// Place every down replica that fits, preempting training per zone
    /// when it does not. Called first from `schedule_now`.
    pub(crate) fn schedule_serving(&mut self) {
        let sids: Vec<ServingId> = self.serving.keys().copied().collect();
        for sid in sids {
            let nreps = self.serving[&sid].replicas.len();
            for rep in 0..nreps {
                let (skip, need) = {
                    let j = &self.serving[&sid];
                    (j.stopped || j.replicas[rep].running, j.nodes_per_replica)
                };
                if skip {
                    continue;
                }
                if !self.try_place_replica(sid, rep, need) {
                    self.preempt_for_serving(need);
                    let _ = self.try_place_replica(sid, rep, need);
                }
            }
        }
    }

    /// Replicas are single-zone (they are latency-bound and small; the
    /// cross-zone budget stays with training).
    fn try_place_replica(&mut self, sid: ServingId, rep: usize, need: usize) -> bool {
        let free = self.free_by_zone();
        let zone = if free[0].len() >= need {
            0
        } else if free[1].len() >= need {
            1
        } else {
            return false;
        };
        let nodes: Vec<usize> = free[zone][..need].to_vec();
        for &n in &nodes {
            self.nodes[n].running = Some(Owner::Serve(sid, rep as u32));
        }
        self.busy_nodes += nodes.len();
        let job = self.serving.get_mut(&sid).expect("placing known job");
        let r = &mut job.replicas[rep];
        r.nodes = nodes;
        r.running = true;
        r.epoch += 1;
        let waiting: Vec<Waiting> = job.pending.drain(..).collect();
        self.note_serve("serve-replica-up");
        for w in waiting {
            self.serve_dispatch(sid, w);
        }
        true
    }

    /// Signal enough training victims (lowest priority first) to free
    /// `need` nodes in one zone — or nothing, if an in-flight interruption
    /// already covers it or no zone can ever reach `need`.
    fn preempt_for_serving(&mut self, need: usize) {
        let free = self.free_by_zone();
        let intr = self.interrupting_by_zone();
        for z in 0..2 {
            if free[z].len() + intr[z] >= need {
                return; // already being freed; placement retries on release
            }
        }
        let victims = self.victims_by_zone();
        let mut best: Option<(usize, Vec<crate::TaskId>)> = None;
        for z in 0..2 {
            let mut have = free[z].len() + intr[z];
            let mut chosen = Vec::new();
            for (id, per_zone) in &victims {
                if have >= need {
                    break;
                }
                if per_zone[z] == 0 {
                    continue;
                }
                have += per_zone[z];
                chosen.push(*id);
            }
            if have >= need && best.as_ref().is_none_or(|(n, _)| chosen.len() < *n) {
                best = Some((chosen.len(), chosen));
            }
        }
        if let Some((_, chosen)) = best {
            for id in chosen {
                self.signal_interrupt(id);
            }
        }
    }

    /// A compute node carrying a serving replica failed: tear the replica
    /// down and re-queue its requests (original arrival times — the
    /// latency clock keeps running) onto surviving replicas.
    pub(crate) fn serve_replica_down(&mut self, sid: ServingId, rep: u32) {
        let displaced = self.with_opt_engine(|p, eng| {
            let job = p.serving.get_mut(&sid).expect("owner map names live jobs");
            let r = &mut job.replicas[rep as usize];
            debug_assert!(r.running, "owner map only names running replicas");
            r.running = false;
            r.busy = false;
            r.net_pending = false;
            r.seg_iters = 0;
            r.seg_prompt = 0;
            r.kv_used = 0.0;
            r.epoch += 1;
            if let Some(eng) = eng {
                for f in r.flows.drain(..) {
                    eng.flow_owner.remove(&f);
                    eng.cluster.fluid.cancel_flow(f);
                }
            }
            r.flows.clear();
            let nodes = std::mem::take(&mut r.nodes);
            // Partial decode progress is lost: displaced requests restart
            // from their prompt on whichever replica picks them up.
            let mut displaced: Vec<Waiting> = r
                .batch
                .drain(..)
                .map(|f| Waiting {
                    req: f.req,
                    arrived: f.arrived,
                })
                .collect();
            displaced.extend(r.queue.drain(..));
            for &n in &nodes {
                p.nodes[n].running = None;
            }
            p.busy_nodes -= nodes.len();
            displaced
        });
        self.note_serve("serve-replica-down");
        for w in displaced {
            self.serve_dispatch(sid, w);
        }
        self.dirty = true;
    }

    // ----- request path ---------------------------------------------------

    /// The next trace request lands now.
    pub(crate) fn serve_arrival(&mut self, sid: ServingId) {
        let Some(job) = self.serving.get_mut(&sid) else {
            return;
        };
        if job.stopped {
            return;
        }
        let Some(req) = job.trace.requests.get(job.cursor).copied() else {
            return;
        };
        job.cursor += 1;
        if let Some(next) = job.trace.requests.get(job.cursor) {
            let at = SimTime(job.t0.0 + next.at_ns);
            self.timers.schedule(at, Ev::ServeArrive { sid });
        }
        let arrived = self.now;
        self.serve_dispatch(sid, Waiting { req, arrived });
    }

    /// Route a request: home replica `id % replicas`, failing over to the
    /// next running replica; with none running it waits for a placement.
    fn serve_dispatch(&mut self, sid: ServingId, w: Waiting) {
        let job = self.serving.get_mut(&sid).expect("dispatch to live job");
        let nreps = job.replicas.len();
        let home = (w.req.id % nreps as u64) as usize;
        let target = (0..nreps)
            .map(|off| (home + off) % nreps)
            .find(|&i| job.replicas[i].running);
        let Some(i) = target else {
            job.pending.push_back(w);
            return;
        };
        if i != home {
            job.redirects += 1;
        }
        job.replicas[i].queue.push_back(w);
        if !job.replicas[i].busy {
            self.serve_segment_start(sid, i);
        }
    }

    /// Begin the next decode segment on a replica: admit from the queue,
    /// size the segment, and schedule its compute completion.
    fn serve_segment_start(&mut self, sid: ServingId, rep: usize) {
        let now = self.now;
        let job = self.serving.get_mut(&sid).expect("segment on live job");
        if !job.replicas[rep].running || job.replicas[rep].busy {
            return;
        }
        let prompt = job.admit(rep);
        let r = &mut job.replicas[rep];
        if r.batch.is_empty() {
            return; // idle until the next arrival
        }
        let batch = r.batch.len() as u64;
        let min_rem = r
            .batch
            .iter()
            .map(|f| f.remaining)
            .min()
            .expect("non-empty batch");
        let k = min_rem.min(job.admit_every);
        let iter_ns = job.iter_base_ns + job.iter_per_req_ns * batch;
        let dur = (job.prefill_ns_per_token * prompt + iter_ns * k as u64).max(1);
        r.busy = true;
        r.net_pending = false;
        r.seg_iters = k;
        r.seg_prompt = prompt;
        let epoch = r.epoch;
        self.timers.schedule(
            SimTime(now.0 + dur),
            Ev::ServeSeg {
                sid,
                rep: rep as u32,
                epoch,
            },
        );
    }

    /// A segment's compute time elapsed. Declared mode: the segment is
    /// done. Fluid mode: start the tensor-parallel flows; the segment
    /// lands when they drain.
    pub(crate) fn serve_seg_event(&mut self, sid: ServingId, rep: u32, epoch: u64) {
        let valid = self.serving.get(&sid).is_some_and(|j| {
            !j.stopped
                && j.replicas[rep as usize].running
                && j.replicas[rep as usize].epoch == epoch
                && j.replicas[rep as usize].busy
                && !j.replicas[rep as usize].net_pending
        });
        if !valid {
            return;
        }
        if self.engine.is_some() {
            self.with_engine(|p, eng| {
                let job = p.serving.get_mut(&sid).expect("validated above");
                let tp = job.tp_bytes_per_token;
                let r = &mut job.replicas[rep as usize];
                let tokens = r.batch.len() as u64 * r.seg_iters as u64 + r.seg_prompt;
                let work = jobflow::ring_edge_bytes(r.nodes.len(), tp * tokens as f64).max(1.0);
                let routes = jobflow::decode_routes(&eng.cluster, &r.nodes);
                r.net_pending = true;
                for route in &routes {
                    let f = eng.cluster.fluid.start_flow(work, route);
                    eng.flow_owner.insert(f, Owner::Serve(sid, rep));
                    r.flows.push(f);
                }
            });
        } else {
            self.serve_segment_complete(sid, rep as usize);
        }
    }

    /// Some of a replica's tensor-parallel flows drained; when the whole
    /// set is done the segment lands.
    pub(crate) fn serve_flows_done(
        &mut self,
        _eng: &mut FluidEngine,
        sid: ServingId,
        rep: u32,
        done: &[FlowId],
    ) {
        let Some(job) = self.serving.get_mut(&sid) else {
            return;
        };
        let r = &mut job.replicas[rep as usize];
        r.flows.retain(|f| !done.contains(f));
        if r.flows.is_empty() && r.net_pending {
            self.serve_segment_complete(sid, rep as usize);
        }
    }

    /// Credit a finished segment's iterations, complete any sequences that
    /// produced their last token, and start the next segment.
    fn serve_segment_complete(&mut self, sid: ServingId, rep: usize) {
        let now_ns = self.now.0;
        let mut finished_lats: Vec<u64> = Vec::new();
        {
            let job = self.serving.get_mut(&sid).expect("segment on live job");
            let slo_ns = job.slo_ns;
            let r = &mut job.replicas[rep];
            let k = r.seg_iters;
            r.busy = false;
            r.net_pending = false;
            r.seg_iters = 0;
            r.seg_prompt = 0;
            let mut freed_kv = 0.0;
            let mut met = 0u64;
            r.batch.retain_mut(|f| {
                f.remaining = f.remaining.saturating_sub(k);
                if f.remaining > 0 {
                    return true;
                }
                freed_kv += f.kv;
                let lat = now_ns - f.arrived.0;
                finished_lats.push(lat);
                job.latencies.push((f.req.id, lat));
                if lat <= slo_ns {
                    met += 1;
                }
                false
            });
            let r = &mut job.replicas[rep];
            r.kv_used = (r.kv_used - freed_kv).max(0.0);
            job.slo_met += met;
        }
        if let (Some((rec, _)), false) = (&self.obs, finished_lats.is_empty()) {
            for lat in &finished_lats {
                rec.observe("platform/serve/latency_us", lat / 1_000);
            }
        }
        self.serve_segment_start(sid, rep);
    }

    fn note_serve(&self, what: &str) {
        if let (Some((rec, _)), Some(track)) = (&self.obs, self.serve_track) {
            rec.instant(track, what, self.now.0, 1.0);
        }
    }
}
