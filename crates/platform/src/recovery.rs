//! The closed fault-recovery loop (§VI-C, §VII-A): **detect → resume →
//! requeue**.
//!
//! A deterministic data-parallel training job runs its gradient allreduce
//! on the real threaded double-binary-tree executor
//! ([`ff_reduce::allreduce_ft`]) and checkpoints to a real 3FS
//! instance through the [`CheckpointManager`]. Faults from an
//! [`ff_failures::FaultPlan`] are injected at three layers:
//!
//! * **Rank death** — a rank's comm endpoint dies mid-collective. The
//!   survivors detect it as a typed [`ff_reduce::CommError`] (no panic),
//!   the scheduler marks the node failed and requeues the task onto a
//!   spare, and training resumes from the last good checkpoint — "only
//!   the last 5 minutes of progress are lost" (§VII-A).
//! * **Silent data corruption** — bytes of a saved checkpoint flip behind
//!   the manager's back (§VII-C's uncontained-ECC pathway). The checksum
//!   catches it at load time; recovery falls back to the previous
//!   checkpoint instead of restoring garbage.
//! * **Link degradation** — an IB flash cut trains a node's link down.
//!   hostping-style probing ([`crate::hostping`]) finds the slow path;
//!   the job tolerates it (the paper's policy for flash cuts) but the
//!   node is flagged for maintenance.
//!
//! Because the job is deterministic, the acid test of the whole loop is
//! that a run riddled with injected faults finishes with **bit-identical
//! parameters** to a fault-free run — see `tests/fault_recovery.rs`.

use crate::checkpoint::{CheckpointManager, CkptError};
use crate::hostping::{bottlenecks, hostping};
use crate::scheduler::{JobSpec, PlatformConfig, TaskState};
use crate::storage_health::StoragePlane;
use ff_3fs::chain::{Chain, ChainTable};
use ff_3fs::client::Fs3Client;
use ff_3fs::kvstore::KvStore;
use ff_3fs::meta::MetaService;
use ff_3fs::target::{Disk, StorageTarget};
use ff_desim::FluidSim;
use ff_failures::plan::{FaultAction, FaultPlan};
use ff_hw::{NodeHw, NodeSpec};
use ff_obs::Recorder;
use ff_reduce::exec::{allreduce_ft, ExecFaultPlan, ObsCtx};
use ff_reduce::InMemProvider;
use ff_util::error::FfError;
use std::sync::Arc;
use std::time::Duration;

/// The deterministic training job the recovery loop drives.
#[derive(Debug, Clone)]
pub struct TrainerConfig {
    /// Data-parallel ranks (one per node).
    pub ranks: usize,
    /// Parameter-vector length.
    pub params: usize,
    /// Steps to train.
    pub steps: u64,
    /// Checkpoint every this many steps (the paper's 5-minute cadence,
    /// in step units).
    pub ckpt_every: u64,
    /// Chunks per collective (pipelining degree of the tree allreduce).
    pub chunks: usize,
    /// 3FS chunk size for checkpoints, bytes.
    pub ckpt_chunk_bytes: u64,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            ranks: 6,
            params: 256,
            steps: 40,
            ckpt_every: 8,
            chunks: 4,
            ckpt_chunk_bytes: 4 << 10,
        }
    }
}

/// Faults to inject into one training run, in step units.
#[derive(Debug, Clone, Default)]
pub struct JobFaults {
    /// `(step, rank)`: the rank dies mid-allreduce of that step.
    pub kills: Vec<(u64, usize)>,
    /// Checkpoint steps whose stored bytes get silently flipped after the
    /// save lands (detected only by the load-time checksum).
    pub corrupt_ckpts: Vec<u64>,
    /// `(step, rank)`: the rank's link trains down before that step.
    pub degrades: Vec<(u64, usize)>,
    /// `(step, target)`: the 3FS storage target at pool index `target`
    /// dies before that step. Checkpoint I/O must ride through on client
    /// retries while the chain reconfigures.
    pub storage_kills: Vec<(u64, usize)>,
    /// `(step, target)`: the repaired target returns, is validated, and
    /// re-syncs back into a chain.
    pub storage_rejoins: Vec<(u64, usize)>,
}

/// Steps between a storage target's death and its repaired return in
/// plans projected by [`JobFaults::from_plan`].
pub const STORAGE_REJOIN_DELAY_STEPS: u64 = 5;

impl JobFaults {
    /// No faults: the baseline run.
    pub fn none() -> JobFaults {
        JobFaults::default()
    }

    /// Project a wall-clock [`FaultPlan`] onto a job of `steps` steps of
    /// `step_s` seconds each. Kills and degradations map directly;
    /// `CorruptData` actions corrupt the checkpoint preceding the fault;
    /// `Tolerate` actions are absorbed in-band and vanish, exactly as the
    /// paper's handling table prescribes.
    pub fn from_plan(plan: &FaultPlan, step_s: f64, cfg: &TrainerConfig) -> JobFaults {
        let mut out = JobFaults::none();
        for f in plan.window(0.0, cfg.steps as f64 * step_s) {
            let step = (f.at_s / step_s) as u64;
            match f.action {
                FaultAction::KillRank { rank } => out.kills.push((step, rank % cfg.ranks)),
                FaultAction::DegradeLink { rank, .. } => {
                    out.degrades.push((step, rank % cfg.ranks))
                }
                FaultAction::CorruptData { .. } => {
                    let preceding = step / cfg.ckpt_every * cfg.ckpt_every;
                    if preceding > 0 {
                        out.corrupt_ckpts.push(preceding);
                    }
                }
                FaultAction::Tolerate { .. } => {}
                FaultAction::KillStorageTarget { target } => {
                    out.storage_kills.push((step, target));
                    out.storage_rejoins
                        .push((step + STORAGE_REJOIN_DELAY_STEPS, target));
                }
            }
        }
        out
    }
}

/// One entry in the recovery timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryEvent {
    /// A checkpoint landed after `step` completed steps.
    Checkpointed {
        /// Completed steps the checkpoint captures.
        step: u64,
    },
    /// A rank stopped responding during the allreduce of `step`.
    RankDied {
        /// The step whose collective detected the death.
        step: u64,
        /// The dead rank.
        rank: usize,
    },
    /// The scheduler moved the task back to the queue and onto spares.
    Requeued {
        /// The step at which the requeue happened.
        step: u64,
    },
    /// A checkpoint failed its checksum on load and was discarded.
    CheckpointCorrupt {
        /// The corrupt checkpoint's step.
        step: u64,
    },
    /// Training restarted from the checkpoint at `step` completed steps.
    ResumedFrom {
        /// Completed steps restored.
        step: u64,
    },
    /// hostping found `slow_paths` degraded paths on `rank`'s node.
    LinkDegraded {
        /// The step before which degradation was detected.
        step: u64,
        /// The affected rank.
        rank: usize,
        /// Number of unhealthy probes.
        slow_paths: usize,
    },
    /// A 3FS storage target died; its chains serve degraded until repair.
    StorageTargetLost {
        /// The step before which the target died.
        step: u64,
        /// The dead target's name.
        target: String,
    },
    /// A storage target passed validation and rejoined the plane.
    StorageRejoined {
        /// The step before which the target returned.
        step: u64,
        /// The readmitted target's name.
        target: String,
    },
}

/// What a recovered run looked like.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// The timeline, in order.
    pub events: Vec<RecoveryEvent>,
    /// The parameters after the final step.
    pub final_params: Vec<f32>,
    /// Steps the cluster actually executed, including replayed work.
    pub steps_executed: u64,
    /// The configured step count.
    pub steps: u64,
    /// Scheduler utilization over the run.
    pub utilization: f64,
    /// Node-seconds of work the scheduler rolled back to checkpoints.
    pub lost_work_s: u64,
}

impl RecoveryReport {
    /// Steps re-executed because of rollbacks.
    pub fn replayed_steps(&self) -> u64 {
        self.steps_executed - self.steps
    }

    /// Rank deaths observed.
    pub fn deaths(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, RecoveryEvent::RankDied { .. }))
            .count()
    }

    /// Checkpoints that failed their checksum.
    pub fn corrupt_checkpoints(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, RecoveryEvent::CheckpointCorrupt { .. }))
            .count()
    }

    /// The steps training resumed from, in order.
    pub fn resume_points(&self) -> Vec<u64> {
        self.events
            .iter()
            .filter_map(|e| match e {
                RecoveryEvent::ResumedFrom { step } => Some(*step),
                _ => None,
            })
            .collect()
    }
}

/// Per-rank deterministic gradient: small integers, so f32 tree
/// reductions are exact and replays are bit-identical.
fn gradient(rank: usize, step: u64, params: usize) -> Vec<f32> {
    (0..params)
        .map(|i| ((rank * 31 + step as usize * 17 + i * 13) % 16) as f32 - 7.5)
        .collect()
}

/// Apply one optimizer step: `p -= Δ/2¹⁰ × grad_sum / ranks`, all in
/// exactly representable f32 quantities.
fn apply(params: &mut [f32], total: &[f32], ranks: usize) {
    let scale = (1.0 / 1024.0) / ranks as f32;
    for (p, g) in params.iter_mut().zip(total) {
        *p -= g * scale;
    }
}

fn encode_params(p: &[f32]) -> Vec<u8> {
    p.iter().flat_map(|x| x.to_le_bytes()).collect()
}

fn decode_params(b: &[u8]) -> Vec<f32> {
    b.chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("4-byte chunk")))
        .collect()
}

/// How long survivors wait on a silent peer before declaring it dead —
/// the collective layer's failure-detection latency.
const DETECT_TIMEOUT: Duration = Duration::from_millis(250);

/// A fresh single-job 3FS instance big enough for the run's checkpoints.
/// With a recorder, every chain reports its writes on `fs3/chain{c}`.
fn build_store(obs: Option<&Arc<Recorder>>) -> Arc<Fs3Client> {
    let chains: Vec<_> = (0..4)
        .map(|c| {
            Chain::new(
                c,
                vec![
                    StorageTarget::new(format!("c{c}a"), Disk::new(64 << 20)),
                    StorageTarget::new(format!("c{c}b"), Disk::new(64 << 20)),
                ],
            )
        })
        .collect();
    if let Some(rec) = obs {
        for ch in &chains {
            ch.attach_recorder(rec, &format!("fs3/chain{}", ch.id()));
        }
    }
    let table = Arc::new(ChainTable::new(chains));
    let meta = MetaService::new(KvStore::new(4, 2), table.len());
    Fs3Client::new(meta, table, 8)
}

/// [`build_store`]'s topology wrapped in a [`StoragePlane`] so storage
/// faults can be injected, detected and repaired. The client's failover
/// hook drives repair passes from inside its retry loop; the dead target
/// itself — once validated — is the only spare, so a rejoin must re-sync
/// it back into its chain.
fn build_faulted_store(obs: Option<&Arc<Recorder>>) -> (Arc<Fs3Client>, Arc<StoragePlane>) {
    let mut members = Vec::new();
    let chains: Vec<_> = (0..4)
        .map(|c| {
            let reps: Vec<_> = ["a", "b"]
                .iter()
                .map(|r| StorageTarget::new(format!("c{c}{r}"), Disk::new(64 << 20)))
                .collect();
            members.extend(reps.iter().cloned());
            Chain::new(c, reps)
        })
        .collect();
    if let Some(rec) = obs {
        for ch in &chains {
            ch.attach_recorder(rec, &format!("fs3/chain{}", ch.id()));
        }
    }
    let table = Arc::new(ChainTable::new(chains));
    let plane = StoragePlane::new(table.clone(), members, Vec::new(), 64 << 10);
    if let Some(rec) = obs {
        plane.attach_recorder(rec);
    }
    let meta = MetaService::new(KvStore::new(4, 2), table.len());
    let client = Fs3Client::new(meta, table, 8);
    client.set_failover_handler(plane.failover_handler());
    (client, plane)
}

/// Run the job under `faults`, recovering as the platform would, and
/// return the timeline plus the final parameters.
///
/// The run owns its world: a fresh 3FS instance for checkpoints, a
/// [`crate::Platform`] with `ranks` nodes per zone (zone 1 is the spare pool a
/// requeued task lands on), and a fluid model of each node for hostping
/// probing. Saves here are synchronous so that a checkpoint provably
/// precedes the faults that follow it; the asynchronous path and its
/// error surfacing are exercised by the checkpoint manager's own tests.
pub fn train_with_recovery(
    cfg: &TrainerConfig,
    faults: &JobFaults,
) -> Result<RecoveryReport, FfError> {
    train_with_recovery_traced(cfg, faults, None)
}

/// [`train_with_recovery`] with full-stack observability. One recorder
/// collects the whole run on simulated/logical time, one second per step:
///
/// * `platform/job` — a span per completed training step;
/// * `platform/recovery` — the [`RecoveryEvent`] timeline as instants;
/// * `reduce/rank{r}` + `reduce/ctl` — every collective's send/recv spans
///   and the shrink-to-survivors control events;
/// * `fs3/chain{c}` — chain-replicated checkpoint chunk writes;
/// * `platform/ckpt` — checkpoint save/load/corrupt;
/// * `desim/hostping` — degradation probes and link utilization gauges.
///
/// The job is deterministic and every timestamp is logical, so the same
/// `(cfg, faults)` always yields a byte-identical trace digest.
pub fn train_with_recovery_traced(
    cfg: &TrainerConfig,
    faults: &JobFaults,
    obs: Option<&Arc<Recorder>>,
) -> Result<RecoveryReport, FfError> {
    assert!(cfg.ranks >= 2, "recovery needs a multi-rank job");
    assert!(cfg.ckpt_every >= 1);
    const STEP_NS: u64 = 1_000_000_000;
    let job_track = obs.map(|r| r.track("platform/job"));
    let rec_track = obs.map(|r| r.track("platform/recovery"));
    let note = |name: &str, step: u64, value: f64| {
        if let (Some(r), Some(t)) = (obs, rec_track) {
            r.instant(t, name, step * STEP_NS, value);
        }
    };
    // The storage plane (and its obs streams) exists only when storage
    // faults are in play, so fault-free traces keep their golden digests.
    let (client, storage) = if faults.storage_kills.is_empty() && faults.storage_rejoins.is_empty()
    {
        (build_store(obs), None)
    } else {
        let (client, plane) = build_faulted_store(obs);
        (client, Some(plane))
    };
    let ckpt = CheckpointManager::new(client.clone(), "job", cfg.ckpt_chunk_bytes)?;
    if let Some(rec) = obs {
        ckpt.attach_recorder(rec, "platform/ckpt");
    }

    let mut platform = PlatformConfig::new()
        .zones([cfg.ranks, cfg.ranks])
        .ckpt_interval(cfg.ckpt_every)
        .build()?;
    let task = platform.submit(JobSpec::new("train", cfg.ranks, cfg.steps))?;
    assert_eq!(platform.state(task), Some(TaskState::Running));

    let mut events = Vec::new();
    let mut params = vec![0f32; cfg.params];
    let mut completed = 0u64;
    let mut steps_executed = 0u64;
    let mut kills = faults.kills.clone();
    let mut degrades = faults.degrades.clone();
    let mut storage_kills = faults.storage_kills.clone();
    let mut storage_rejoins = faults.storage_rejoins.clone();
    // Dedup: flipping the same byte twice would restore it.
    let mut corrupt: Vec<u64> = faults.corrupt_ckpts.clone();
    corrupt.sort_unstable();
    corrupt.dedup();

    while completed < cfg.steps {
        let step = completed;

        // --- Storage plane: kills, health ticks, validated rejoins. ---
        if let Some(plane) = &storage {
            // The plane's clock must stay monotonic even when `completed`
            // rolls back to a checkpoint, so it runs on executed steps.
            plane.tick(steps_executed);
            while let Some(pos) = storage_kills.iter().position(|&(s, _)| s == step) {
                let (_, idx) = storage_kills.swap_remove(pos);
                if let Some(target) = plane.inject_kill(idx, step) {
                    events.push(RecoveryEvent::StorageTargetLost {
                        step,
                        target: target.clone(),
                    });
                    note(&format!("storage target {target} lost"), step, idx as f64);
                }
            }
            while let Some(pos) = storage_rejoins.iter().position(|&(s, _)| s == step) {
                let (_, idx) = storage_rejoins.swap_remove(pos);
                let names = plane.target_names();
                let target = names[idx % names.len()].clone();
                plane.repair_node(idx);
                if plane.revive_and_validate(idx, step) {
                    events.push(RecoveryEvent::StorageRejoined {
                        step,
                        target: target.clone(),
                    });
                    note(
                        &format!("storage target {target} rejoined"),
                        step,
                        idx as f64,
                    );
                }
            }
        }

        // --- Detect: link degradation via hostping (§VII-B). ---
        while let Some(pos) = degrades.iter().position(|&(s, _)| s == step) {
            let (_, rank) = degrades.swap_remove(pos);
            let mut fluid = FluidSim::new();
            if let Some(rec) = obs {
                fluid.attach_recorder(rec, "desim/hostping", step * STEP_NS);
            }
            let hw = NodeHw::install(&mut fluid, &format!("rank{rank}"), &NodeSpec::pcie_a100());
            // The flash cut: the node's PCIe uplink trains down.
            let uplink = hw.d2h(0).0[0].0;
            fluid
                .degrade(uplink, 0.25)
                .expect("freshly installed uplink resource");
            let probes = hostping(&mut fluid, &hw);
            let slow = bottlenecks(&probes).len();
            assert!(slow > 0, "hostping must see a 4× slower path");
            events.push(RecoveryEvent::LinkDegraded {
                step,
                rank,
                slow_paths: slow,
            });
            note(&format!("link degraded rank {rank}"), step, slow as f64);
            // Flash cuts are tolerated in-band (Table V policy): the node
            // is flagged, the link re-trains, the job keeps its world.
            fluid
                .restore(uplink)
                .expect("freshly installed uplink resource");
            fluid.flush_stats();
        }

        // --- The step's allreduce, possibly with a rank dying inside. ---
        let plan = match kills.iter().position(|&(s, _)| s == step) {
            Some(pos) => {
                let (_, rank) = kills.swap_remove(pos);
                ExecFaultPlan::kill_rank(rank % cfg.ranks, 1, DETECT_TIMEOUT)
            }
            None => ExecFaultPlan::none(),
        };
        let grads: Vec<Vec<f32>> = (0..cfg.ranks)
            .map(|r| gradient(r, step, cfg.params))
            .collect();
        let ctx = obs.map(|rec| ObsCtx::new(rec, "reduce", step * STEP_NS));
        let report = allreduce_ft(grads, cfg.chunks, &plan, &InMemProvider, ctx.as_ref());
        steps_executed += 1;

        if !report.dead.is_empty() {
            // --- Detect → requeue → resume. ---
            for &rank in &report.dead {
                events.push(RecoveryEvent::RankDied { step, rank });
                note(&format!("rank {rank} died"), step, rank as f64);
                // The node hosting the dead rank leaves the pool; the
                // scheduler rolls the task back and reschedules it onto
                // the remaining healthy nodes plus the spare pool.
                let node = platform
                    .assignment(task)
                    .and_then(|a| a.get(rank))
                    .copied()
                    .unwrap_or(rank);
                platform.fail_node(node);
            }
            events.push(RecoveryEvent::Requeued { step });
            note("requeued onto spares", step, step as f64);
            assert_eq!(
                platform.state(task),
                Some(TaskState::Running),
                "spare nodes must absorb the requeued task"
            );

            // Walk back to the newest checkpoint that passes its checksum.
            loop {
                match ckpt.latest_step()? {
                    None => {
                        params = vec![0f32; cfg.params];
                        completed = 0;
                        events.push(RecoveryEvent::ResumedFrom { step: 0 });
                        note("resumed from scratch", step, 0.0);
                        break;
                    }
                    Some(s) => match ckpt.load(s) {
                        Ok(tensors) => {
                            params = decode_params(&tensors[0].1);
                            completed = s;
                            events.push(RecoveryEvent::ResumedFrom { step: s });
                            note(&format!("resumed from ckpt {s}"), step, s as f64);
                            break;
                        }
                        Err(CkptError::Corrupt(_)) => {
                            events.push(RecoveryEvent::CheckpointCorrupt { step: s });
                            note(&format!("ckpt {s} corrupt, discarded"), step, s as f64);
                            ckpt.remove_step(s)?;
                        }
                        Err(e) => return Err(e.into()),
                    },
                }
            }
            continue;
        }

        // --- Fault-free step: apply the update. ---
        let total = report
            .outputs
            .iter()
            .flatten()
            .next()
            .expect("a clean allreduce has outputs");
        apply(&mut params, total, cfg.ranks);
        if let (Some(r), Some(t)) = (obs, job_track) {
            r.span(
                t,
                &format!("step {step}"),
                step * STEP_NS,
                STEP_NS,
                cfg.params as f64,
            );
        }
        completed += 1;
        platform.tick(1);

        // --- Checkpoint cadence (+ the silent-corruption injection). ---
        if completed.is_multiple_of(cfg.ckpt_every) && completed < cfg.steps {
            ckpt.save(completed, &[("params".to_string(), encode_params(&params))])?;
            events.push(RecoveryEvent::Checkpointed { step: completed });
            note(
                &format!("checkpointed {completed}"),
                completed,
                completed as f64,
            );
            if let Some(pos) = corrupt.iter().position(|&s| s == completed) {
                corrupt.swap_remove(pos);
                // Flip a byte of the stored chunk behind the manager's
                // back — storage-level SDC the checksum must catch.
                let path = format!("/job/step-{completed:012}.bin");
                let attr = client.meta().resolve(&path)?;
                let mut byte = client.read_at(&attr, 40, 1)?;
                byte[0] ^= 0x40;
                client.write_at(&attr, 40, &byte)?;
            }
        }
    }

    Ok(RecoveryReport {
        events,
        final_params: params,
        steps_executed,
        steps: cfg.steps,
        utilization: platform.utilization(),
        lost_work_s: platform.lost_work_s(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_run_has_empty_timeline() {
        let cfg = TrainerConfig::default();
        let r = train_with_recovery(&cfg, &JobFaults::none()).unwrap();
        assert_eq!(r.steps_executed, cfg.steps);
        assert_eq!(r.replayed_steps(), 0);
        assert!(r
            .events
            .iter()
            .all(|e| matches!(e, RecoveryEvent::Checkpointed { .. })));
        assert_eq!(r.lost_work_s, 0);
    }

    #[test]
    fn rank_death_resumes_from_last_checkpoint() {
        let cfg = TrainerConfig::default();
        let faults = JobFaults {
            kills: vec![(19, 2)],
            ..JobFaults::none()
        };
        let r = train_with_recovery(&cfg, &faults).unwrap();
        assert_eq!(r.deaths(), 1);
        // Kill at step 19, cadence 8 → resume from checkpoint 16,
        // replaying 19 − 16 + 1 = 4 steps (the killed one included).
        assert_eq!(r.resume_points(), vec![16]);
        assert_eq!(r.replayed_steps(), 4);
        let clean = train_with_recovery(&cfg, &JobFaults::none()).unwrap();
        assert_eq!(r.final_params, clean.final_params);
    }

    #[test]
    fn death_before_first_checkpoint_restarts_from_zero() {
        let cfg = TrainerConfig {
            steps: 12,
            ckpt_every: 8,
            ..TrainerConfig::default()
        };
        let faults = JobFaults {
            kills: vec![(3, 0)],
            ..JobFaults::none()
        };
        let r = train_with_recovery(&cfg, &faults).unwrap();
        assert_eq!(r.resume_points(), vec![0]);
        let clean = train_with_recovery(&cfg, &JobFaults::none()).unwrap();
        assert_eq!(r.final_params, clean.final_params);
    }

    #[test]
    fn degraded_link_is_detected_but_tolerated() {
        let cfg = TrainerConfig::default();
        let faults = JobFaults {
            degrades: vec![(5, 1)],
            ..JobFaults::none()
        };
        let r = train_with_recovery(&cfg, &faults).unwrap();
        let slow = r
            .events
            .iter()
            .find_map(|e| match e {
                RecoveryEvent::LinkDegraded { slow_paths, .. } => Some(*slow_paths),
                _ => None,
            })
            .expect("degradation detected");
        assert!(slow >= 1);
        assert_eq!(r.replayed_steps(), 0, "flash cuts cost no work");
        let clean = train_with_recovery(&cfg, &JobFaults::none()).unwrap();
        assert_eq!(r.final_params, clean.final_params);
    }

    #[test]
    fn fault_plan_projection_respects_policy() {
        use ff_failures::generator::FailureEvent;
        use ff_failures::FailureKind;
        use ff_failures::Xid;
        let cfg = TrainerConfig::default();
        let events = vec![
            FailureEvent {
                at_s: 2.0,
                node: 9,
                kind: FailureKind::GpuXid(Xid(79)), // fallen off the bus
            },
            FailureEvent {
                at_s: 10.0,
                node: 1,
                kind: FailureKind::GpuXid(Xid(74)), // NVLink: tolerated
            },
            FailureEvent {
                at_s: 17.0,
                node: 3,
                kind: FailureKind::NetworkFlashCut,
            },
            FailureEvent {
                at_s: 20.0,
                node: 2,
                kind: FailureKind::GpuXid(Xid(95)), // uncontained ECC
            },
        ];
        let plan = FaultPlan::from_events(&events, cfg.ranks);
        let jf = JobFaults::from_plan(&plan, 1.0, &cfg);
        assert_eq!(jf.kills, vec![(2, 9 % cfg.ranks)]);
        assert_eq!(jf.degrades, vec![(17, 3)]);
        // Corruption at step 20 lands on the preceding checkpoint (16).
        assert_eq!(jf.corrupt_ckpts, vec![16]);
    }
}
