//! The storage-plane health manager: the glue between the 3FS chains,
//! the cluster manager's node-health state machine, and the hardware
//! validator (§VI-B failure handling).
//!
//! [`StoragePlane`] owns the failure/recovery loop for storage targets:
//!
//! 1. Alive targets heartbeat the [`ClusterManager`] every tick; a dead
//!    one misses beats, turns **Suspect**, then **Quarantined** (an
//!    injected fault quarantines it immediately via `mark_failed`).
//! 2. [`StoragePlane::repair`] removes dead members from every chain —
//!    the chain reconciles dirty versions against the surviving tail and
//!    keeps serving degraded — then recruits a *placement-eligible*
//!    spare and copies the committed objects across through a
//!    bandwidth-bounded, resumable [`ResyncSession`].
//! 3. A quarantined target can only re-enter placement through the
//!    validator: [`StoragePlane::revive_and_validate`] runs the full
//!    check suite on the node and readmits it as a (wiped) spare iff
//!    every check passes. Quarantine is sticky — heartbeats alone never
//!    clear it.
//!
//! Everything is instrumented through `ff-obs`: failover/rejoin instants
//! on the `fs3/failover` track, a `fs3/resync_bytes` gauge, and
//! per-health-state gauges, so two same-seed runs produce identical
//! digests.

use crate::validator::{node_passes, run_all_checks, NodeUnderTest};
use ff_3fs::chain::ChainTable;
use ff_3fs::manager::{ClusterManager, ServiceRole};
use ff_3fs::resync::ResyncSession;
use ff_3fs::target::StorageTarget;
use ff_obs::{Recorder, TrackId};
use ff_util::error::FfError;
use ff_util::sync::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Simulated nanoseconds per training step (matches the recovery loop's
/// clock so storage events land on the same timeline).
const STEP_NS: u64 = 1_000_000_000;

/// Simulated milliseconds per training step fed to the cluster manager.
const STEP_MS: u64 = 1_000;

/// A target three ticks silent is quarantined (suspect at 1.5 ticks).
const HEARTBEAT_TIMEOUT_MS: u64 = 3 * STEP_MS;

/// Storage-plane health manager; see the module docs.
pub struct StoragePlane {
    manager: Arc<ClusterManager>,
    table: Arc<ChainTable>,
    /// Every target ever placed (members and spares), by name. BTreeMap
    /// so iteration (heartbeats, lookups) is deterministic.
    targets: BTreeMap<String, Arc<StorageTarget>>,
    /// Validated targets awaiting placement.
    spares: Mutex<Vec<Arc<StorageTarget>>>,
    /// Replica count each chain should be repaired back to.
    desired: Vec<usize>,
    /// Max bytes copied per re-sync pump (the background-traffic bound).
    resync_budget: u64,
    /// Serializes repair passes: concurrent client failover callbacks
    /// must not race each other into `begin_recruit`.
    repair_lock: Mutex<()>,
    /// The simulated hardware behind each target's node, driven through
    /// the validator on readmission.
    nodes: Mutex<BTreeMap<String, NodeUnderTest>>,
    obs: Mutex<Option<(Arc<Recorder>, TrackId)>>,
}

impl StoragePlane {
    /// Wire a plane over `table`'s chains. `members` are the targets
    /// currently placed in chains; `spares` is the standby pool. Every
    /// target registers with the cluster manager as a storage service on
    /// a healthy node.
    pub fn new(
        table: Arc<ChainTable>,
        members: Vec<Arc<StorageTarget>>,
        spares: Vec<Arc<StorageTarget>>,
        resync_budget: u64,
    ) -> Arc<StoragePlane> {
        assert!(resync_budget > 0);
        let manager = ClusterManager::new(HEARTBEAT_TIMEOUT_MS, 10 * HEARTBEAT_TIMEOUT_MS);
        let desired = table.chains().iter().map(|c| c.replicas()).collect();
        let mut targets = BTreeMap::new();
        let mut nodes = BTreeMap::new();
        for t in members.iter().chain(spares.iter()) {
            manager.register(t.name(), ServiceRole::Storage);
            nodes.insert(t.name().to_string(), NodeUnderTest::healthy());
            targets.insert(t.name().to_string(), t.clone());
        }
        Arc::new(StoragePlane {
            manager,
            table,
            targets,
            spares: Mutex::new(spares),
            desired,
            resync_budget,
            repair_lock: Mutex::new(()),
            nodes: Mutex::new(nodes),
            obs: Mutex::new(None),
        })
    }

    /// Attach a recorder; failover instants land on the `fs3/failover`
    /// track.
    pub fn attach_recorder(&self, rec: &Arc<Recorder>) {
        let track = rec.track("fs3/failover");
        *self.obs.lock() = Some((rec.clone(), track));
    }

    /// The underlying cluster manager (health queries).
    pub fn manager(&self) -> &Arc<ClusterManager> {
        &self.manager
    }

    /// The target registered under `name`.
    pub fn target(&self, name: &str) -> Option<Arc<StorageTarget>> {
        self.targets.get(name).cloned()
    }

    /// Target names in deterministic (sorted) order — index `i` here is
    /// the storage-pool index fault plans address.
    pub fn target_names(&self) -> Vec<String> {
        self.targets.keys().cloned().collect()
    }

    fn note(&self, name: &str, step: u64, value: f64) {
        if let Some((rec, track)) = self.obs.lock().as_ref() {
            rec.instant(*track, name, step * STEP_NS, value);
        }
    }

    /// One health tick at training step `step`: alive targets heartbeat,
    /// the manager clock advances (dead targets degrade Suspect →
    /// Quarantined), and per-state gauges refresh.
    pub fn tick(&self, step: u64) {
        self.manager.tick(step * STEP_MS);
        // Beats land *after* the clock advance so an alive target is
        // never counted as missing the interval the tick itself spans
        // (a transient Suspect verdict heals right here).
        for t in self.targets.values() {
            if t.is_alive() {
                self.manager.heartbeat(t.name());
            }
        }
        if let Some((rec, _)) = self.obs.lock().as_ref() {
            let [healthy, suspect, quarantined, validating, probation] =
                self.manager.health_counts();
            rec.gauge_set("fs3/health/healthy", healthy as f64);
            rec.gauge_set("fs3/health/suspect", suspect as f64);
            rec.gauge_set("fs3/health/quarantined", quarantined as f64);
            rec.gauge_set("fs3/health/validating", validating as f64);
            rec.gauge_set("fs3/health/probation", probation as f64);
        }
    }

    /// Kill the target at storage-pool index `idx` (sorted-name order)
    /// at step `step`: the target stops serving and is quarantined
    /// immediately. The chain is *not* repaired here — in-flight writes
    /// hit `Unavailable` and the client's failover retry drives
    /// [`StoragePlane::repair`], exactly as a real deployment would
    /// discover the fault.
    pub fn inject_kill(&self, idx: usize, step: u64) -> Option<String> {
        let name = self
            .target_names()
            .get(idx % self.targets.len().max(1))?
            .clone();
        let target = self.targets.get(&name)?.clone();
        if !target.is_alive() {
            return None; // already down
        }
        target.fail();
        self.manager.mark_failed(&name);
        // The node's SSD path is now broken: the validator must see a
        // defect until repair, so a premature readmission attempt fails.
        if let Some(n) = self.nodes.lock().get_mut(&name) {
            n.storage_gbps = 2.0;
        }
        self.note("storage_target_lost", step, idx as f64);
        Some(name)
    }

    /// Repair pass at step `step`: drop dead members from every chain
    /// (dirty-version reconciliation happens inside the chain), then
    /// recruit placement-eligible spares for under-replicated chains and
    /// re-sync them with bounded pumps. Returns the number of membership
    /// changes made. Serialized — concurrent callers queue.
    pub fn repair(&self, step: u64) -> usize {
        let _guard = self.repair_lock.lock();
        let mut changes = 0usize;
        for (ci, chain) in self.table.chains().iter().enumerate() {
            for _dead in chain.remove_dead() {
                changes += 1;
                self.note("chain_member_removed", step, ci as f64);
                if let Some((rec, _)) = self.obs.lock().as_ref() {
                    rec.counter_add("fs3/failovers", 1.0);
                }
            }
            while chain.replicas() < self.desired[ci] && chain.joining_name().is_none() {
                let recruit = {
                    let mut spares = self.spares.lock();
                    let pos = spares
                        .iter()
                        .position(|s| s.is_alive() && self.manager.placement_eligible(s.name()));
                    match pos {
                        Some(p) => spares.remove(p),
                        None => break, // nothing eligible; stay degraded
                    }
                };
                match self.resync(chain, recruit, ci, step) {
                    Ok(()) => changes += 1,
                    Err(_) => break, // recruit died mid-copy; retry next pass
                }
            }
        }
        changes
    }

    /// Run one full background re-sync of `recruit` into `chain`:
    /// bounded pumps until the committed set is copied, then promotion.
    fn resync(
        &self,
        chain: &Arc<ff_3fs::chain::Chain>,
        recruit: Arc<StorageTarget>,
        ci: usize,
        step: u64,
    ) -> Result<(), FfError> {
        let mut session = ResyncSession::begin(chain.clone(), recruit)?;
        loop {
            let p = match session.pump(self.resync_budget) {
                Ok(p) => p,
                Err(e) => {
                    let failed = session.abort();
                    failed.wipe();
                    self.spares.lock().push(failed);
                    return Err(e.into());
                }
            };
            if let Some((rec, _)) = self.obs.lock().as_ref() {
                rec.gauge_set("fs3/resync_bytes", p.copied_bytes as f64);
                rec.gauge_set("fs3/resync_remaining", p.remaining as f64);
            }
            if p.done {
                break;
            }
        }
        session.finish()?;
        self.note("chain_member_recruited", step, ci as f64);
        Ok(())
    }

    /// The repair crew fixed the node at pool index `idx` (e.g. swapped
    /// its failed SSD): clear the simulated hardware defect. This alone
    /// readmits nothing — only [`StoragePlane::revive_and_validate`]
    /// can, and only with the validator's sign-off.
    pub fn repair_node(&self, idx: usize) {
        if let Some(name) = self.target_names().get(idx % self.targets.len().max(1)) {
            self.nodes
                .lock()
                .insert(name.clone(), NodeUnderTest::healthy());
        }
    }

    /// Attempt to bring the target at pool index `idx` back at step
    /// `step`: run the validator on its node as-is and — only if every
    /// check passes — wipe the target, revive it and hand it to the
    /// spare pool (placement happens through a repair pass). A node
    /// whose defect persists (no [`StoragePlane::repair_node`] yet)
    /// fails validation and stays quarantined. Returns `true` when the
    /// node was readmitted.
    pub fn revive_and_validate(&self, idx: usize, step: u64) -> bool {
        // First make sure every chain has already dropped the dead
        // member — reviving first could resurrect a stale replica.
        self.repair(step);
        let Some(name) = self
            .target_names()
            .get(idx % self.targets.len().max(1))
            .cloned()
        else {
            return false;
        };
        let Some(target) = self.targets.get(&name).cloned() else {
            return false;
        };
        if target.is_alive() {
            return false;
        }
        if !self.manager.begin_validation(&name) {
            return false;
        }
        let passed = {
            let mut nodes = self.nodes.lock();
            let node = nodes.get_mut(&name).expect("registered node");
            node_passes(&run_all_checks(node))
        };
        self.manager.conclude_validation(&name, passed);
        if !passed {
            return false;
        }
        target.wipe();
        target.revive();
        {
            // A dead *spare* revives in place — pushing it again would
            // let one target be recruited into two chains at once.
            let mut spares = self.spares.lock();
            if !spares.iter().any(|s| Arc::ptr_eq(s, &target)) {
                spares.push(target);
            }
        }
        self.note("storage_target_rejoined", step, idx as f64);
        // Place it immediately if a chain is still degraded.
        self.repair(step);
        true
    }

    /// A client failover handler: any `Unavailable`/`Reconfiguring`
    /// retry triggers a repair pass (the step is unknown from inside the
    /// client, so instants from this path land at the last ticked step).
    pub fn failover_handler(self: &Arc<Self>) -> ff_3fs::client::FailoverHandler {
        let plane = Arc::downgrade(self);
        Arc::new(move |_chain_id| {
            if let Some(plane) = plane.upgrade() {
                plane.repair(plane.last_step());
            }
        })
    }

    fn last_step(&self) -> u64 {
        self.manager.now_ms() / STEP_MS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_3fs::chain::Chain;
    use ff_3fs::manager::HealthState;
    use ff_3fs::target::{ChunkId, Disk};
    use ff_util::bytes::Bytes;

    fn chunk(i: u64) -> ChunkId {
        ChunkId { ino: 4, idx: i }
    }

    fn target(name: &str) -> Arc<StorageTarget> {
        StorageTarget::new(name, Disk::new(8 << 20))
    }

    fn plane_fixture() -> (Arc<StoragePlane>, Arc<ChainTable>, Vec<Arc<StorageTarget>>) {
        let members = vec![target("sa"), target("sb"), target("sc")];
        let chain = Chain::new(0, members.clone());
        let table = Arc::new(ChainTable::new(vec![chain]));
        let spares = vec![target("sp0")];
        let plane = StoragePlane::new(table.clone(), members.clone(), spares, 1 << 10);
        (plane, table, members)
    }

    #[test]
    fn kill_quarantines_and_repair_recruits_a_spare() {
        let (plane, table, members) = plane_fixture();
        let chain = &table.chains()[0];
        for i in 0..8 {
            chain
                .write(chunk(i), Bytes::from(vec![i as u8; 2048]))
                .unwrap();
        }
        plane.tick(1);
        // Pool order is sorted: sa, sb, sc, sp0. Kill "sb" (index 1).
        let name = plane.inject_kill(1, 2).unwrap();
        assert_eq!(name, "sb");
        assert!(!members[1].is_alive());
        assert_eq!(plane.manager().health("sb"), Some(HealthState::Quarantined));
        assert_eq!(chain.replicas(), 3, "no repair before the loop runs");
        let changes = plane.repair(3);
        assert_eq!(changes, 2, "one removal, one recruit");
        let names = chain.target_names();
        assert!(names.contains(&"sp0".to_string()), "{names:?}");
        assert!(!names.contains(&"sb".to_string()));
        // The recruit serves every committed object.
        for i in 0..8 {
            let r = chain.read_at(chunk(i), 2).unwrap();
            assert_eq!(r.as_ref()[0], i as u8);
        }
    }

    #[test]
    fn quarantined_target_needs_validation_to_return() {
        let (plane, table, _members) = plane_fixture();
        let chain = &table.chains()[0];
        chain
            .write(chunk(0), Bytes::from("v1".to_string()))
            .unwrap();
        plane.inject_kill(0, 1).unwrap(); // "sa"
        plane.repair(2);
        assert_eq!(chain.replicas(), 3, "spare replaced the dead member");
        // Heartbeats do not readmit: still quarantined after many ticks.
        for s in 3..10 {
            plane.tick(s);
        }
        assert_eq!(plane.manager().health("sa"), Some(HealthState::Quarantined));
        assert!(!plane.manager().placement_eligible("sa"));
        // Validation with the defect still present fails and changes
        // nothing; after the repair crew's visit it passes.
        assert!(!plane.revive_and_validate(0, 10));
        assert_eq!(plane.manager().health("sa"), Some(HealthState::Quarantined));
        plane.repair_node(0);
        assert!(plane.revive_and_validate(0, 10));
        assert_eq!(plane.manager().health("sa"), Some(HealthState::Healthy));
        assert!(plane.manager().placement_eligible("sa"));
        assert!(plane.target("sa").unwrap().is_alive());
    }

    #[test]
    fn validation_fails_while_the_defect_persists() {
        let (plane, _table, members) = plane_fixture();
        plane.inject_kill(0, 1).unwrap();
        // The kill broke the node's storage path; without a repair-crew
        // visit the validator's storage-stress check fails every attempt.
        for attempt in 0..3 {
            assert!(!plane.revive_and_validate(0, 2 + attempt));
            assert_eq!(plane.manager().health("sa"), Some(HealthState::Quarantined));
        }
        assert!(
            !members[0].is_alive(),
            "a failed validation revives nothing"
        );
    }

    #[test]
    fn dead_targets_degrade_through_suspect_without_mark_failed() {
        let members = vec![target("da"), target("db")];
        let chain = Chain::new(0, members.clone());
        let table = Arc::new(ChainTable::new(vec![chain]));
        let plane = StoragePlane::new(table, members.clone(), vec![], 1 << 10);
        plane.tick(1);
        // Silent death: no mark_failed, just missed heartbeats. The last
        // beat landed at step 1; suspect at 1.5 s missed, out at 3 s.
        members[0].fail();
        plane.tick(2);
        assert_eq!(plane.manager().health("da"), Some(HealthState::Healthy));
        plane.tick(3); // 2 s missed ≥ suspect threshold
        assert_eq!(plane.manager().health("da"), Some(HealthState::Suspect));
        plane.tick(4); // 3 s missed ≥ timeout
        assert_eq!(plane.manager().health("da"), Some(HealthState::Quarantined));
        assert_eq!(plane.manager().health("db"), Some(HealthState::Healthy));
    }

    #[test]
    fn repair_without_eligible_spare_stays_degraded() {
        let members = vec![target("xa"), target("xb")];
        let chain = Chain::new(0, members.clone());
        let table = Arc::new(ChainTable::new(vec![chain]));
        let plane = StoragePlane::new(table.clone(), members.clone(), vec![], 1 << 10);
        let chain = &table.chains()[0];
        chain.write(chunk(0), Bytes::from("x".to_string())).unwrap();
        plane.inject_kill(1, 1).unwrap();
        let changes = plane.repair(2);
        assert_eq!(changes, 1, "removal only; no spare to recruit");
        assert_eq!(chain.replicas(), 1);
        assert_eq!(chain.read(chunk(0)).unwrap(), Bytes::from("x".to_string()));
    }
}
