//! Signal-driven gray-failure detection (hai-monitor style, §VII-B).
//!
//! Everything else in the platform's failure path is an oracle: a
//! [`FaultPlan`](ff_failures::FaultPlan) injection takes effect and the
//! scheduler reacts with perfect knowledge. Real operations (§VII-B's
//! hai-monitor + hostping loop) work the other way around — a degraded
//! node is *inferred* from noisy, observable signals, and the inference
//! is late, sometimes wrong, and tunable between those two sins.
//!
//! The [`Detector`] sees three signals and nothing else:
//!
//! * **Probe sweeps** — every `probe_period_s` the platform runs a
//!   hostping-style bandwidth probe against each node's NIC and memory
//!   bus and reports the measured throughput. The detector keeps a
//!   per-path EWMA baseline and flags a node whose measurement falls
//!   below `baseline / slow_factor` for `confirm_k` consecutive sweeps.
//! * **Heartbeat jitter** — a node's heartbeat interval stretches with
//!   its compute slowdown; a ratio above `hb_late_factor` for
//!   `confirm_k` sweeps flags it.
//! * **Step-time EWMAs** — per-task training-step durations (fluid
//!   mode). A step that exceeds `step_slow_factor ×` its own EWMA for
//!   `confirm_k` consecutive steps raises an advisory
//!   [`Verdict::SlowJob`]. Job-level symptoms cannot localize a node, so
//!   slow-job verdicts never quarantine anything by themselves.
//!
//! Every measurement is multiplied by seeded noise in `1 ± noise`, so
//! detection latency, false positives and false negatives all exist *by
//! construction*: a hair-trigger sensitivity quarantines healthy nodes
//! on noise; a sluggish one lets a mild straggler hide under the
//! threshold forever. The detector never reads injected gray state — it
//! only ever sees the measurements the platform hands it.
//!
//! Same seed + same measurement stream ⇒ byte-identical
//! [`canonical`](Detector::canonical) verdict streams.

use ff_desim::SimTime;
use ff_util::rng::ChaCha8Rng;
use std::collections::BTreeMap;

/// Tuning knobs for the detection loop. Build one with
/// [`DetectorConfig::balanced`] or [`DetectorConfig::with_sensitivity`]
/// and hand it to `PlatformConfig::detector`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// Seconds between probe sweeps (also the heartbeat sampling cadence).
    pub probe_period_s: u64,
    /// EWMA smoothing for probe baselines and step-time tracks.
    pub ewma_alpha: f64,
    /// A probe breaches when `measured < baseline / slow_factor`.
    pub slow_factor: f64,
    /// A heartbeat breaches when its stretch ratio exceeds this.
    pub hb_late_factor: f64,
    /// A step breaches when it exceeds this multiple of its EWMA.
    pub step_slow_factor: f64,
    /// Consecutive breaches required before a verdict is raised.
    pub confirm_k: u32,
    /// Measurement noise amplitude: samples are scaled by `1 ± noise`.
    pub noise: f64,
    /// Seed for the measurement-noise stream.
    pub seed: u64,
    /// Seconds a readmitted node spends on probation before returning to
    /// full health.
    pub probation_s: u64,
    /// Base seconds a detector-quarantined node is held before
    /// validation; doubles per accumulated flap (capped by
    /// `max_flap_backoff`).
    pub quarantine_hold_s: u64,
    /// Cap on the per-node backoff exponent.
    pub max_flap_backoff: u32,
}

impl DetectorConfig {
    /// The balanced preset: ~45 s to confirm a hard straggler at the
    /// default cadence, with enough threshold margin over the 4% noise
    /// floor that a calm fleet never flags.
    pub fn balanced() -> DetectorConfig {
        DetectorConfig {
            probe_period_s: 15,
            ewma_alpha: 0.2,
            slow_factor: 1.4,
            hb_late_factor: 2.0,
            step_slow_factor: 1.6,
            confirm_k: 3,
            noise: 0.04,
            seed: 0x4A11_BEEF,
            probation_s: 300,
            quarantine_hold_s: 120,
            max_flap_backoff: 6,
        }
    }

    /// A preset parameterized by sensitivity `s ∈ (0, 1]`: `s = 0.5` is
    /// [`balanced`](Self::balanced); `s → 1` is hair-trigger (threshold
    /// at the baseline itself, single-sweep confirmation — fast but
    /// noise-prone); `s → 0` is sluggish (wide margins, long
    /// confirmation — quiet but blind to mild degradation).
    pub fn with_sensitivity(s: f64) -> DetectorConfig {
        assert!(
            s > 0.0 && s <= 1.0,
            "sensitivity must be in (0, 1], got {s}"
        );
        let mut c = DetectorConfig::balanced();
        c.slow_factor = 1.0 + 0.8 * (1.0 - s);
        c.hb_late_factor = 1.0 + 2.0 * (1.0 - s);
        c.confirm_k = (1.0 + 4.0 * (1.0 - s)).round().max(1.0) as u32;
        c
    }
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig::balanced()
    }
}

/// Which observable signal produced a verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Signal {
    /// The NIC bandwidth probe of the sweep.
    ProbeNic,
    /// The memory-bus bandwidth probe of the sweep.
    ProbeMem,
    /// Heartbeat-interval jitter.
    Heartbeat,
}

impl Signal {
    /// Stable lowercase name (canonical lines, metric labels).
    pub fn name(&self) -> &'static str {
        match self {
            Signal::ProbeNic => "probe-nic",
            Signal::ProbeMem => "probe-mem",
            Signal::Heartbeat => "heartbeat",
        }
    }
}

/// A detection outcome. Suspect verdicts drive quarantine; slow-job
/// verdicts are advisory (a job-level symptom cannot localize a node).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Verdict {
    /// A node's observable signals breached for `confirm_k` sweeps.
    Suspect {
        /// When the verdict was raised.
        at: SimTime,
        /// The suspected compute node.
        node: usize,
        /// The signal that confirmed first.
        signal: Signal,
        /// The (noisy) measurement that confirmed the breach.
        measured: f64,
        /// The baseline (or threshold) it was judged against.
        baseline: f64,
    },
    /// A task's step time ran away from its own EWMA.
    SlowJob {
        /// When the verdict was raised.
        at: SimTime,
        /// The task (raw id) whose steps slowed.
        task: u64,
        /// Step duration over EWMA at confirmation.
        ratio: f64,
    },
}

impl Verdict {
    /// One canonical line per verdict (no trailing newline).
    pub fn canonical(&self) -> String {
        match *self {
            Verdict::Suspect {
                at,
                node,
                signal,
                measured,
                baseline,
            } => format!(
                "suspect at={} node={node:04} sig={} measured={measured:.6} baseline={baseline:.6}",
                at.0,
                signal.name()
            ),
            Verdict::SlowJob { at, task, ratio } => {
                format!("slow-job at={} task={task} ratio={ratio:.6}", at.0)
            }
        }
    }
}

/// Per-node signal tracks: `[nic, mem]` probe baselines and breach
/// streaks, plus the heartbeat streak.
#[derive(Debug, Clone, Copy, Default)]
struct NodeTrack {
    /// EWMA probe baselines; `0.0` means unlearned.
    baseline: [f64; 2],
    streak: [u32; 2],
    hb_streak: u32,
    /// A suspect verdict is live for this node; suppress duplicates
    /// until it rejoins.
    flagged: bool,
}

#[derive(Debug, Clone, Copy)]
struct JobTrack {
    ewma_ns: f64,
    streak: u32,
    flagged: bool,
}

/// The detection loop's state: per-node baselines, per-task step-time
/// EWMAs, the seeded noise stream and the verdict log. Driven by the
/// platform's sweep timer; see the module docs for the signal model.
pub struct Detector {
    cfg: DetectorConfig,
    rng: ChaCha8Rng,
    nodes: Vec<NodeTrack>,
    jobs: BTreeMap<u64, JobTrack>,
    verdicts: Vec<Verdict>,
}

impl Detector {
    /// A detector with the given tuning.
    pub fn new(cfg: DetectorConfig) -> Detector {
        assert!(cfg.probe_period_s > 0, "probe period must be positive");
        assert!(
            cfg.ewma_alpha > 0.0 && cfg.ewma_alpha <= 1.0,
            "alpha must be in (0, 1]"
        );
        assert!(cfg.slow_factor >= 1.0, "slow factor must be >= 1");
        assert!(cfg.confirm_k >= 1, "confirmation needs at least one sweep");
        assert!(
            cfg.noise >= 0.0 && cfg.noise < 1.0,
            "noise amplitude must be in [0, 1)"
        );
        Detector {
            rng: ChaCha8Rng::seed_from_u64(cfg.seed),
            cfg,
            nodes: Vec::new(),
            jobs: BTreeMap::new(),
            verdicts: Vec::new(),
        }
    }

    /// The tuning in effect.
    pub fn config(&self) -> &DetectorConfig {
        &self.cfg
    }

    fn ensure(&mut self, node: usize) {
        if node >= self.nodes.len() {
            self.nodes.resize(node + 1, NodeTrack::default());
        }
    }

    fn noise_draw(&mut self) -> f64 {
        1.0 + self.cfg.noise * (2.0 * self.rng.gen_f64() - 1.0)
    }

    /// Feed one sweep's measurements for an up node: `[nic, mem]` probe
    /// throughputs and the heartbeat stretch ratio. Returns true when
    /// this sweep confirms a new suspect verdict — the caller is
    /// expected to quarantine. Exactly three noise draws per call, so
    /// same-seed runs replay bit-identically.
    pub(crate) fn sweep_node(
        &mut self,
        at: SimTime,
        node: usize,
        measured: [f64; 2],
        hb_stretch: f64,
    ) -> bool {
        self.ensure(node);
        let cfg = self.cfg;
        let mut breach: Option<(Signal, f64, f64)> = None;
        for (i, sig) in [Signal::ProbeNic, Signal::ProbeMem].into_iter().enumerate() {
            let m = measured[i] * self.noise_draw();
            let st = &mut self.nodes[node];
            let b = st.baseline[i];
            if b == 0.0 {
                // First observation: learn, never judge.
                st.baseline[i] = m;
            } else if m < b / cfg.slow_factor {
                // Breach: freeze the baseline so a fault cannot teach
                // the detector its own degradation.
                st.streak[i] += 1;
                if st.streak[i] >= cfg.confirm_k && breach.is_none() {
                    breach = Some((sig, m, b));
                }
            } else {
                st.streak[i] = 0;
                st.baseline[i] = cfg.ewma_alpha * m + (1.0 - cfg.ewma_alpha) * b;
            }
        }
        let hb = hb_stretch * self.noise_draw();
        let st = &mut self.nodes[node];
        if hb > cfg.hb_late_factor {
            st.hb_streak += 1;
            if st.hb_streak >= cfg.confirm_k && breach.is_none() {
                breach = Some((Signal::Heartbeat, hb, cfg.hb_late_factor));
            }
        } else {
            st.hb_streak = 0;
        }
        if st.flagged {
            return false;
        }
        if let Some((signal, measured, baseline)) = breach {
            st.flagged = true;
            self.verdicts.push(Verdict::Suspect {
                at,
                node,
                signal,
                measured,
                baseline,
            });
            true
        } else {
            false
        }
    }

    /// A node left the pool (quarantine or hard failure): drop its
    /// learned state so it relearns a fresh baseline when it rejoins —
    /// repaired hardware need not perform like its old self.
    pub(crate) fn reset_node(&mut self, node: usize) {
        self.ensure(node);
        self.nodes[node] = NodeTrack::default();
    }

    /// Feed one completed training step for a task. Returns true when
    /// this step confirms a new advisory slow-job verdict.
    pub(crate) fn observe_step(&mut self, at: SimTime, task: u64, dur_ns: u64) -> bool {
        let cfg = self.cfg;
        let e = self.jobs.entry(task).or_insert(JobTrack {
            ewma_ns: 0.0,
            streak: 0,
            flagged: false,
        });
        let d = dur_ns as f64;
        if e.ewma_ns == 0.0 {
            e.ewma_ns = d.max(1.0);
            return false;
        }
        if d > cfg.step_slow_factor * e.ewma_ns {
            e.streak += 1;
            if e.streak >= cfg.confirm_k && !e.flagged {
                e.flagged = true;
                let ratio = d / e.ewma_ns;
                self.verdicts.push(Verdict::SlowJob { at, task, ratio });
                return true;
            }
        } else {
            e.streak = 0;
            e.flagged = false;
            e.ewma_ns = cfg.ewma_alpha * d + (1.0 - cfg.ewma_alpha) * e.ewma_ns;
        }
        false
    }

    /// Every verdict raised so far, in raise order.
    pub fn verdicts(&self) -> &[Verdict] {
        &self.verdicts
    }

    /// Suspect (node-level) verdicts raised so far.
    pub fn suspect_count(&self) -> usize {
        self.verdicts
            .iter()
            .filter(|v| matches!(v, Verdict::Suspect { .. }))
            .count()
    }

    /// Canonical text of the verdict stream: one line per verdict in
    /// raise order. Byte-identical across same-seed runs.
    pub fn canonical(&self) -> String {
        let mut out = String::from("detector verdicts v1\n");
        for v in &self.verdicts {
            out.push_str(&v.canonical());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep_calm(det: &mut Detector, sweeps: u32, nodes: usize, cap: f64) {
        for s in 0..sweeps {
            for n in 0..nodes {
                let at = SimTime::from_secs((s as u64 + 1) * 15);
                det.sweep_node(at, n, [cap, cap * 2.0], 1.0);
            }
        }
    }

    #[test]
    fn calm_signals_raise_nothing_at_balanced_sensitivity() {
        let mut det = Detector::new(DetectorConfig::balanced());
        sweep_calm(&mut det, 200, 8, 5e10);
        assert!(det.verdicts().is_empty(), "{:?}", det.verdicts());
    }

    #[test]
    fn a_hard_drop_is_confirmed_in_confirm_k_sweeps() {
        let cfg = DetectorConfig::balanced();
        let mut det = Detector::new(cfg);
        sweep_calm(&mut det, 10, 2, 5e10);
        // Node 1's NIC drops to a quarter; node 0 stays clean.
        let mut confirmed_at = None;
        for s in 0..10u32 {
            let at = SimTime::from_secs(((s + 11) * 15) as u64);
            det.sweep_node(at, 0, [5e10, 1e11], 1.0);
            if det.sweep_node(at, 1, [1.25e10, 1e11], 1.0) {
                confirmed_at = Some(s + 1);
                break;
            }
        }
        assert_eq!(
            confirmed_at,
            Some(cfg.confirm_k),
            "a 4× drop confirms in exactly confirm_k sweeps"
        );
        assert_eq!(det.suspect_count(), 1);
        match det.verdicts()[0] {
            Verdict::Suspect { node, signal, .. } => {
                assert_eq!(node, 1);
                assert_eq!(signal, Signal::ProbeNic);
            }
            ref v => panic!("unexpected verdict {v:?}"),
        }
    }

    #[test]
    fn a_flagged_node_is_not_reflagged_until_reset() {
        let mut det = Detector::new(DetectorConfig::balanced());
        sweep_calm(&mut det, 10, 1, 5e10);
        for s in 0..20u32 {
            let at = SimTime::from_secs(((s + 11) * 15) as u64);
            det.sweep_node(at, 0, [1e10, 1e11], 1.0);
        }
        assert_eq!(det.suspect_count(), 1, "duplicates suppressed");
        det.reset_node(0);
        // Baseline relearns; a fresh degradation can flag again.
        sweep_calm(&mut det, 10, 1, 5e10);
        for s in 0..20u32 {
            let at = SimTime::from_secs(((s + 41) * 15) as u64);
            det.sweep_node(at, 0, [1e10, 1e11], 1.0);
        }
        assert_eq!(det.suspect_count(), 2);
    }

    #[test]
    fn heartbeat_stretch_confirms_without_probe_evidence() {
        let mut det = Detector::new(DetectorConfig::balanced());
        sweep_calm(&mut det, 10, 1, 5e10);
        let mut raised = false;
        for s in 0..10u32 {
            let at = SimTime::from_secs(((s + 11) * 15) as u64);
            raised |= det.sweep_node(at, 0, [5e10, 1e11], 4.0);
        }
        assert!(raised);
        assert!(matches!(
            det.verdicts()[0],
            Verdict::Suspect {
                signal: Signal::Heartbeat,
                ..
            }
        ));
    }

    #[test]
    fn slow_onset_can_evade_an_adaptive_baseline() {
        // A drift slower than the threshold margin per sweep is learned
        // into the baseline instead of breaching it: a false negative by
        // construction.
        let mut det = Detector::new(DetectorConfig::balanced());
        sweep_calm(&mut det, 10, 1, 5e10);
        let mut cap = 5e10;
        for s in 0..60u32 {
            cap *= 0.99; // 1% per sweep, well inside the 1.4× margin
            let at = SimTime::from_secs(((s + 11) * 15) as u64);
            det.sweep_node(at, 0, [cap, 1e11], 1.0);
        }
        assert!(
            det.verdicts().is_empty(),
            "a sub-margin drift never confirms: {:?}",
            det.verdicts()
        );
    }

    #[test]
    fn hair_trigger_sensitivity_false_positives_on_noise() {
        let mut det = Detector::new(DetectorConfig::with_sensitivity(1.0));
        sweep_calm(&mut det, 400, 8, 5e10);
        assert!(
            det.suspect_count() > 0,
            "threshold at the baseline must eventually flag pure noise"
        );
    }

    #[test]
    fn step_time_runaway_raises_an_advisory_verdict() {
        let mut det = Detector::new(DetectorConfig::balanced());
        for i in 0..20u64 {
            det.observe_step(SimTime(i * 1_000_000), 7, 1_000_000);
        }
        let mut raised = false;
        for i in 20..30u64 {
            raised |= det.observe_step(SimTime(i * 1_000_000), 7, 4_000_000);
        }
        assert!(raised);
        assert!(matches!(
            det.verdicts().last(),
            Some(Verdict::SlowJob { task: 7, .. })
        ));
    }

    #[test]
    fn same_seed_verdict_streams_are_byte_identical() {
        let run = || {
            let mut det = Detector::new(DetectorConfig::balanced());
            sweep_calm(&mut det, 10, 4, 5e10);
            for s in 0..10u32 {
                let at = SimTime::from_secs(((s + 11) * 15) as u64);
                for n in 0..4 {
                    let m = if n == 2 { 1e10 } else { 5e10 };
                    det.sweep_node(at, n, [m, 1e11], 1.0);
                }
            }
            det.canonical()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.contains("suspect"));
        // A different seed draws different noise: the stream may differ
        // in measured values even when the verdict set matches.
        let mut cfg = DetectorConfig::balanced();
        cfg.seed ^= 1;
        let mut det = Detector::new(cfg);
        sweep_calm(&mut det, 10, 4, 5e10);
        for s in 0..10u32 {
            let at = SimTime::from_secs(((s + 11) * 15) as u64);
            for n in 0..4 {
                let m = if n == 2 { 1e10 } else { 5e10 };
                det.sweep_node(at, n, [m, 1e11], 1.0);
            }
        }
        assert_ne!(a, det.canonical());
    }

    #[test]
    fn sensitivity_presets_are_monotone() {
        let hair = DetectorConfig::with_sensitivity(1.0);
        let balanced = DetectorConfig::with_sensitivity(0.5);
        let sluggish = DetectorConfig::with_sensitivity(0.1);
        assert!(hair.slow_factor < balanced.slow_factor);
        assert!(balanced.slow_factor < sluggish.slow_factor);
        assert!(hair.confirm_k <= balanced.confirm_k);
        assert!(balanced.confirm_k <= sluggish.confirm_k);
        assert_eq!(balanced, DetectorConfig::balanced());
    }
}
