//! The hardware validator (§VII-B): "the platform's automatic operation
//! and maintenance system runs the validator program weekly on nodes to
//! verify their proper functionality. It removes the faulty nodes from the
//! scheduling platform."
//!
//! Each check runs against a [`NodeUnderTest`] — a synthetic node whose
//! defects are injectable, standing in for real hardware (the checks'
//! *logic* is real: the GPU-memory test walks every byte of a buffer, the
//! GEMM check multiplies matrices and compares against a reference, the
//! allreduce check runs the actual reduction kernels).

use ff_reduce::kernels::reduce_n_into;

/// The synthetic node a validator run probes. Defaults to healthy;
/// failure-injection flips fields.
#[derive(Debug, Clone)]
pub struct NodeUnderTest {
    /// CPU base clock, MHz.
    pub cpu_mhz: f64,
    /// Expected CPU base clock, MHz.
    pub cpu_mhz_expected: f64,
    /// Per-NIC link speed, Gbps.
    pub link_gbps: Vec<f64>,
    /// Measured host memory bandwidth, GB/s.
    pub mem_bw_gbps: f64,
    /// GPU memory contents (one buffer per GPU); the GPU-memory test
    /// checks every byte against the written pattern.
    pub gpu_memory: Vec<Vec<u8>>,
    /// Injected: GPU index whose arithmetic silently corrupts results
    /// (§VII-C's computational errors not caught by ECC).
    pub gemm_fault_gpu: Option<usize>,
    /// Measured NVLink pair bandwidth, GB/s (None = no bridge).
    pub nvlink_gbps: Option<f64>,
    /// Measured storage read bandwidth, GB/s.
    pub storage_gbps: f64,
}

impl NodeUnderTest {
    /// A healthy Fire-Flyer 2 node.
    pub fn healthy() -> Self {
        NodeUnderTest {
            cpu_mhz: 2600.0,
            cpu_mhz_expected: 2600.0,
            link_gbps: vec![200.0],
            mem_bw_gbps: 320.0,
            gpu_memory: vec![vec![0u8; 4096]; 8],
            gemm_fault_gpu: None,
            nvlink_gbps: Some(600.0),
            storage_gbps: 20.0,
        }
    }
}

/// Result of one check.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckOutcome {
    /// Check name.
    pub name: &'static str,
    /// Whether the node passed.
    pub passed: bool,
    /// Operator-facing detail.
    pub detail: String,
}

fn outcome(name: &'static str, passed: bool, detail: String) -> CheckOutcome {
    CheckOutcome {
        name,
        passed,
        detail,
    }
}

/// Checking hardware frequency, link speed, and link status.
pub fn check_frequency_and_links(n: &NodeUnderTest) -> CheckOutcome {
    let freq_ok = n.cpu_mhz >= n.cpu_mhz_expected * 0.97;
    let links_ok = !n.link_gbps.is_empty() && n.link_gbps.iter().all(|&g| g >= 200.0);
    outcome(
        "frequency-and-links",
        freq_ok && links_ok,
        format!("cpu {:.0} MHz, links {:?} Gbps", n.cpu_mhz, n.link_gbps),
    )
}

/// CPU stress: a real computation with a known answer (detects cores that
/// produce wrong results under load).
pub fn check_cpu_stress(_n: &NodeUnderTest) -> CheckOutcome {
    // Sum of the first 10^6 integers, computed the long way, twice, with
    // different associativity — any mismatch means broken silicon.
    let a: u64 = (1..=1_000_000u64).sum();
    let b: u64 = (1..=1000u64)
        .map(|i| ((i - 1) * 1000 + 1..=i * 1000).sum::<u64>())
        .sum();
    let want = 1_000_000u64 * 1_000_001 / 2;
    outcome(
        "cpu-stress",
        a == want && b == want,
        format!("sum={a}, blocked={b}, expected={want}"),
    )
}

/// Memory bandwidth must be near the 16-channel DDR4-3200 practical rate.
pub fn check_memory_bandwidth(n: &NodeUnderTest) -> CheckOutcome {
    let ok = n.mem_bw_gbps >= 320.0 * 0.85;
    outcome(
        "memory-bandwidth",
        ok,
        format!("{:.0} GB/s (need ≥ {:.0})", n.mem_bw_gbps, 320.0 * 0.85),
    )
}

/// GPU memory test: "checking each byte of GPU memory to ensure no data
/// corruption has occurred". Writes a pattern, reads back every byte.
pub fn check_gpu_memory(n: &mut NodeUnderTest) -> CheckOutcome {
    for (g, buf) in n.gpu_memory.iter_mut().enumerate() {
        // The injected corruption model: a defective byte survives the
        // pattern write (stuck bit). Record pre-state, write, verify.
        let defect: Vec<usize> = buf
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b == 0xBD)
            .map(|(i, _)| i)
            .collect();
        for (i, b) in buf.iter_mut().enumerate() {
            if !defect.contains(&i) {
                *b = ((i as u8) ^ 0xA5).wrapping_add(g as u8);
            }
        }
        for (i, &b) in buf.iter().enumerate() {
            let want = ((i as u8) ^ 0xA5).wrapping_add(g as u8);
            if b != want {
                return outcome(
                    "gpu-memory",
                    false,
                    format!("gpu{g} byte {i}: got {b:#04x}, want {want:#04x}"),
                );
            }
        }
    }
    outcome("gpu-memory", true, "all bytes verified".into())
}

/// Full-GPU-occupancy GEMM with a logic check: multiply small integer
/// matrices and compare against a reference product.
pub fn check_gemm_logic(n: &NodeUnderTest) -> CheckOutcome {
    const DIM: usize = 16;
    for gpu in 0..n.gpu_memory.len() {
        let a: Vec<i64> = (0..DIM * DIM).map(|i| (i % 7) as i64 - 3).collect();
        let b: Vec<i64> = (0..DIM * DIM).map(|i| (i % 5) as i64 - 2).collect();
        let mut c = vec![0i64; DIM * DIM];
        for i in 0..DIM {
            for k in 0..DIM {
                let aik = a[i * DIM + k];
                for j in 0..DIM {
                    c[i * DIM + j] += aik * b[k * DIM + j];
                }
            }
        }
        // Reference with the loop order swapped.
        let mut r = vec![0i64; DIM * DIM];
        for i in 0..DIM {
            for j in 0..DIM {
                let mut acc = 0;
                for k in 0..DIM {
                    acc += a[i * DIM + k] * b[k * DIM + j];
                }
                r[i * DIM + j] = acc;
            }
        }
        // The injected fault: this GPU's results are silently off by one
        // in element 0 (§VII-C silent data corruption).
        let mut observed = c.clone();
        if n.gemm_fault_gpu == Some(gpu) {
            observed[0] += 1;
        }
        if observed != r {
            return outcome(
                "gemm-logic",
                false,
                format!("gpu{gpu}: GEMM result mismatch (silent data corruption)"),
            );
        }
    }
    outcome("gemm-logic", true, "all GPUs multiply correctly".into())
}

/// Intra-node allreduce test: run the real reduction kernel over per-GPU
/// buffers and verify, plus the NVLink bandwidth gate.
#[allow(clippy::needless_range_loop)] // element index appears in the failure message
pub fn check_intra_node_allreduce(n: &NodeUnderTest) -> CheckOutcome {
    let gpus = n.gpu_memory.len().max(1);
    let bufs: Vec<Vec<f32>> = (0..gpus)
        .map(|g| (0..256).map(|i| ((g + i) % 11) as f32).collect())
        .collect();
    let refs: Vec<&[f32]> = bufs.iter().map(|b| b.as_slice()).collect();
    let mut sum = vec![0.0f32; 256];
    reduce_n_into(&mut sum, &refs);
    for i in 0..256 {
        let want: f32 = (0..gpus).map(|g| ((g + i) % 11) as f32).sum();
        if sum[i] != want {
            return outcome("intra-node-allreduce", false, format!("element {i} wrong"));
        }
    }
    match n.nvlink_gbps {
        Some(bw) if bw < 600.0 * 0.9 => outcome(
            "intra-node-allreduce",
            false,
            format!("NVLink bandwidth {bw:.0} GB/s below 90% of spec"),
        ),
        _ => outcome("intra-node-allreduce", true, "reduction + NVLink ok".into()),
    }
}

/// Storage bandwidth stress.
pub fn check_storage(n: &NodeUnderTest) -> CheckOutcome {
    let ok = n.storage_gbps >= 10.0;
    outcome(
        "storage-stress",
        ok,
        format!("{:.1} GB/s (need ≥ 10)", n.storage_gbps),
    )
}

/// Run the full validator suite on one node.
pub fn run_all_checks(n: &mut NodeUnderTest) -> Vec<CheckOutcome> {
    vec![
        check_frequency_and_links(n),
        check_cpu_stress(n),
        check_memory_bandwidth(n),
        check_gpu_memory(n),
        check_gemm_logic(n),
        check_intra_node_allreduce(n),
        check_storage(n),
    ]
}

/// True when every check passed.
pub fn node_passes(outcomes: &[CheckOutcome]) -> bool {
    outcomes.iter().all(|o| o.passed)
}

/// The weekly automation of §VII-B: run the validator on every node of
/// the fleet and remove failing nodes from the scheduling platform
/// ("ensuring that all scheduled nodes are operational"). Nodes that pass
/// again after repair return to the pool. Returns the indices that failed
/// this sweep.
pub fn weekly_validation(
    platform: &mut crate::scheduler::Platform,
    fleet: &mut [NodeUnderTest],
) -> Vec<usize> {
    let mut failed = Vec::new();
    for (i, node) in fleet.iter_mut().enumerate() {
        let outcomes = run_all_checks(node);
        if node_passes(&outcomes) {
            platform.heal_node(i);
        } else {
            platform.fail_node(i);
            failed.push(i);
        }
    }
    failed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_node_passes_everything() {
        let mut n = NodeUnderTest::healthy();
        let outcomes = run_all_checks(&mut n);
        assert_eq!(outcomes.len(), 7);
        assert!(node_passes(&outcomes), "{outcomes:?}");
    }

    #[test]
    fn downclocked_cpu_detected() {
        let mut n = NodeUnderTest::healthy();
        n.cpu_mhz = 2000.0;
        let o = check_frequency_and_links(&n);
        assert!(!o.passed);
        assert!(!node_passes(&run_all_checks(&mut n)));
    }

    #[test]
    fn degraded_link_detected() {
        let mut n = NodeUnderTest::healthy();
        n.link_gbps = vec![100.0]; // trained down to half speed
        assert!(!check_frequency_and_links(&n).passed);
    }

    #[test]
    fn gpu_memory_stuck_byte_detected() {
        let mut n = NodeUnderTest::healthy();
        n.gpu_memory[3][1234] = 0xBD; // stuck bits
        let o = check_gpu_memory(&mut n);
        assert!(!o.passed);
        assert!(o.detail.contains("gpu3"));
    }

    #[test]
    fn silent_gemm_corruption_detected() {
        let mut n = NodeUnderTest::healthy();
        n.gemm_fault_gpu = Some(5);
        let o = check_gemm_logic(&n);
        assert!(!o.passed);
        assert!(o.detail.contains("gpu5"));
    }

    #[test]
    fn weak_nvlink_detected() {
        let mut n = NodeUnderTest::healthy();
        n.nvlink_gbps = Some(300.0);
        assert!(!check_intra_node_allreduce(&n).passed);
        // No bridge at all is acceptable (pre-retrofit nodes).
        n.nvlink_gbps = None;
        assert!(check_intra_node_allreduce(&n).passed);
    }

    #[test]
    fn weekly_sweep_removes_and_restores_nodes() {
        use crate::scheduler::{JobSpec, PlatformConfig, TaskState};
        let mut platform = PlatformConfig::new()
            .zones([4, 0])
            .ckpt_interval(300)
            .build()
            .unwrap();
        let mut fleet: Vec<NodeUnderTest> = (0..4).map(|_| NodeUnderTest::healthy()).collect();
        let task = platform.submit(JobSpec::new("job", 4, 10_000)).unwrap();
        assert_eq!(platform.state(task), Some(TaskState::Running));
        // Node 2 develops a GPU memory defect; the sweep pulls it.
        fleet[2].gpu_memory[0][5] = 0xBD;
        let failed = weekly_validation(&mut platform, &mut fleet);
        assert_eq!(failed, vec![2]);
        assert_eq!(
            platform.state(task),
            Some(TaskState::Queued),
            "4-node job can't run on 3"
        );
        // Repair (replace the module) and re-validate: back in the pool.
        fleet[2] = NodeUnderTest::healthy();
        assert!(weekly_validation(&mut platform, &mut fleet).is_empty());
        assert_eq!(platform.state(task), Some(TaskState::Running));
    }

    #[test]
    fn slow_memory_and_storage_detected() {
        let mut n = NodeUnderTest::healthy();
        n.mem_bw_gbps = 200.0;
        assert!(!check_memory_bandwidth(&n).passed);
        let mut n = NodeUnderTest::healthy();
        n.storage_gbps = 2.0;
        assert!(!check_storage(&n).passed);
    }
}
