//! Seeded property tests for the serving tier (ISSUE 7): SLO accounting,
//! KV-cache safety, the serving/training preemption asymmetry and
//! declared-vs-fluid agreement must hold across hundreds of seeds.
//!
//! Properties:
//!   1. Same seed → identical serving trajectory (latencies, reports,
//!      training outcomes), declared mode.
//!   2. KV-cache bytes never exceed replica memory, even under a
//!      deliberately starved KV budget — and the KV gate never deadlocks.
//!   3. Latency is monotone in offered load up to a bounded batching
//!      slack: adding requests never speeds a common request up by more
//!      than one admission phase.
//!   4. Serving is never preempted: a placed replica moves only when one
//!      of its own nodes fails, regardless of training priorities.
//!   5. Training work is conserved with serving present: after the
//!      serving job stops and the cluster heals, every training task
//!      still runs to completion.
//!   6. Declared and fluid mode agree on the request timeline up to the
//!      (bounded, strictly positive) network time fluid adds.

use ff_platform::{JobSpec, Platform, PlatformConfig, ServingSpec, TaskState};
use ff_reduce::{ClusterConfig, ClusterModel};
use ff_util::rng::ChaCha8Rng;
use ff_util::scengen::{ArrivalConfig, ArrivalTrace};
use std::collections::BTreeMap;

const ZONES: [usize; 2] = [8, 8];

/// A short diurnal+bursty trace sized for sub-second test runs.
fn small_trace(seed: u64, qps: f64, duration_s: f64) -> ArrivalTrace {
    ArrivalTrace::generate(
        seed,
        &ArrivalConfig {
            duration_s,
            base_qps: qps,
            ..ArrivalConfig::default()
        },
    )
}

fn declared_platform() -> Platform {
    PlatformConfig::new()
        .zones(ZONES)
        .ckpt_interval(300)
        .build()
        .unwrap()
}

// ---------------------------------------------------------------------------
// 1. Determinism: same seed, same trajectory.
// ---------------------------------------------------------------------------

/// Everything observable about one training task at the end of a run.
type TrainOutcome = (Option<TaskState>, Option<u64>, Option<Vec<usize>>);

/// Everything observable about one mixed serve+train run.
#[derive(Debug, PartialEq)]
struct Snapshot {
    latencies: Vec<(u64, u64)>,
    completed: u64,
    slo_met: u64,
    in_flight: usize,
    replicas_up: usize,
    redirects: u64,
    train: Vec<TrainOutcome>,
    utilization_bits: u64,
}

/// One seeded mixed workload: a serving job plus random training
/// submit / fail / heal / tick interleavings.
fn mixed_run(seed: u64) -> Snapshot {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut p = declared_platform();
    let sid = p
        .submit_serving(ServingSpec::new(
            "chat",
            2,
            2,
            small_trace(seed, 2.0, 120.0),
        ))
        .unwrap();
    let mut ids = Vec::new();
    for op in 0..80 {
        match rng.gen_range(0..10u32) {
            0..=2 => ids.push(
                p.submit(
                    JobSpec::new(
                        format!("t{op}"),
                        rng.gen_range(1..6usize),
                        rng.gen_range(60..1801u64),
                    )
                    .priority(rng.gen_range(0..11i32) - 5),
                )
                .unwrap(),
            ),
            3..=4 => p.fail_node(rng.gen_range(0..16usize)),
            5..=6 => p.heal_node(rng.gen_range(0..16usize)),
            _ => p.tick(rng.gen_range(1..31u64)),
        }
    }
    p.tick(300);
    let rep = p.serving_report(sid).unwrap();
    Snapshot {
        latencies: p.serving_latencies(sid).unwrap().to_vec(),
        completed: rep.completed,
        slo_met: rep.slo_met,
        in_flight: rep.in_flight,
        replicas_up: rep.replicas_up,
        redirects: rep.redirects,
        train: ids
            .iter()
            .map(|&id| {
                (
                    p.state(id),
                    p.progress(id),
                    p.assignment(id).map(<[usize]>::to_vec),
                )
            })
            .collect(),
        utilization_bits: p.utilization().to_bits(),
    }
}

#[test]
fn same_seed_same_serving_trajectory() {
    for seed in 0..8u64 {
        assert_eq!(mixed_run(seed), mixed_run(seed), "seed {seed} diverged");
    }
}

// ---------------------------------------------------------------------------
// 2. KV-cache safety under a starved budget.
// ---------------------------------------------------------------------------

#[test]
fn kv_cache_never_exceeds_replica_memory() {
    for seed in 100..164u64 {
        let mut p = declared_platform();
        let trace = small_trace(seed, 2.0, 60.0);
        let total = trace.requests.len() as u64;
        // Budget fits barely one worst-case request (384 tokens × 128 KiB
        // = 48 MiB against 64 MiB), so admission constantly rides the KV
        // ceiling and batches stay tiny.
        let sid = p
            .submit_serving(
                ServingSpec::new("kv-tight", 2, 1, trace)
                    .kv_capacity_bytes((64u64 << 20) as f64)
                    .kv_bytes_per_token((128u64 << 10) as f64)
                    .iter_base_us(2_000)
                    .prefill_us_per_token(20),
            )
            .unwrap();
        p.tick(3_600);
        let rep = p.serving_report(sid).unwrap();
        assert!(
            rep.max_kv_frac <= 1.0,
            "seed {seed}: KV exceeded capacity ({})",
            rep.max_kv_frac
        );
        assert!(
            rep.max_kv_frac > 0.5,
            "seed {seed}: KV budget never stressed ({}) — test misconfigured",
            rep.max_kv_frac
        );
        // Head-of-line admission with full reservation must not deadlock:
        // every request eventually decodes.
        assert_eq!(
            rep.completed, total,
            "seed {seed}: only {} of {total} requests completed",
            rep.completed
        );
        assert_eq!(rep.in_flight, 0, "seed {seed}: requests stuck in flight");
    }
}

// ---------------------------------------------------------------------------
// 3. Latency monotone in offered load (up to admission-phase slack).
// ---------------------------------------------------------------------------

#[test]
fn latency_monotone_in_offered_load() {
    // Per-iteration time is batch-independent here so the only coupling
    // between requests is queueing + prefill time — extra load can then
    // speed a common request up only by shifting admission phases, which
    // is bounded by one segment plus the prefill that moved out of the
    // request's in-batch window.
    const ITER_US: u64 = 10_000;
    const PREFILL_US: u64 = 100;
    const ADMIT: u32 = 4;
    let run = |trace: ArrivalTrace| -> BTreeMap<u64, u64> {
        let mut p = declared_platform();
        let total = trace.requests.len() as u64;
        let sid = p
            .submit_serving(
                ServingSpec::new("mono", 2, 2, trace)
                    .max_batch(64)
                    .iter_base_us(ITER_US)
                    .iter_per_req_us(0)
                    .prefill_us_per_token(PREFILL_US)
                    .admit_every(ADMIT),
            )
            .unwrap();
        p.tick(7_200);
        let rep = p.serving_report(sid).unwrap();
        assert_eq!(rep.completed, total, "run must drain");
        p.serving_latencies(sid).unwrap().iter().copied().collect()
    };
    // One admission phase: a full segment of decode plus the largest
    // prefill bursts that can shift across the admission boundary.
    let slack_ns = (ADMIT as u64 * ITER_US + 8 * 256 * PREFILL_US) * 1_000;
    for seed in 200..264u64 {
        let full = small_trace(seed, 3.0, 90.0);
        let half = full.thin(1, 2);
        let lat_full = run(full);
        let lat_half = run(half);
        let mut sum_full = 0u64;
        let mut sum_half = 0u64;
        for (id, &lh) in &lat_half {
            let lf = lat_full[id];
            sum_full += lf;
            sum_half += lh;
            assert!(
                lf + slack_ns >= lh,
                "seed {seed}: request {id} got {}us faster under 2x load",
                (lh - lf) / 1_000
            );
        }
        assert!(
            sum_full >= sum_half,
            "seed {seed}: aggregate latency fell when load doubled"
        );
    }
}

// ---------------------------------------------------------------------------
// 4. Serving is never preempted.
// ---------------------------------------------------------------------------

#[test]
fn serving_is_never_preempted() {
    for seed in 300..364u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut p = declared_platform();
        let sid = p
            .submit_serving(ServingSpec::new(
                "pinned",
                2,
                3,
                small_trace(seed, 1.0, 300.0),
            ))
            .unwrap();
        let placement = |p: &Platform| -> Vec<Vec<usize>> {
            (0..2)
                .map(|r| p.serving_assignment(sid, r).unwrap().to_vec())
                .collect()
        };
        let mut last = placement(&p);
        for op in 0..150 {
            let mut failed: Option<usize> = None;
            match rng.gen_range(0..10u32) {
                // Training at the highest priority the mix uses anywhere:
                // it must still never displace a replica.
                0..=3 => {
                    p.submit(
                        JobSpec::new(format!("hp{op}"), rng.gen_range(4..13usize), 600)
                            .priority(10),
                    )
                    .unwrap();
                }
                4..=5 => {
                    let n = rng.gen_range(0..16usize);
                    p.fail_node(n);
                    failed = Some(n);
                }
                6 => p.heal_node(rng.gen_range(0..16usize)),
                _ => p.tick(rng.gen_range(1..61u64)),
            }
            let cur = placement(&p);
            for r in 0..2 {
                let moved = cur[r] != last[r];
                let was_hit = failed.is_some_and(|n| last[r].contains(&n));
                // A replica may move (or drop) only when one of its own
                // nodes just failed; it may freshly place from empty any
                // time. Priorities, preemption passes and backfill must
                // never touch it.
                assert!(
                    !moved || was_hit || last[r].is_empty(),
                    "seed {seed} op {op}: replica {r} moved {:?} -> {:?} without a node failure",
                    last[r],
                    cur[r]
                );
            }
            last = cur;
        }
        assert_eq!(p.serving_report(sid).unwrap().dropped, 0);
    }
}

// ---------------------------------------------------------------------------
// 5. Training work conservation with serving present.
// ---------------------------------------------------------------------------

#[test]
fn training_work_conserved_with_serving() {
    for seed in 400..464u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut p = declared_platform();
        let sid = p
            .submit_serving(ServingSpec::new("svc", 2, 2, small_trace(seed, 2.0, 120.0)))
            .unwrap();
        let mut jobs = Vec::new();
        for op in 0..60 {
            match rng.gen_range(0..10u32) {
                // Keep training jobs placeable next to the 4-node serving
                // footprint (zone capacity 8).
                0..=2 => {
                    let work = rng.gen_range(60..1201u64);
                    jobs.push((
                        p.submit(
                            JobSpec::new(format!("t{op}"), rng.gen_range(1..7usize), work)
                                .priority(rng.gen_range(0..11i32) - 5),
                        )
                        .unwrap(),
                        work,
                    ));
                }
                3..=4 => p.fail_node(rng.gen_range(0..16usize)),
                5..=6 => p.heal_node(rng.gen_range(0..16usize)),
                _ => p.tick(rng.gen_range(1..61u64)),
            }
        }
        for n in 0..16 {
            p.heal_node(n);
        }
        assert!(p.stop_serving(sid), "serving job stops once");
        let mut guard = 0;
        while jobs
            .iter()
            .any(|&(id, _)| p.state(id) != Some(TaskState::Succeeded))
        {
            p.tick(600);
            guard += 1;
            assert!(guard < 2_000, "seed {seed}: training failed to drain");
        }
        for &(id, work) in &jobs {
            assert_eq!(p.progress(id), Some(work), "seed {seed}: work lost");
        }
    }
}

// ---------------------------------------------------------------------------
// 6. Declared vs fluid differential.
// ---------------------------------------------------------------------------

#[test]
fn declared_vs_fluid_serving_differential() {
    // Light load on an otherwise idle cluster: batches rarely overlap, so
    // both modes see (nearly) the same batch compositions and fluid's
    // request timeline is the declared one plus per-segment network time.
    let spec = |trace: ArrivalTrace| {
        ServingSpec::new("diff", 1, 2, trace)
            .iter_base_us(30_000)
            .prefill_us_per_token(100)
    };
    for seed in 500..508u64 {
        let trace = small_trace(seed, 0.4, 120.0);
        let total = trace.requests.len() as u64;

        let mut d = declared_platform();
        let sid_d = d.submit_serving(spec(trace.clone())).unwrap();
        d.tick(7_200);
        let rep_d = d.serving_report(sid_d).unwrap();
        assert_eq!(rep_d.completed, total);
        let lat_d: BTreeMap<u64, u64> = d
            .serving_latencies(sid_d)
            .unwrap()
            .iter()
            .copied()
            .collect();

        let mut f = PlatformConfig::new()
            .cluster(ClusterModel::build(&ClusterConfig::fire_flyer(8)))
            .ckpt_interval(300)
            .build()
            .unwrap();
        let sid_f = f.submit_serving(spec(trace)).unwrap();
        f.tick(7_200);
        let rep_f = f.serving_report(sid_f).unwrap();
        assert_eq!(rep_f.completed, total, "seed {seed}: fluid run must drain");
        let lat_f: BTreeMap<u64, u64> = f
            .serving_latencies(sid_f)
            .unwrap()
            .iter()
            .copied()
            .collect();

        let mut sum_d = 0u64;
        let mut sum_f = 0u64;
        // When two requests do overlap, longer fluid segments shift the
        // admission boundaries, so a single request can batch better in
        // fluid mode and land up to ~one segment earlier. One segment of
        // decode plus its admission prefill bounds that phase shift.
        let phase_slack_ns = 500_000_000u64;
        for (id, &ld) in &lat_d {
            let lf = lat_f[id];
            sum_d += ld;
            sum_f += lf;
            assert!(
                lf + phase_slack_ns > ld,
                "seed {seed}: request {id} — fluid ({lf}ns) more than a segment faster than declared ({ld}ns)"
            );
            // Generous per-request ceiling: every segment's allreduce at a
            // tenth of NIC line rate would still land under this.
            assert!(
                lf < ld + 60_000_000_000,
                "seed {seed}: request {id} — fluid latency {lf}ns implausibly far above declared {ld}ns"
            );
        }
        assert!(
            sum_f > sum_d,
            "seed {seed}: fluid mode must add net network time over the declared timeline"
        );
    }
}
