//! Seeded property tests for the event-driven scheduler: randomized
//! submit / fail / heal / tick sequences must preserve the platform's
//! core invariants at every observation point.
//!
//! Invariants (per ISSUE 5):
//!   1. No node is assigned to two live tasks at once.
//!   2. At most one cross-zone task holds nodes at any time (§VI-C).
//!   3. checkpoint ≤ progress ≤ work for every task.
//!   4. utilization ∈ [0, 1].
//!   5. Queued / Interrupted tasks hold no nodes.
//!   6. Work is conserved: once every node is healed and the cluster
//!      drains, every task has run to completion.

use ff_platform::{JobSpec, Platform, PlatformConfig, TaskId, TaskState};
use ff_util::rng::ChaCha8Rng;
use std::collections::BTreeSet;

const ZONES: [usize; 2] = [8, 8];

struct Submitted {
    id: TaskId,
    need: usize,
    work: u64,
}

fn zone_of(node: usize) -> usize {
    usize::from(node >= ZONES[0])
}

/// Check every invariant that must hold at an arbitrary instant.
fn check_invariants(p: &Platform, tasks: &[Submitted]) {
    let mut seen: BTreeSet<usize> = BTreeSet::new();
    let mut cross_zone_holders = 0usize;
    for t in tasks {
        let state = p.state(t.id).expect("submitted task is known");
        let assigned = p.assignment(t.id).expect("submitted task is known");
        let progress = p.progress(t.id).expect("submitted task is known");
        let ckpt = p.checkpoint(t.id).expect("submitted task is known");

        // (3) checkpoint ≤ progress ≤ work.
        assert!(
            ckpt <= progress && progress <= t.work,
            "task {:?}: ckpt {ckpt} ≤ progress {progress} ≤ work {} violated",
            t.id,
            t.work
        );

        match state {
            TaskState::Running | TaskState::Interrupting => {
                assert_eq!(
                    assigned.len(),
                    t.need,
                    "task {:?} holds {} nodes, needs {}",
                    t.id,
                    assigned.len(),
                    t.need
                );
                // (1) no node double-assigned.
                for &n in assigned {
                    assert!(seen.insert(n), "node {n} assigned to two tasks");
                }
                // (2) count cross-zone holders.
                let zones: BTreeSet<usize> = assigned.iter().map(|&n| zone_of(n)).collect();
                if zones.len() > 1 {
                    cross_zone_holders += 1;
                }
            }
            // (5) non-running tasks hold nothing.
            TaskState::Queued | TaskState::Interrupted | TaskState::Succeeded => {
                assert!(
                    assigned.is_empty(),
                    "task {:?} in {state:?} still holds nodes {assigned:?}",
                    t.id
                );
            }
        }
        if state == TaskState::Succeeded {
            assert_eq!(progress, t.work, "succeeded task {:?} short of work", t.id);
        }
    }
    assert!(
        cross_zone_holders <= 1,
        "{cross_zone_holders} cross-zone tasks active at once"
    );
    // (4) utilization is a fraction.
    let u = p.utilization();
    assert!((0.0..=1.0).contains(&u), "utilization {u} out of range");
}

/// One randomized scenario: a few hundred interleaved operations, with
/// the invariants re-checked after every single one.
fn run_scenario(seed: u64) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut p = PlatformConfig::new()
        .zones(ZONES)
        .ckpt_interval(300)
        .build()
        .unwrap();
    let total = ZONES[0] + ZONES[1];
    let mut tasks: Vec<Submitted> = Vec::new();

    for op in 0..250 {
        match rng.gen_range(0..100u32) {
            // Submit a job; sizes span single-node to forced cross-zone.
            0..=29 => {
                let need = rng.gen_range(1..11usize);
                let work = rng.gen_range(60..7201u64);
                let prio = rng.gen_range(0..11i32) - 5;
                let id = p
                    .submit(JobSpec::new(format!("job-{seed}-{op}"), need, work).priority(prio))
                    .expect("job fits the cluster");
                tasks.push(Submitted { id, need, work });
            }
            // Fail a node (failing an already-down node must be a no-op).
            30..=44 => p.fail_node(rng.gen_range(0..total)),
            // Heal a node (healing an up node must be a no-op).
            45..=59 => p.heal_node(rng.gen_range(0..total)),
            // Let simulated time pass.
            _ => {
                p.tick(rng.gen_range(1..601u64));
            }
        }
        check_invariants(&p, &tasks);
    }

    // (6) Work conservation: heal everything, drain the queue, and every
    // task must have completed exactly its declared work.
    for n in 0..total {
        p.heal_node(n);
    }
    let worst: u64 = tasks.iter().map(|t| t.work).sum();
    let mut guard = 0;
    while tasks
        .iter()
        .any(|t| p.state(t.id) != Some(TaskState::Succeeded))
    {
        p.tick(600);
        guard += 1;
        assert!(
            guard * 600 < 2 * worst + 1_000_000,
            "seed {seed}: queue failed to drain; depth {}",
            p.queue_depth()
        );
    }
    check_invariants(&p, &tasks);
    for t in &tasks {
        assert_eq!(p.progress(t.id), Some(t.work));
    }
}

#[test]
fn randomized_sequences_preserve_invariants() {
    for seed in 0..12u64 {
        run_scenario(seed);
    }
}

#[test]
fn node_slots_mirror_assignments_under_churn() {
    // Regression guard for stale-slot reads (ISSUE 7 satellite): the
    // per-node owner slot behind `node_task` must stay a perfect mirror
    // of task assignments through every submit / preempt / fail / heal /
    // requeue transition — a completed or requeued task must never be
    // observable through a node slot it released.
    for seed in 40..72u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut p = PlatformConfig::new()
            .zones(ZONES)
            .ckpt_interval(120)
            .build()
            .unwrap();
        let total = ZONES[0] + ZONES[1];
        let mut ids: Vec<TaskId> = Vec::new();
        for op in 0..200 {
            match rng.gen_range(0..10u32) {
                0..=2 => ids.push(
                    p.submit(
                        JobSpec::new(
                            format!("c{op}"),
                            rng.gen_range(1..9usize),
                            rng.gen_range(30..901u64),
                        )
                        .priority(rng.gen_range(0..11i32) - 5),
                    )
                    .unwrap(),
                ),
                3..=4 => p.fail_node(rng.gen_range(0..total)),
                5..=6 => p.heal_node(rng.gen_range(0..total)),
                _ => p.tick(rng.gen_range(1..121u64)),
            }
            // Forward direction: every running task's nodes report it.
            let mut slots_expected = 0usize;
            for &id in &ids {
                let state = p.state(id).unwrap();
                let assigned = p.assignment(id).unwrap();
                if matches!(state, TaskState::Running | TaskState::Interrupting) {
                    slots_expected += assigned.len();
                    for &n in assigned {
                        assert_eq!(
                            p.node_task(n),
                            Some(id),
                            "seed {seed} op {op}: node {n} slot disagrees with assignment of {id:?} ({state:?})"
                        );
                    }
                } else {
                    // Reverse direction: a task that released its nodes is
                    // unreachable through any slot.
                    for n in 0..total {
                        assert_ne!(
                            p.node_task(n),
                            Some(id),
                            "seed {seed} op {op}: stale slot on node {n} still names {id:?} in {state:?}"
                        );
                    }
                }
            }
            // No orphan slots: every occupied slot was counted above.
            let occupied = (0..total).filter(|&n| p.node_task(n).is_some()).count();
            assert_eq!(
                occupied, slots_expected,
                "seed {seed} op {op}: orphaned node slots"
            );
        }
    }
}

#[test]
fn same_seed_same_trajectory() {
    // Determinism: two platforms fed the identical operation stream agree
    // on every observable at every step.
    let script = |p: &mut Platform| {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let mut ids = Vec::new();
        for op in 0..120 {
            match rng.gen_range(0..4u32) {
                0 => ids.push(
                    p.submit(
                        JobSpec::new(format!("d{op}"), rng.gen_range(1..7usize), 3600)
                            .priority(rng.gen_range(0..6i32)),
                    )
                    .unwrap(),
                ),
                1 => p.fail_node(rng.gen_range(0..16usize)),
                2 => p.heal_node(rng.gen_range(0..16usize)),
                _ => p.tick(rng.gen_range(1..901u64)),
            }
        }
        let snap: Vec<_> = ids
            .iter()
            .map(|&id| {
                (
                    p.state(id),
                    p.progress(id),
                    p.assignment(id).map(<[usize]>::to_vec),
                )
            })
            .collect();
        (snap, p.utilization().to_bits(), p.lost_work_s())
    };
    let mut a = PlatformConfig::new()
        .zones(ZONES)
        .ckpt_interval(300)
        .build()
        .unwrap();
    let mut b = PlatformConfig::new()
        .zones(ZONES)
        .ckpt_interval(300)
        .build()
        .unwrap();
    assert_eq!(script(&mut a), script(&mut b));
}
