//! Property test for the storage-plane health gate: a target that has
//! been quarantined **never** receives chain placement — as a member of
//! a chain it did not already belong to, or as a joining recruit — until
//! the validator passes it.
//!
//! Seeded random op sequences drive the plane through kills, health
//! ticks, repair passes, botched readmission attempts (no repair-crew
//! visit, so validation must fail) and successful ones. After every op
//! the placement invariant is checked against a model that tracks which
//! targets are banned (quarantined since their last passed validation)
//! and, for each banned target, the one chain it may still linger in
//! (membership it held when it died, until a repair pass evicts it).

use ff_3fs::chain::{Chain, ChainTable};
use ff_3fs::target::{ChunkId, Disk, StorageTarget};
use ff_platform::StoragePlane;
use ff_util::bytes::Bytes;
use ff_util::rng::ChaCha8Rng;
use std::collections::HashMap;
use std::sync::Arc;

const CHAINS: usize = 2;
const REPLICAS: usize = 2;
const SPARES: usize = 2;
const OPS: usize = 80;

fn chunk(i: u64) -> ChunkId {
    ChunkId { ino: 9, idx: i }
}

/// Where each banned (quarantined, unvalidated) target may still appear:
/// the chain that held it when it died, or nowhere once evicted.
type Grandfathered = HashMap<String, Option<usize>>;

fn check_invariant(table: &ChainTable, plane: &StoragePlane, banned: &Grandfathered, op: usize) {
    for (ci, chain) in table.chains().iter().enumerate() {
        for (name, home) in banned {
            assert_ne!(
                chain.joining_name().as_deref(),
                Some(name.as_str()),
                "op {op}: quarantined {name} recruited into chain {ci}"
            );
            if chain.target_names().iter().any(|n| n == name) {
                assert_eq!(
                    *home,
                    Some(ci),
                    "op {op}: quarantined {name} placed into chain {ci}"
                );
                assert!(
                    !plane.manager().placement_eligible(name),
                    "op {op}: banned {name} regained eligibility without validation"
                );
            }
        }
    }
}

fn run_seed(seed: u64) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut members = Vec::new();
    let chains: Vec<_> = (0..CHAINS)
        .map(|c| {
            let reps: Vec<_> = (0..REPLICAS)
                .map(|r| StorageTarget::new(format!("m{c}{r}"), Disk::new(8 << 20)))
                .collect();
            members.extend(reps.iter().cloned());
            Chain::new(c, reps)
        })
        .collect();
    let spares: Vec<_> = (0..SPARES)
        .map(|s| StorageTarget::new(format!("z{s}"), Disk::new(8 << 20)))
        .collect();
    let table = Arc::new(ChainTable::new(chains));
    let plane = StoragePlane::new(table.clone(), members, spares, 4 << 10);
    let pool = plane.target_names();

    let chain_of = |name: &str| -> Option<usize> {
        table
            .chains()
            .iter()
            .position(|c| c.target_names().iter().any(|n| n == name))
    };

    let mut banned: Grandfathered = HashMap::new();
    let mut step = 1u64;
    for op in 0..OPS {
        match rng.gen_range(0u32..10) {
            // Time passes; dead targets degrade through the states.
            0 | 1 => {
                plane.tick(step);
                step += 1;
            }
            // A target dies — unless it is the last live member of its
            // chain (total chain loss is unrecoverable data loss, which
            // failure-domain placement makes out of scope here).
            2 | 3 => {
                let idx = rng.gen_range(0usize..pool.len());
                let name = pool[idx].clone();
                let last_alive = chain_of(&name).is_some_and(|c| {
                    table.chains()[c]
                        .target_names()
                        .iter()
                        .filter(|n| plane.target(n).is_some_and(|t| t.is_alive()))
                        .count()
                        <= 1
                });
                if !last_alive {
                    if let Some(name) = plane.inject_kill(idx, step) {
                        let home = chain_of(&name);
                        banned.insert(name, home);
                    }
                }
            }
            // The repair loop runs: dead members evicted, eligible
            // spares recruited and re-synced.
            4 | 5 => {
                plane.repair(step);
                // Eviction: a banned member may now be in no chain at
                // all, which the invariant treats as "nowhere".
                for (name, home) in banned.iter_mut() {
                    if chain_of(name).is_none() {
                        *home = None;
                    }
                }
            }
            // Botched readmission: no repair-crew visit, the hardware
            // defect persists, validation must fail and place nothing.
            6 => {
                let idx = rng.gen_range(0usize..pool.len());
                let name = &pool[idx];
                if banned.contains_key(name) {
                    assert!(
                        !plane.revive_and_validate(idx, step),
                        "op {op}: {name} passed validation with a live defect"
                    );
                }
            }
            // Proper readmission: repair the node, then validate.
            7 => {
                let idx = rng.gen_range(0usize..pool.len());
                plane.repair_node(idx);
                if plane.revive_and_validate(idx, step) {
                    banned.remove(&pool[idx]);
                }
            }
            // Foreground traffic keeps the chains busy (and exercises
            // degraded serving); total loss of a chain is tolerated.
            _ => {
                let c = rng.gen_range(0usize..CHAINS);
                let obj = rng.gen_range(0u64..8);
                let _ = table.chains()[c].write(chunk(obj), Bytes::from(format!("op{op}")));
            }
        }
        check_invariant(&table, &plane, &banned, op);
    }

    // Close the loop: readmit everything and repair — the pool must be
    // able to return to full health, and the ban list must drain.
    for (idx, name) in pool.iter().enumerate() {
        plane.repair_node(idx);
        if plane.revive_and_validate(idx, step) {
            banned.remove(name);
        }
    }
    plane.repair(step);
    assert!(
        banned.is_empty(),
        "seed {seed}: targets stuck in quarantine: {banned:?}"
    );
    for chain in table.chains() {
        assert!(
            chain.replicas() >= 1,
            "seed {seed}: a chain ended with no members"
        );
    }
}

#[test]
fn quarantined_targets_never_get_placed_until_validated() {
    for seed in [3u64, 11, 29, 1234, 9001] {
        run_seed(seed);
    }
}
