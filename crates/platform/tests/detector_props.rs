//! Seeded property tests for the gray-failure detection loop (ISSUE 9):
//! the hai-monitor-style detector sees only observable signals (probe
//! sweeps, heartbeat stretch, step times), so its behaviour must be
//! *imperfect in exactly the configured ways* — quiet on calm fleets,
//! bounded-latency on hard stragglers, deterministic under a fixed seed,
//! and exponentially more cautious about readmitting repeat flappers.

use ff_3fs::manager::HealthState;
use ff_failures::{FailureKind, FaultAction, FaultPlan, GrayFault, GrayPlan, PlannedFault, Xid};
use ff_obs::Recorder;
use ff_platform::{DetectorConfig, JobSpec, Platform, PlatformConfig};
use ff_reduce::{ClusterConfig, ClusterModel};
use ff_util::rng::ChaCha8Rng;

/// A declared-mode platform with a detector attached.
fn declared_with_detector(per_zone: [usize; 2], cfg: DetectorConfig) -> Platform {
    PlatformConfig::new()
        .zones(per_zone)
        .ckpt_interval(300)
        .detector(cfg)
        .build()
        .expect("declared platform builds")
}

/// A fluid-mode platform with a detector attached.
fn fluid_with_detector(nodes: usize, cfg: DetectorConfig) -> Platform {
    PlatformConfig::new()
        .cluster(ClusterModel::build(&ClusterConfig::fire_flyer(nodes)))
        .storage_nodes(2)
        .ckpt_interval(10)
        .detector(cfg)
        .build()
        .expect("fluid platform builds")
}

/// ISSUE 9 satellite (c): across ≥ 64 seeds, a calm fleet — random
/// workload, no injected faults of any kind — must produce *zero*
/// Suspect verdicts at balanced sensitivity. False positives are allowed
/// by construction only when the operator dials sensitivity up.
#[test]
fn calm_fleet_raises_zero_false_positives_across_seeds() {
    for seed in 0..64u64 {
        let mut cfg = DetectorConfig::balanced();
        cfg.seed = seed; // different noise stream per fleet
        let mut p = declared_with_detector([6, 6], cfg);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for i in 0..6 {
            let need = rng.gen_range(1..5usize);
            let work = rng.gen_range(200..2000u64);
            p.submit(JobSpec::new(format!("calm{i}"), need, work).priority(i))
                .expect("job fits");
            p.tick(rng.gen_range(10..300u64));
        }
        p.tick(4000);
        assert!(
            p.detector_verdicts().is_empty(),
            "seed {seed}: calm fleet raised {:?}",
            p.detector_verdicts()
        );
        assert_eq!(p.detector_quarantines(), 0, "seed {seed}");
    }
}

/// A calm *fluid* fleet is quiet too: probe sweeps measure real solver
/// capacity (contended by live training traffic), and that must not
/// look like degradation.
#[test]
fn calm_fluid_fleet_is_quiet() {
    let mut p = fluid_with_detector(8, DetectorConfig::balanced());
    p.submit(
        JobSpec::new("train", 4, 200)
            .step_bytes(6.4e7)
            .ckpt_bytes(2.56e8),
    )
    .expect("job fits");
    p.tick(900);
    assert!(
        p.detector_verdicts().is_empty(),
        "fluid calm fleet raised {:?}",
        p.detector_verdicts()
    );
    assert_eq!(p.detector_quarantines(), 0);
}

/// ISSUE 9 satellite (c): a 4× straggler on a training node is detected
/// and quarantined within a bounded window — `confirm_k` sweeps plus
/// one for baseline skew — from observable signals alone. The detector
/// has no access to the gray plan; it reads probes and heartbeats.
#[test]
fn four_x_straggler_is_quarantined_within_bound() {
    let cfg = DetectorConfig::balanced();
    let mut p = fluid_with_detector(6, cfg);
    // Steps on this small cluster take milliseconds of simulated time,
    // so the job must carry enough work to outlive the whole scenario.
    let t = p
        .submit(
            JobSpec::new("victim", 4, 50_000_000)
                .step_bytes(6.4e7)
                .ckpt_bytes(2.56e8),
        )
        .expect("job fits");
    // Let baselines settle on nominal capacity, then hit an assigned node.
    p.tick(60);
    let node = p.assignment(t).expect("victim is placed")[0];
    let onset_s = p.now().0 as f64 / 1e9;
    p.apply_gray_plan(&GrayPlan::single(
        onset_s,
        node,
        1200.0,
        GrayFault::Straggler {
            slowdown: 4.0,
            onset_ramp_s: 0.0,
        },
    ));
    p.tick(300);
    let verdicts = p.detector_verdicts();
    let first = verdicts
        .iter()
        .find_map(|v| match *v {
            ff_platform::Verdict::Suspect { at, node, .. } => Some((at, node)),
            _ => None,
        })
        .expect("straggler must be detected");
    assert_eq!(first.1, node, "detector must localize the straggler");
    // Bound: (confirm_k + 1) probe periods after onset.
    let bound_s = (cfg.confirm_k as u64 + 1) * cfg.probe_period_s;
    let latency_s = (first.0 .0 as f64 / 1e9 - onset_s).ceil() as u64;
    assert!(
        latency_s <= bound_s,
        "detected after {latency_s} s, bound {bound_s} s"
    );
    assert!(
        p.detector_quarantines() >= 1,
        "verdict must drive quarantine"
    );
    assert!(
        !matches!(p.node_health(node), Some(HealthState::Healthy)),
        "straggler node must have left full health, got {:?}",
        p.node_health(node)
    );
}

/// ISSUE 9 satellite (c): the whole loop — gray injection, probe noise,
/// verdict stream, quarantines — replays byte-identically under the
/// same seed.
#[test]
fn same_seed_detector_runs_are_byte_identical() {
    let run = || {
        let mut p = fluid_with_detector(6, DetectorConfig::balanced());
        p.submit(
            JobSpec::new("train", 4, 50_000_000)
                .step_bytes(6.4e7)
                .ckpt_bytes(2.56e8),
        )
        .expect("job fits");
        p.apply_gray_plan(&GrayPlan::single(
            50.0,
            1,
            600.0,
            GrayFault::Straggler {
                slowdown: 3.0,
                onset_ramp_s: 30.0,
            },
        ));
        p.tick(900);
        (p.detector_canonical(), p.detector_quarantines(), p.now().0)
    };
    let (canon_a, q_a, now_a) = run();
    let (canon_b, q_b, now_b) = run();
    assert!(!canon_a.is_empty(), "run must produce verdicts");
    assert_eq!(canon_a, canon_b, "verdict streams must be byte-identical");
    assert_eq!(q_a, q_b);
    assert_eq!(now_a, now_b);
}

/// A persistent gray fault makes the node flap: quarantine → validate →
/// probation → re-detected → quarantine again. Each round doubles the
/// quarantine hold (exponential backoff), so the gaps between
/// successive Suspect verdicts must grow.
#[test]
fn repeated_flaps_back_off_exponentially() {
    let mut cfg = DetectorConfig::balanced();
    cfg.quarantine_hold_s = 60;
    cfg.probation_s = 60;
    // A straggler that outlives several quarantine rounds.
    let mut p = declared_with_detector([4, 0], cfg);
    p.submit(JobSpec::new("train", 2, 100_000))
        .expect("job fits");
    p.apply_gray_plan(&GrayPlan::single(
        30.0,
        0,
        20_000.0,
        GrayFault::Straggler {
            slowdown: 4.0,
            onset_ramp_s: 0.0,
        },
    ));
    p.tick(6000);
    let at: Vec<u64> = p
        .detector_verdicts()
        .iter()
        .filter_map(|v| match *v {
            ff_platform::Verdict::Suspect { at, node: 0, .. } => Some(at.0 / 1_000_000_000),
            _ => None,
        })
        .collect();
    assert!(at.len() >= 3, "node must flap at least 3 times, saw {at:?}");
    let gaps: Vec<u64> = at.windows(2).map(|w| w[1] - w[0]).collect();
    for w in gaps.windows(2) {
        assert!(
            w[1] >= w[0],
            "re-detection gaps must not shrink under backoff: {gaps:?}"
        );
    }
    assert!(
        *gaps.last().unwrap() >= 2 * gaps[0],
        "backoff must at least double the hold across rounds: {gaps:?}"
    );
    assert!(p.detector_quarantines() >= 3);
}

/// ISSUE 9 satellite (b): tolerated Xids (software / NVLink retries)
/// bump the `platform/sched/tolerated` counter on the obs recorder and
/// change *nothing* about the task trajectory — same placements, same
/// progress, same completion.
#[test]
fn tolerated_xids_count_without_changing_trajectories() {
    let tolerate_plan = FaultPlan {
        faults: vec![
            PlannedFault {
                at_s: 40.0,
                node: 1,
                kind: FailureKind::GpuXid(Xid(74)),
                action: FaultAction::Tolerate { rank: 1 },
            },
            PlannedFault {
                at_s: 80.0,
                node: 2,
                kind: FailureKind::GpuXid(Xid(13)),
                action: FaultAction::Tolerate { rank: 2 },
            },
        ],
    };
    let run = |plan: Option<&FaultPlan>| {
        let rec = Recorder::new();
        let mut p = PlatformConfig::new()
            .zones([4, 4])
            .ckpt_interval(60)
            .recorder(rec.clone())
            .build()
            .expect("platform builds");
        let a = p.submit(JobSpec::new("a", 4, 300)).expect("fits");
        let b = p.submit(JobSpec::new("b", 2, 500)).expect("fits");
        if let Some(plan) = plan {
            p.apply_fault_plan(plan);
        }
        p.tick(1000);
        let traj = (
            p.state(a),
            p.state(b),
            p.progress(a),
            p.progress(b),
            p.utilization().to_bits(),
            p.lost_work_s(),
            p.failures(),
        );
        let tolerated = rec
            .snapshot()
            .counters
            .get("platform/sched/tolerated")
            .copied();
        (traj, tolerated)
    };
    let (clean_traj, clean_ctr) = run(None);
    let (faulty_traj, faulty_ctr) = run(Some(&tolerate_plan));
    assert_eq!(
        clean_traj, faulty_traj,
        "tolerated faults must not perturb the trajectory"
    );
    assert_eq!(clean_ctr, None, "no tolerates → counter never touched");
    assert_eq!(faulty_ctr, Some(2.0), "each tolerate increments once");
}

/// Detector-off runs don't change: a platform built without a detector
/// has an empty verdict stream, no detector quarantines, and the
/// legacy readmission path (no probation state ever appears).
#[test]
fn no_detector_means_no_detector_artifacts() {
    let mut p = PlatformConfig::new()
        .zones([4, 0])
        .ckpt_interval(60)
        .build()
        .expect("platform builds");
    p.submit(JobSpec::new("train", 2, 200)).expect("fits");
    p.apply_gray_plan(&GrayPlan::single(
        10.0,
        0,
        300.0,
        GrayFault::Straggler {
            slowdown: 4.0,
            onset_ramp_s: 0.0,
        },
    ));
    p.fail_node(3);
    p.tick(2000);
    assert!(p.detector_verdicts().is_empty());
    assert_eq!(p.detector_canonical(), "");
    assert_eq!(p.detector_quarantines(), 0);
    for n in 0..4 {
        assert!(
            !matches!(p.node_health(n), Some(HealthState::Probation)),
            "probation requires a detector"
        );
    }
}
