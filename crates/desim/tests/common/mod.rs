//! Shared helpers for ff-desim integration tests.

pub mod reference;
