//! The pre-incremental brute-force max-min solver, kept verbatim as a
//! differential-testing oracle.
//!
//! This is the engine `FluidSim` shipped with before the incremental
//! rewrite: flow progress is settled eagerly on every clock advance, the
//! whole allocation is re-derived by one global water-fill whenever any
//! flow starts/finishes/changes, and the next completion is found by a
//! linear scan. It is O(flows × resources) per event — hopeless at
//! 10,000-GPU scale, but only ~150 lines and obviously faithful to the
//! progressive-filling definition, which is exactly what an oracle should
//! be. `fluid_diff.rs` replays seeded random schedules against both
//! engines and insists the answers agree.

#![allow(dead_code)]

use std::collections::BTreeMap;

use ff_desim::{SimDuration, SimTime};

struct RefFlow {
    route: Vec<(usize, f64)>,
    remaining: f64,
    rate: f64,
}

/// Brute-force fluid simulator over `usize`-indexed resources.
pub struct RefFluidSim {
    now: SimTime,
    capacity: Vec<f64>,
    cap_override: Vec<f64>,
    degrade_factor: Vec<f64>,
    flows: BTreeMap<u64, RefFlow>,
    next_flow_id: u64,
    rates_dirty: bool,
}

impl RefFluidSim {
    /// A simulator over resources with the given capacities.
    pub fn new(capacities: &[f64]) -> Self {
        assert!(capacities.iter().all(|&c| c > 0.0 && c.is_finite()));
        RefFluidSim {
            now: SimTime::ZERO,
            capacity: capacities.to_vec(),
            cap_override: vec![f64::INFINITY; capacities.len()],
            degrade_factor: vec![1.0; capacities.len()],
            flows: BTreeMap::new(),
            next_flow_id: 0,
            rates_dirty: false,
        }
    }

    pub fn now(&self) -> SimTime {
        self.now
    }

    fn effective_capacity(&self, r: usize) -> f64 {
        (self.capacity[r] * self.degrade_factor[r]).min(self.cap_override[r])
    }

    pub fn set_rate_cap(&mut self, r: usize, cap: f64) {
        assert!(cap > 0.0);
        self.cap_override[r] = cap;
        self.rates_dirty = true;
    }

    pub fn degrade(&mut self, r: usize, factor: f64) {
        assert!(factor > 0.0 && factor <= 1.0);
        self.degrade_factor[r] = factor;
        self.rates_dirty = true;
    }

    pub fn restore(&mut self, r: usize) {
        self.degrade_factor[r] = 1.0;
        self.rates_dirty = true;
    }

    /// Start a flow; routes normalize exactly like `Route::normalized`
    /// (duplicates collapse, weights accumulate, hops sorted by resource).
    pub fn start_flow(&mut self, work: f64, route: &[(usize, f64)]) -> u64 {
        assert!(work > 0.0 && work.is_finite());
        let mut map: BTreeMap<usize, f64> = BTreeMap::new();
        for &(r, w) in route {
            assert!(w > 0.0 && w.is_finite());
            assert!(r < self.capacity.len());
            *map.entry(r).or_insert(0.0) += w;
        }
        assert!(!map.is_empty());
        let id = self.next_flow_id;
        self.next_flow_id += 1;
        self.flows.insert(
            id,
            RefFlow {
                route: map.into_iter().collect(),
                remaining: work,
                rate: 0.0,
            },
        );
        self.rates_dirty = true;
        id
    }

    pub fn cancel_flow(&mut self, id: u64) -> f64 {
        let flow = self.flows.remove(&id).expect("cancel_flow: unknown flow");
        self.rates_dirty = true;
        flow.remaining
    }

    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    pub fn flow_rate(&mut self, id: u64) -> f64 {
        self.recompute_rates_if_dirty();
        self.flows.get(&id).expect("flow_rate: unknown flow").rate
    }

    /// Instantaneous Σ rate×weight over `r`, the quantity the rewritten
    /// engine maintains incrementally as `cur_load`.
    pub fn resource_load(&mut self, r: usize) -> f64 {
        self.recompute_rates_if_dirty();
        self.flows
            .values()
            .map(|f| {
                f.route
                    .iter()
                    .filter(|&&(rr, _)| rr == r)
                    .map(|&(_, w)| f.rate * w)
                    .sum::<f64>()
            })
            .sum()
    }

    pub fn next_completion_time(&mut self) -> Option<SimTime> {
        self.recompute_rates_if_dirty();
        self.flows
            .values()
            .map(|f| self.now + SimDuration::for_work(f.remaining, f.rate))
            .min()
    }

    pub fn advance_to_next_completion(&mut self) -> Option<(SimTime, Vec<u64>)> {
        if self.flows.is_empty() {
            return None;
        }
        self.recompute_rates_if_dirty();
        let mut at = SimTime::MAX;
        let mut done: Vec<u64> = Vec::new();
        for (&id, f) in &self.flows {
            let fin = self.now + SimDuration::for_work(f.remaining, f.rate);
            if fin < at {
                at = fin;
                done.clear();
                done.push(id);
            } else if fin == at {
                done.push(id);
            }
        }
        self.progress_flows_to(at);
        self.now = at;
        for id in &done {
            self.flows.remove(id).expect("completion bookkeeping");
        }
        self.rates_dirty = true;
        Some((at, done))
    }

    pub fn advance_to(&mut self, t: SimTime) {
        assert!(t >= self.now, "advance_to: {t} is in the past");
        if let Some(next) = self.next_completion_time() {
            assert!(t <= next, "advance_to: {t} would skip a completion");
        }
        self.progress_flows_to(t);
        self.now = t;
    }

    /// Eager progress: decrement `remaining` on every flow for `[now, t]`.
    fn progress_flows_to(&mut self, t: SimTime) {
        self.recompute_rates_if_dirty();
        let dt = t.since(self.now).as_secs_f64();
        if dt == 0.0 {
            return;
        }
        for f in self.flows.values_mut() {
            f.remaining = (f.remaining - f.rate * dt).max(0.0);
        }
    }

    fn recompute_rates_if_dirty(&mut self) {
        if !self.rates_dirty {
            return;
        }
        self.rates_dirty = false;
        self.water_fill();
    }

    /// Global progressive filling, byte-for-byte the pre-rewrite algorithm.
    fn water_fill(&mut self) {
        let n_res = self.capacity.len();
        let mut residual: Vec<f64> = (0..n_res).map(|r| self.effective_capacity(r)).collect();
        let mut weight_sum = vec![0.0f64; n_res];
        let ids: Vec<u64> = self.flows.keys().copied().collect();
        let mut unfrozen: Vec<u64> = ids.clone();
        for f in self.flows.values_mut() {
            f.rate = 0.0;
        }
        for id in &ids {
            for &(r, w) in &self.flows[id].route {
                weight_sum[r] += w;
            }
        }
        while !unfrozen.is_empty() {
            let mut delta = f64::INFINITY;
            for id in &unfrozen {
                for &(r, _) in &self.flows[id].route {
                    let ws = weight_sum[r];
                    if ws > 0.0 {
                        delta = delta.min(residual[r] / ws);
                    }
                }
            }
            assert!(
                delta.is_finite() && delta >= 0.0,
                "water_fill: degenerate allocation (delta={delta})"
            );
            for id in &unfrozen {
                let f = self.flows.get_mut(id).expect("unfrozen flow exists");
                f.rate += delta;
                for &(r, w) in &f.route {
                    residual[r] -= delta * w;
                }
            }
            let saturated: Vec<bool> = residual
                .iter()
                .enumerate()
                .map(|(i, &res)| res <= self.effective_capacity(i) * 1e-6)
                .collect();
            let (frozen_now, still): (Vec<u64>, Vec<u64>) = unfrozen
                .into_iter()
                .partition(|id| self.flows[id].route.iter().any(|&(r, _)| saturated[r]));
            assert!(
                !frozen_now.is_empty(),
                "water_fill: no progress (numerical issue)"
            );
            for id in &frozen_now {
                for &(r, w) in &self.flows[id].route {
                    weight_sum[r] -= w;
                }
            }
            unfrozen = still;
        }
    }
}
