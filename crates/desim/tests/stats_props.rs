//! Property tests for `ResourceStats`, in the repo's seeded style: a
//! ChaCha8 stream drives randomized record sequences, so failures replay
//! exactly.

use ff_desim::stats::ResourceStats;
use ff_util::rng::ChaCha8Rng;

const CASES: usize = 300;

/// A random record sequence where every interval keeps `load <= capacity`.
fn feasible_sequence(rng: &mut ChaCha8Rng) -> Vec<(f64, f64, f64)> {
    let n = rng.gen_range(1..80usize);
    (0..n)
        .map(|_| {
            let dt = rng.gen_range(1e-6..2.0f64);
            let cap = rng.gen_range(0.1..1e9f64);
            let load = cap * rng.gen_range(0.0..1.0f64);
            (dt, load, cap)
        })
        .collect()
}

#[test]
fn utilization_stays_in_unit_interval_under_feasible_load() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xde51);
    for _ in 0..CASES {
        let mut s = ResourceStats::default();
        for (dt, load, cap) in feasible_sequence(&mut rng) {
            s.record(dt, load, cap);
        }
        let u = s.utilization();
        assert!((0.0..=1.0).contains(&u), "utilization {u} out of [0,1]");
        let p = s.peak_utilization();
        assert!((0.0..=1.0).contains(&p), "peak {p} out of [0,1]");
    }
}

#[test]
fn peak_utilization_dominates_average() {
    // The time-average is a convex combination of the instantaneous
    // load/capacity fractions, so it can never exceed the max of them.
    let mut rng = ChaCha8Rng::seed_from_u64(0xde52);
    for _ in 0..CASES {
        let mut s = ResourceStats::default();
        for (dt, load, cap) in feasible_sequence(&mut rng) {
            s.record(dt, load, cap);
        }
        assert!(
            s.peak_utilization() >= s.utilization() - 1e-12,
            "peak {} < average {}",
            s.peak_utilization(),
            s.utilization()
        );
    }
}

#[test]
fn units_served_is_additive_over_sequence_splits() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xde53);
    for _ in 0..CASES {
        let seq = feasible_sequence(&mut rng);
        let cut = rng.gen_range(0..seq.len() + 1);
        let mut whole = ResourceStats::default();
        let (mut head, mut tail) = (ResourceStats::default(), ResourceStats::default());
        for (i, &(dt, load, cap)) in seq.iter().enumerate() {
            whole.record(dt, load, cap);
            if i < cut {
                head.record(dt, load, cap);
            } else {
                tail.record(dt, load, cap);
            }
        }
        let split = head.units_served() + tail.units_served();
        let tol = 1e-9 * whole.units_served().max(1.0);
        assert!(
            (whole.units_served() - split).abs() <= tol,
            "served not additive: whole {} vs head+tail {}",
            whole.units_served(),
            split
        );
        let cap_split = head.capacity_integral() + tail.capacity_integral();
        let cap_tol = 1e-9 * whole.capacity_integral().max(1.0);
        assert!((whole.capacity_integral() - cap_split).abs() <= cap_tol);
    }
}

#[test]
fn zero_capacity_records_never_change_anything() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xde54);
    for _ in 0..CASES {
        let seq = feasible_sequence(&mut rng);
        let mut plain = ResourceStats::default();
        let mut interleaved = ResourceStats::default();
        for &(dt, load, cap) in &seq {
            plain.record(dt, load, cap);
            interleaved.record(dt, load, cap);
            // Dead-conduit intervals must be invisible to every statistic.
            interleaved.record(rng.gen_range(0.0..5.0f64), 0.0, 0.0);
        }
        assert_eq!(plain.units_served(), interleaved.units_served());
        assert_eq!(plain.capacity_integral(), interleaved.capacity_integral());
        assert_eq!(plain.utilization(), interleaved.utilization());
        assert_eq!(plain.peak_utilization(), interleaved.peak_utilization());
        assert_eq!(plain.elapsed_secs(), interleaved.elapsed_secs());
    }
}
