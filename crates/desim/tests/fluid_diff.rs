//! Differential test: the incremental solver against two oracles.
//!
//! Every seeded scenario from `ff_util::scengen` is replayed through four
//! engines:
//!
//! 1. `FluidSim` in [`SolverMode::Incremental`] — the production path:
//!    component-scoped recomputes, lazy settling, heap-driven completions.
//! 2. The same, with the component-parallel path forced on (dispatch
//!    threshold 0, several worker lanes). Must agree **bit for bit** with
//!    both serial modes: parallel solving is required to be invisible.
//! 3. `FluidSim` in [`SolverMode::Reference`] — same fill arithmetic, but
//!    every component re-solved every time and completions found by linear
//!    scan. Must agree **bit for bit**: any divergence means the dirty
//!    tracking, component walk, or heap invalidation dropped an update.
//! 4. `RefFluidSim` — the pre-rewrite brute-force engine kept verbatim in
//!    `tests/common/reference.rs` (global water-fill, eager per-advance
//!    progress). Must agree on rates to 1e-9 relative and on completion
//!    order, with completion instants within a couple of nanoseconds
//!    (eager vs lazy settling legitimately reorders f64 rounding).
//!
//! The schedules include mid-run `degrade`/`restore`/`set_rate_cap`/
//! `cancel_flow` events and same-instant bursts, per the scenario
//! generator.

mod common;

use std::collections::BTreeMap;

use common::reference::RefFluidSim;
use ff_desim::{FlowId, FluidSim, Route, SimTime, SolverMode};
use ff_util::scengen::{GenConfig, ScenEvent, Scenario};

/// Everything observable about one engine's replay of a scenario, in a
/// shape that is engine-independent and directly comparable.
#[derive(Debug, Clone, PartialEq)]
struct Replay {
    /// Rates of all active flows, probed after every event application,
    /// in active-list order (start order, cancellations `swap_remove`d).
    rate_probes: Vec<f64>,
    /// `resource_load` of every resource, probed after every event.
    load_probes: Vec<f64>,
    /// Remaining work returned by each `cancel_flow`, in cancel order.
    cancel_remaining: Vec<f64>,
    /// `(flow ordinal, completion ns)` in completion order (batches
    /// flattened in id order, which both engines guarantee).
    completions: Vec<(u64, u64)>,
}

/// Replay `s` through a `FluidSim`. `par_threads = Some(n)` forces the
/// component-parallel path: every multi-component recompute is dispatched
/// to the worker pool at width `n` (threshold 0).
fn replay_fluidsim(s: &Scenario, mode: SolverMode, par_threads: Option<usize>) -> Replay {
    let mut sim = FluidSim::with_solver(mode);
    if let Some(n) = par_threads {
        sim.set_threads(n);
        sim.set_par_threshold(0);
    }
    let rids: Vec<_> = s
        .capacities
        .iter()
        .enumerate()
        .map(|(i, &c)| sim.add_resource(format!("r{i}"), c))
        .collect();
    let mut out = Replay {
        rate_probes: Vec::new(),
        load_probes: Vec::new(),
        cancel_remaining: Vec::new(),
        completions: Vec::new(),
    };
    let mut ordinal_of: BTreeMap<FlowId, u64> = BTreeMap::new();
    let mut next_ordinal = 0u64;
    let mut active: Vec<FlowId> = Vec::new();
    let drain_until = |sim: &mut FluidSim,
                       active: &mut Vec<FlowId>,
                       ordinal_of: &BTreeMap<FlowId, u64>,
                       out: &mut Replay,
                       t: Option<SimTime>| {
        while let Some(tc) = sim.next_completion_time() {
            if t.is_some_and(|t| tc > t) {
                break;
            }
            let (at, done) = sim.advance_to_next_completion().unwrap();
            for id in done {
                out.completions.push((ordinal_of[&id], at.as_nanos()));
                active.retain(|&f| f != id);
            }
        }
    };
    for &(t_ns, ref ev) in &s.events {
        let t = SimTime(t_ns);
        drain_until(&mut sim, &mut active, &ordinal_of, &mut out, Some(t));
        sim.advance_to(t);
        match ev {
            ScenEvent::Start { route, work } => {
                let hops: Vec<_> = route.iter().map(|&(r, w)| (rids[r], w)).collect();
                let id = sim.start_flow(*work, &Route::weighted(hops));
                ordinal_of.insert(id, next_ordinal);
                next_ordinal += 1;
                active.push(id);
            }
            ScenEvent::Degrade { resource, factor } => sim
                .degrade(rids[*resource], *factor)
                .expect("generated degrade factor valid"),
            ScenEvent::Restore { resource } => sim
                .restore(rids[*resource])
                .expect("generated resource valid"),
            ScenEvent::SetRateCap { resource, cap } => sim
                .set_rate_cap(rids[*resource], *cap)
                .expect("generated rate cap valid"),
            ScenEvent::Cancel { nth } => {
                if !active.is_empty() {
                    let id = active.swap_remove(nth % active.len());
                    out.cancel_remaining.push(sim.cancel_flow(id));
                }
            }
        }
        for &id in &active {
            out.rate_probes.push(sim.flow_rate(id));
        }
        for &r in &rids {
            out.load_probes.push(sim.resource_load(r));
        }
    }
    drain_until(&mut sim, &mut active, &ordinal_of, &mut out, None);
    assert_eq!(sim.active_flows(), 0, "drain left flows behind");
    out
}

fn replay_brute(s: &Scenario) -> Replay {
    let mut sim = RefFluidSim::new(&s.capacities);
    let mut out = Replay {
        rate_probes: Vec::new(),
        load_probes: Vec::new(),
        cancel_remaining: Vec::new(),
        completions: Vec::new(),
    };
    let mut active: Vec<u64> = Vec::new();
    let drain_until =
        |sim: &mut RefFluidSim, active: &mut Vec<u64>, out: &mut Replay, t: Option<SimTime>| {
            while let Some(tc) = sim.next_completion_time() {
                if t.is_some_and(|t| tc > t) {
                    break;
                }
                let (at, done) = sim.advance_to_next_completion().unwrap();
                for id in done {
                    out.completions.push((id, at.as_nanos()));
                    active.retain(|&f| f != id);
                }
            }
        };
    for &(t_ns, ref ev) in &s.events {
        let t = SimTime(t_ns);
        drain_until(&mut sim, &mut active, &mut out, Some(t));
        sim.advance_to(t);
        match ev {
            ScenEvent::Start { route, work } => {
                let id = sim.start_flow(*work, route);
                active.push(id);
            }
            ScenEvent::Degrade { resource, factor } => sim.degrade(*resource, *factor),
            ScenEvent::Restore { resource } => sim.restore(*resource),
            ScenEvent::SetRateCap { resource, cap } => sim.set_rate_cap(*resource, *cap),
            ScenEvent::Cancel { nth } => {
                if !active.is_empty() {
                    let id = active.swap_remove(nth % active.len());
                    out.cancel_remaining.push(sim.cancel_flow(id));
                }
            }
        }
        for &id in &active {
            out.rate_probes.push(sim.flow_rate(id));
        }
        for r in 0..s.capacities.len() {
            out.load_probes.push(sim.resource_load(r));
        }
    }
    drain_until(&mut sim, &mut active, &mut out, None);
    assert_eq!(sim.active_flows(), 0, "drain left flows behind");
    out
}

fn assert_close(a: &[f64], b: &[f64], tol: f64, what: &str, seed: u64) {
    assert_eq!(a.len(), b.len(), "seed {seed}: {what} probe count differs");
    for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
        let scale = x.abs().max(y.abs()).max(1.0);
        assert!(
            (x - y).abs() <= tol * scale,
            "seed {seed}: {what}[{i}] diverged: {x} vs {y}"
        );
    }
}

fn check_seed(seed: u64, cfg: &GenConfig) {
    let s = Scenario::generate(seed, cfg);
    let inc = replay_fluidsim(&s, SolverMode::Incremental, None);
    let refm = replay_fluidsim(&s, SolverMode::Reference, None);
    // Incremental vs in-tree Reference mode: bit-for-bit identical — the
    // fill arithmetic is shared, so any difference is a solver bug, not
    // floating-point noise.
    assert_eq!(
        inc, refm,
        "seed {seed}: incremental and reference solver modes diverged"
    );
    // Component-parallel vs Reference: also bit-for-bit. Dispatch forced
    // on (threshold 0) so even tiny recomputes exercise the pool path.
    let par = replay_fluidsim(&s, SolverMode::Incremental, Some(4));
    assert_eq!(
        par, refm,
        "seed {seed}: parallel solver diverged from reference"
    );
    // Vs the pre-rewrite brute-force engine: rates to 1e-9, completion
    // order exact, completion instants within 2 ns (eager vs lazy progress
    // settling reorders the f64 operations around the integer-ns ceil).
    let brute = replay_brute(&s);
    assert_close(&inc.rate_probes, &brute.rate_probes, 1e-9, "rate", seed);
    assert_close(&inc.load_probes, &brute.load_probes, 1e-9, "load", seed);
    assert_close(
        &inc.cancel_remaining,
        &brute.cancel_remaining,
        1e-9,
        "cancel remaining",
        seed,
    );
    assert_eq!(
        inc.completions.len(),
        brute.completions.len(),
        "seed {seed}: completion counts differ"
    );
    for (i, (&(fa, ta), &(fb, tb))) in inc.completions.iter().zip(&brute.completions).enumerate() {
        assert_eq!(
            fa, fb,
            "seed {seed}: completion order diverged at #{i}: flow {fa} vs {fb}"
        );
        assert!(
            ta.abs_diff(tb) <= 2,
            "seed {seed}: flow {fa} completion time diverged: {ta} ns vs {tb} ns"
        );
    }
}

#[test]
fn incremental_solver_agrees_on_1024_default_scenarios() {
    let cfg = GenConfig::default();
    for seed in 0x0D1F_0000..0x0D1F_0000 + 1024 {
        check_seed(seed, &cfg);
    }
}

#[test]
fn incremental_solver_agrees_on_dense_scenarios() {
    // Larger, denser topologies: more flows per resource, longer routes,
    // tighter event spacing — proportionally more same-instant batches and
    // multi-resource components.
    let cfg = GenConfig::dense();
    for seed in 0x0D2F_0000..0x0D2F_0000 + 128 {
        check_seed(seed, &cfg);
    }
}

#[test]
fn thread_count_does_not_change_results() {
    // The same seed must produce the identical replay at 1, 2, and 8
    // worker lanes: lane packing only moves *where* a component is solved,
    // never what any observer sees. Wide scenarios maximize the number of
    // simultaneously dirty components per recompute.
    let cfg = GenConfig::wide();
    for seed in 0x0D3F_0000..0x0D3F_0000 + 48 {
        let s = Scenario::generate(seed, &cfg);
        let one = replay_fluidsim(&s, SolverMode::Incremental, Some(1));
        for threads in [2, 8] {
            let wide = replay_fluidsim(&s, SolverMode::Incremental, Some(threads));
            assert_eq!(one, wide, "seed {seed}: {threads} threads diverged");
        }
    }
}
