//! Randomized property tests for the max-min fair fluid engine (seeded,
//! reproducible).

use ff_desim::{FluidSim, Route, SimTime};
use ff_util::rng::ChaCha8Rng;

const CASES: usize = 96;

/// A randomly generated scenario: a few resources, a few flows with random
/// routes and sizes.
#[derive(Debug, Clone)]
struct Scenario {
    capacities: Vec<f64>,
    // Per flow: work units + route as (resource index, weight).
    flows: Vec<(f64, Vec<(usize, f64)>)>,
}

fn scenario(rng: &mut ChaCha8Rng) -> Scenario {
    let capacities: Vec<f64> = (0..rng.gen_range(1usize..6))
        .map(|_| rng.gen_range(1.0f64..1000.0))
        .collect();
    let n = capacities.len();
    let flows: Vec<(f64, Vec<(usize, f64)>)> = (0..rng.gen_range(1usize..12))
        .map(|_| {
            let route: Vec<(usize, f64)> = (0..rng.gen_range(1usize..n + 1))
                .map(|_| (rng.gen_range(0..n), rng.gen_range(0.5f64..4.0)))
                .collect();
            (rng.gen_range(1.0f64..500.0), route)
        })
        .collect();
    Scenario { capacities, flows }
}

fn build(s: &Scenario) -> (FluidSim, Vec<ff_desim::ResourceId>, Vec<ff_desim::FlowId>) {
    let mut sim = FluidSim::new();
    let rids: Vec<_> = s
        .capacities
        .iter()
        .enumerate()
        .map(|(i, &c)| sim.add_resource(format!("r{i}"), c))
        .collect();
    let fids: Vec<_> = s
        .flows
        .iter()
        .map(|(work, route)| {
            let r = Route::weighted(route.iter().map(|&(i, w)| (rids[i], w)));
            sim.start_flow(*work, &r)
        })
        .collect();
    (sim, rids, fids)
}

/// No resource is ever overloaded: Σ rate×weight ≤ capacity (+ε).
#[test]
fn capacity_never_exceeded() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xF101);
    for _ in 0..CASES {
        let s = scenario(&mut rng);
        let (mut sim, rids, fids) = build(&s);
        let rates: Vec<f64> = fids.iter().map(|&f| sim.flow_rate(f)).collect();
        let mut loads = vec![0.0; rids.len()];
        for (rate, (_, route)) in rates.iter().zip(&s.flows) {
            for &(i, w) in route {
                loads[i] += rate * w;
            }
        }
        for (load, cap) in loads.iter().zip(&s.capacities) {
            assert!(*load <= cap * (1.0 + 1e-6), "load {load} > cap {cap}");
        }
    }
}

/// Every flow is bottlenecked: each flow crosses at least one resource
/// whose load is (numerically) at capacity — the defining property of a
/// max-min fair allocation together with capacity feasibility.
#[test]
fn every_flow_has_a_saturated_resource() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xF102);
    for _ in 0..CASES {
        let s = scenario(&mut rng);
        let (mut sim, rids, fids) = build(&s);
        let rates: Vec<f64> = fids.iter().map(|&f| sim.flow_rate(f)).collect();
        let mut loads = vec![0.0; rids.len()];
        for (rate, (_, route)) in rates.iter().zip(&s.flows) {
            for &(i, w) in route {
                loads[i] += rate * w;
            }
        }
        for (fi, (_, route)) in s.flows.iter().enumerate() {
            let bottlenecked = route
                .iter()
                .any(|&(i, _)| loads[i] >= s.capacities[i] * (1.0 - 1e-5));
            assert!(
                bottlenecked,
                "flow {fi} (rate {}) crosses no saturated resource",
                rates[fi]
            );
        }
    }
}

/// All flows eventually complete, total served work matches, and time
/// never runs backwards.
#[test]
fn drain_conserves_work() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xF103);
    for _ in 0..CASES {
        let s = scenario(&mut rng);
        let (mut sim, rids, _fids) = build(&s);
        let mut last = SimTime::ZERO;
        let mut completions = 0usize;
        while let Some((t, done)) = sim.advance_to_next_completion() {
            assert!(t >= last);
            last = t;
            completions += done.len();
        }
        assert_eq!(completions, s.flows.len());
        assert_eq!(sim.active_flows(), 0);
        // Work served per resource = Σ flow work × weight on that resource.
        let mut expected = vec![0.0; rids.len()];
        for (work, route) in &s.flows {
            for &(i, w) in route {
                expected[i] += work * w;
            }
        }
        for (ri, rid) in rids.iter().enumerate() {
            let served = sim.stats(*rid).units_served();
            // Rounding to integer ns on each event makes served slightly
            // diverge; allow a small relative tolerance.
            assert!(
                (served - expected[ri]).abs() <= expected[ri] * 1e-3 + 1e-6,
                "resource {ri}: served {served}, expected {}",
                expected[ri]
            );
        }
    }
}

/// Determinism: building the same scenario twice gives identical rates
/// and identical completion timelines.
#[test]
fn deterministic_replay() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xF104);
    for _ in 0..CASES {
        let s = scenario(&mut rng);
        let run = |s: &Scenario| {
            let (mut sim, _, _) = build(s);
            let mut timeline = Vec::new();
            while let Some((t, done)) = sim.advance_to_next_completion() {
                timeline.push((t, done));
            }
            timeline
        };
        assert_eq!(run(&s), run(&s));
    }
}
