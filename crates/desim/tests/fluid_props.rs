//! Randomized property tests for the max-min fair fluid engine (seeded,
//! reproducible).

use ff_desim::{FluidSim, Route, SimTime};
use ff_util::rng::ChaCha8Rng;

const CASES: usize = 96;

/// A randomly generated scenario: a few resources, a few flows with random
/// routes and sizes.
#[derive(Debug, Clone)]
struct Scenario {
    capacities: Vec<f64>,
    // Per flow: work units + route as (resource index, weight).
    flows: Vec<(f64, Vec<(usize, f64)>)>,
}

fn scenario(rng: &mut ChaCha8Rng) -> Scenario {
    let capacities: Vec<f64> = (0..rng.gen_range(1usize..6))
        .map(|_| rng.gen_range(1.0f64..1000.0))
        .collect();
    let n = capacities.len();
    let flows: Vec<(f64, Vec<(usize, f64)>)> = (0..rng.gen_range(1usize..12))
        .map(|_| {
            let route: Vec<(usize, f64)> = (0..rng.gen_range(1usize..n + 1))
                .map(|_| (rng.gen_range(0..n), rng.gen_range(0.5f64..4.0)))
                .collect();
            (rng.gen_range(1.0f64..500.0), route)
        })
        .collect();
    Scenario { capacities, flows }
}

fn build(s: &Scenario) -> (FluidSim, Vec<ff_desim::ResourceId>, Vec<ff_desim::FlowId>) {
    let mut sim = FluidSim::new();
    let rids: Vec<_> = s
        .capacities
        .iter()
        .enumerate()
        .map(|(i, &c)| sim.add_resource(format!("r{i}"), c))
        .collect();
    let fids: Vec<_> = s
        .flows
        .iter()
        .map(|(work, route)| {
            let r = Route::weighted(route.iter().map(|&(i, w)| (rids[i], w)));
            sim.start_flow(*work, &r)
        })
        .collect();
    (sim, rids, fids)
}

/// No resource is ever overloaded: Σ rate×weight ≤ capacity (+ε).
#[test]
fn capacity_never_exceeded() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xF101);
    for _ in 0..CASES {
        let s = scenario(&mut rng);
        let (mut sim, rids, fids) = build(&s);
        let rates: Vec<f64> = fids.iter().map(|&f| sim.flow_rate(f)).collect();
        let mut loads = vec![0.0; rids.len()];
        for (rate, (_, route)) in rates.iter().zip(&s.flows) {
            for &(i, w) in route {
                loads[i] += rate * w;
            }
        }
        for (load, cap) in loads.iter().zip(&s.capacities) {
            assert!(*load <= cap * (1.0 + 1e-6), "load {load} > cap {cap}");
        }
    }
}

/// Every flow is bottlenecked: each flow crosses at least one resource
/// whose load is (numerically) at capacity — the defining property of a
/// max-min fair allocation together with capacity feasibility.
#[test]
fn every_flow_has_a_saturated_resource() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xF102);
    for _ in 0..CASES {
        let s = scenario(&mut rng);
        let (mut sim, rids, fids) = build(&s);
        let rates: Vec<f64> = fids.iter().map(|&f| sim.flow_rate(f)).collect();
        let mut loads = vec![0.0; rids.len()];
        for (rate, (_, route)) in rates.iter().zip(&s.flows) {
            for &(i, w) in route {
                loads[i] += rate * w;
            }
        }
        for (fi, (_, route)) in s.flows.iter().enumerate() {
            let bottlenecked = route
                .iter()
                .any(|&(i, _)| loads[i] >= s.capacities[i] * (1.0 - 1e-5));
            assert!(
                bottlenecked,
                "flow {fi} (rate {}) crosses no saturated resource",
                rates[fi]
            );
        }
    }
}

/// All flows eventually complete, total served work matches, and time
/// never runs backwards.
#[test]
fn drain_conserves_work() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xF103);
    for _ in 0..CASES {
        let s = scenario(&mut rng);
        let (mut sim, rids, _fids) = build(&s);
        let mut last = SimTime::ZERO;
        let mut completions = 0usize;
        while let Some((t, done)) = sim.advance_to_next_completion() {
            assert!(t >= last);
            last = t;
            completions += done.len();
        }
        assert_eq!(completions, s.flows.len());
        assert_eq!(sim.active_flows(), 0);
        // Work served per resource = Σ flow work × weight on that resource.
        let mut expected = vec![0.0; rids.len()];
        for (work, route) in &s.flows {
            for &(i, w) in route {
                expected[i] += work * w;
            }
        }
        for (ri, rid) in rids.iter().enumerate() {
            let served = sim.stats(*rid).units_served();
            // Rounding to integer ns on each event makes served slightly
            // diverge; allow a small relative tolerance.
            assert!(
                (served - expected[ri]).abs() <= expected[ri] * 1e-3 + 1e-6,
                "resource {ri}: served {served}, expected {}",
                expected[ri]
            );
        }
    }
}

/// After degrading a random subset of resources mid-run, no resource's
/// instantaneous load exceeds its *effective* (degraded) capacity, and
/// every flow is still bottlenecked on at least one resource that is
/// saturated with respect to effective capacity.
#[test]
fn degradation_respects_effective_capacity() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xF105);
    const FACTORS: [f64; 3] = [0.25, 0.5, 0.75];
    for _ in 0..CASES {
        let s = scenario(&mut rng);
        let (mut sim, rids, fids) = build(&s);
        // Let time pass (but cross no completion) so the degradation hits
        // flows that are genuinely in flight.
        if let Some(tc) = sim.next_completion_time() {
            sim.advance_to(SimTime(tc.as_nanos() / 2));
        }
        for rid in &rids {
            if rng.gen_bool(0.5) {
                sim.degrade(*rid, FACTORS[rng.gen_range(0..FACTORS.len())])
                    .expect("valid degrade");
            }
        }
        for rid in &rids {
            let load = sim.resource_load(*rid);
            let eff = sim.effective_capacity(*rid);
            assert!(
                load <= eff * (1.0 + 1e-6),
                "load {load} > effective capacity {eff}"
            );
        }
        for (fi, (_, route)) in s.flows.iter().enumerate() {
            let bottlenecked = route.iter().any(|&(i, _)| {
                sim.resource_load(rids[i]) >= sim.effective_capacity(rids[i]) * (1.0 - 1e-5)
            });
            assert!(
                bottlenecked,
                "flow {fi} crosses no saturated resource after degradation"
            );
            let _ = fids[fi];
        }
    }
}

/// Cancelling flows preserves the max-min invariants for the survivors:
/// feasibility (load ≤ capacity) and Pareto optimality (every surviving
/// flow crosses a saturated resource, so no flow can gain rate without
/// another losing). Note weighted max-min is *not* monotone under removal
/// — freeing one flow can let a heavy-weighted competitor grow and crowd
/// out a third — so saturation, not rate monotonicity, is the invariant.
#[test]
fn cancel_preserves_max_min_invariants() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xF106);
    for _ in 0..CASES {
        let s = scenario(&mut rng);
        if s.flows.len() < 2 {
            continue;
        }
        let (mut sim, rids, fids) = build(&s);
        let victim = rng.gen_range(0..fids.len());
        sim.cancel_flow(fids[victim]);
        for rid in &rids {
            let load = sim.resource_load(*rid);
            let cap = sim.capacity(*rid);
            assert!(load <= cap * (1.0 + 1e-6), "load {load} > cap {cap}");
        }
        for (fi, (_, route)) in s.flows.iter().enumerate() {
            if fi == victim {
                continue;
            }
            let bottlenecked = route
                .iter()
                .any(|&(i, _)| sim.resource_load(rids[i]) >= sim.capacity(rids[i]) * (1.0 - 1e-5));
            assert!(
                bottlenecked,
                "flow {fi} crosses no saturated resource after a cancel"
            );
        }
    }
}

/// A same-instant degrade → recompute → restore cycle is exactly undone:
/// the allocation after restore equals the original bit for bit (the fill
/// is a pure function of the active flow set and effective capacities).
#[test]
fn restore_exactly_undoes_degrade() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xF107);
    for _ in 0..CASES {
        let s = scenario(&mut rng);
        let (mut sim, rids, fids) = build(&s);
        let before: Vec<f64> = fids.iter().map(|&f| sim.flow_rate(f)).collect();
        let r = rids[rng.gen_range(0..rids.len())];
        sim.degrade(r, 0.5).expect("valid degrade");
        // Force the degraded allocation to materialize so restore is a
        // genuine second recompute, not a merged no-op.
        for &f in &fids {
            let _ = sim.flow_rate(f);
        }
        sim.restore(r).expect("valid restore");
        let after: Vec<f64> = fids.iter().map(|&f| sim.flow_rate(f)).collect();
        assert_eq!(before, after, "restore did not exactly undo degrade");
    }
}

/// Interleaving congestion-control rate caps with degrade/restore cycles
/// keeps the allocation inside the *composed* ceiling at every step:
/// effective capacity is `min(capacity × degrade, cap)`, so a restore
/// must lift only the degradation — a cap installed before (or during)
/// the degraded window still binds afterwards.
#[test]
fn rate_caps_survive_degrade_restore_interleaving() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xF108);
    const FACTORS: [f64; 3] = [0.25, 0.5, 0.75];
    for _ in 0..CASES {
        let s = scenario(&mut rng);
        let (mut sim, rids, _fids) = build(&s);
        // Shadow model of what the effective ceiling must be.
        let mut capped = vec![f64::INFINITY; rids.len()];
        let mut degraded = vec![1.0f64; rids.len()];
        for _ in 0..24 {
            let ri = rng.gen_range(0..rids.len());
            match rng.gen_range(0..5u32) {
                0 => {
                    let cap = s.capacities[ri] * rng.gen_range(0.2f64..1.2);
                    sim.set_rate_cap(rids[ri], cap).expect("valid cap");
                    capped[ri] = cap;
                }
                1 => {
                    sim.set_rate_cap(rids[ri], 1e18).expect("lift cap");
                    capped[ri] = f64::INFINITY;
                }
                2 => {
                    let f = FACTORS[rng.gen_range(0..FACTORS.len())];
                    sim.degrade(rids[ri], f).expect("valid degrade");
                    degraded[ri] = f;
                }
                3 => {
                    sim.restore(rids[ri]).expect("valid restore");
                    degraded[ri] = 1.0;
                }
                // Let flows progress (halfway to the next completion)
                // mid-cycle.
                _ => {
                    if let Some(tc) = sim.next_completion_time() {
                        let mid = sim.now().as_nanos() + (tc.as_nanos() - sim.now().as_nanos()) / 2;
                        sim.advance_to(SimTime(mid));
                    }
                }
            }
            for (i, rid) in rids.iter().enumerate() {
                let ceiling = (s.capacities[i] * degraded[i]).min(capped[i]);
                let eff = sim.effective_capacity(*rid);
                assert!(
                    (eff - ceiling.min(1e18)).abs() <= ceiling.min(1e18) * 1e-9,
                    "resource {i}: effective capacity {eff} != composed ceiling {ceiling}"
                );
                let load = sim.resource_load(*rid);
                assert!(
                    load <= eff * (1.0 + 1e-6),
                    "resource {i}: load {load} > effective capacity {eff}"
                );
            }
        }
        // Restore everything; caps alone must still bind.
        for (i, rid) in rids.iter().enumerate() {
            sim.restore(*rid).expect("valid restore");
            degraded[i] = 1.0;
        }
        for (i, rid) in rids.iter().enumerate() {
            let ceiling = s.capacities[i].min(capped[i]).min(1e18);
            let eff = sim.effective_capacity(*rid);
            assert!(
                (eff - ceiling).abs() <= ceiling * 1e-9,
                "resource {i}: cap forgotten after restore ({eff} vs {ceiling})"
            );
            assert!(sim.resource_load(*rid) <= eff * (1.0 + 1e-6));
        }
    }
}

/// Determinism: building the same scenario twice gives identical rates
/// and identical completion timelines.
#[test]
fn deterministic_replay() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xF104);
    for _ in 0..CASES {
        let s = scenario(&mut rng);
        let run = |s: &Scenario| {
            let (mut sim, _, _) = build(s);
            let mut timeline = Vec::new();
            while let Some((t, done)) = sim.advance_to_next_completion() {
                timeline.push((t, done));
            }
            timeline
        };
        assert_eq!(run(&s), run(&s));
    }
}
