//! Property-based tests for the max-min fair fluid engine.

use ff_desim::{FluidSim, Route, SimTime};
use proptest::prelude::*;

/// A randomly generated scenario: a few resources, a few flows with random
/// routes and sizes.
#[derive(Debug, Clone)]
struct Scenario {
    capacities: Vec<f64>,
    // Per flow: work units + route as (resource index, weight).
    flows: Vec<(f64, Vec<(usize, f64)>)>,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    let caps = prop::collection::vec(1.0f64..1000.0, 1..6);
    caps.prop_flat_map(|capacities| {
        let n = capacities.len();
        let route = prop::collection::vec((0..n, 0.5f64..4.0), 1..=n);
        let flows = prop::collection::vec((1.0f64..500.0, route), 1..12);
        flows.prop_map(move |flows| Scenario {
            capacities: capacities.clone(),
            flows,
        })
    })
}

fn build(s: &Scenario) -> (FluidSim, Vec<ff_desim::ResourceId>, Vec<ff_desim::FlowId>) {
    let mut sim = FluidSim::new();
    let rids: Vec<_> = s
        .capacities
        .iter()
        .enumerate()
        .map(|(i, &c)| sim.add_resource(format!("r{i}"), c))
        .collect();
    let fids: Vec<_> = s
        .flows
        .iter()
        .map(|(work, route)| {
            let r = Route::weighted(route.iter().map(|&(i, w)| (rids[i], w)));
            sim.start_flow(*work, &r)
        })
        .collect();
    (sim, rids, fids)
}

proptest! {
    /// No resource is ever overloaded: Σ rate×weight ≤ capacity (+ε).
    #[test]
    fn capacity_never_exceeded(s in scenario()) {
        let (mut sim, rids, fids) = build(&s);
        let rates: Vec<f64> = fids.iter().map(|&f| sim.flow_rate(f)).collect();
        let mut loads = vec![0.0; rids.len()];
        for (rate, (_, route)) in rates.iter().zip(&s.flows) {
            for &(i, w) in route {
                loads[i] += rate * w;
            }
        }
        for (load, cap) in loads.iter().zip(&s.capacities) {
            prop_assert!(*load <= cap * (1.0 + 1e-6), "load {load} > cap {cap}");
        }
    }

    /// Every flow is bottlenecked: each flow crosses at least one resource
    /// whose load is (numerically) at capacity — the defining property of a
    /// max-min fair allocation together with capacity feasibility.
    #[test]
    fn every_flow_has_a_saturated_resource(s in scenario()) {
        let (mut sim, rids, fids) = build(&s);
        let rates: Vec<f64> = fids.iter().map(|&f| sim.flow_rate(f)).collect();
        let mut loads = vec![0.0; rids.len()];
        for (rate, (_, route)) in rates.iter().zip(&s.flows) {
            for &(i, w) in route {
                loads[i] += rate * w;
            }
        }
        for (fi, (_, route)) in s.flows.iter().enumerate() {
            let bottlenecked = route
                .iter()
                .any(|&(i, _)| loads[i] >= s.capacities[i] * (1.0 - 1e-5));
            prop_assert!(
                bottlenecked,
                "flow {fi} (rate {}) crosses no saturated resource",
                rates[fi]
            );
        }
    }

    /// All flows eventually complete, total served work matches, and time
    /// never runs backwards.
    #[test]
    fn drain_conserves_work(s in scenario()) {
        let (mut sim, rids, _fids) = build(&s);
        let mut last = SimTime::ZERO;
        let mut completions = 0usize;
        while let Some((t, done)) = sim.advance_to_next_completion() {
            prop_assert!(t >= last);
            last = t;
            completions += done.len();
        }
        prop_assert_eq!(completions, s.flows.len());
        prop_assert_eq!(sim.active_flows(), 0);
        // Work served per resource = Σ flow work × weight on that resource.
        let mut expected = vec![0.0; rids.len()];
        for (work, route) in &s.flows {
            for &(i, w) in route {
                expected[i] += work * w;
            }
        }
        for (ri, rid) in rids.iter().enumerate() {
            let served = sim.stats(*rid).units_served();
            // Rounding to integer ns on each event makes served slightly
            // diverge; allow a small relative tolerance.
            prop_assert!(
                (served - expected[ri]).abs() <= expected[ri] * 1e-3 + 1e-6,
                "resource {ri}: served {served}, expected {}", expected[ri]
            );
        }
    }

    /// Determinism: building the same scenario twice gives identical rates
    /// and identical completion timelines.
    #[test]
    fn deterministic_replay(s in scenario()) {
        let run = |s: &Scenario| {
            let (mut sim, _, _) = build(s);
            let mut timeline = Vec::new();
            while let Some((t, done)) = sim.advance_to_next_completion() {
                timeline.push((t, done));
            }
            timeline
        };
        prop_assert_eq!(run(&s), run(&s));
    }
}
