//! Randomized property tests for the DAG executor (seeded, reproducible).

use ff_desim::{DagNodeId, DagSim, FluidSim, Route, SimDuration, SimTime, Work};
use ff_util::rng::ChaCha8Rng;

const CASES: usize = 64;

/// A random layered DAG: `layers × width` transfer nodes over a few
/// shared resources, each node depending on a random subset of the
/// previous layer.
#[derive(Debug, Clone)]
struct LayeredDag {
    capacities: Vec<f64>,
    /// work[layer][node] = (units, resource index, deps bitmask into the
    /// previous layer).
    work: Vec<Vec<(f64, usize, u32)>>,
}

fn layered_dag(rng: &mut ChaCha8Rng) -> LayeredDag {
    let capacities: Vec<f64> = (0..rng.gen_range(1usize..4))
        .map(|_| rng.gen_range(10.0f64..1000.0))
        .collect();
    let n_res = capacities.len();
    let work: Vec<Vec<(f64, usize, u32)>> = (0..rng.gen_range(1usize..5))
        .map(|_| {
            (0..rng.gen_range(1usize..5))
                .map(|_| {
                    (
                        rng.gen_range(1.0f64..100.0),
                        rng.gen_range(0..n_res),
                        rng.next_u32(),
                    )
                })
                .collect()
        })
        .collect();
    LayeredDag { capacities, work }
}

fn build(d: &LayeredDag) -> (DagSim, Vec<Vec<DagNodeId>>) {
    let mut fluid = FluidSim::new();
    let res: Vec<_> = d
        .capacities
        .iter()
        .enumerate()
        .map(|(i, &c)| fluid.add_resource(format!("r{i}"), c))
        .collect();
    let mut dag = DagSim::new(fluid);
    let mut ids: Vec<Vec<DagNodeId>> = Vec::new();
    for (li, layer) in d.work.iter().enumerate() {
        let mut row = Vec::new();
        for &(units, ri, mask) in layer {
            let deps: Vec<DagNodeId> = if li == 0 {
                Vec::new()
            } else {
                ids[li - 1]
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| mask & (1 << (j % 32)) != 0)
                    .map(|(_, &id)| id)
                    .collect()
            };
            row.push(dag.add(
                Work::Transfer {
                    work: units,
                    route: Route::unit([res[ri]]),
                },
                &deps,
            ));
        }
        ids.push(row);
    }
    (dag, ids)
}

/// Every node runs; finish times respect dependencies; the makespan is
/// the max finish.
#[test]
fn dependencies_respected() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xDA61);
    for _ in 0..CASES {
        let d = layered_dag(&mut rng);
        let (mut dag, ids) = build(&d);
        let makespan = dag.run();
        let mut max_finish = SimTime::ZERO;
        for (li, row) in ids.iter().enumerate() {
            for (&id, &(_, _, mask)) in row.iter().zip(&d.work[li]) {
                let start = dag.start_time(id).expect("ran");
                let finish = dag.finish_time(id).expect("finished");
                assert!(start <= finish);
                max_finish = max_finish.max(finish);
                if li > 0 {
                    for (j, &dep) in ids[li - 1].iter().enumerate() {
                        if mask & (1 << (j % 32)) != 0 {
                            assert!(
                                dag.finish_time(dep).expect("dep finished") <= start,
                                "node started before its dependency finished"
                            );
                        }
                    }
                }
            }
        }
        assert_eq!(makespan, max_finish);
    }
}

/// Lower bound: the makespan is at least each resource's total work
/// divided by its capacity (no overcommitment in time).
#[test]
fn makespan_respects_capacity_bound() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xDA62);
    for _ in 0..CASES {
        let d = layered_dag(&mut rng);
        let (mut dag, _) = build(&d);
        let makespan = dag.run().as_secs_f64();
        for (ri, &cap) in d.capacities.iter().enumerate() {
            let total: f64 = d
                .work
                .iter()
                .flatten()
                .filter(|&&(_, r, _)| r == ri)
                .map(|&(u, _, _)| u)
                .sum();
            assert!(
                makespan >= total / cap - 1e-6,
                "resource {ri}: {makespan} < {}",
                total / cap
            );
        }
    }
}

/// Determinism: the same DAG yields the same timeline.
#[test]
fn deterministic() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xDA63);
    for _ in 0..CASES {
        let d = layered_dag(&mut rng);
        let run = |d: &LayeredDag| {
            let (mut dag, ids) = build(d);
            dag.run();
            ids.iter()
                .flatten()
                .map(|&id| dag.finish_time(id).expect("finished"))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(&d), run(&d));
    }
}

/// Mixing delays with transfers keeps the clock monotone and the gate
/// semantics exact.
#[test]
fn delays_and_gates() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xDA64);
    for _ in 0..CASES {
        let ms: Vec<u64> = (0..rng.gen_range(1usize..8))
            .map(|_| rng.gen_range(1u64..1000))
            .collect();
        let mut dag = DagSim::new(FluidSim::new());
        let delays: Vec<DagNodeId> = ms
            .iter()
            .map(|&m| dag.add(Work::Delay(SimDuration::from_millis(m)), &[]))
            .collect();
        let gate = dag.add(Work::Gate, &delays);
        let makespan = dag.run();
        let max = *ms.iter().max().expect("non-empty");
        assert_eq!(makespan, SimTime(max * 1_000_000));
        assert_eq!(dag.finish_time(gate).expect("gate ran"), makespan);
    }
}
