//! A deterministic time-ordered event queue.
//!
//! Events scheduled for the same instant pop in insertion order (FIFO
//! tie-break via a monotonic sequence number), which keeps multi-component
//! simulations reproducible regardless of `BinaryHeap` internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then lowest-seq)
        // entry is the maximum.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Time-ordered queue of events of type `E` with FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulation clock: the timestamp of the last popped event
    /// (zero before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`. Scheduling in the past
    /// (before the last popped event) panics: that would reorder history.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "EventQueue::schedule: {at} is before current time {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_tracks_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        q.pop();
        q.schedule(SimTime::from_secs(4), ());
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), 1);
        q.pop();
        q.schedule(SimTime::from_secs(5), 2);
        assert_eq!(q.pop(), Some((SimTime::from_secs(5), 2)));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1) + SimDuration::from_nanos(1), ());
        assert_eq!(q.peek_time(), Some(SimTime(1_000_000_001)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
