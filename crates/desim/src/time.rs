//! Simulated-time primitives.
//!
//! Simulated time is kept in integer **nanoseconds** so that event ordering
//! is exact and runs are bit-reproducible. Durations derived from fractional
//! rates round up (a transfer never finishes earlier than the fluid model
//! says it can).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in nanoseconds since start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Nanoseconds since the simulation epoch.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the simulation epoch, as `f64` (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Construct from whole seconds.
    #[inline]
    pub fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Duration elapsed since `earlier`. Panics if `earlier` is later.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: earlier is later than self"),
        )
    }

    /// Saturating difference; zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Nanoseconds in this duration.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds, as `f64` (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Construct from whole nanoseconds.
    #[inline]
    pub fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding **up** to the next
    /// nanosecond so work never completes early. Panics on negative or
    /// non-finite input.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimDuration::from_secs_f64: invalid seconds {secs}"
        );
        SimDuration((secs * 1e9).ceil() as u64)
    }

    /// The time needed to move `units` of work at `rate` units/second,
    /// rounded up. Zero-size work takes zero time. Panics if `rate` is not
    /// strictly positive for nonzero work.
    pub fn for_work(units: f64, rate: f64) -> Self {
        if units <= 0.0 {
            return SimDuration::ZERO;
        }
        assert!(
            rate > 0.0 && rate.is_finite(),
            "SimDuration::for_work: invalid rate {rate} for {units} units"
        );
        SimDuration::from_secs_f64(units / rate)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrip() {
        let t = SimTime::from_secs(3) + SimDuration::from_millis(250);
        assert_eq!(t.as_nanos(), 3_250_000_000);
        assert_eq!(
            t.since(SimTime::from_secs(3)),
            SimDuration::from_millis(250)
        );
        assert!((t.as_secs_f64() - 3.25).abs() < 1e-12);
    }

    #[test]
    fn duration_for_work_rounds_up() {
        // 1 byte at 3 bytes/sec = 333_333_333.33.. ns, must round up.
        let d = SimDuration::for_work(1.0, 3.0);
        assert_eq!(d.as_nanos(), 333_333_334);
    }

    #[test]
    fn duration_for_zero_work_is_zero_even_with_zero_rate() {
        assert_eq!(SimDuration::for_work(0.0, 0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "invalid rate")]
    fn duration_for_work_rejects_zero_rate() {
        let _ = SimDuration::for_work(5.0, 0.0);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(1));
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    #[should_panic(expected = "earlier is later")]
    fn since_panics_when_reversed() {
        let _ = SimTime::from_secs(1).since(SimTime::from_secs(2));
    }
}
