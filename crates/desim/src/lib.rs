//! # ff-desim — discrete-event simulation engine
//!
//! The foundation of the Fire-Flyer reproduction. Real cluster hardware
//! (PCIe links, host bridges, memory buses, InfiniBand links) is modeled as
//! shared-bandwidth fluid *resources*; data movement and compute are
//! modeled as *flows* that consume capacity on an ordered set of
//! resources. The engine advances simulated time event by event, recomputing
//! a **max-min fair** allocation of flow rates whenever the set of active
//! flows changes.
//!
//! Layers, lowest first:
//!
//! * [`time`] — simulated-time arithmetic ([`SimTime`], [`SimDuration`]).
//! * [`queue`] — a deterministic time-ordered event queue ([`EventQueue`]).
//! * [`fluid`] — the max-min fair fluid-flow engine ([`FluidSim`]).
//! * [`dag`] — dependency-graph execution of transfers/compute/delays on top
//!   of the fluid engine ([`DagSim`]), used by the allreduce and training
//!   simulators.
//!
//! The design goal is determinism: identical inputs produce identical event
//! orderings and identical timings, so every experiment in the paper harness
//! is exactly reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dag;
pub mod envelope;
pub mod fluid;
pub mod queue;
pub mod stats;
pub mod time;

pub use dag::{DagSim, NodeId as DagNodeId, Work};
pub use envelope::{Envelope, Phase};
pub use fluid::{FlowId, FluidSim, ResourceId, Route, SolverMode};
pub use queue::EventQueue;
pub use stats::{ResourceStats, Summary};
pub use time::{SimDuration, SimTime};
