//! Max-min fair fluid-flow engine.
//!
//! Hardware conduits (a PCIe link, a host bridge, a memory bus, a NIC, a
//! switch port) are *resources* with a fixed capacity in *units/second*
//! (normally bytes/second; compute resources use FLOP/s). Work in flight is
//! a *flow*: an amount of work that must traverse a [`Route`] — an ordered
//! set of resources, each with a *weight* saying how many units of that
//! resource's capacity one unit of flow progress consumes.
//!
//! Weights express the amplification factors the paper reasons about: an
//! NCCL-style ring consumes `(2n-1)/n` units of PCIe bandwidth per unit of
//! gradient data (§IV-B1), HFReduce's host-memory traffic is 24× the GPU
//! data size (§IV-D3), a `MemcpyAsync` host-to-device fan-out reads host
//! memory 8 times where GDRCopy reads twice (§IV-A).
//!
//! Whenever the set of active flows changes, rates are re-derived by
//! *progressive filling*: all flows grow at the same rate until some
//! resource saturates; flows crossing that resource freeze, and filling
//! continues — the classic max-min fair ("water-filling") allocation.
//!
//! ## Incremental solving
//!
//! The allocation decomposes exactly by connected components of the
//! flow↔resource bipartite graph: a flow's rate depends only on flows it
//! (transitively) shares a resource with. The engine therefore keeps a
//! per-resource index of crossing flows and, on a start/finish/degrade/cap
//! event, re-solves only the components reachable from the touched
//! resources. Flow progress is settled lazily — `remaining` is decremented
//! only when a flow's rate actually changes — and completions pop from a
//! binary heap keyed by predicted finish time, with stale entries
//! invalidated by a per-flow epoch counter. At 10,000-GPU scale this
//! replaces an O(flows × resources) global recompute per event with work
//! proportional to the disturbed component.
//!
//! [`SolverMode::Reference`] disables both optimizations (every component
//! is re-solved every time and the next completion is found by linear
//! scan) while sharing the identical per-component fill arithmetic; the
//! differential suite in `desim/tests/fluid_diff.rs` holds the two modes
//! bit-exactly equal on thousands of seeded random schedules.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::sync::Arc;

use crate::stats::ResourceStats;
use crate::time::{SimDuration, SimTime};
use ff_obs::{Recorder, TrackId};

/// Identifies a resource registered with a [`FluidSim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceId(pub(crate) u32);

/// Identifies an active (or completed) flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub(crate) u64);

/// An ordered set of `(resource, weight)` pairs a flow traverses.
///
/// A weight of `w` means one unit of flow progress consumes `w` units of
/// that resource's capacity. Duplicate resources are allowed and their
/// weights accumulate (a loop-back path through the same switch).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Route(pub Vec<(ResourceId, f64)>);

impl Route {
    /// A route using each resource with weight 1.
    pub fn unit(resources: impl IntoIterator<Item = ResourceId>) -> Self {
        Route(resources.into_iter().map(|r| (r, 1.0)).collect())
    }

    /// A route with explicit weights.
    pub fn weighted(pairs: impl IntoIterator<Item = (ResourceId, f64)>) -> Self {
        Route(pairs.into_iter().collect())
    }

    /// Append another hop.
    pub fn push(&mut self, r: ResourceId, weight: f64) {
        self.0.push((r, weight));
    }

    /// Concatenate two routes.
    pub fn join(mut self, other: Route) -> Route {
        self.0.extend(other.0);
        self
    }

    /// True if the route has no hops.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Collapse duplicate resources, summing weights. The result is sorted
    /// by `ResourceId`, which the per-resource load pass exploits with a
    /// binary search.
    fn normalized(&self) -> Vec<(ResourceId, f64)> {
        let mut map: BTreeMap<ResourceId, f64> = BTreeMap::new();
        for &(r, w) in &self.0 {
            assert!(
                w > 0.0 && w.is_finite(),
                "Route weight must be positive and finite, got {w}"
            );
            *map.entry(r).or_insert(0.0) += w;
        }
        map.into_iter().collect()
    }
}

struct Resource {
    name: String,
    capacity: f64,
    stats: ResourceStats,
    /// Rate ceiling imposed by congestion control (bytes/s); `f64::INFINITY`
    /// when uncapped. Applies to the resource's aggregate load.
    cap_override: f64,
    /// Health multiplier in `(0, 1]` applied to `capacity` — a PCIe lane
    /// trained down, a weak NVLink bridge, an IB link flash-cut to a lower
    /// speed. Fault injection sets it; diagnostics observe the slowdown.
    degrade_factor: f64,
    /// Active flows whose routes cross this resource — the index that lets
    /// the solver walk connected components without scanning all flows.
    flows: BTreeSet<FlowId>,
    /// Instantaneous aggregate load (Σ rate×weight), maintained at each
    /// recompute that touches this resource's component.
    cur_load: f64,
    /// Statistics are integrated up to this instant; `cur_load` held over
    /// `[synced_to, now]`.
    synced_to: SimTime,
    /// On the pending-recompute dirty list (dedup for `FluidSim::dirty`).
    dirty: bool,
    /// BFS scratch for component collection; always false between
    /// recomputes.
    visited: bool,
}

impl Resource {
    /// Usable capacity after degradation and congestion-control caps.
    fn effective_capacity(&self) -> f64 {
        (self.capacity * self.degrade_factor).min(self.cap_override)
    }
}

struct Flow {
    route: Vec<(ResourceId, f64)>,
    work: f64,
    /// Work left as of `updated_at` (not as of `now`: progress at a
    /// constant rate is settled lazily, only when the rate changes).
    remaining: f64,
    rate: f64,
    started: SimTime,
    /// The instant `remaining` and `rate` were last settled.
    updated_at: SimTime,
    /// Bumped on every rate change; completion-heap entries carrying a
    /// stale epoch are ignored.
    epoch: u64,
    /// BFS scratch for component collection; always false between
    /// recomputes.
    in_comp: bool,
}

/// Predicted completion instant of `f`, valid while its rate is unchanged.
fn predict(f: &Flow) -> SimTime {
    f.updated_at + SimDuration::for_work(f.remaining, f.rate)
}

/// Completion-heap entry. `BinaryHeap` is a max-heap, so the ordering is
/// reversed: the earliest `(at, id, epoch)` pops first, which also yields
/// ascending `FlowId` order within a completion instant.
#[derive(Clone, Copy, PartialEq, Eq)]
struct CompEntry {
    at: SimTime,
    id: FlowId,
    epoch: u64,
}

impl Ord for CompEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.id, other.epoch).cmp(&(self.at, self.id, self.epoch))
    }
}

impl PartialOrd for CompEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Selects how [`FluidSim`] re-derives the max-min allocation after a
/// structural event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverMode {
    /// Re-solve only the connected components touched since the last
    /// recompute, and pop completions from a predicted-finish heap. The
    /// default.
    #[default]
    Incremental,
    /// Re-solve every component on every recompute and find the next
    /// completion by linear scan — the brute-force oracle the incremental
    /// path is differentially tested against. Shares the identical
    /// per-component fill arithmetic, so the two modes agree bit-for-bit.
    Reference,
}

/// Where an attached [`Recorder`] receives this simulator's events.
struct ObsSink {
    rec: Arc<Recorder>,
    track: TrackId,
    track_name: String,
    /// Added to every simulated timestamp, letting callers place repeated
    /// runs of the same sim (one per training step, say) side by side on a
    /// shared timeline.
    offset_ns: u64,
}

/// The fluid-flow simulator. See the [module docs](self) for the model.
///
/// ```
/// use ff_desim::{FluidSim, Route};
/// let mut sim = FluidSim::new();
/// let link = sim.add_resource("25G link", 25e9);
/// let a = sim.start_flow(1e9, &Route::unit([link]));
/// let b = sim.start_flow(1e9, &Route::unit([link]));
/// // Max-min fairness: the two flows split the link.
/// assert_eq!(sim.flow_rate(a), 12.5e9);
/// assert_eq!(sim.flow_rate(b), 12.5e9);
/// let (t, done) = sim.advance_to_next_completion().unwrap();
/// assert_eq!(done.len(), 2);
/// assert!((t.as_secs_f64() - 0.08).abs() < 1e-6);
/// ```
pub struct FluidSim {
    now: SimTime,
    resources: Vec<Resource>,
    flows: BTreeMap<FlowId, Flow>,
    next_flow_id: u64,
    rates_dirty: bool,
    mode: SolverMode,
    /// Resources touched since the last recompute — the seeds the
    /// incremental solver grows components from. Deduplicated via
    /// `Resource::dirty`.
    dirty: Vec<ResourceId>,
    completions: BinaryHeap<CompEntry>,
    /// Fill scratch, indexed by resource id and reused across recomputes.
    residual: Vec<f64>,
    weight_sum: Vec<f64>,
    saturated: Vec<bool>,
    fid_scratch: Vec<FlowId>,
    obs: Option<ObsSink>,
}

impl Default for FluidSim {
    fn default() -> Self {
        Self::new()
    }
}

impl FluidSim {
    /// An empty simulator with the clock at zero, using the incremental
    /// solver.
    pub fn new() -> Self {
        Self::with_solver(SolverMode::Incremental)
    }

    /// An empty simulator using the given [`SolverMode`].
    pub fn with_solver(mode: SolverMode) -> Self {
        FluidSim {
            now: SimTime::ZERO,
            resources: Vec::new(),
            flows: BTreeMap::new(),
            next_flow_id: 0,
            rates_dirty: false,
            mode,
            dirty: Vec::new(),
            completions: BinaryHeap::new(),
            residual: Vec::new(),
            weight_sum: Vec::new(),
            saturated: Vec::new(),
            fid_scratch: Vec::new(),
            obs: None,
        }
    }

    /// The solver mode this simulator was built with.
    pub fn solver_mode(&self) -> SolverMode {
        self.mode
    }

    /// Attach an observability recorder. Flow completions become spans on
    /// `track` (timestamps shifted by `offset_ns`), degradations/restores
    /// become instants, and [`flush_stats`](Self::flush_stats) publishes
    /// per-resource utilization gauges. Detaching is not supported; the
    /// sink lives as long as the sim.
    pub fn attach_recorder(&mut self, rec: &Arc<Recorder>, track: &str, offset_ns: u64) {
        let id = rec.track(track);
        self.obs = Some(ObsSink {
            rec: Arc::clone(rec),
            track: id,
            track_name: track.to_string(),
            offset_ns,
        });
    }

    /// Publish per-resource utilization gauges to the attached recorder:
    /// `{track}/util/{res}` (time-averaged), `{track}/peak/{res}`,
    /// `{track}/served/{res}` (units moved), `{track}/cap/{res}`
    /// (∫ capacity dt). No-op without a recorder. Call at the end of a run;
    /// last write wins, so repeated calls just refresh the values.
    pub fn flush_stats(&mut self) {
        self.recompute_rates_if_dirty();
        for ri in 0..self.resources.len() {
            self.sync_resource_stats(ri);
        }
        let Some(obs) = &self.obs else { return };
        for r in &self.resources {
            // A resource with zero ∫capacity·dt never saw simulated time
            // pass (e.g. instantaneous-rate probes); its utilization is
            // 0/0, not an interesting 0%. Skip it.
            if r.stats.capacity_integral() == 0.0 {
                continue;
            }
            let p = &obs.track_name;
            obs.rec
                .gauge_set(&format!("{p}/util/{}", r.name), r.stats.utilization());
            obs.rec
                .gauge_set(&format!("{p}/peak/{}", r.name), r.stats.peak_utilization());
            obs.rec
                .gauge_set(&format!("{p}/served/{}", r.name), r.stats.units_served());
            obs.rec
                .gauge_set(&format!("{p}/cap/{}", r.name), r.stats.capacity_integral());
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of registered resources.
    pub fn resource_count(&self) -> usize {
        self.resources.len()
    }

    /// The `i`-th resource (ids are dense, `0..resource_count()`).
    pub fn resource_at(&self, i: usize) -> ResourceId {
        assert!(i < self.resources.len());
        ResourceId(i as u32)
    }

    /// Register a resource with `capacity` units/second (must be positive
    /// and finite). `name` appears in statistics reports.
    pub fn add_resource(&mut self, name: impl Into<String>, capacity: f64) -> ResourceId {
        assert!(
            capacity > 0.0 && capacity.is_finite(),
            "resource capacity must be positive and finite, got {capacity}"
        );
        let id = ResourceId(u32::try_from(self.resources.len()).expect("too many resources"));
        self.resources.push(Resource {
            name: name.into(),
            capacity,
            stats: ResourceStats::default(),
            cap_override: f64::INFINITY,
            degrade_factor: 1.0,
            flows: BTreeSet::new(),
            cur_load: 0.0,
            synced_to: self.now,
            dirty: false,
            visited: false,
        });
        id
    }

    /// The configured capacity of `r`.
    pub fn capacity(&self, r: ResourceId) -> f64 {
        self.resources[r.0 as usize].capacity
    }

    /// The name given to `r` at registration.
    pub fn resource_name(&self, r: ResourceId) -> &str {
        &self.resources[r.0 as usize].name
    }

    /// Impose (or lift, with `f64::INFINITY`) a congestion-control ceiling
    /// on the aggregate load of `r`. Used by DCQCN-style rate limiting.
    pub fn set_rate_cap(&mut self, r: ResourceId, cap: f64) {
        assert!(cap > 0.0, "rate cap must be positive, got {cap}");
        self.resources[r.0 as usize].cap_override = cap;
        self.mark_dirty(r);
    }

    /// Degrade `r` to `factor × capacity` (`0 < factor ≤ 1`) — fault
    /// injection for a link trained down or a flaky bridge. In-flight flows
    /// re-derive their rates immediately; compose with
    /// [`restore`](Self::restore) to model transient flash cuts.
    pub fn degrade(&mut self, r: ResourceId, factor: f64) {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "degrade factor must be in (0, 1], got {factor}"
        );
        self.resources[r.0 as usize].degrade_factor = factor;
        self.mark_dirty(r);
        if let Some(obs) = &self.obs {
            let name = format!("degrade {}", self.resources[r.0 as usize].name);
            obs.rec.instant(
                obs.track,
                &name,
                obs.offset_ns + self.now.as_nanos(),
                factor,
            );
        }
    }

    /// Lift any degradation on `r` (the link re-trained at full speed).
    pub fn restore(&mut self, r: ResourceId) {
        self.resources[r.0 as usize].degrade_factor = 1.0;
        self.mark_dirty(r);
        if let Some(obs) = &self.obs {
            let name = format!("restore {}", self.resources[r.0 as usize].name);
            obs.rec
                .instant(obs.track, &name, obs.offset_ns + self.now.as_nanos(), 1.0);
        }
    }

    /// The current degradation factor of `r` (`1.0` when healthy).
    pub fn degradation(&self, r: ResourceId) -> f64 {
        self.resources[r.0 as usize].degrade_factor
    }

    /// Capacity of `r` after degradation and rate caps — what flows can
    /// actually use right now.
    pub fn effective_capacity(&self, r: ResourceId) -> f64 {
        self.resources[r.0 as usize].effective_capacity()
    }

    /// Begin a flow of `work` units over `route` at the current time.
    /// `work` must be positive; `route` must be non-empty (model pure delays
    /// with the event queue instead).
    pub fn start_flow(&mut self, work: f64, route: &Route) -> FlowId {
        assert!(
            work > 0.0 && work.is_finite(),
            "flow work must be positive and finite, got {work}"
        );
        let normalized = route.normalized();
        assert!(!normalized.is_empty(), "flow route must be non-empty");
        for &(r, _) in &normalized {
            assert!(
                (r.0 as usize) < self.resources.len(),
                "route references unknown resource {r:?}"
            );
        }
        let id = FlowId(self.next_flow_id);
        self.next_flow_id += 1;
        for &(r, _) in &normalized {
            self.resources[r.0 as usize].flows.insert(id);
            self.mark_dirty(r);
        }
        self.flows.insert(
            id,
            Flow {
                route: normalized,
                work,
                remaining: work,
                rate: 0.0,
                started: self.now,
                updated_at: self.now,
                epoch: 0,
                in_comp: false,
            },
        );
        id
    }

    /// Abort an active flow, returning the work it had left. Panics if the
    /// flow is unknown (already completed or cancelled).
    pub fn cancel_flow(&mut self, id: FlowId) -> f64 {
        let mut flow = self.flows.remove(&id).expect("cancel_flow: unknown flow");
        // The rate has been valid since `updated_at` (every clock advance
        // recomputes first), so one settle yields the true remaining work.
        let dt = self.now.since(flow.updated_at).as_secs_f64();
        if dt > 0.0 {
            flow.remaining = (flow.remaining - flow.rate * dt).max(0.0);
        }
        for &(r, _) in &flow.route {
            self.resources[r.0 as usize].flows.remove(&id);
            self.mark_dirty(r);
        }
        flow.remaining
    }

    /// Number of active flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// The current max-min fair rate of `id` in units/second.
    pub fn flow_rate(&mut self, id: FlowId) -> f64 {
        self.recompute_rates_if_dirty();
        self.flows.get(&id).expect("flow_rate: unknown flow").rate
    }

    /// The instant the next flow(s) will complete, or `None` if idle.
    pub fn next_completion_time(&mut self) -> Option<SimTime> {
        self.recompute_rates_if_dirty();
        match self.mode {
            SolverMode::Reference => self.flows.values().map(predict).min(),
            SolverMode::Incremental => self.peek_valid_completion(),
        }
    }

    /// Advance the clock to the next completion, removing and returning all
    /// flows that finish at that instant. Returns `None` when no flows are
    /// active.
    pub fn advance_to_next_completion(&mut self) -> Option<(SimTime, Vec<FlowId>)> {
        if self.flows.is_empty() {
            return None;
        }
        self.recompute_rates_if_dirty();
        let (at, mut done) = match self.mode {
            SolverMode::Reference => {
                // Identify the earliest finishers before touching state, so
                // a flow that merely catches up at `at` isn't mistaken for
                // complete.
                let mut at = SimTime::MAX;
                let mut done: Vec<FlowId> = Vec::new();
                for (&id, f) in &self.flows {
                    let fin = predict(f);
                    if fin < at {
                        at = fin;
                        done.clear();
                        done.push(id);
                    } else if fin == at {
                        done.push(id);
                    }
                }
                (at, done)
            }
            SolverMode::Incremental => {
                let at = self
                    .peek_valid_completion()
                    .expect("active flows must have pending completion entries");
                let mut done: Vec<FlowId> = Vec::new();
                while let Some(e) = self.completions.peek() {
                    if e.at != at {
                        break;
                    }
                    let e = *e;
                    self.completions.pop();
                    if self.flows.get(&e.id).is_some_and(|f| f.epoch == e.epoch) {
                        done.push(e.id);
                    }
                }
                (at, done)
            }
        };
        done.sort_unstable();
        debug_assert!(!done.is_empty());
        self.now = at;
        for id in &done {
            let f = self.flows.remove(id).expect("completion bookkeeping");
            for &(r, _) in &f.route {
                self.resources[r.0 as usize].flows.remove(id);
                self.mark_dirty(r);
            }
            if let Some(obs) = &self.obs {
                let name = format!(
                    "xfer {}",
                    f.route
                        .iter()
                        .map(|&(r, _)| self.resources[r.0 as usize].name.as_str())
                        .collect::<Vec<_>>()
                        .join("+")
                );
                obs.rec.span(
                    obs.track,
                    &name,
                    obs.offset_ns + f.started.as_nanos(),
                    at.since(f.started).as_nanos(),
                    f.work,
                );
            }
        }
        Some((at, done))
    }

    /// Advance the clock to `t`, which must not pass the next completion
    /// (use [`advance_to_next_completion`](Self::advance_to_next_completion)
    /// to cross completions). Used to interleave externally scheduled events
    /// with in-flight transfers.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(t >= self.now, "advance_to: {t} is in the past");
        if t == self.now {
            // Same-instant advances (common under DagSim gate cascades) need
            // no recompute: deferring it lets several structural events at
            // one instant share a single solve.
            return;
        }
        if let Some(next) = self.next_completion_time() {
            assert!(
                t <= next,
                "advance_to: {t} would skip a completion at {next}"
            );
        }
        self.now = t;
    }

    /// Run the simulation until no flows remain, invoking `on_complete` for
    /// each completed flow (in deterministic FlowId order within an
    /// instant). The callback may start new flows.
    pub fn drain(&mut self, mut on_complete: impl FnMut(&mut Self, SimTime, FlowId)) {
        while let Some((at, done)) = self.advance_to_next_completion() {
            for id in done {
                on_complete(self, at, id);
            }
        }
    }

    /// Utilization statistics for `r` since the start of the run.
    pub fn stats(&mut self, r: ResourceId) -> &ResourceStats {
        self.recompute_rates_if_dirty();
        self.sync_resource_stats(r.0 as usize);
        &self.resources[r.0 as usize].stats
    }

    /// Instantaneous aggregate load on `r` (units/second): Σ rate×weight of
    /// the active flows crossing it. At most `capacity`. O(1): the load is
    /// maintained by the solver at every recompute.
    pub fn resource_load(&mut self, r: ResourceId) -> f64 {
        self.recompute_rates_if_dirty();
        self.resources[r.0 as usize].cur_load
    }

    /// Number of active flows crossing `r`. O(1) via the per-resource flow
    /// index (a route crossing `r` twice still counts as one flow).
    pub fn flows_through(&self, r: ResourceId) -> usize {
        self.resources[r.0 as usize].flows.len()
    }

    /// Put `r` on the dirty list (deduplicated) and flag rates stale.
    fn mark_dirty(&mut self, r: ResourceId) {
        self.rates_dirty = true;
        let res = &mut self.resources[r.0 as usize];
        if !res.dirty {
            res.dirty = true;
            self.dirty.push(r);
        }
    }

    /// Integrate `r`'s statistics up to `now` at its current load.
    fn sync_resource_stats(&mut self, ri: usize) {
        let now = self.now;
        let res = &mut self.resources[ri];
        let dt = now.since(res.synced_to).as_secs_f64();
        if dt > 0.0 {
            res.stats.record(dt, res.cur_load, res.capacity);
        }
        res.synced_to = now;
    }

    /// Earliest valid completion entry, discarding stale ones.
    fn peek_valid_completion(&mut self) -> Option<SimTime> {
        while let Some(e) = self.completions.peek() {
            if self.flows.get(&e.id).is_some_and(|f| f.epoch == e.epoch) {
                return Some(e.at);
            }
            self.completions.pop();
        }
        None
    }

    /// If rates are stale, re-solve the max-min allocation for every
    /// component touched by a dirty resource (all components in
    /// [`SolverMode::Reference`]).
    fn recompute_rates_if_dirty(&mut self) {
        if !self.rates_dirty {
            return;
        }
        self.rates_dirty = false;
        let n = self.resources.len();
        self.residual.resize(n, 0.0);
        self.weight_sum.resize(n, 0.0);
        self.saturated.resize(n, false);
        let mut seeds = std::mem::take(&mut self.dirty);
        for &r in &seeds {
            self.resources[r.0 as usize].dirty = false;
        }
        match self.mode {
            SolverMode::Incremental => seeds.sort_unstable(),
            SolverMode::Reference => {
                seeds.clear();
                seeds.extend((0..n as u32).map(ResourceId));
            }
        }
        let mut total_rounds = 0u64;
        let mut touched: Vec<u32> = Vec::new();
        for &seed in &seeds {
            if self.resources[seed.0 as usize].visited {
                continue;
            }
            let (comp_res, comp_flows) = self.collect_component(seed);
            touched.extend_from_slice(&comp_res);
            total_rounds += self.solve_component(&comp_res, &comp_flows);
        }
        for &ri in &touched {
            self.resources[ri as usize].visited = false;
        }
        seeds.clear();
        self.dirty = seeds;
        if total_rounds > 0 {
            if let Some(obs) = &self.obs {
                obs.rec.counter_add(
                    &format!("{}/waterfill_rounds", obs.track_name),
                    total_rounds as f64,
                );
            }
        }
    }

    /// Collect the connected component of the flow↔resource graph
    /// containing `seed`. Both lists come back sorted ascending so fill
    /// iteration order — and therefore every f64 rounding — is independent
    /// of which resource seeded the walk.
    fn collect_component(&mut self, seed: ResourceId) -> (Vec<u32>, Vec<FlowId>) {
        let mut comp_res: Vec<u32> = Vec::new();
        let mut comp_flows: Vec<FlowId> = Vec::new();
        let mut stack: Vec<u32> = vec![seed.0];
        let mut fid_buf = std::mem::take(&mut self.fid_scratch);
        while let Some(ri) = stack.pop() {
            if self.resources[ri as usize].visited {
                continue;
            }
            self.resources[ri as usize].visited = true;
            comp_res.push(ri);
            fid_buf.clear();
            fid_buf.extend(self.resources[ri as usize].flows.iter().copied());
            for &fid in &fid_buf {
                let f = self.flows.get_mut(&fid).expect("flow index consistent");
                if f.in_comp {
                    continue;
                }
                f.in_comp = true;
                comp_flows.push(fid);
                for &(r, _) in &f.route {
                    if !self.resources[r.0 as usize].visited {
                        stack.push(r.0);
                    }
                }
            }
        }
        fid_buf.clear();
        self.fid_scratch = fid_buf;
        comp_res.sort_unstable();
        comp_flows.sort_unstable();
        (comp_res, comp_flows)
    }

    /// Progressive filling over one component, followed by settle-and-apply
    /// of the changed rates and a refresh of per-resource loads. Returns
    /// the number of fill rounds. O(rounds × Σ component route lengths);
    /// each round freezes at least one resource.
    fn solve_component(&mut self, comp_res: &[u32], comp_flows: &[FlowId]) -> u64 {
        for &ri in comp_res {
            self.residual[ri as usize] = self.resources[ri as usize].effective_capacity();
            self.weight_sum[ri as usize] = 0.0;
            self.saturated[ri as usize] = false;
        }
        for fid in comp_flows {
            for &(r, w) in &self.flows[fid].route {
                self.weight_sum[r.0 as usize] += w;
            }
        }
        let m = comp_flows.len();
        let mut new_rate = vec![0.0f64; m];
        let mut rounds = 0u64;
        {
            let flows = &self.flows;
            let routes: Vec<&[(ResourceId, f64)]> = comp_flows
                .iter()
                .map(|id| flows[id].route.as_slice())
                .collect();
            let mut unfrozen: Vec<usize> = (0..m).collect();
            while !unfrozen.is_empty() {
                rounds += 1;
                // The common growth increment is limited by the tightest
                // resource: residual / weight_sum.
                let mut delta = f64::INFINITY;
                for &i in &unfrozen {
                    for &(r, _) in routes[i] {
                        let ws = self.weight_sum[r.0 as usize];
                        if ws > 0.0 {
                            delta = delta.min(self.residual[r.0 as usize] / ws);
                        }
                    }
                }
                assert!(
                    delta.is_finite() && delta >= 0.0,
                    "water_fill: degenerate allocation (delta={delta})"
                );
                // Grow every unfrozen flow by delta and charge resources.
                for &i in &unfrozen {
                    new_rate[i] += delta;
                    for &(r, w) in routes[i] {
                        self.residual[r.0 as usize] -= delta * w;
                    }
                }
                // Freeze flows crossing any saturated resource. The
                // threshold is relative to capacity: after subtracting
                // delta×weight the bottleneck's residual is zero up to
                // float error, which scales with the capacity magnitude.
                // Residuals only shrink during a fill, so the flag can be
                // sticky.
                for &ri in comp_res {
                    let i = ri as usize;
                    if !self.saturated[i]
                        && self.residual[i] <= self.resources[i].effective_capacity() * 1e-6
                    {
                        self.saturated[i] = true;
                    }
                }
                let (frozen_now, still): (Vec<usize>, Vec<usize>) = unfrozen
                    .into_iter()
                    .partition(|&i| routes[i].iter().any(|&(r, _)| self.saturated[r.0 as usize]));
                assert!(
                    !frozen_now.is_empty(),
                    "water_fill: no progress (numerical issue)"
                );
                for &i in &frozen_now {
                    for &(r, w) in routes[i] {
                        self.weight_sum[r.0 as usize] -= w;
                    }
                }
                unfrozen = still;
            }
        }
        // Settle and apply, but only where the rate actually changed: an
        // untouched flow keeps its (updated_at, remaining, rate) triple
        // bit-identical, so its heap entry — and the Reference-mode linear
        // scan — still predict the same finish instant.
        let now = self.now;
        for (i, &fid) in comp_flows.iter().enumerate() {
            let f = self.flows.get_mut(&fid).expect("component flow exists");
            let nr = new_rate[i];
            if f.rate != nr {
                let dt = now.since(f.updated_at).as_secs_f64();
                if dt > 0.0 {
                    f.remaining = (f.remaining - f.rate * dt).max(0.0);
                }
                f.updated_at = now;
                f.rate = nr;
                f.epoch += 1;
                if self.mode == SolverMode::Incremental {
                    let at = predict(f);
                    self.completions.push(CompEntry {
                        at,
                        id: fid,
                        epoch: f.epoch,
                    });
                }
            }
            f.in_comp = false;
        }
        // Refresh per-resource loads, syncing statistics at the old load
        // first whenever the load changes.
        for &ri in comp_res {
            let mut load = 0.0f64;
            for &fid in &self.resources[ri as usize].flows {
                let f = &self.flows[&fid];
                let k = f
                    .route
                    .binary_search_by_key(&ResourceId(ri), |&(r, _)| r)
                    .expect("indexed flow must route through resource");
                load += f.rate * f.route[k].1;
            }
            if load != self.resources[ri as usize].cur_load {
                self.sync_resource_stats(ri as usize);
                self.resources[ri as usize].cur_load = load;
            }
        }
        rounds
    }

    /// Time a flow has been active.
    pub fn flow_age(&self, id: FlowId) -> Option<SimDuration> {
        self.flows.get(&id).map(|f| self.now.since(f.started))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) {
        assert!(
            (a - b).abs() <= 1e-6 * b.abs().max(1.0),
            "expected {b}, got {a}"
        );
    }

    #[test]
    fn single_flow_gets_full_capacity() {
        let mut sim = FluidSim::new();
        let link = sim.add_resource("link", 100.0);
        let f = sim.start_flow(50.0, &Route::unit([link]));
        approx(sim.flow_rate(f), 100.0);
        let (t, done) = sim.advance_to_next_completion().unwrap();
        assert_eq!(done, vec![f]);
        approx(t.as_secs_f64(), 0.5);
    }

    #[test]
    fn two_flows_share_fairly() {
        let mut sim = FluidSim::new();
        let link = sim.add_resource("link", 100.0);
        let a = sim.start_flow(100.0, &Route::unit([link]));
        let b = sim.start_flow(100.0, &Route::unit([link]));
        approx(sim.flow_rate(a), 50.0);
        approx(sim.flow_rate(b), 50.0);
        let (t, done) = sim.advance_to_next_completion().unwrap();
        assert_eq!(done.len(), 2);
        approx(t.as_secs_f64(), 2.0);
    }

    #[test]
    fn remaining_flow_speeds_up_after_completion() {
        let mut sim = FluidSim::new();
        let link = sim.add_resource("link", 100.0);
        let _a = sim.start_flow(50.0, &Route::unit([link]));
        let b = sim.start_flow(100.0, &Route::unit([link]));
        // Both run at 50; a finishes at t=1 with b having 50 left.
        let (t1, done1) = sim.advance_to_next_completion().unwrap();
        approx(t1.as_secs_f64(), 1.0);
        assert_eq!(done1.len(), 1);
        approx(sim.flow_rate(b), 100.0);
        let (t2, done2) = sim.advance_to_next_completion().unwrap();
        approx(t2.as_secs_f64(), 1.5);
        assert_eq!(done2, vec![b]);
    }

    #[test]
    fn max_min_respects_multiple_bottlenecks() {
        // Classic 3-flow example: A uses link1, B uses link2, C uses both.
        // link1 cap 10, link2 cap 4. Max-min: C and B share link2 at 2 each;
        // A then gets the rest of link1 = 8.
        let mut sim = FluidSim::new();
        let l1 = sim.add_resource("l1", 10.0);
        let l2 = sim.add_resource("l2", 4.0);
        let a = sim.start_flow(100.0, &Route::unit([l1]));
        let b = sim.start_flow(100.0, &Route::unit([l2]));
        let c = sim.start_flow(100.0, &Route::unit([l1, l2]));
        approx(sim.flow_rate(b), 2.0);
        approx(sim.flow_rate(c), 2.0);
        approx(sim.flow_rate(a), 8.0);
    }

    #[test]
    fn weights_amplify_consumption() {
        // One unit of this flow consumes 2 units of link capacity, so a
        // 100-cap link moves it at 50.
        let mut sim = FluidSim::new();
        let link = sim.add_resource("link", 100.0);
        let f = sim.start_flow(100.0, &Route::weighted([(link, 2.0)]));
        approx(sim.flow_rate(f), 50.0);
    }

    #[test]
    fn duplicate_resource_in_route_accumulates_weight() {
        let mut sim = FluidSim::new();
        let link = sim.add_resource("link", 100.0);
        let f = sim.start_flow(100.0, &Route::unit([link, link]));
        approx(sim.flow_rate(f), 50.0);
    }

    #[test]
    fn duplicate_resource_route_counts_once_in_index() {
        // A route crossing the same resource twice: the normalized weight
        // accumulates (2×), but the flow index and load bookkeeping must
        // count the flow exactly once.
        let mut sim = FluidSim::new();
        let link = sim.add_resource("link", 100.0);
        let other = sim.add_resource("other", 100.0);
        let f = sim.start_flow(100.0, &Route::unit([link, other, link]));
        approx(sim.flow_rate(f), 50.0);
        assert_eq!(sim.flows_through(link), 1);
        assert_eq!(sim.flows_through(other), 1);
        approx(sim.resource_load(link), 100.0);
        approx(sim.resource_load(other), 50.0);
        let (_, done) = sim.advance_to_next_completion().unwrap();
        assert_eq!(done, vec![f]);
        assert_eq!(sim.flows_through(link), 0);
        approx(sim.resource_load(link), 0.0);
    }

    #[test]
    fn rate_cap_limits_aggregate() {
        let mut sim = FluidSim::new();
        let link = sim.add_resource("link", 100.0);
        sim.set_rate_cap(link, 10.0);
        let a = sim.start_flow(100.0, &Route::unit([link]));
        let b = sim.start_flow(100.0, &Route::unit([link]));
        approx(sim.flow_rate(a), 5.0);
        approx(sim.flow_rate(b), 5.0);
        sim.set_rate_cap(link, f64::INFINITY.min(1e18));
        approx(sim.flow_rate(a), 50.0);
    }

    #[test]
    fn degrade_shrinks_rates_and_restore_recovers() {
        let mut sim = FluidSim::new();
        let link = sim.add_resource("link", 100.0);
        let f = sim.start_flow(1000.0, &Route::unit([link]));
        approx(sim.flow_rate(f), 100.0);
        // Link trains down to a quarter speed mid-flow.
        sim.degrade(link, 0.25);
        approx(sim.degradation(link), 0.25);
        approx(sim.effective_capacity(link), 25.0);
        approx(sim.flow_rate(f), 25.0);
        // Flash cut over: full speed again.
        sim.restore(link);
        approx(sim.flow_rate(f), 100.0);
    }

    #[test]
    fn degrade_composes_with_rate_cap() {
        let mut sim = FluidSim::new();
        let link = sim.add_resource("link", 100.0);
        sim.set_rate_cap(link, 40.0);
        sim.degrade(link, 0.5);
        // min(100×0.5, cap 40) = 40: the tighter constraint wins.
        approx(sim.effective_capacity(link), 40.0);
        sim.degrade(link, 0.1);
        approx(sim.effective_capacity(link), 10.0);
        let f = sim.start_flow(100.0, &Route::unit([link]));
        approx(sim.flow_rate(f), 10.0);
    }

    #[test]
    fn degraded_link_delays_completion() {
        let mut sim = FluidSim::new();
        let link = sim.add_resource("link", 100.0);
        sim.degrade(link, 0.5);
        let f = sim.start_flow(100.0, &Route::unit([link]));
        let (t, done) = sim.advance_to_next_completion().unwrap();
        assert_eq!(done, vec![f]);
        approx(t.as_secs_f64(), 2.0);
    }

    #[test]
    #[should_panic(expected = "degrade factor must be in (0, 1]")]
    fn zero_degrade_factor_rejected() {
        let mut sim = FluidSim::new();
        let link = sim.add_resource("link", 100.0);
        sim.degrade(link, 0.0);
    }

    #[test]
    fn cancel_returns_remaining_work() {
        let mut sim = FluidSim::new();
        let link = sim.add_resource("link", 100.0);
        let f = sim.start_flow(100.0, &Route::unit([link]));
        sim.advance_to(SimTime::from_secs(0) + SimDuration::from_millis(500));
        let left = sim.cancel_flow(f);
        approx(left, 50.0);
        assert_eq!(sim.active_flows(), 0);
    }

    #[test]
    fn drain_visits_all_completions() {
        let mut sim = FluidSim::new();
        let link = sim.add_resource("link", 100.0);
        for i in 1..=5 {
            sim.start_flow(10.0 * i as f64, &Route::unit([link]));
        }
        let mut seen = Vec::new();
        sim.drain(|_, _, id| seen.push(id));
        assert_eq!(seen.len(), 5);
        assert_eq!(sim.active_flows(), 0);
    }

    #[test]
    fn drain_callback_can_chain_flows() {
        let mut sim = FluidSim::new();
        let link = sim.add_resource("link", 100.0);
        sim.start_flow(100.0, &Route::unit([link]));
        let mut chained = false;
        let mut completions = 0;
        sim.drain(|sim, _, _| {
            completions += 1;
            if !chained {
                chained = true;
                sim.start_flow(200.0, &Route::unit([link]));
            }
        });
        assert_eq!(completions, 2);
        approx(sim.now().as_secs_f64(), 3.0);
    }

    #[test]
    fn utilization_stats_accumulate() {
        let mut sim = FluidSim::new();
        let link = sim.add_resource("link", 100.0);
        sim.start_flow(100.0, &Route::unit([link]));
        sim.advance_to_next_completion();
        let s = sim.stats(link);
        approx(s.units_served(), 100.0);
        approx(s.utilization(), 1.0);
    }

    #[test]
    fn idle_resource_has_zero_utilization() {
        let mut sim = FluidSim::new();
        let busy = sim.add_resource("busy", 100.0);
        let idle = sim.add_resource("idle", 100.0);
        sim.start_flow(100.0, &Route::unit([busy]));
        sim.advance_to_next_completion();
        approx(sim.stats(idle).utilization(), 0.0);
    }

    #[test]
    #[should_panic(expected = "route must be non-empty")]
    fn empty_route_rejected() {
        let mut sim = FluidSim::new();
        sim.start_flow(1.0, &Route::default());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let mut sim = FluidSim::new();
        sim.add_resource("bad", 0.0);
    }

    #[test]
    fn many_flows_high_fan_in_is_stable() {
        let mut sim = FluidSim::new();
        let nic = sim.add_resource("nic", 25e9);
        let links: Vec<_> = (0..64)
            .map(|i| sim.add_resource(format!("l{i}"), 25e9))
            .collect();
        for l in &links {
            sim.start_flow(1e9, &Route::unit([*l, nic]));
        }
        // All 64 flows funnel into one NIC: each gets 25e9/64.
        let ids: Vec<FlowId> = (0..64).map(FlowId).collect();
        for id in ids {
            approx(sim.flow_rate(id), 25e9 / 64.0);
        }
        let (t, done) = sim.advance_to_next_completion().unwrap();
        assert_eq!(done.len(), 64);
        approx(t.as_secs_f64(), 64.0 * 1e9 / 25e9);
    }

    #[test]
    fn disjoint_components_solve_independently() {
        // Two unrelated links: finishing a flow on one must not disturb the
        // other's flow state (its rate, and thus predicted finish, is
        // untouched by the incremental recompute).
        let mut sim = FluidSim::new();
        let l1 = sim.add_resource("l1", 100.0);
        let l2 = sim.add_resource("l2", 100.0);
        let a = sim.start_flow(50.0, &Route::unit([l1]));
        let b = sim.start_flow(200.0, &Route::unit([l2]));
        let (t1, done1) = sim.advance_to_next_completion().unwrap();
        assert_eq!(done1, vec![a]);
        approx(t1.as_secs_f64(), 0.5);
        let (t2, done2) = sim.advance_to_next_completion().unwrap();
        assert_eq!(done2, vec![b]);
        approx(t2.as_secs_f64(), 2.0);
    }

    #[test]
    fn reference_mode_matches_incremental_bitwise() {
        // The two solver modes share the per-component fill arithmetic, so
        // rates and completion instants must agree exactly (==, not approx).
        let run = |mode: SolverMode| {
            let mut sim = FluidSim::with_solver(mode);
            let r: Vec<_> = (0..4)
                .map(|i| sim.add_resource(format!("r{i}"), 10.0 + 3.0 * i as f64))
                .collect();
            sim.start_flow(17.0, &Route::unit([r[0], r[1]]));
            sim.start_flow(23.0, &Route::unit([r[1], r[2]]));
            sim.start_flow(11.0, &Route::unit([r[3]]));
            sim.start_flow(29.0, &Route::weighted([(r[0], 2.0), (r[3], 0.5)]));
            let mut events = Vec::new();
            sim.degrade(r[1], 0.6);
            while let Some((t, done)) = sim.advance_to_next_completion() {
                for id in done {
                    events.push((t, id));
                }
                if events.len() == 2 {
                    sim.restore(r[1]);
                    sim.start_flow(5.0, &Route::unit([r[2]]));
                }
            }
            events
        };
        assert_eq!(run(SolverMode::Incremental), run(SolverMode::Reference));
    }
}
