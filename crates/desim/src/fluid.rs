//! Max-min fair fluid-flow engine.
//!
//! Hardware conduits (a PCIe link, a host bridge, a memory bus, a NIC, a
//! switch port) are *resources* with a fixed capacity in *units/second*
//! (normally bytes/second; compute resources use FLOP/s). Work in flight is
//! a *flow*: an amount of work that must traverse a [`Route`] — an ordered
//! set of resources, each with a *weight* saying how many units of that
//! resource's capacity one unit of flow progress consumes.
//!
//! Weights express the amplification factors the paper reasons about: an
//! NCCL-style ring consumes `(2n-1)/n` units of PCIe bandwidth per unit of
//! gradient data (§IV-B1), HFReduce's host-memory traffic is 24× the GPU
//! data size (§IV-D3), a `MemcpyAsync` host-to-device fan-out reads host
//! memory 8 times where GDRCopy reads twice (§IV-A).
//!
//! Whenever the set of active flows changes, rates are re-derived by
//! *progressive filling*: all flows grow at the same rate until some
//! resource saturates; flows crossing that resource freeze, and filling
//! continues — the classic max-min fair ("water-filling") allocation.
//!
//! ## Incremental solving
//!
//! The allocation decomposes exactly by connected components of the
//! flow↔resource bipartite graph: a flow's rate depends only on flows it
//! (transitively) shares a resource with. The engine therefore keeps a
//! per-resource index of crossing flows and, on a start/finish/degrade/cap
//! event, re-solves only the components reachable from the touched
//! resources. Flow progress is settled lazily — `remaining` is decremented
//! only when a flow's rate actually changes — and completions pop from
//! per-zone binary heaps keyed by predicted finish time, with stale entries
//! invalidated by a per-flow epoch counter. At 10,000-GPU scale this
//! replaces an O(flows × resources) global recompute per event with work
//! proportional to the disturbed component.
//!
//! ## Memory layout
//!
//! The hot structures are arena/SoA-shaped so a component solve touches
//! dense arrays instead of pointer-chasing node-based maps:
//!
//! * Flows live in a **slot arena** (`Vec<FlowSlot>` plus a free list).
//!   [`FlowId`]s stay monotonic u64 handles — identity, ordering and the
//!   deterministic completion-batch order are unchanged — but every hot
//!   access goes through a dense `u32` slot, and routes live as ranges in
//!   one shared **route arena** (a recycled slot reuses its arena range),
//!   so a component walk chases no per-flow heap pointers.
//! * Per-resource state is **struct-of-arrays**: capacity, degradation,
//!   cached effective capacity, instantaneous load and the crossing-flow
//!   index are parallel `Vec`s indexed by resource id; rarely-touched
//!   fields (name, statistics) live in a separate cold array.
//! * Each resource's crossing-flow index is a `(flow id, slot)` vector
//!   kept sorted by flow id — flow ids are monotonic, so insertion is an
//!   O(1) push — preserving the exact iteration order the old
//!   `BTreeSet<FlowId>` index provided.
//! * A component solve compiles its flows' routes into a CSR triple
//!   (offsets / local resource ids / weights) in reusable scratch, and the
//!   water-fill kernel runs on that — no per-solve allocation on the
//!   serial path.
//!
//! ## Component-parallel solving
//!
//! Disjoint components are independent subproblems, so one recompute can
//! solve them on the [`ff_util::par`] worker pool. Determinism is by
//! construction, not by luck:
//!
//! * each component is *extracted* into an owned problem (capacities +
//!   CSR routes) and solved by a pure function — workers share no mutable
//!   state and perform the bit-identical fill arithmetic the serial path
//!   uses;
//! * results are merged **serially**, in the deterministic component
//!   order (components discovered from dirty seeds sorted by smallest
//!   resource id), so every heap push, epoch bump and statistics update
//!   happens in the same order at any thread count;
//! * within a component the fill keeps a fixed reduction order — flows
//!   ascending by id, hops in normalized route order — and no float
//!   operation is reassociated; resource-indexed state only feeds
//!   order-independent operations (exact min reductions, sticky flags),
//!   so the deterministic BFS discovery order of resources is free to
//!   differ from id order.
//!
//! The same seed therefore produces the same trace digest at 1, 2, or N
//! threads ([`set_threads`](FluidSim::set_threads)), and observability
//! commits stay single-writer: worker threads never touch the attached
//! [`Recorder`] — only the merge thread does, after the join.
//!
//! [`SolverMode::Reference`] disables the incremental machinery (every
//! component is re-solved every time and the next completion is found by
//! linear scan) while sharing the identical per-component fill arithmetic;
//! the differential suite in `desim/tests/fluid_diff.rs` holds the modes
//! bit-exactly equal on thousands of seeded random schedules.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::Arc;

use crate::stats::ResourceStats;
use crate::time::{SimDuration, SimTime};
use ff_obs::{Recorder, TrackId};
use ff_util::error::{FfError, FfKind};
use ff_util::par;

/// Identifies a resource registered with a [`FluidSim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceId(pub(crate) u32);

/// Identifies an active (or completed) flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub(crate) u64);

/// An ordered set of `(resource, weight)` pairs a flow traverses.
///
/// A weight of `w` means one unit of flow progress consumes `w` units of
/// that resource's capacity. Duplicate resources are allowed and their
/// weights accumulate (a loop-back path through the same switch).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Route(pub Vec<(ResourceId, f64)>);

impl Route {
    /// A route using each resource with weight 1.
    pub fn unit(resources: impl IntoIterator<Item = ResourceId>) -> Self {
        Route(resources.into_iter().map(|r| (r, 1.0)).collect())
    }

    /// A route with explicit weights.
    pub fn weighted(pairs: impl IntoIterator<Item = (ResourceId, f64)>) -> Self {
        Route(pairs.into_iter().collect())
    }

    /// Append another hop.
    pub fn push(&mut self, r: ResourceId, weight: f64) {
        self.0.push((r, weight));
    }

    /// Concatenate two routes.
    pub fn join(mut self, other: Route) -> Route {
        self.0.extend(other.0);
        self
    }

    /// True if the route has no hops.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Collapse duplicate resources, summing weights. The result is sorted
    /// by `ResourceId`, which the per-resource load pass exploits with a
    /// binary search.
    fn normalized(&self) -> Vec<(ResourceId, f64)> {
        let mut map: BTreeMap<ResourceId, f64> = BTreeMap::new();
        for &(r, w) in &self.0 {
            assert!(
                w > 0.0 && w.is_finite(),
                "Route weight must be positive and finite, got {w}"
            );
            *map.entry(r).or_insert(0.0) += w;
        }
        map.into_iter().collect()
    }
}

/// Rarely-touched per-resource state, kept out of the solver's hot arrays.
struct ResourceCold {
    name: String,
    stats: ResourceStats,
    /// Statistics are integrated up to this instant; the resource's load
    /// is held constant over `[synced_to, now]`.
    synced_to: SimTime,
}

/// Sentinel `fid` marking a free arena slot.
const FREE_SLOT: u64 = u64::MAX;

/// One arena slot. While occupied it is a flow; freed slots keep their
/// route-arena range reserved for the next occupant.
struct FlowSlot {
    /// Occupant's flow id, [`FREE_SLOT`] when the slot is on the free list.
    fid: u64,
    /// Start of this flow's normalized route (sorted by resource id,
    /// duplicate hops merged) in the simulator's shared route arena.
    r_start: u32,
    /// Hops in the route.
    r_len: u32,
    /// High-water route length of this slot: a re-started flow whose route
    /// fits reuses the arena range in place, so arena growth is bounded by
    /// per-slot maxima, not by flow churn.
    r_cap: u32,
    work: f64,
    /// Work left as of `updated_at` (not as of `now`: progress at a
    /// constant rate is settled lazily, only when the rate changes).
    remaining: f64,
    rate: f64,
    started: SimTime,
    /// The instant `remaining` and `rate` were last settled.
    updated_at: SimTime,
    /// Bumped on every rate change; completion-heap entries carrying a
    /// stale epoch are ignored.
    epoch: u64,
}

/// Predicted completion instant of `f`, valid while its rate is unchanged.
fn predict(f: &FlowSlot) -> SimTime {
    f.updated_at + SimDuration::for_work(f.remaining, f.rate)
}

/// Completion-heap entry. `BinaryHeap` is a max-heap, so the ordering is
/// reversed: the earliest `(at, id, epoch)` pops first, which also yields
/// ascending `FlowId` order within a completion instant. The slot is a
/// cache for O(1) validity checks and does not participate in ordering
/// (a given `(id, epoch)` pair can only ever live in one slot).
#[derive(Clone, Copy, PartialEq, Eq)]
struct CompEntry {
    at: SimTime,
    id: FlowId,
    epoch: u64,
    slot: u32,
}

impl Ord for CompEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.id, other.epoch).cmp(&(self.at, self.id, self.epoch))
    }
}

impl PartialOrd for CompEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Resources per completion-heap shard: contiguous id ranges, matching the
/// zone-contiguous resource numbering the topology builders produce.
const SHARD_SPAN: u32 = 256;
/// Upper bound on completion-heap shards.
const MAX_SHARDS: usize = 16;

/// The completion heap, sharded by the owning flow's home zone (the
/// contiguous resource-id range its smallest resource falls in). Each
/// shard is an independent binary heap; the cross-shard pop compares the
/// shard heads under the same `(at, id, epoch)` total order a single heap
/// would use, so sharding is observably identical to one big heap — just
/// with shallower heaps and zone-local pushes.
#[derive(Default)]
struct CompletionShards {
    shards: Vec<BinaryHeap<CompEntry>>,
}

impl CompletionShards {
    /// Shard index for a flow whose smallest route resource is `r0`.
    fn shard_of(r0: u32) -> usize {
        ((r0 / SHARD_SPAN) as usize).min(MAX_SHARDS - 1)
    }

    fn push(&mut self, r0: u32, e: CompEntry) {
        let s = Self::shard_of(r0);
        if self.shards.len() <= s {
            self.shards.resize_with(s + 1, BinaryHeap::new);
        }
        self.shards[s].push(e);
    }

    /// Earliest valid entry across all shards, discarding stale heads.
    /// Validity: the slot's occupant is still `(id, epoch)`.
    fn peek_valid(&mut self, slots: &[FlowSlot]) -> Option<SimTime> {
        let mut best: Option<(SimTime, FlowId, u64)> = None;
        for heap in &mut self.shards {
            while let Some(e) = heap.peek() {
                let f = &slots[e.slot as usize];
                if f.fid == e.id.0 && f.epoch == e.epoch {
                    let key = (e.at, e.id, e.epoch);
                    if best.is_none_or(|b| key < b) {
                        best = Some(key);
                    }
                    break;
                }
                heap.pop();
            }
        }
        best.map(|(at, _, _)| at)
    }

    /// Pop every valid entry completing exactly at `at` into `done`.
    /// Call after [`peek_valid`](Self::peek_valid) returned `Some(at)`.
    fn pop_batch(&mut self, at: SimTime, slots: &[FlowSlot], done: &mut Vec<FlowId>) {
        for heap in &mut self.shards {
            while let Some(e) = heap.peek() {
                if e.at != at {
                    break;
                }
                let e = *heap.pop().as_ref().expect("peeked entry pops");
                let f = &slots[e.slot as usize];
                if f.fid == e.id.0 && f.epoch == e.epoch {
                    done.push(e.id);
                }
            }
        }
    }

    #[cfg(test)]
    fn clear(&mut self) {
        for h in &mut self.shards {
            h.clear();
        }
    }
}

/// Selects how [`FluidSim`] re-derives the max-min allocation after a
/// structural event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverMode {
    /// Re-solve only the connected components touched since the last
    /// recompute, and pop completions from a predicted-finish heap. The
    /// default.
    #[default]
    Incremental,
    /// Re-solve every component on every recompute and find the next
    /// completion by linear scan — the brute-force oracle the incremental
    /// path is differentially tested against. Shares the identical
    /// per-component fill arithmetic, so the two modes agree bit-for-bit.
    Reference,
}

/// Cumulative effort counters of a [`FluidSim`] — the raw material for
/// `BENCH_fluid.json`'s events/sec trajectory and for tuning the parallel
/// dispatch threshold.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Structural events applied: flow starts.
    pub flow_starts: u64,
    /// Structural events applied: flow cancellations.
    pub cancels: u64,
    /// Flows completed (popped by `advance_to_next_completion`).
    pub completions: u64,
    /// Rate recomputations performed (one per batch of dirty seeds).
    pub recomputes: u64,
    /// Connected components solved across all recomputes.
    pub components: u64,
    /// Components that contained no flows (index cleanup only).
    pub empty_components: u64,
    /// Flow-rate derivations: Σ over solved components of their flow count.
    pub flow_solves: u64,
    /// Water-filling rounds executed.
    pub fill_rounds: u64,
    /// Recomputes whose components were solved on the worker pool.
    pub parallel_batches: u64,
}

impl SolverStats {
    /// Total structural simulation events processed — the numerator of the
    /// benchmark harness's events/sec metric.
    pub fn events(&self) -> u64 {
        self.flow_starts + self.cancels + self.completions
    }
}

/// Where an attached [`Recorder`] receives this simulator's events.
struct ObsSink {
    rec: Arc<Recorder>,
    track: TrackId,
    track_name: String,
    /// Pre-resolved handle for the per-recompute rounds counter, so the
    /// hot path never re-formats the metric name.
    rounds_counter: ff_obs::CounterId,
    /// Added to every simulated timestamp, letting callers place repeated
    /// runs of the same sim (one per training step, say) side by side on a
    /// shared timeline.
    offset_ns: u64,
}

/// An extracted, owned component subproblem: effective capacities of the
/// component's resources (ascending id order) and the member flows' routes
/// (ascending flow-id order) compiled to CSR over local resource indices.
/// Pure data — solving it cannot observe or mutate simulator state, which
/// is what makes the parallel path trivially deterministic.
#[derive(Default)]
struct CompProblem {
    caps: Vec<f64>,
    off: Vec<u32>,
    hop_res: Vec<u32>,
    hop_w: Vec<f64>,
}

/// Water-fill scratch, reusable across solves.
#[derive(Default)]
struct FillScratch {
    residual: Vec<f64>,
    weight_sum: Vec<f64>,
    /// Per-resource growth headroom `residual / weight_sum`, divided once
    /// per (resource, round) on first touch so the min scan over hops
    /// reads cached quotients instead of re-dividing per hop occurrence.
    quot: Vec<f64>,
    /// Round stamp marking `quot[r]` fresh for the current round.
    quot_stamp: Vec<u32>,
    saturated: Vec<bool>,
    unfrozen: Vec<u32>,
}

/// Progressive filling over one compiled component. Identical arithmetic
/// and iteration order as the historical in-place solver: flows ascending
/// by id, hops in normalized route order, and the same relative order of
/// every floating-point operation — bit-exact whether invoked serially or
/// from a worker. Per-resource state (quotients, residuals, saturation)
/// only enters through order-independent operations, so the local
/// resource numbering is immaterial. Returns the fill-round count;
/// `rates` comes back with one rate per flow.
fn water_fill(p: &CompProblem, rates: &mut Vec<f64>, s: &mut FillScratch) -> u64 {
    let k = p.caps.len();
    let m = p.off.len() - 1;
    s.residual.clear();
    s.residual.extend_from_slice(&p.caps);
    s.weight_sum.clear();
    s.weight_sum.resize(k, 0.0);
    s.saturated.clear();
    s.saturated.resize(k, false);
    for h in 0..p.hop_res.len() {
        s.weight_sum[p.hop_res[h] as usize] += p.hop_w[h];
    }
    rates.clear();
    rates.resize(m, 0.0);
    s.unfrozen.clear();
    s.unfrozen.extend(0..m as u32);
    let mut rounds = 0u64;
    s.quot.clear();
    s.quot.resize(k, 0.0);
    s.quot_stamp.clear();
    s.quot_stamp.resize(k, 0);
    while !s.unfrozen.is_empty() {
        rounds += 1;
        // The common growth increment is limited by the tightest resource
        // crossed by an unfrozen flow: residual / weight_sum. Divide once
        // per (resource, round) on first touch — the stamp marks the
        // quotient fresh — then min over hop occurrences. Same quotient
        // values the per-hop division produced, so the min (an exact,
        // order-free reduction) is bit-identical, and resources no
        // unfrozen flow crosses cost nothing.
        let stamp = rounds as u32;
        let mut delta = f64::INFINITY;
        for &i in &s.unfrozen {
            let (a, b) = (p.off[i as usize] as usize, p.off[i as usize + 1] as usize);
            for &hr in &p.hop_res[a..b] {
                let r = hr as usize;
                if s.quot_stamp[r] != stamp {
                    s.quot_stamp[r] = stamp;
                    let ws = s.weight_sum[r];
                    s.quot[r] = if ws > 0.0 {
                        s.residual[r] / ws
                    } else {
                        f64::INFINITY
                    };
                }
                delta = delta.min(s.quot[r]);
            }
        }
        assert!(
            delta.is_finite() && delta >= 0.0,
            "water_fill: degenerate allocation (delta={delta})"
        );
        // Grow every unfrozen flow by delta, charge resources, and flag
        // saturation in the same pass. The threshold is relative to
        // capacity: at the bottleneck the residual lands on zero up to
        // float error, which scales with the capacity magnitude. Checking
        // after each decrement instead of once after the sweep flags the
        // same set: residuals only shrink, so an early crossing implies the
        // final value crosses too, and the final decrement performs the
        // same check the old full-`k` sweep did — without touching the
        // resources this round never charged.
        for &i in &s.unfrozen {
            rates[i as usize] += delta;
            let (a, b) = (p.off[i as usize] as usize, p.off[i as usize + 1] as usize);
            for (&hr, &hw) in p.hop_res[a..b].iter().zip(&p.hop_w[a..b]) {
                let r = hr as usize;
                let nr = s.residual[r] - delta * hw;
                s.residual[r] = nr;
                if !s.saturated[r] && nr <= p.caps[r] * 1e-6 {
                    s.saturated[r] = true;
                }
            }
        }
        // Partition in place, preserving order: flows crossing a saturated
        // resource freeze now (their weight leaves the pool), the rest
        // stay. The weight decrements happen in the same relative order as
        // the historical two-pass partition, so every f64 agrees.
        let mut kept = 0usize;
        let mut froze = 0usize;
        for idx in 0..s.unfrozen.len() {
            let i = s.unfrozen[idx];
            let (a, b) = (p.off[i as usize] as usize, p.off[i as usize + 1] as usize);
            let hr = &p.hop_res[a..b];
            let frozen = hr.iter().any(|&r| s.saturated[r as usize]);
            if frozen {
                froze += 1;
                for (&r, &w) in hr.iter().zip(&p.hop_w[a..b]) {
                    s.weight_sum[r as usize] -= w;
                }
            } else {
                s.unfrozen[kept] = i;
                kept += 1;
            }
        }
        assert!(froze > 0, "water_fill: no progress (numerical issue)");
        s.unfrozen.truncate(kept);
    }
    rounds
}

/// Pool entry point: solve one extracted component. A pure `fn` so the
/// worker pool can ship it without capturing any simulator state. The
/// problem rides back with the result — the merge step reuses its CSR to
/// refresh loads.
fn solve_problem(p: CompProblem) -> (CompProblem, Vec<f64>, u64) {
    let mut rates = Vec::new();
    let mut scratch = FillScratch::default();
    let rounds = water_fill(&p, &mut rates, &mut scratch);
    (p, rates, rounds)
}

/// Compile a component into CSR form. `comp_flows` must be sorted
/// ascending by flow id, and `res_local` populated for every resource in
/// `comp_res` (the global-id → local-index scatter table, making each hop
/// an O(1) lookup).
fn build_problem(
    comp_res: &[u32],
    comp_flows: &[(u64, u32)],
    slots: &[FlowSlot],
    arena: &[(ResourceId, f64)],
    eff_cap: &[f64],
    res_local: &[u32],
    p: &mut CompProblem,
) {
    p.caps.clear();
    p.caps.extend(comp_res.iter().map(|&r| eff_cap[r as usize]));
    p.off.clear();
    p.off.reserve(comp_flows.len() + 1);
    p.hop_res.clear();
    p.hop_w.clear();
    p.off.push(0);
    for &(_, slot) in comp_flows {
        let f = &slots[slot as usize];
        let (a, b) = (f.r_start as usize, (f.r_start + f.r_len) as usize);
        for &(r, w) in &arena[a..b] {
            p.hop_res.push(res_local[r.0 as usize]);
            p.hop_w.push(w);
        }
        p.off.push(p.hop_res.len() as u32);
    }
}

/// One collected component: ranges into the shared flat buffers, plus its
/// total route-hop count (the cost model for parallel lane packing).
#[derive(Clone, Copy)]
struct CompRange {
    res: (u32, u32),
    flows: (u32, u32),
    hops: u64,
}

/// Default total-hop-count threshold above which a multi-component
/// recompute is dispatched to the worker pool. Extraction and merge cost
/// a few hundred nanoseconds per flow, so small recomputes (the common
/// per-event case) stay inline.
const DEFAULT_PAR_THRESHOLD: u64 = 16 * 1024;

/// The fluid-flow simulator. See the [module docs](self) for the model.
///
/// ```
/// use ff_desim::{FluidSim, Route};
/// let mut sim = FluidSim::new();
/// let link = sim.add_resource("25G link", 25e9);
/// let a = sim.start_flow(1e9, &Route::unit([link]));
/// let b = sim.start_flow(1e9, &Route::unit([link]));
/// // Max-min fairness: the two flows split the link.
/// assert_eq!(sim.flow_rate(a), 12.5e9);
/// assert_eq!(sim.flow_rate(b), 12.5e9);
/// let (t, done) = sim.advance_to_next_completion().unwrap();
/// assert_eq!(done.len(), 2);
/// assert!((t.as_secs_f64() - 0.08).abs() < 1e-6);
/// ```
pub struct FluidSim {
    now: SimTime,
    // ---- resources, struct-of-arrays (hot) ----
    res_capacity: Vec<f64>,
    /// Rate ceiling imposed by congestion control; `f64::INFINITY` when
    /// uncapped. Applies to the resource's aggregate load.
    res_cap_override: Vec<f64>,
    /// Health multiplier in `(0, 1]` — a PCIe lane trained down, a weak
    /// NVLink bridge, an IB link flash-cut to a lower speed.
    res_degrade: Vec<f64>,
    /// Cached `(capacity × degrade).min(cap_override)`, refreshed whenever
    /// one of its inputs changes.
    res_eff_cap: Vec<f64>,
    /// Instantaneous aggregate load (Σ rate×weight), maintained at each
    /// recompute that touches this resource's component.
    res_load: Vec<f64>,
    /// Active flows whose routes cross this resource, as slot indices
    /// sorted ascending by flow id (slots carry the fid) — the index that
    /// lets the solver walk connected components without scanning all
    /// flows. Slot-only entries keep the hottest BFS scan at 4 bytes per
    /// crossing.
    res_flows: Vec<Vec<u32>>,
    /// On the pending-recompute dirty list (dedup for `FluidSim::dirty`).
    res_dirty: Vec<bool>,
    /// BFS scratch for component collection; always false between
    /// recomputes.
    res_visited: Vec<bool>,
    res_cold: Vec<ResourceCold>,
    // ---- flows: slot arena + id index ----
    slots: Vec<FlowSlot>,
    /// Shared normalized-route storage; slots hold `(r_start, r_len)`
    /// ranges into it. Growth is bounded by per-slot high-water marks,
    /// not flow churn (see [`FlowSlot::r_cap`]).
    route_arena: Vec<(ResourceId, f64)>,
    /// BFS scratch, parallel to `slots`: "already in the component being
    /// collected". A dense bitmap outside the arena, so the membership
    /// test — the single hottest read in component collection — stays
    /// cache-resident instead of poking 100-byte slots. Always false
    /// between recomputes.
    flow_in_comp: Vec<bool>,
    free_slots: Vec<u32>,
    /// Active flows by id (ascending — Reference mode iterates this).
    index: BTreeMap<FlowId, u32>,
    next_flow_id: u64,
    // ---- solver state ----
    rates_dirty: bool,
    mode: SolverMode,
    /// Resources touched since the last recompute — the seeds the
    /// incremental solver grows components from. Deduplicated via
    /// `res_dirty`.
    dirty: Vec<ResourceId>,
    completions: CompletionShards,
    /// Worker lanes for component-parallel solving; 0 = the pool default.
    threads: usize,
    /// Minimum total hop count before a recompute goes parallel.
    par_threshold: u64,
    stats: SolverStats,
    // ---- reusable scratch ----
    comp_res_buf: Vec<u32>,
    comp_flow_buf: Vec<(u64, u32)>,
    bfs_stack: Vec<u32>,
    /// Global-resource-id → component-local index scatter table, sized to
    /// the resource count and repopulated per component, turning the CSR
    /// build and the load refresh into O(1)-per-hop scatters.
    res_local: Vec<u32>,
    load_buf: Vec<f64>,
    problem: CompProblem,
    fill: FillScratch,
    rates_buf: Vec<f64>,
    obs: Option<ObsSink>,
}

impl Default for FluidSim {
    fn default() -> Self {
        Self::new()
    }
}

impl FluidSim {
    /// An empty simulator with the clock at zero, using the incremental
    /// solver.
    pub fn new() -> Self {
        Self::with_solver(SolverMode::Incremental)
    }

    /// An empty simulator using the given [`SolverMode`].
    pub fn with_solver(mode: SolverMode) -> Self {
        FluidSim {
            now: SimTime::ZERO,
            res_capacity: Vec::new(),
            res_cap_override: Vec::new(),
            res_degrade: Vec::new(),
            res_eff_cap: Vec::new(),
            res_load: Vec::new(),
            res_flows: Vec::new(),
            res_dirty: Vec::new(),
            res_visited: Vec::new(),
            res_cold: Vec::new(),
            slots: Vec::new(),
            route_arena: Vec::new(),
            flow_in_comp: Vec::new(),
            free_slots: Vec::new(),
            index: BTreeMap::new(),
            next_flow_id: 0,
            rates_dirty: false,
            mode,
            dirty: Vec::new(),
            completions: CompletionShards::default(),
            threads: 0,
            par_threshold: DEFAULT_PAR_THRESHOLD,
            stats: SolverStats::default(),
            comp_res_buf: Vec::new(),
            comp_flow_buf: Vec::new(),
            bfs_stack: Vec::new(),
            res_local: Vec::new(),
            load_buf: Vec::new(),
            problem: CompProblem::default(),
            fill: FillScratch::default(),
            rates_buf: Vec::new(),
            obs: None,
        }
    }

    /// The solver mode this simulator was built with.
    pub fn solver_mode(&self) -> SolverMode {
        self.mode
    }

    /// Cap the worker lanes used for component-parallel solving. `0`
    /// (the default) means the `ff_util::par` pool default (which honors
    /// `RAYON_NUM_THREADS` / `FF_THREADS`); `1` forces fully serial
    /// solving. Results are bit-identical at every setting — this knob
    /// trades wall-clock only.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads;
    }

    /// The configured worker-lane cap (`0` = pool default).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Total route-hop count a recompute must reach before its components
    /// are dispatched to the worker pool. `0` parallelizes every
    /// multi-component recompute (used by the determinism tests);
    /// `u64::MAX` disables the parallel path.
    pub fn set_par_threshold(&mut self, hops: u64) {
        self.par_threshold = hops;
    }

    /// Cumulative solver-effort counters since construction.
    pub fn solver_stats(&self) -> SolverStats {
        self.stats
    }

    /// Attach an observability recorder. Flow completions become spans on
    /// `track` (timestamps shifted by `offset_ns`), degradations/restores
    /// become instants, and [`flush_stats`](Self::flush_stats) publishes
    /// per-resource utilization gauges. Detaching is not supported; the
    /// sink lives as long as the sim. Only the thread driving the
    /// simulator ever writes to the recorder — the component-parallel
    /// solve path keeps workers away from observability state.
    pub fn attach_recorder(&mut self, rec: &Arc<Recorder>, track: &str, offset_ns: u64) {
        let id = rec.track(track);
        let rounds_counter = rec.counter_handle(&format!("{track}/waterfill_rounds"));
        self.obs = Some(ObsSink {
            rec: Arc::clone(rec),
            track: id,
            track_name: track.to_string(),
            rounds_counter,
            offset_ns,
        });
    }

    /// Publish per-resource utilization gauges to the attached recorder:
    /// `{track}/util/{res}` (time-averaged), `{track}/peak/{res}`,
    /// `{track}/served/{res}` (units moved), `{track}/cap/{res}`
    /// (∫ capacity dt). No-op without a recorder. Call at the end of a run;
    /// last write wins, so repeated calls just refresh the values.
    pub fn flush_stats(&mut self) {
        self.recompute_rates_if_dirty();
        for ri in 0..self.res_cold.len() {
            self.sync_resource_stats(ri);
        }
        let Some(obs) = &self.obs else { return };
        for r in &self.res_cold {
            // A resource with zero ∫capacity·dt never saw simulated time
            // pass (e.g. instantaneous-rate probes); its utilization is
            // 0/0, not an interesting 0%. Skip it.
            if r.stats.capacity_integral() == 0.0 {
                continue;
            }
            let p = &obs.track_name;
            obs.rec
                .gauge_set(&format!("{p}/util/{}", r.name), r.stats.utilization());
            obs.rec
                .gauge_set(&format!("{p}/peak/{}", r.name), r.stats.peak_utilization());
            obs.rec
                .gauge_set(&format!("{p}/served/{}", r.name), r.stats.units_served());
            obs.rec
                .gauge_set(&format!("{p}/cap/{}", r.name), r.stats.capacity_integral());
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of registered resources.
    pub fn resource_count(&self) -> usize {
        self.res_capacity.len()
    }

    /// The `i`-th resource (ids are dense, `0..resource_count()`).
    pub fn resource_at(&self, i: usize) -> ResourceId {
        assert!(i < self.res_capacity.len());
        ResourceId(i as u32)
    }

    /// Register a resource with `capacity` units/second (must be positive
    /// and finite). `name` appears in statistics reports.
    pub fn add_resource(&mut self, name: impl Into<String>, capacity: f64) -> ResourceId {
        assert!(
            capacity > 0.0 && capacity.is_finite(),
            "resource capacity must be positive and finite, got {capacity}"
        );
        let id = ResourceId(u32::try_from(self.res_capacity.len()).expect("too many resources"));
        self.res_capacity.push(capacity);
        self.res_cap_override.push(f64::INFINITY);
        self.res_degrade.push(1.0);
        self.res_eff_cap.push(capacity);
        self.res_load.push(0.0);
        self.res_flows.push(Vec::new());
        self.res_dirty.push(false);
        self.res_visited.push(false);
        self.res_cold.push(ResourceCold {
            name: name.into(),
            stats: ResourceStats::default(),
            synced_to: self.now,
        });
        id
    }

    /// The configured capacity of `r`.
    pub fn capacity(&self, r: ResourceId) -> f64 {
        self.res_capacity[r.0 as usize]
    }

    /// The name given to `r` at registration.
    pub fn resource_name(&self, r: ResourceId) -> &str {
        &self.res_cold[r.0 as usize].name
    }

    /// `Ok(index)` when `r` names a registered resource.
    fn check_resource(&self, r: ResourceId) -> Result<usize, FfError> {
        let ri = r.0 as usize;
        if ri < self.res_capacity.len() {
            Ok(ri)
        } else {
            Err(FfError::new(
                FfKind::Config,
                format!(
                    "unknown resource {:?} (registered: {})",
                    r,
                    self.res_capacity.len()
                ),
            ))
        }
    }

    /// Re-derive the cached effective capacity of resource `ri`.
    fn refresh_eff_cap(&mut self, ri: usize) {
        self.res_eff_cap[ri] =
            (self.res_capacity[ri] * self.res_degrade[ri]).min(self.res_cap_override[ri]);
    }

    /// Impose (or lift, with `f64::INFINITY`) a congestion-control ceiling
    /// on the aggregate load of `r`. Used by DCQCN-style rate limiting.
    /// Rejects unknown resources and non-positive (or NaN) caps.
    pub fn set_rate_cap(&mut self, r: ResourceId, cap: f64) -> Result<(), FfError> {
        let ri = self.check_resource(r)?;
        if cap.is_nan() || cap <= 0.0 {
            return Err(FfError::new(
                FfKind::Config,
                format!("rate cap must be positive, got {cap}"),
            ));
        }
        self.res_cap_override[ri] = cap;
        self.refresh_eff_cap(ri);
        self.mark_dirty(r);
        Ok(())
    }

    /// Degrade `r` to `factor × capacity` (`0 < factor ≤ 1`) — fault
    /// injection for a link trained down or a flaky bridge. In-flight flows
    /// re-derive their rates immediately; compose with
    /// [`restore`](Self::restore) to model transient flash cuts. Rejects
    /// unknown resources and factors outside `(0, 1]`.
    pub fn degrade(&mut self, r: ResourceId, factor: f64) -> Result<(), FfError> {
        let ri = self.check_resource(r)?;
        if !(factor > 0.0 && factor <= 1.0) {
            return Err(FfError::new(
                FfKind::Config,
                format!("degrade factor must be in (0, 1], got {factor}"),
            ));
        }
        self.res_degrade[ri] = factor;
        self.refresh_eff_cap(ri);
        self.mark_dirty(r);
        if let Some(obs) = &self.obs {
            let name = format!("degrade {}", self.res_cold[ri].name);
            obs.rec.instant(
                obs.track,
                &name,
                obs.offset_ns + self.now.as_nanos(),
                factor,
            );
        }
        Ok(())
    }

    /// Lift any degradation on `r` (the link re-trained at full speed).
    /// Rejects unknown resources.
    pub fn restore(&mut self, r: ResourceId) -> Result<(), FfError> {
        let ri = self.check_resource(r)?;
        self.res_degrade[ri] = 1.0;
        self.refresh_eff_cap(ri);
        self.mark_dirty(r);
        if let Some(obs) = &self.obs {
            let name = format!("restore {}", self.res_cold[ri].name);
            obs.rec
                .instant(obs.track, &name, obs.offset_ns + self.now.as_nanos(), 1.0);
        }
        Ok(())
    }

    /// Set the degradation of `r` to an arbitrary envelope factor:
    /// `1.0` restores, anything else degrades. The convenience that lets
    /// a piecewise-constant [`Envelope`](crate::envelope::Envelope)
    /// replay as plain degrade/restore edges.
    pub fn modulate(&mut self, r: ResourceId, factor: f64) -> Result<(), FfError> {
        if factor == 1.0 {
            self.restore(r)
        } else {
            self.degrade(r, factor)
        }
    }

    /// The current degradation factor of `r` (`1.0` when healthy).
    pub fn degradation(&self, r: ResourceId) -> f64 {
        self.res_degrade[r.0 as usize]
    }

    /// Capacity of `r` after degradation and rate caps — what flows can
    /// actually use right now.
    pub fn effective_capacity(&self, r: ResourceId) -> f64 {
        self.res_eff_cap[r.0 as usize]
    }

    /// Begin a flow of `work` units over `route` at the current time.
    /// `work` must be positive; `route` must be non-empty (model pure delays
    /// with the event queue instead).
    pub fn start_flow(&mut self, work: f64, route: &Route) -> FlowId {
        assert!(
            work > 0.0 && work.is_finite(),
            "flow work must be positive and finite, got {work}"
        );
        let normalized = route.normalized();
        assert!(!normalized.is_empty(), "flow route must be non-empty");
        for &(r, _) in &normalized {
            assert!(
                (r.0 as usize) < self.res_capacity.len(),
                "route references unknown resource {r:?}"
            );
        }
        let fid = self.next_flow_id;
        self.next_flow_id += 1;
        let slot = match self.free_slots.pop() {
            Some(s) => s,
            None => {
                let s = u32::try_from(self.slots.len()).expect("too many concurrent flows");
                self.slots.push(FlowSlot {
                    fid: FREE_SLOT,
                    r_start: 0,
                    r_len: 0,
                    r_cap: 0,
                    work: 0.0,
                    remaining: 0.0,
                    rate: 0.0,
                    started: SimTime::ZERO,
                    updated_at: SimTime::ZERO,
                    epoch: 0,
                });
                self.flow_in_comp.push(false);
                s
            }
        };
        for &(r, _) in &normalized {
            debug_assert!(self.res_flows[r.0 as usize]
                .last()
                .is_none_or(|&s| self.slots[s as usize].fid < fid));
            // Flow ids are monotonic, so the fid-sorted index appends.
            self.res_flows[r.0 as usize].push(slot);
            self.mark_dirty(r);
        }
        let n = u32::try_from(normalized.len()).expect("route too long");
        let r_start = {
            let f = &self.slots[slot as usize];
            debug_assert_eq!(f.fid, FREE_SLOT, "slot on free list must be vacant");
            if n <= f.r_cap {
                let a = f.r_start as usize;
                self.route_arena[a..a + normalized.len()].copy_from_slice(&normalized);
                f.r_start
            } else {
                let a = u32::try_from(self.route_arena.len())
                    .expect("route arena exceeds u32 indexing");
                self.route_arena.extend_from_slice(&normalized);
                a
            }
        };
        let f = &mut self.slots[slot as usize];
        f.fid = fid;
        f.r_start = r_start;
        f.r_len = n;
        f.r_cap = f.r_cap.max(n);
        f.work = work;
        f.remaining = work;
        f.rate = 0.0;
        f.started = self.now;
        f.updated_at = self.now;
        f.epoch = 0;
        let id = FlowId(fid);
        self.index.insert(id, slot);
        self.stats.flow_starts += 1;
        id
    }

    /// Drop `id` from every per-resource crossing index and mark those
    /// resources dirty.
    fn unlink_flow(&mut self, id: FlowId, slot: u32) {
        let (a, b) = {
            let f = &self.slots[slot as usize];
            (f.r_start as usize, (f.r_start + f.r_len) as usize)
        };
        {
            // The lists are fid-sorted and every listed slot (including the
            // one being unlinked — its fid clears below) still carries a
            // live fid, so binary search through the slot arena works.
            let slots = &self.slots;
            let arena = &self.route_arena;
            for &(r, _) in &arena[a..b] {
                let list = &mut self.res_flows[r.0 as usize];
                let i = list
                    .binary_search_by_key(&id.0, |&s| slots[s as usize].fid)
                    .expect("flow indexed on its route");
                list.remove(i);
            }
        }
        for h in a..b {
            let r = self.route_arena[h].0;
            self.mark_dirty(r);
        }
        let f = &mut self.slots[slot as usize];
        f.r_len = 0;
        f.fid = FREE_SLOT;
        self.free_slots.push(slot);
    }

    /// Abort an active flow, returning the work it had left. Panics if the
    /// flow is unknown (already completed or cancelled).
    pub fn cancel_flow(&mut self, id: FlowId) -> f64 {
        let slot = self.index.remove(&id).expect("cancel_flow: unknown flow");
        let f = &mut self.slots[slot as usize];
        // The rate has been valid since `updated_at` (every clock advance
        // recomputes first), so one settle yields the true remaining work.
        let dt = self.now.since(f.updated_at).as_secs_f64();
        if dt > 0.0 {
            f.remaining = (f.remaining - f.rate * dt).max(0.0);
        }
        let remaining = f.remaining;
        self.unlink_flow(id, slot);
        self.stats.cancels += 1;
        remaining
    }

    /// Number of active flows.
    pub fn active_flows(&self) -> usize {
        self.index.len()
    }

    /// The current max-min fair rate of `id` in units/second.
    pub fn flow_rate(&mut self, id: FlowId) -> f64 {
        self.recompute_rates_if_dirty();
        let slot = *self.index.get(&id).expect("flow_rate: unknown flow");
        self.slots[slot as usize].rate
    }

    /// The instant the next flow(s) will complete, or `None` if idle.
    pub fn next_completion_time(&mut self) -> Option<SimTime> {
        self.recompute_rates_if_dirty();
        match self.mode {
            SolverMode::Reference => self
                .index
                .values()
                .map(|&s| predict(&self.slots[s as usize]))
                .min(),
            SolverMode::Incremental => self.completions.peek_valid(&self.slots),
        }
    }

    /// Advance the clock to the next completion, removing and returning all
    /// flows that finish at that instant. Returns `None` when no flows are
    /// active.
    pub fn advance_to_next_completion(&mut self) -> Option<(SimTime, Vec<FlowId>)> {
        if self.index.is_empty() {
            return None;
        }
        self.recompute_rates_if_dirty();
        let (at, mut done) = match self.mode {
            SolverMode::Reference => {
                // Identify the earliest finishers before touching state, so
                // a flow that merely catches up at `at` isn't mistaken for
                // complete.
                let mut at = SimTime::MAX;
                let mut done: Vec<FlowId> = Vec::new();
                for (&id, &slot) in &self.index {
                    let fin = predict(&self.slots[slot as usize]);
                    if fin < at {
                        at = fin;
                        done.clear();
                        done.push(id);
                    } else if fin == at {
                        done.push(id);
                    }
                }
                (at, done)
            }
            SolverMode::Incremental => {
                let at = self
                    .completions
                    .peek_valid(&self.slots)
                    .expect("active flows must have pending completion entries");
                let mut done: Vec<FlowId> = Vec::new();
                self.completions.pop_batch(at, &self.slots, &mut done);
                (at, done)
            }
        };
        done.sort_unstable();
        debug_assert!(!done.is_empty());
        self.now = at;
        for &id in &done {
            let slot = self.index.remove(&id).expect("completion bookkeeping");
            if let Some(obs) = &self.obs {
                let f = &self.slots[slot as usize];
                let name = format!(
                    "xfer {}",
                    self.route_arena[f.r_start as usize..(f.r_start + f.r_len) as usize]
                        .iter()
                        .map(|&(r, _)| self.res_cold[r.0 as usize].name.as_str())
                        .collect::<Vec<_>>()
                        .join("+")
                );
                obs.rec.span(
                    obs.track,
                    &name,
                    obs.offset_ns + f.started.as_nanos(),
                    at.since(f.started).as_nanos(),
                    f.work,
                );
            }
            self.unlink_flow(id, slot);
            self.stats.completions += 1;
        }
        Some((at, done))
    }

    /// Advance the clock to `t`, which must not pass the next completion
    /// (use [`advance_to_next_completion`](Self::advance_to_next_completion)
    /// to cross completions). Used to interleave externally scheduled events
    /// with in-flight transfers.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(t >= self.now, "advance_to: {t} is in the past");
        if t == self.now {
            // Same-instant advances (common under DagSim gate cascades) need
            // no recompute: deferring it lets several structural events at
            // one instant share a single solve.
            return;
        }
        if let Some(next) = self.next_completion_time() {
            assert!(
                t <= next,
                "advance_to: {t} would skip a completion at {next}"
            );
        }
        self.now = t;
    }

    /// Run the simulation until no flows remain, invoking `on_complete` for
    /// each completed flow (in deterministic FlowId order within an
    /// instant). The callback may start new flows.
    pub fn drain(&mut self, mut on_complete: impl FnMut(&mut Self, SimTime, FlowId)) {
        while let Some((at, done)) = self.advance_to_next_completion() {
            for id in done {
                on_complete(self, at, id);
            }
        }
    }

    /// Utilization statistics for `r` since the start of the run.
    pub fn stats(&mut self, r: ResourceId) -> &ResourceStats {
        self.recompute_rates_if_dirty();
        self.sync_resource_stats(r.0 as usize);
        &self.res_cold[r.0 as usize].stats
    }

    /// Instantaneous aggregate load on `r` (units/second): Σ rate×weight of
    /// the active flows crossing it. At most `capacity`. O(1): the load is
    /// maintained by the solver at every recompute.
    pub fn resource_load(&mut self, r: ResourceId) -> f64 {
        self.recompute_rates_if_dirty();
        self.res_load[r.0 as usize]
    }

    /// Number of active flows crossing `r`. O(1) via the per-resource flow
    /// index (a route crossing `r` twice still counts as one flow).
    pub fn flows_through(&self, r: ResourceId) -> usize {
        self.res_flows[r.0 as usize].len()
    }

    /// Put `r` on the dirty list (deduplicated) and flag rates stale.
    fn mark_dirty(&mut self, r: ResourceId) {
        self.rates_dirty = true;
        let ri = r.0 as usize;
        if !self.res_dirty[ri] {
            self.res_dirty[ri] = true;
            self.dirty.push(r);
        }
    }

    /// Integrate `r`'s statistics up to `now` at its current load.
    fn sync_resource_stats(&mut self, ri: usize) {
        let now = self.now;
        let cold = &mut self.res_cold[ri];
        let dt = now.since(cold.synced_to).as_secs_f64();
        if dt > 0.0 {
            cold.stats
                .record(dt, self.res_load[ri], self.res_capacity[ri]);
        }
        cold.synced_to = now;
    }

    /// If rates are stale, re-solve the max-min allocation for every
    /// component touched by a dirty resource (all components in
    /// [`SolverMode::Reference`]). Disjoint components may be farmed out
    /// to the worker pool; results merge serially in component order, so
    /// the outcome is bit-identical at any thread count.
    fn recompute_rates_if_dirty(&mut self) {
        if !self.rates_dirty {
            return;
        }
        self.rates_dirty = false;
        self.stats.recomputes += 1;
        let mut seeds = std::mem::take(&mut self.dirty);
        for &r in &seeds {
            self.res_dirty[r.0 as usize] = false;
        }
        match self.mode {
            SolverMode::Incremental => seeds.sort_unstable(),
            SolverMode::Reference => {
                seeds.clear();
                seeds.extend((0..self.res_capacity.len() as u32).map(ResourceId));
            }
        }
        // Phase 1: collect all dirty components into the shared flat
        // buffers (serial — the BFS is cheap and wants the index).
        let mut comp_res = std::mem::take(&mut self.comp_res_buf);
        let mut comp_flows = std::mem::take(&mut self.comp_flow_buf);
        comp_res.clear();
        comp_flows.clear();
        let mut comps: Vec<CompRange> = Vec::new();
        let mut total_hops = 0u64;
        for &seed in &seeds {
            if self.res_visited[seed.0 as usize] {
                continue;
            }
            let range = self.collect_component(seed, &mut comp_res, &mut comp_flows);
            total_hops += range.hops;
            comps.push(range);
        }
        seeds.clear();
        self.dirty = seeds;
        self.stats.components += comps.len() as u64;

        // Phase 2: solve. Components are independent; go wide when there
        // is enough work to amortize extraction, otherwise solve inline
        // with reusable scratch. Both paths run the identical fill.
        let width = if self.threads == 0 {
            par::default_threads()
        } else {
            self.threads
        };
        let solvable = comps.iter().filter(|c| c.flows.0 != c.flows.1).count();
        let mut total_rounds = 0u64;
        if width > 1 && solvable >= 2 && total_hops >= self.par_threshold {
            self.stats.parallel_batches += 1;
            let mut res_local = std::mem::take(&mut self.res_local);
            res_local.resize(self.res_capacity.len(), 0);
            let mut jobs: Vec<(u64, CompProblem)> = Vec::with_capacity(solvable);
            let mut job_of: Vec<Option<usize>> = Vec::with_capacity(comps.len());
            for c in &comps {
                if c.flows.0 == c.flows.1 {
                    job_of.push(None);
                    continue;
                }
                let cr = &comp_res[c.res.0 as usize..c.res.1 as usize];
                for (i, &r) in cr.iter().enumerate() {
                    res_local[r as usize] = i as u32;
                }
                let mut p = CompProblem::default();
                build_problem(
                    cr,
                    &comp_flows[c.flows.0 as usize..c.flows.1 as usize],
                    &self.slots,
                    &self.route_arena,
                    &self.res_eff_cap,
                    &res_local,
                    &mut p,
                );
                job_of.push(Some(jobs.len()));
                jobs.push((c.hops.max(1), p));
            }
            self.res_local = res_local;
            let results = par::pool().map_weighted(jobs, width, solve_problem);
            for (ci, c) in comps.iter().enumerate() {
                match job_of[ci] {
                    Some(j) => {
                        let (p, rates, rounds) = &results[j];
                        total_rounds += rounds;
                        self.apply_component(
                            &comp_res[c.res.0 as usize..c.res.1 as usize],
                            &comp_flows[c.flows.0 as usize..c.flows.1 as usize],
                            rates,
                            Some(p),
                        );
                    }
                    None => {
                        self.stats.empty_components += 1;
                        self.apply_component(
                            &comp_res[c.res.0 as usize..c.res.1 as usize],
                            &[],
                            &[],
                            None,
                        );
                    }
                }
            }
        } else {
            for c in &comps {
                let cr = &comp_res[c.res.0 as usize..c.res.1 as usize];
                let cf = &comp_flows[c.flows.0 as usize..c.flows.1 as usize];
                if cf.is_empty() {
                    self.stats.empty_components += 1;
                    self.apply_component(cr, &[], &[], None);
                    continue;
                }
                let mut problem = std::mem::take(&mut self.problem);
                let mut fill = std::mem::take(&mut self.fill);
                let mut rates = std::mem::take(&mut self.rates_buf);
                let mut res_local = std::mem::take(&mut self.res_local);
                res_local.resize(self.res_capacity.len(), 0);
                for (i, &r) in cr.iter().enumerate() {
                    res_local[r as usize] = i as u32;
                }
                build_problem(
                    cr,
                    cf,
                    &self.slots,
                    &self.route_arena,
                    &self.res_eff_cap,
                    &res_local,
                    &mut problem,
                );
                self.res_local = res_local;
                total_rounds += water_fill(&problem, &mut rates, &mut fill);
                self.apply_component(cr, cf, &rates, Some(&problem));
                self.problem = problem;
                self.fill = fill;
                self.rates_buf = rates;
            }
        }
        self.stats.fill_rounds += total_rounds;

        // Phase 3: clear BFS marks and publish effort counters (merge
        // thread only — workers never touch the recorder).
        for &ri in comp_res.iter() {
            self.res_visited[ri as usize] = false;
        }
        self.comp_res_buf = comp_res;
        self.comp_flow_buf = comp_flows;
        if total_rounds > 0 {
            if let Some(obs) = &self.obs {
                obs.rec
                    .counter_add_by(obs.rounds_counter, total_rounds as f64);
            }
        }
    }

    /// Collect the connected component of the flow↔resource graph
    /// containing `seed`, appending into the shared flat buffers. The
    /// flow range comes back sorted ascending by id so fill iteration
    /// order — and therefore every f64 rounding — is independent of which
    /// resource seeded the walk; the resource range stays in (equally
    /// deterministic) discovery order.
    fn collect_component(
        &mut self,
        seed: ResourceId,
        comp_res: &mut Vec<u32>,
        comp_flows: &mut Vec<(u64, u32)>,
    ) -> CompRange {
        let res_start = comp_res.len() as u32;
        let flow_start = comp_flows.len() as u32;
        let mut hops = 0u64;
        let mut stack = std::mem::take(&mut self.bfs_stack);
        stack.clear();
        // Disjoint-field borrows: the walk reads the crossing indexes and
        // routes, and writes only the two scratch bitmaps. Resources are
        // marked visited when *pushed*, so each enters the stack exactly
        // once and no pop needs a revisit check.
        let res_flows = &self.res_flows;
        let slots = &self.slots;
        let arena = &self.route_arena;
        let res_visited = &mut self.res_visited;
        let flow_in_comp = &mut self.flow_in_comp;
        res_visited[seed.0 as usize] = true;
        stack.push(seed.0);
        while let Some(ri) = stack.pop() {
            comp_res.push(ri);
            for &slot in &res_flows[ri as usize] {
                if flow_in_comp[slot as usize] {
                    continue;
                }
                flow_in_comp[slot as usize] = true;
                let f = &slots[slot as usize];
                comp_flows.push((f.fid, slot));
                let route = &arena[f.r_start as usize..(f.r_start + f.r_len) as usize];
                hops += route.len() as u64;
                for &(r, _) in route {
                    if !res_visited[r.0 as usize] {
                        res_visited[r.0 as usize] = true;
                        stack.push(r.0);
                    }
                }
            }
        }
        self.bfs_stack = stack;
        // Flows must come out sorted by id: flow order fixes the f64
        // accumulation order of every weight/load sum. Resource order, by
        // contrast, only feeds order-*independent* operations — an exact
        // min reduction, per-resource flag sets and disjoint stat syncs —
        // so comp_res legitimately stays in discovery order (which is
        // itself deterministic: the walk is seeded and expanded from
        // fid-sorted index lists, never from hash/timing state).
        comp_flows[flow_start as usize..].sort_unstable();
        CompRange {
            res: (res_start, comp_res.len() as u32),
            flows: (flow_start, comp_flows.len() as u32),
            hops,
        }
    }

    /// Settle-and-apply one component's freshly solved rates, then refresh
    /// its per-resource loads. Serial and deterministic: this is the merge
    /// step the parallel path funnels into.
    fn apply_component(
        &mut self,
        comp_res: &[u32],
        comp_flows: &[(u64, u32)],
        rates: &[f64],
        prob: Option<&CompProblem>,
    ) {
        debug_assert_eq!(comp_flows.len(), rates.len());
        debug_assert!(prob.is_some() || comp_flows.is_empty());
        let now = self.now;
        let mode = self.mode;
        let arena = &self.route_arena;
        let slots = &mut self.slots;
        let flow_in_comp = &mut self.flow_in_comp;
        let completions = &mut self.completions;
        for (i, &(fid, slot)) in comp_flows.iter().enumerate() {
            // Settle and apply, but only where the rate actually changed:
            // an untouched flow keeps its (updated_at, remaining, rate)
            // triple bit-identical, so its heap entry — and the
            // Reference-mode linear scan — still predict the same finish
            // instant.
            let f = &mut slots[slot as usize];
            let nr = rates[i];
            let mut entry: Option<(u32, CompEntry)> = None;
            if f.rate != nr {
                let dt = now.since(f.updated_at).as_secs_f64();
                if dt > 0.0 {
                    f.remaining = (f.remaining - f.rate * dt).max(0.0);
                }
                f.updated_at = now;
                f.rate = nr;
                f.epoch += 1;
                if mode == SolverMode::Incremental {
                    let at = predict(f);
                    entry = Some((
                        arena[f.r_start as usize].0 .0,
                        CompEntry {
                            at,
                            id: FlowId(fid),
                            epoch: f.epoch,
                            slot,
                        },
                    ));
                }
            }
            flow_in_comp[slot as usize] = false;
            if let Some((r0, e)) = entry {
                completions.push(r0, e);
            }
        }
        // Refresh per-resource loads by scattering each flow's rate×weight
        // into component-local accumulators, then sync statistics at the
        // old load wherever it changed. The solved problem's CSR already
        // holds (local resource, weight) per hop, so the scatter is a pure
        // sequential sweep — no route pointers, no global index. Flow-major
        // iteration (the CSR rows follow fid-sorted comp_flows) adds to
        // each accumulator in ascending flow-id order — the identical add
        // sequence a resource-major walk over the fid-sorted crossing index
        // would produce, so every f64 bit matches. `rates[i]` equals the
        // settled `f.rate` for changed and unchanged flows alike.
        let mut load_buf = std::mem::take(&mut self.load_buf);
        load_buf.clear();
        load_buf.resize(comp_res.len(), 0.0);
        if let Some(p) = prob {
            for (i, &rate) in rates.iter().enumerate() {
                for h in p.off[i] as usize..p.off[i + 1] as usize {
                    load_buf[p.hop_res[h] as usize] += rate * p.hop_w[h];
                }
            }
        }
        for (i, &ri) in comp_res.iter().enumerate() {
            let load = load_buf[i];
            if load != self.res_load[ri as usize] {
                self.sync_resource_stats(ri as usize);
                self.res_load[ri as usize] = load;
            }
        }
        self.load_buf = load_buf;
    }

    /// Time a flow has been active.
    pub fn flow_age(&self, id: FlowId) -> Option<SimDuration> {
        self.index
            .get(&id)
            .map(|&s| self.now.since(self.slots[s as usize].started))
    }

    /// Drop every queued completion entry (test hook for shard accounting).
    #[cfg(test)]
    fn clear_completions(&mut self) {
        self.completions.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) {
        assert!(
            (a - b).abs() <= 1e-6 * b.abs().max(1.0),
            "expected {b}, got {a}"
        );
    }

    #[test]
    fn single_flow_gets_full_capacity() {
        let mut sim = FluidSim::new();
        let link = sim.add_resource("link", 100.0);
        let f = sim.start_flow(50.0, &Route::unit([link]));
        approx(sim.flow_rate(f), 100.0);
        let (t, done) = sim.advance_to_next_completion().unwrap();
        assert_eq!(done, vec![f]);
        approx(t.as_secs_f64(), 0.5);
    }

    #[test]
    fn two_flows_share_fairly() {
        let mut sim = FluidSim::new();
        let link = sim.add_resource("link", 100.0);
        let a = sim.start_flow(100.0, &Route::unit([link]));
        let b = sim.start_flow(100.0, &Route::unit([link]));
        approx(sim.flow_rate(a), 50.0);
        approx(sim.flow_rate(b), 50.0);
        let (t, done) = sim.advance_to_next_completion().unwrap();
        assert_eq!(done.len(), 2);
        approx(t.as_secs_f64(), 2.0);
    }

    #[test]
    fn remaining_flow_speeds_up_after_completion() {
        let mut sim = FluidSim::new();
        let link = sim.add_resource("link", 100.0);
        let _a = sim.start_flow(50.0, &Route::unit([link]));
        let b = sim.start_flow(100.0, &Route::unit([link]));
        // Both run at 50; a finishes at t=1 with b having 50 left.
        let (t1, done1) = sim.advance_to_next_completion().unwrap();
        approx(t1.as_secs_f64(), 1.0);
        assert_eq!(done1.len(), 1);
        approx(sim.flow_rate(b), 100.0);
        let (t2, done2) = sim.advance_to_next_completion().unwrap();
        approx(t2.as_secs_f64(), 1.5);
        assert_eq!(done2, vec![b]);
    }

    #[test]
    fn max_min_respects_multiple_bottlenecks() {
        // Classic 3-flow example: A uses link1, B uses link2, C uses both.
        // link1 cap 10, link2 cap 4. Max-min: C and B share link2 at 2 each;
        // A then gets the rest of link1 = 8.
        let mut sim = FluidSim::new();
        let l1 = sim.add_resource("l1", 10.0);
        let l2 = sim.add_resource("l2", 4.0);
        let a = sim.start_flow(100.0, &Route::unit([l1]));
        let b = sim.start_flow(100.0, &Route::unit([l2]));
        let c = sim.start_flow(100.0, &Route::unit([l1, l2]));
        approx(sim.flow_rate(b), 2.0);
        approx(sim.flow_rate(c), 2.0);
        approx(sim.flow_rate(a), 8.0);
    }

    #[test]
    fn weights_amplify_consumption() {
        // One unit of this flow consumes 2 units of link capacity, so a
        // 100-cap link moves it at 50.
        let mut sim = FluidSim::new();
        let link = sim.add_resource("link", 100.0);
        let f = sim.start_flow(100.0, &Route::weighted([(link, 2.0)]));
        approx(sim.flow_rate(f), 50.0);
    }

    #[test]
    fn duplicate_resource_in_route_accumulates_weight() {
        let mut sim = FluidSim::new();
        let link = sim.add_resource("link", 100.0);
        let f = sim.start_flow(100.0, &Route::unit([link, link]));
        approx(sim.flow_rate(f), 50.0);
    }

    #[test]
    fn duplicate_resource_route_counts_once_in_index() {
        // A route crossing the same resource twice: the normalized weight
        // accumulates (2×), but the flow index and load bookkeeping must
        // count the flow exactly once.
        let mut sim = FluidSim::new();
        let link = sim.add_resource("link", 100.0);
        let other = sim.add_resource("other", 100.0);
        let f = sim.start_flow(100.0, &Route::unit([link, other, link]));
        approx(sim.flow_rate(f), 50.0);
        assert_eq!(sim.flows_through(link), 1);
        assert_eq!(sim.flows_through(other), 1);
        approx(sim.resource_load(link), 100.0);
        approx(sim.resource_load(other), 50.0);
        let (_, done) = sim.advance_to_next_completion().unwrap();
        assert_eq!(done, vec![f]);
        assert_eq!(sim.flows_through(link), 0);
        approx(sim.resource_load(link), 0.0);
    }

    #[test]
    fn rate_cap_limits_aggregate() {
        let mut sim = FluidSim::new();
        let link = sim.add_resource("link", 100.0);
        sim.set_rate_cap(link, 10.0).unwrap();
        let a = sim.start_flow(100.0, &Route::unit([link]));
        let b = sim.start_flow(100.0, &Route::unit([link]));
        approx(sim.flow_rate(a), 5.0);
        approx(sim.flow_rate(b), 5.0);
        sim.set_rate_cap(link, f64::INFINITY.min(1e18)).unwrap();
        approx(sim.flow_rate(a), 50.0);
    }

    #[test]
    fn degrade_shrinks_rates_and_restore_recovers() {
        let mut sim = FluidSim::new();
        let link = sim.add_resource("link", 100.0);
        let f = sim.start_flow(1000.0, &Route::unit([link]));
        approx(sim.flow_rate(f), 100.0);
        // Link trains down to a quarter speed mid-flow.
        sim.degrade(link, 0.25).unwrap();
        approx(sim.degradation(link), 0.25);
        approx(sim.effective_capacity(link), 25.0);
        approx(sim.flow_rate(f), 25.0);
        // Flash cut over: full speed again.
        sim.restore(link).unwrap();
        approx(sim.flow_rate(f), 100.0);
    }

    #[test]
    fn degrade_composes_with_rate_cap() {
        let mut sim = FluidSim::new();
        let link = sim.add_resource("link", 100.0);
        sim.set_rate_cap(link, 40.0).unwrap();
        sim.degrade(link, 0.5).unwrap();
        // min(100×0.5, cap 40) = 40: the tighter constraint wins.
        approx(sim.effective_capacity(link), 40.0);
        sim.degrade(link, 0.1).unwrap();
        approx(sim.effective_capacity(link), 10.0);
        let f = sim.start_flow(100.0, &Route::unit([link]));
        approx(sim.flow_rate(f), 10.0);
    }

    #[test]
    fn degraded_link_delays_completion() {
        let mut sim = FluidSim::new();
        let link = sim.add_resource("link", 100.0);
        sim.degrade(link, 0.5).unwrap();
        let f = sim.start_flow(100.0, &Route::unit([link]));
        let (t, done) = sim.advance_to_next_completion().unwrap();
        assert_eq!(done, vec![f]);
        approx(t.as_secs_f64(), 2.0);
    }

    #[test]
    fn invalid_inputs_return_typed_errors_not_panics() {
        let mut sim = FluidSim::new();
        let link = sim.add_resource("link", 100.0);
        // Out-of-range degrade factors.
        for bad in [0.0, -1.0, 1.5, f64::NAN] {
            let err = sim.degrade(link, bad).unwrap_err();
            assert_eq!(err.kind(), FfKind::Config, "factor {bad}");
        }
        // Non-positive / NaN rate caps.
        for bad in [0.0, -5.0, f64::NAN] {
            let err = sim.set_rate_cap(link, bad).unwrap_err();
            assert_eq!(err.kind(), FfKind::Config, "cap {bad}");
        }
        // Unknown resources on all three entry points.
        let ghost = ResourceId(99);
        assert_eq!(sim.degrade(ghost, 0.5).unwrap_err().kind(), FfKind::Config);
        assert_eq!(sim.restore(ghost).unwrap_err().kind(), FfKind::Config);
        assert_eq!(
            sim.set_rate_cap(ghost, 1.0).unwrap_err().kind(),
            FfKind::Config
        );
        // The failed calls left no dirty state behind: rates unchanged.
        let f = sim.start_flow(100.0, &Route::unit([link]));
        approx(sim.flow_rate(f), 100.0);
        assert_eq!(sim.degradation(link), 1.0);
    }

    #[test]
    fn cancel_returns_remaining_work() {
        let mut sim = FluidSim::new();
        let link = sim.add_resource("link", 100.0);
        let f = sim.start_flow(100.0, &Route::unit([link]));
        sim.advance_to(SimTime::from_secs(0) + SimDuration::from_millis(500));
        let left = sim.cancel_flow(f);
        approx(left, 50.0);
        assert_eq!(sim.active_flows(), 0);
    }

    #[test]
    fn drain_visits_all_completions() {
        let mut sim = FluidSim::new();
        let link = sim.add_resource("link", 100.0);
        for i in 1..=5 {
            sim.start_flow(10.0 * i as f64, &Route::unit([link]));
        }
        let mut seen = Vec::new();
        sim.drain(|_, _, id| seen.push(id));
        assert_eq!(seen.len(), 5);
        assert_eq!(sim.active_flows(), 0);
    }

    #[test]
    fn drain_callback_can_chain_flows() {
        let mut sim = FluidSim::new();
        let link = sim.add_resource("link", 100.0);
        sim.start_flow(100.0, &Route::unit([link]));
        let mut chained = false;
        let mut completions = 0;
        sim.drain(|sim, _, _| {
            completions += 1;
            if !chained {
                chained = true;
                sim.start_flow(200.0, &Route::unit([link]));
            }
        });
        assert_eq!(completions, 2);
        approx(sim.now().as_secs_f64(), 3.0);
    }

    #[test]
    fn utilization_stats_accumulate() {
        let mut sim = FluidSim::new();
        let link = sim.add_resource("link", 100.0);
        sim.start_flow(100.0, &Route::unit([link]));
        sim.advance_to_next_completion();
        let s = sim.stats(link);
        approx(s.units_served(), 100.0);
        approx(s.utilization(), 1.0);
    }

    #[test]
    fn idle_resource_has_zero_utilization() {
        let mut sim = FluidSim::new();
        let busy = sim.add_resource("busy", 100.0);
        let idle = sim.add_resource("idle", 100.0);
        sim.start_flow(100.0, &Route::unit([busy]));
        sim.advance_to_next_completion();
        approx(sim.stats(idle).utilization(), 0.0);
    }

    #[test]
    #[should_panic(expected = "route must be non-empty")]
    fn empty_route_rejected() {
        let mut sim = FluidSim::new();
        sim.start_flow(1.0, &Route::default());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let mut sim = FluidSim::new();
        sim.add_resource("bad", 0.0);
    }

    #[test]
    fn many_flows_high_fan_in_is_stable() {
        let mut sim = FluidSim::new();
        let nic = sim.add_resource("nic", 25e9);
        let links: Vec<_> = (0..64)
            .map(|i| sim.add_resource(format!("l{i}"), 25e9))
            .collect();
        for l in &links {
            sim.start_flow(1e9, &Route::unit([*l, nic]));
        }
        // All 64 flows funnel into one NIC: each gets 25e9/64.
        let ids: Vec<FlowId> = (0..64).map(FlowId).collect();
        for id in ids {
            approx(sim.flow_rate(id), 25e9 / 64.0);
        }
        let (t, done) = sim.advance_to_next_completion().unwrap();
        assert_eq!(done.len(), 64);
        approx(t.as_secs_f64(), 64.0 * 1e9 / 25e9);
    }

    #[test]
    fn disjoint_components_solve_independently() {
        // Two unrelated links: finishing a flow on one must not disturb the
        // other's flow state (its rate, and thus predicted finish, is
        // untouched by the incremental recompute).
        let mut sim = FluidSim::new();
        let l1 = sim.add_resource("l1", 100.0);
        let l2 = sim.add_resource("l2", 100.0);
        let a = sim.start_flow(50.0, &Route::unit([l1]));
        let b = sim.start_flow(200.0, &Route::unit([l2]));
        let (t1, done1) = sim.advance_to_next_completion().unwrap();
        assert_eq!(done1, vec![a]);
        approx(t1.as_secs_f64(), 0.5);
        let (t2, done2) = sim.advance_to_next_completion().unwrap();
        assert_eq!(done2, vec![b]);
        approx(t2.as_secs_f64(), 2.0);
    }

    #[test]
    fn reference_mode_matches_incremental_bitwise() {
        // The two solver modes share the per-component fill arithmetic, so
        // rates and completion instants must agree exactly (==, not approx).
        let run = |mode: SolverMode| {
            let mut sim = FluidSim::with_solver(mode);
            let r: Vec<_> = (0..4)
                .map(|i| sim.add_resource(format!("r{i}"), 10.0 + 3.0 * i as f64))
                .collect();
            sim.start_flow(17.0, &Route::unit([r[0], r[1]]));
            sim.start_flow(23.0, &Route::unit([r[1], r[2]]));
            sim.start_flow(11.0, &Route::unit([r[3]]));
            sim.start_flow(29.0, &Route::weighted([(r[0], 2.0), (r[3], 0.5)]));
            let mut events = Vec::new();
            sim.degrade(r[1], 0.6).unwrap();
            while let Some((t, done)) = sim.advance_to_next_completion() {
                for id in done {
                    events.push((t, id));
                }
                if events.len() == 2 {
                    sim.restore(r[1]).unwrap();
                    sim.start_flow(5.0, &Route::unit([r[2]]));
                }
            }
            events
        };
        assert_eq!(run(SolverMode::Incremental), run(SolverMode::Reference));
    }

    #[test]
    fn slot_arena_recycles_without_confusing_identity() {
        // Cancel/complete flows, then start new ones: recycled slots must
        // not resurrect stale completion entries or confuse rates.
        let mut sim = FluidSim::new();
        let link = sim.add_resource("link", 100.0);
        let a = sim.start_flow(100.0, &Route::unit([link]));
        let b = sim.start_flow(100.0, &Route::unit([link]));
        sim.flow_rate(a); // force a recompute so heap entries exist
        assert_eq!(sim.cancel_flow(a), 100.0);
        // New flow reuses a's slot; its identity must be its own.
        let c = sim.start_flow(10.0, &Route::unit([link]));
        approx(sim.flow_rate(c), 50.0);
        let (_, done) = sim.advance_to_next_completion().unwrap();
        assert_eq!(done, vec![c]);
        let (_, done) = sim.advance_to_next_completion().unwrap();
        assert_eq!(done, vec![b]);
        assert_eq!(sim.active_flows(), 0);
        let s = sim.solver_stats();
        assert_eq!(s.flow_starts, 3);
        assert_eq!(s.cancels, 1);
        assert_eq!(s.completions, 2);
    }

    #[test]
    fn sharded_completions_pop_in_global_time_order() {
        // Flows whose home resources land in different shards (ids 0 and
        // ≥256) must still complete in global (time, id) order.
        let mut sim = FluidSim::new();
        let r0 = sim.add_resource("zone0", 100.0);
        for i in 1..300 {
            sim.add_resource(format!("pad{i}"), 1.0);
        }
        let far = sim.add_resource("zone1", 100.0);
        assert!(far.0 >= SHARD_SPAN);
        let slow = sim.start_flow(200.0, &Route::unit([r0]));
        let fast = sim.start_flow(50.0, &Route::unit([far]));
        let medium = sim.start_flow(100.0, &Route::unit([far]));
        // far link is shared: fast at 50+? both run at 50 → fast done t=1.
        let (t1, d1) = sim.advance_to_next_completion().unwrap();
        assert_eq!(d1, vec![fast]);
        approx(t1.as_secs_f64(), 1.0);
        let (t2, d2) = sim.advance_to_next_completion().unwrap();
        assert_eq!(d2, vec![medium]);
        approx(t2.as_secs_f64(), 1.5);
        let (t3, d3) = sim.advance_to_next_completion().unwrap();
        assert_eq!(d3, vec![slow]);
        approx(t3.as_secs_f64(), 2.0);
    }

    #[test]
    #[should_panic(expected = "pending completion entries")]
    fn cleared_completions_are_detected() {
        let mut sim = FluidSim::new();
        let link = sim.add_resource("link", 100.0);
        sim.start_flow(100.0, &Route::unit([link]));
        sim.flow_rate(FlowId(0));
        sim.clear_completions();
        sim.advance_to_next_completion();
    }

    #[test]
    fn parallel_solve_is_bitwise_equal_to_serial() {
        // A multi-component topology solved serially and with the parallel
        // path forced on (threshold 0, several lanes): every rate, load and
        // completion instant must agree bit-for-bit.
        let run = |threads: usize, threshold: u64| {
            let mut sim = FluidSim::new();
            sim.set_threads(threads);
            sim.set_par_threshold(threshold);
            let res: Vec<_> = (0..24)
                .map(|i| sim.add_resource(format!("r{i}"), 50.0 + 7.0 * (i % 5) as f64))
                .collect();
            // Six disjoint components of four resources each.
            for c in 0..6 {
                let base = c * 4;
                for j in 0..5 {
                    let a = res[base + j % 4];
                    let b = res[base + (j + 1) % 4];
                    sim.start_flow(40.0 + 3.0 * j as f64, &Route::unit([a, b]));
                }
            }
            let mut events: Vec<(u64, Vec<u64>)> = Vec::new();
            let mut rates: Vec<f64> = Vec::new();
            for c in 0..6 {
                rates.push(sim.flow_rate(FlowId(c * 5)));
            }
            while let Some((t, done)) = sim.advance_to_next_completion() {
                events.push((t.as_nanos(), done.iter().map(|f| f.0).collect()));
            }
            (events, rates)
        };
        let serial = run(1, u64::MAX);
        for threads in [2, 4, 8] {
            assert_eq!(run(threads, 0), serial, "threads {threads}");
        }
    }
}
