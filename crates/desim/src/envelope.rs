//! Piecewise-constant degradation envelopes.
//!
//! The fluid solver models capacity changes as instantaneous edges
//! (`degrade`/`restore`), but gray failures evolve *over time*: a
//! straggler ramps in, a flapping link oscillates. An [`Envelope`]
//! bridges the two — it discretizes a time-varying capacity profile
//! into a deterministic sequence of `(offset, factor)` phases that a
//! driver replays as ordinary degrade edges. `factor` is the remaining
//! fraction of nominal capacity; the final phase of every envelope is
//! `1.0`, the restore back to nominal.

use crate::time::SimDuration;

/// How many steps a ramp is discretized into. Coarse on purpose: the
/// point of a ramp is that successive probe samples see a *gradual*
/// drop that an adaptive baseline can mistakenly learn, and a handful
/// of steps reproduces that while keeping event counts bounded.
pub const RAMP_STEPS: u32 = 4;

/// A phase boundary: at `offset` after the envelope starts, capacity
/// becomes `factor × nominal` and holds until the next phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase {
    /// Offset from envelope start.
    pub offset: SimDuration,
    /// Remaining fraction of nominal capacity, in `(0, 1]`.
    pub factor: f64,
}

/// A finite piecewise-constant capacity profile. Phases are strictly
/// time-ordered and always end with a restore to `factor = 1.0`.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    phases: Vec<Phase>,
}

impl Envelope {
    /// A linear ramp from nominal down to `target` over `onset_s`,
    /// holding until `duration_s`, then restoring. `onset_s == 0`
    /// degenerates to a single step change. The ramp is discretized
    /// into [`RAMP_STEPS`] equal treads.
    pub fn ramp(target: f64, onset_s: f64, duration_s: f64) -> Envelope {
        assert!(
            target > 0.0 && target < 1.0,
            "ramp target must be in (0, 1), got {target}"
        );
        assert!(onset_s >= 0.0 && onset_s.is_finite(), "bad onset");
        assert!(duration_s > 0.0 && duration_s.is_finite(), "bad duration");
        let onset_s = onset_s.min(duration_s);
        let mut phases = Vec::new();
        if onset_s <= 0.0 {
            phases.push(Phase {
                offset: SimDuration::from_nanos(0),
                factor: target,
            });
        } else {
            for step in 0..RAMP_STEPS {
                let frac = (step + 1) as f64 / RAMP_STEPS as f64;
                phases.push(Phase {
                    offset: SimDuration::from_secs_f64(onset_s * step as f64 / RAMP_STEPS as f64),
                    factor: 1.0 + (target - 1.0) * frac,
                });
            }
        }
        phases.push(Phase {
            offset: SimDuration::from_secs_f64(duration_s),
            factor: 1.0,
        });
        Envelope::checked(phases)
    }

    /// A square wave: capacity drops to `low` for `duty × period_s` at
    /// the start of each period, recovers for the rest, repeating until
    /// `duration_s`, then restores. Models a flapping link.
    pub fn square(period_s: f64, duty: f64, low: f64, duration_s: f64) -> Envelope {
        assert!(period_s > 0.0 && period_s.is_finite(), "bad period");
        assert!(duty > 0.0 && duty < 1.0, "duty must be in (0, 1)");
        assert!(low > 0.0 && low < 1.0, "low must be in (0, 1)");
        assert!(duration_s > 0.0 && duration_s.is_finite(), "bad duration");
        let mut phases = Vec::new();
        let mut t = 0.0f64;
        while t < duration_s {
            phases.push(Phase {
                offset: SimDuration::from_secs_f64(t),
                factor: low,
            });
            let up_at = t + duty * period_s;
            if up_at < duration_s {
                phases.push(Phase {
                    offset: SimDuration::from_secs_f64(up_at),
                    factor: 1.0,
                });
            }
            t += period_s;
        }
        let last = phases.last().map(|p| p.factor).unwrap_or(0.0);
        if last != 1.0 {
            phases.push(Phase {
                offset: SimDuration::from_secs_f64(duration_s),
                factor: 1.0,
            });
        }
        Envelope::checked(phases)
    }

    fn checked(phases: Vec<Phase>) -> Envelope {
        assert!(!phases.is_empty(), "an envelope needs at least one phase");
        for w in phases.windows(2) {
            assert!(
                w[0].offset < w[1].offset,
                "phases must be strictly time-ordered"
            );
        }
        for p in &phases {
            assert!(p.factor > 0.0 && p.factor <= 1.0, "factor out of range");
        }
        assert_eq!(
            phases.last().unwrap().factor,
            1.0,
            "envelopes must end restored"
        );
        Envelope { phases }
    }

    /// The phase boundaries, strictly time-ordered.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// The capacity factor in effect `at` nanoseconds after envelope
    /// start (1.0 before the first phase).
    pub fn factor_at(&self, at: SimDuration) -> f64 {
        let mut f = 1.0;
        for p in &self.phases {
            if p.offset <= at {
                f = p.factor;
            } else {
                break;
            }
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramps_descend_monotonically_then_restore() {
        let e = Envelope::ramp(0.25, 60.0, 600.0);
        let ph = e.phases();
        assert_eq!(ph.len() as u32, RAMP_STEPS + 1);
        assert_eq!(ph[0].offset, SimDuration::from_nanos(0));
        for w in ph[..ph.len() - 1].windows(2) {
            assert!(w[1].factor < w[0].factor, "ramp must descend");
        }
        assert!(
            (ph[ph.len() - 2].factor - 0.25).abs() < 1e-12,
            "hits target"
        );
        assert_eq!(ph.last().unwrap().factor, 1.0);
        assert_eq!(ph.last().unwrap().offset, SimDuration::from_secs(600));
    }

    #[test]
    fn zero_onset_is_a_step_change() {
        let e = Envelope::ramp(0.5, 0.0, 100.0);
        assert_eq!(e.phases().len(), 2);
        assert_eq!(e.factor_at(SimDuration::from_secs(1)), 0.5);
        assert_eq!(e.factor_at(SimDuration::from_secs(100)), 1.0);
    }

    #[test]
    fn square_wave_alternates_and_ends_restored() {
        let e = Envelope::square(30.0, 0.5, 0.05, 95.0);
        let ph = e.phases();
        // Periods at 0, 30, 60, 90; the 90 s period is cut by the
        // 95 s duration so its recovery is the terminal restore.
        assert_eq!(e.factor_at(SimDuration::from_secs(5)), 0.05);
        assert_eq!(e.factor_at(SimDuration::from_secs(20)), 1.0);
        assert_eq!(e.factor_at(SimDuration::from_secs(35)), 0.05);
        assert_eq!(e.factor_at(SimDuration::from_secs(92)), 0.05);
        assert_eq!(e.factor_at(SimDuration::from_secs(95)), 1.0);
        assert_eq!(ph.last().unwrap().factor, 1.0);
    }

    #[test]
    fn factor_before_first_phase_is_nominal() {
        let e = Envelope::ramp(0.5, 100.0, 200.0);
        // First tread starts at offset 0 in ramp(); build a square wave
        // instead where phase 0 is at t=0 too — nominal only before 0.
        assert!(e.factor_at(SimDuration::from_nanos(0)) < 1.0);
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1)")]
    fn degenerate_ramp_target_is_rejected() {
        let _ = Envelope::ramp(1.0, 10.0, 100.0);
    }
}
