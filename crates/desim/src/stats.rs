//! Utilization accounting and summary statistics.

/// Running utilization statistics for one resource.
///
/// Accumulated by the fluid engine every time simulated time advances:
/// `busy_integral` is ∫ load(t) dt (units), `weighted_time` is ∫ cap dt, and
/// `units_served` equals the busy integral (load × time = units moved).
#[derive(Debug, Clone, Default)]
pub struct ResourceStats {
    busy_integral: f64,
    cap_integral: f64,
    elapsed: f64,
    peak_load_frac: f64,
}

impl ResourceStats {
    /// Account an interval of `dt` seconds at instantaneous `load` against
    /// `capacity`. Zero (or negative) capacity is a no-op: a resource that
    /// can serve nothing has nothing to account, and accumulating a busy
    /// integral against it would claim units moved through a dead conduit.
    pub fn record(&mut self, dt: f64, load: f64, capacity: f64) {
        if capacity <= 0.0 {
            debug_assert!(
                load == 0.0,
                "recording load {load} against zero-capacity resource"
            );
            return;
        }
        self.busy_integral += load * dt;
        self.cap_integral += capacity * dt;
        self.elapsed += dt;
        self.peak_load_frac = self.peak_load_frac.max(load / capacity);
    }

    /// Total units moved through the resource.
    pub fn units_served(&self) -> f64 {
        self.busy_integral
    }

    /// ∫ capacity dt — the units the resource *could* have served.
    pub fn capacity_integral(&self) -> f64 {
        self.cap_integral
    }

    /// Time-averaged fraction of capacity in use (0..=1).
    pub fn utilization(&self) -> f64 {
        if self.cap_integral == 0.0 {
            0.0
        } else {
            self.busy_integral / self.cap_integral
        }
    }

    /// Peak instantaneous load as a fraction of capacity.
    pub fn peak_utilization(&self) -> f64 {
        self.peak_load_frac
    }

    /// Simulated seconds observed.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed
    }
}

/// Streaming summary of a sample set: count / mean / min / max / stddev.
///
/// Used throughout the benchmark harness to report experiment series
/// without storing every sample.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one sample (Welford's online update).
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Smallest sample (NaN if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest sample (NaN if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Population standard deviation (0 with fewer than two samples).
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / self.n as f64).sqrt()
        }
    }

    /// Merge another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let d = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += d * n2 / n;
        self.m2 += other.m2 + d * d * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.add(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn summary_merge_matches_combined() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Summary::new();
        for &x in &data {
            whole.add(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &x in &data[..37] {
            a.add(x);
        }
        for &x in &data[37..] {
            b.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.stddev() - whole.stddev()).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_is_safe() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
    }

    #[test]
    fn merge_into_empty() {
        let mut a = Summary::new();
        let mut b = Summary::new();
        b.add(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 1);
        assert_eq!(a.mean(), 3.0);
    }

    #[test]
    fn zero_capacity_record_is_noop() {
        let mut st = ResourceStats::default();
        st.record(1.0, 0.0, 0.0);
        st.record(2.5, 0.0, -1.0);
        assert_eq!(st.units_served(), 0.0);
        assert_eq!(st.capacity_integral(), 0.0);
        assert_eq!(st.elapsed_secs(), 0.0);
        assert_eq!(st.utilization(), 0.0);
        assert_eq!(st.peak_utilization(), 0.0);
        // A later real interval accounts normally.
        st.record(1.0, 25.0, 100.0);
        assert!((st.utilization() - 0.25).abs() < 1e-12);
        assert!((st.elapsed_secs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn resource_stats_partial_load() {
        let mut st = ResourceStats::default();
        st.record(1.0, 50.0, 100.0);
        st.record(1.0, 0.0, 100.0);
        assert!((st.utilization() - 0.25).abs() < 1e-12);
        assert!((st.units_served() - 50.0).abs() < 1e-12);
        assert!((st.peak_utilization() - 0.5).abs() < 1e-12);
        assert!((st.elapsed_secs() - 2.0).abs() < 1e-12);
    }
}
