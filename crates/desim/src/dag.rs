//! Dependency-graph execution on top of the fluid engine.
//!
//! Communication/computation schedules — an HFReduce chunk pipeline, an FSDP
//! training step, a checkpoint save — are DAGs whose nodes are units of
//! [`Work`] and whose edges are happens-before dependencies. [`DagSim`]
//! executes such a DAG over a [`FluidSim`]: a node starts the instant its
//! last dependency finishes, transfers contend for shared resources under
//! max-min fairness, and the result is the full timeline (per-node start and
//! finish times, makespan, resource utilizations).

use crate::fluid::{FlowId, FluidSim, Route};
use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};
use std::collections::HashMap;

/// Identifies a node added to a [`DagSim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

/// One unit of schedulable work.
#[derive(Debug, Clone)]
pub enum Work {
    /// Move `work` units across `route`, contending with other flows.
    /// Non-positive work degrades to an instantaneous gate.
    Transfer {
        /// Units of work (bytes, FLOPs) to move.
        work: f64,
        /// Resources traversed, with per-resource consumption weights.
        route: Route,
    },
    /// A fixed latency (e.g. a kernel-launch overhead or an RTT), consuming
    /// no shared resources.
    Delay(SimDuration),
    /// A zero-duration synchronization point joining many dependencies.
    Gate,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Waiting,
    Running,
    Done,
}

struct Node {
    work: Work,
    label: String,
    deps_remaining: usize,
    dependents: Vec<NodeId>,
    state: State,
    start: Option<SimTime>,
    finish: Option<SimTime>,
}

/// Executes a DAG of [`Work`] nodes over a [`FluidSim`]. See the
/// [module docs](self).
pub struct DagSim {
    fluid: FluidSim,
    nodes: Vec<Node>,
    delays: EventQueue<NodeId>,
    flow_to_node: HashMap<FlowId, NodeId>,
    ran: bool,
}

impl DagSim {
    /// Wrap a fluid simulator (which should already have its resources
    /// registered and its clock at the desired start time).
    pub fn new(fluid: FluidSim) -> Self {
        let mut delays = EventQueue::new();
        // Keep the delay queue's "past" guard consistent with a fluid sim
        // whose clock isn't at zero.
        if fluid.now() > SimTime::ZERO {
            delays.schedule(fluid.now(), NodeId(usize::MAX));
            delays.pop();
        }
        DagSim {
            fluid,
            nodes: Vec::new(),
            delays,
            flow_to_node: HashMap::new(),
            ran: false,
        }
    }

    /// Access the underlying fluid simulator (e.g. to register resources).
    pub fn fluid_mut(&mut self) -> &mut FluidSim {
        &mut self.fluid
    }

    /// Read-only access to the underlying fluid simulator.
    pub fn fluid(&self) -> &FluidSim {
        &self.fluid
    }

    /// Consume the DAG, returning the fluid simulator for post-run stats.
    pub fn into_fluid(self) -> FluidSim {
        self.fluid
    }

    /// Add a node depending on `deps`. Dependencies must already exist.
    pub fn add(&mut self, work: Work, deps: &[NodeId]) -> NodeId {
        self.add_labeled(String::new(), work, deps)
    }

    /// Add a node with a label (used in deadlock diagnostics and timelines).
    pub fn add_labeled(&mut self, label: impl Into<String>, work: Work, deps: &[NodeId]) -> NodeId {
        assert!(!self.ran, "DagSim: cannot add nodes after run()");
        if let Work::Transfer { work: w, .. } = &work {
            assert!(
                !w.is_nan(),
                "Transfer work is NaN — an upstream model computed garbage"
            );
        }
        let id = NodeId(self.nodes.len());
        for d in deps {
            assert!(d.0 < self.nodes.len(), "unknown dependency {d:?}");
            assert!(d.0 != id.0, "self-dependency");
        }
        self.nodes.push(Node {
            work,
            label: label.into(),
            deps_remaining: 0,
            dependents: Vec::new(),
            state: State::Waiting,
            start: None,
            finish: None,
        });
        // Deduplicate dependencies so deps_remaining is correct even if a
        // caller lists the same predecessor twice.
        let mut uniq: Vec<NodeId> = deps.to_vec();
        uniq.sort_unstable();
        uniq.dedup();
        self.nodes[id.0].deps_remaining = uniq.len();
        for d in uniq {
            self.nodes[d.0].dependents.push(id);
        }
        id
    }

    /// Execute the whole DAG; returns the makespan (finish time of the last
    /// node). Panics if any node can never run (dependency cycle) — DAGs
    /// built by this crate's callers are programmatic, so that is a bug.
    pub fn run(&mut self) -> SimTime {
        assert!(!self.ran, "DagSim::run called twice");
        self.ran = true;
        let ready: Vec<NodeId> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.deps_remaining == 0)
            .map(|(i, _)| NodeId(i))
            .collect();
        for id in ready {
            self.start_node(id);
        }
        loop {
            let next_delay = self.delays.peek_time();
            let next_flow = self.fluid.next_completion_time();
            match (next_delay, next_flow) {
                (None, None) => break,
                (Some(td), Some(tf)) if td <= tf => self.fire_delay(),
                (Some(_), None) => self.fire_delay(),
                (_, Some(_)) => self.fire_flows(),
            }
        }
        let unfinished: Vec<&str> = self
            .nodes
            .iter()
            .filter(|n| n.state != State::Done)
            .map(|n| n.label.as_str())
            .collect();
        assert!(
            unfinished.is_empty(),
            "DagSim: deadlock, {} nodes never ran (first labels: {:?})",
            unfinished.len(),
            &unfinished[..unfinished.len().min(5)]
        );
        self.nodes
            .iter()
            .filter_map(|n| n.finish)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    fn fire_delay(&mut self) {
        let (t, id) = self.delays.pop().expect("delay peeked");
        self.fluid.advance_to(t);
        self.complete_node(id, t);
    }

    fn fire_flows(&mut self) {
        let (t, done) = self
            .fluid
            .advance_to_next_completion()
            .expect("flow completion peeked");
        for fid in done {
            let node = self
                .flow_to_node
                .remove(&fid)
                .expect("flow belongs to a node");
            self.complete_node(node, t);
        }
    }

    fn start_node(&mut self, id: NodeId) {
        let now = self.fluid.now();
        {
            let n = &mut self.nodes[id.0];
            debug_assert_eq!(n.state, State::Waiting);
            n.state = State::Running;
            n.start = Some(now);
        }
        let work = self.nodes[id.0].work.clone();
        match work {
            Work::Transfer { work, route } if work > 0.0 => {
                let fid = self.fluid.start_flow(work, &route);
                self.flow_to_node.insert(fid, id);
            }
            Work::Transfer { .. } | Work::Gate => {
                // Instantaneous: complete via the delay queue at `now` so
                // same-instant ordering stays FIFO and deterministic.
                self.delays.schedule(now, id);
            }
            Work::Delay(d) => {
                self.delays.schedule(now + d, id);
            }
        }
    }

    fn complete_node(&mut self, id: NodeId, t: SimTime) {
        let dependents = {
            let n = &mut self.nodes[id.0];
            debug_assert_eq!(n.state, State::Running);
            n.state = State::Done;
            n.finish = Some(t);
            std::mem::take(&mut n.dependents)
        };
        for d in dependents {
            let n = &mut self.nodes[d.0];
            n.deps_remaining -= 1;
            if n.deps_remaining == 0 {
                self.start_node(d);
            }
        }
    }

    /// Start time of a node (after [`run`](Self::run)).
    pub fn start_time(&self, id: NodeId) -> Option<SimTime> {
        self.nodes[id.0].start
    }

    /// Finish time of a node (after [`run`](Self::run)).
    pub fn finish_time(&self, id: NodeId) -> Option<SimTime> {
        self.nodes[id.0].finish
    }

    /// Number of nodes in the DAG.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// The executed timeline: `(label, start, finish)` for every *labeled*
    /// node, ordered by start time — a Gantt view of the schedule. Call
    /// after [`run`](Self::run).
    pub fn timeline(&self) -> Vec<(String, SimTime, SimTime)> {
        let mut out: Vec<(String, SimTime, SimTime)> = self
            .nodes
            .iter()
            .filter(|n| !n.label.is_empty())
            .filter_map(|n| Some((n.label.clone(), n.start?, n.finish?)))
            .collect();
        out.sort_by_key(|&(_, s, f)| (s, f));
        out
    }

    /// True if the DAG has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(t: SimTime) -> f64 {
        t.as_secs_f64()
    }

    #[test]
    fn serial_chain_sums_durations() {
        let mut fluid = FluidSim::new();
        let link = fluid.add_resource("link", 10.0);
        let mut dag = DagSim::new(fluid);
        let a = dag.add(
            Work::Transfer {
                work: 10.0,
                route: Route::unit([link]),
            },
            &[],
        );
        let b = dag.add(
            Work::Transfer {
                work: 20.0,
                route: Route::unit([link]),
            },
            &[a],
        );
        let makespan = dag.run();
        assert!((secs(makespan) - 3.0).abs() < 1e-6);
        assert!((secs(dag.finish_time(a).unwrap()) - 1.0).abs() < 1e-6);
        assert!((secs(dag.finish_time(b).unwrap()) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn parallel_transfers_share_the_link() {
        let mut fluid = FluidSim::new();
        let link = fluid.add_resource("link", 10.0);
        let mut dag = DagSim::new(fluid);
        for _ in 0..2 {
            dag.add(
                Work::Transfer {
                    work: 10.0,
                    route: Route::unit([link]),
                },
                &[],
            );
        }
        assert!((secs(dag.run()) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn parallel_transfers_on_distinct_links_overlap() {
        let mut fluid = FluidSim::new();
        let l1 = fluid.add_resource("l1", 10.0);
        let l2 = fluid.add_resource("l2", 10.0);
        let mut dag = DagSim::new(fluid);
        dag.add(
            Work::Transfer {
                work: 10.0,
                route: Route::unit([l1]),
            },
            &[],
        );
        dag.add(
            Work::Transfer {
                work: 10.0,
                route: Route::unit([l2]),
            },
            &[],
        );
        assert!((secs(dag.run()) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn delay_and_gate_nodes() {
        let mut dag = DagSim::new(FluidSim::new());
        let a = dag.add(Work::Delay(SimDuration::from_millis(100)), &[]);
        let b = dag.add(Work::Delay(SimDuration::from_millis(200)), &[]);
        let g = dag.add(Work::Gate, &[a, b]);
        let makespan = dag.run();
        assert_eq!(makespan, SimTime(200_000_000));
        assert_eq!(dag.finish_time(g).unwrap(), SimTime(200_000_000));
    }

    #[test]
    fn zero_work_transfer_is_instant() {
        let mut fluid = FluidSim::new();
        let link = fluid.add_resource("link", 10.0);
        let mut dag = DagSim::new(fluid);
        dag.add(
            Work::Transfer {
                work: 0.0,
                route: Route::unit([link]),
            },
            &[],
        );
        assert_eq!(dag.run(), SimTime::ZERO);
    }

    #[test]
    fn fan_out_fan_in_diamond() {
        // a -> {b, c} -> d, where b and c contend for the same link.
        let mut fluid = FluidSim::new();
        let link = fluid.add_resource("link", 10.0);
        let mut dag = DagSim::new(fluid);
        let a = dag.add(Work::Delay(SimDuration::from_secs(1)), &[]);
        let b = dag.add(
            Work::Transfer {
                work: 10.0,
                route: Route::unit([link]),
            },
            &[a],
        );
        let c = dag.add(
            Work::Transfer {
                work: 10.0,
                route: Route::unit([link]),
            },
            &[a],
        );
        let d = dag.add(Work::Gate, &[b, c]);
        let makespan = dag.run();
        // 1s delay + 2s of shared-link transfers.
        assert!((secs(makespan) - 3.0).abs() < 1e-6);
        assert_eq!(dag.finish_time(d).unwrap(), makespan);
        // b and c both started right when a finished.
        assert_eq!(dag.start_time(b).unwrap(), SimTime::from_secs(1));
        assert_eq!(dag.start_time(c).unwrap(), SimTime::from_secs(1));
    }

    #[test]
    fn pipelining_overlaps_independent_stages() {
        // Two-stage pipeline over distinct links, 3 chunks:
        // chunk i: stage1 on l1 (1s), then stage2 on l2 (1s), stage2 of
        // chunk i must also follow stage2 of chunk i-1 (ordered).
        // Total = 1 + 3 = 4s, not 6s.
        let mut fluid = FluidSim::new();
        let l1 = fluid.add_resource("l1", 10.0);
        let l2 = fluid.add_resource("l2", 10.0);
        let mut dag = DagSim::new(fluid);
        let mut prev_s1: Option<NodeId> = None;
        let mut prev_s2: Option<NodeId> = None;
        for _ in 0..3 {
            let mut deps1 = Vec::new();
            if let Some(p) = prev_s1 {
                deps1.push(p);
            }
            let s1 = dag.add(
                Work::Transfer {
                    work: 10.0,
                    route: Route::unit([l1]),
                },
                &deps1,
            );
            let mut deps2 = vec![s1];
            if let Some(p) = prev_s2 {
                deps2.push(p);
            }
            let s2 = dag.add(
                Work::Transfer {
                    work: 10.0,
                    route: Route::unit([l2]),
                },
                &deps2,
            );
            prev_s1 = Some(s1);
            prev_s2 = Some(s2);
        }
        assert!((secs(dag.run()) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn duplicate_deps_counted_once() {
        let mut dag = DagSim::new(FluidSim::new());
        let a = dag.add(Work::Delay(SimDuration::from_secs(1)), &[]);
        let b = dag.add(Work::Gate, &[a, a, a]);
        dag.run();
        assert_eq!(dag.finish_time(b).unwrap(), SimTime::from_secs(1));
    }

    #[test]
    fn empty_dag_runs() {
        let mut dag = DagSim::new(FluidSim::new());
        assert!(dag.is_empty());
        assert_eq!(dag.run(), SimTime::ZERO);
    }

    #[test]
    fn utilization_visible_after_into_fluid() {
        let mut fluid = FluidSim::new();
        let link = fluid.add_resource("link", 10.0);
        let mut dag = DagSim::new(fluid);
        dag.add(
            Work::Transfer {
                work: 10.0,
                route: Route::unit([link]),
            },
            &[],
        );
        dag.add(Work::Delay(SimDuration::from_secs(3)), &[]);
        dag.run();
        let mut fluid = dag.into_fluid();
        // Link busy for 1s out of 3s total.
        assert!((fluid.stats(link).utilization() - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "unknown dependency")]
    fn unknown_dependency_rejected() {
        let mut dag = DagSim::new(FluidSim::new());
        dag.add(Work::Gate, &[NodeId(7)]);
    }
}
