//! # ff-hw — in-node hardware model
//!
//! Models the Fire-Flyer 2 compute node of §III-A / Figure 4: eight PCIe
//! A100 GPUs and one 200 Gbps IB NIC hanging directly off two EPYC CPUs,
//! with the quirks the paper's performance analysis hinges on:
//!
//! * GPU5 and GPU6 share a PCIe root-complex port (Figure 4), whose uplink
//!   into the CPU fabric tops out around 37.5 GB/s (§IV-D3) — the reason
//!   HFReduce measures ~8 GB/s where the memory-bandwidth bound predicts
//!   ~12 GB/s.
//! * 16 channels of DDR4-3200 give ≈320 GB/s of practical host memory
//!   bandwidth, and HFReduce touches host memory 24× the gradient size
//!   (§IV-D3) — the memory-op weights are encoded in the route builders.
//! * EPYC Rome cannot chain PCIe writes, capping GPU↔NIC peer-to-peer at
//!   ≈9 GiB/s (§IV-D2) — the constraint that makes NCCL slow on this node.
//! * The optional NVLink bridge adds a 600 GB/s (300 GB/s per direction)
//!   path between paired GPUs (§V-B1).
//!
//! [`spec`] carries the Table I/II/IV constants; [`node`] registers a
//! node's conduits as `ff-desim` resources and builds weighted routes for
//! every transfer the reduction/training simulators need; [`gemm`] is the
//! GEMM throughput/time model; [`power`] the energy/cost side of Table II.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gemm;
pub mod link;
pub mod node;
pub mod power;
pub mod spec;

pub use gemm::{gemm_flops, gemm_time, GemmPrecision};
pub use link::LinkParams;
pub use node::{NodeHw, TransferMethod};
pub use spec::{GpuForm, NodeSpec, StorageNodeSpec};
