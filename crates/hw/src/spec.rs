//! Hardware constants from Tables I, II and IV.

/// Bytes/second of one 200 Gbps InfiniBand port (per direction).
pub const NIC_200G_BPS: f64 = 25e9;
/// Effective PCIe 4.0 x16 bandwidth per direction ("over 27 GB/s", §IV-D3).
pub const PCIE4_X16_BPS: f64 = 27e9;
/// EPYC Rome/Milan root-complex-port → CPU fabric bandwidth (§IV-D3).
pub const HOST_BRIDGE_BPS: f64 = 37.5e9;
/// Combined both-direction ceiling of a root port under simultaneous
/// bidirectional transfers — "this bandwidth decreases even further"
/// (§IV-D3). Calibrated so the HFReduce model lands in the paper's
/// measured 6.3–8.1 GB/s band instead of the 13.3 GB/s memory bound.
pub const HOST_BRIDGE_BIDIR_BPS: f64 = 40e9;
/// Practical memory bandwidth of 16 channels of DDR4-3200 (§IV-D3).
pub const MEM_BW_16CH_BPS: f64 = 320e9;
/// Practical memory bandwidth of 8 channels of DDR4-3200 (storage nodes).
pub const MEM_BW_8CH_BPS: f64 = 160e9;
/// NVLink bridge bandwidth per direction (600 GB/s bidirectional pair).
pub const NVLINK_DIR_BPS: f64 = 300e9;
/// EPYC Rome GPU↔NIC peer-to-peer ceiling — no chained writes (§IV-D2).
pub const ROME_P2P_BPS: f64 = 9.0 * 1024.0 * 1024.0 * 1024.0;
/// Number of GPUs per compute node.
pub const GPUS_PER_NODE: usize = 8;

/// A100 form factor, the axis of the Table II comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GpuForm {
    /// PCIe A100-40GB (Fire-Flyer 2).
    PcieA100,
    /// SXM A100-40GB (DGX-A100).
    SxmA100,
}

impl GpuForm {
    /// Measured TF32 GEMM throughput, FLOP/s (Table II).
    pub fn tf32_flops(self) -> f64 {
        match self {
            GpuForm::PcieA100 => 107e12,
            GpuForm::SxmA100 => 131e12,
        }
    }

    /// Measured FP16 GEMM throughput, FLOP/s (Table II).
    pub fn fp16_flops(self) -> f64 {
        match self {
            GpuForm::PcieA100 => 220e12,
            GpuForm::SxmA100 => 263e12,
        }
    }

    /// GPU memory per card, bytes.
    pub fn memory_bytes(self) -> u64 {
        40 * (1 << 30)
    }
}

/// A compute node's build (Table I).
#[derive(Debug, Clone)]
pub struct NodeSpec {
    /// Human label.
    pub name: &'static str,
    /// GPU form factor.
    pub gpu: GpuForm,
    /// GPUs per node.
    pub gpus: usize,
    /// 200 Gbps NICs per node.
    pub nics: usize,
    /// CPU cores (total across sockets).
    pub cpu_cores: usize,
    /// Host memory, bytes.
    pub memory_bytes: u64,
    /// Practical host memory bandwidth, bytes/second.
    pub mem_bw: f64,
    /// Whether paired GPUs have an NVLink bridge.
    pub nvlink_bridge: bool,
    /// Whether all 8 GPUs share full-mesh NVLink (DGX NVSwitch).
    pub nvlink_full_mesh: bool,
    /// Node power under ResNet training, watts (Table II).
    pub power_watts: f64,
    /// Relative node price (DGX = 100, Table II).
    pub relative_price: f64,
}

impl NodeSpec {
    /// The Fire-Flyer 2 PCIe A100 node, pre-NVLink-bridge (2021 build).
    pub fn pcie_a100() -> Self {
        NodeSpec {
            name: "Fire-Flyer 2 PCIe A100",
            gpu: GpuForm::PcieA100,
            gpus: GPUS_PER_NODE,
            nics: 1,
            cpu_cores: 64,
            memory_bytes: 512 * (1 << 30),
            mem_bw: MEM_BW_16CH_BPS,
            nvlink_bridge: false,
            nvlink_full_mesh: false,
            power_watts: 2500.0,
            relative_price: 60.0,
        }
    }

    /// The same node after the NVLink bridge retrofit (LLM era, §V-B1).
    pub fn pcie_a100_nvlink() -> Self {
        NodeSpec {
            nvlink_bridge: true,
            name: "Fire-Flyer 2 PCIe A100 + NVLink bridge",
            ..Self::pcie_a100()
        }
    }

    /// The NVIDIA DGX-A100 reference (Table I).
    pub fn dgx_a100() -> Self {
        NodeSpec {
            name: "DGX-A100",
            gpu: GpuForm::SxmA100,
            gpus: GPUS_PER_NODE,
            nics: 9,
            cpu_cores: 128,
            memory_bytes: 2048 * (1 << 30),
            mem_bw: MEM_BW_16CH_BPS,
            nvlink_bridge: false,
            nvlink_full_mesh: true,
            power_watts: 4200.0,
            relative_price: 100.0,
        }
    }

    /// The next-generation node sketched in §IX: 1 NIC per GPU for MoE
    /// all-to-all, on a multi-plane fat-tree.
    pub fn next_gen_pcie() -> Self {
        NodeSpec {
            name: "Next-gen PCIe (1:1 GPU:NIC)",
            nics: GPUS_PER_NODE,
            nvlink_bridge: true,
            ..Self::pcie_a100()
        }
    }

    /// Relative GEMM performance versus DGX (Table II's 83%): the mean of
    /// the TF32 and FP16 ratios.
    pub fn relative_performance(&self) -> f64 {
        let dgx = GpuForm::SxmA100;
        let tf32 = self.gpu.tf32_flops() / dgx.tf32_flops();
        let fp16 = self.gpu.fp16_flops() / dgx.fp16_flops();
        (tf32 + fp16) / 2.0
    }

    /// Cost-performance ratio versus DGX (Table II's 1.38): relative
    /// performance per relative price, normalized so DGX = 1.
    pub fn cost_performance_ratio(&self) -> f64 {
        (self.relative_performance() / (self.relative_price / 100.0)).min(1e9)
    }

    /// Aggregate NIC bandwidth per node, bytes/second/direction.
    pub fn nic_bw_total(&self) -> f64 {
        self.nics as f64 * NIC_200G_BPS
    }
}

/// A 3FS storage node (Table IV).
#[derive(Debug, Clone)]
pub struct StorageNodeSpec {
    /// 200 Gbps NICs (dual-homed across the two zones).
    pub nics: usize,
    /// NVMe data SSDs.
    pub ssds: usize,
    /// Capacity per SSD, bytes.
    pub ssd_capacity: u64,
    /// Sustained read bandwidth per SSD, bytes/second (PCIe 4.0 x4 NVMe).
    pub ssd_read_bw: f64,
    /// Sustained write bandwidth per SSD, bytes/second.
    pub ssd_write_bw: f64,
    /// Host memory bandwidth.
    pub mem_bw: f64,
}

impl StorageNodeSpec {
    /// The paper's storage node: 16× 15.36 TB PCIe 4.0 NVMe, 2× CX6 NICs.
    pub fn paper() -> Self {
        StorageNodeSpec {
            nics: 2,
            ssds: 16,
            ssd_capacity: 15_360_000_000_000,
            ssd_read_bw: 7e9,
            ssd_write_bw: 4e9,
            mem_bw: MEM_BW_8CH_BPS,
        }
    }

    /// Outbound network bandwidth of the node, bytes/second.
    pub fn outbound_bw(&self) -> f64 {
        self.nics as f64 * NIC_200G_BPS
    }

    /// Aggregate SSD read bandwidth — whether the NICs or the SSDs bound
    /// node throughput.
    pub fn ssd_read_total(&self) -> f64 {
        self.ssds as f64 * self.ssd_read_bw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_relative_performance_is_83pct() {
        let node = NodeSpec::pcie_a100();
        let rel = node.relative_performance();
        assert!((rel - 0.83).abs() < 0.01, "relative perf {rel}");
    }

    #[test]
    fn table2_cost_performance_ratio_is_1_38() {
        let node = NodeSpec::pcie_a100();
        let r = node.cost_performance_ratio();
        assert!((r - 1.38).abs() < 0.01, "cost-perf {r}");
        assert!((NodeSpec::dgx_a100().cost_performance_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn table2_power_saves_40pct() {
        let ours = NodeSpec::pcie_a100().power_watts;
        let dgx = NodeSpec::dgx_a100().power_watts;
        assert!(ours <= dgx * 0.60, "{ours} vs {dgx}");
    }

    #[test]
    fn table1_node_shapes() {
        let ours = NodeSpec::pcie_a100();
        assert_eq!(ours.gpus, 8);
        assert_eq!(ours.nics, 1);
        assert_eq!(ours.memory_bytes, 512 << 30);
        let dgx = NodeSpec::dgx_a100();
        assert_eq!(dgx.nics, 9);
        assert_eq!(dgx.memory_bytes, 2048 << 30);
        assert!(dgx.nvlink_full_mesh && !dgx.nvlink_bridge);
    }

    #[test]
    fn next_gen_has_one_nic_per_gpu() {
        let n = NodeSpec::next_gen_pcie();
        assert_eq!(n.nics, n.gpus);
        assert_eq!(n.nic_bw_total(), 8.0 * NIC_200G_BPS);
    }

    #[test]
    fn storage_node_is_nic_bound() {
        // 16 SSDs × 7 GB/s = 112 GB/s ≫ 2 NICs × 25 GB/s: the network is
        // the bottleneck, which is why 180 nodes × 50 GB/s ≈ 9 TB/s
        // theoretical aggregate in §VI-B2.
        let s = StorageNodeSpec::paper();
        assert!(s.ssd_read_total() > s.outbound_bw());
        assert!((s.outbound_bw() - 50e9).abs() < 1e-6);
        let aggregate = 180.0 * s.outbound_bw();
        assert!((aggregate - 9e12).abs() < 1e9);
    }

    #[test]
    fn storage_capacity_matches_20pib_mirrored() {
        // 180 nodes × 16 SSDs × 15.36 TB with mirroring > 20 PiB usable.
        let s = StorageNodeSpec::paper();
        let raw = 180u128 * s.ssds as u128 * s.ssd_capacity as u128;
        let usable_pib = raw as f64 / 2.0 / (1u64 << 50) as f64;
        assert!(usable_pib > 19.0, "usable {usable_pib} PiB");
    }
}
