//! The node's conduits as fluid-sim resources, and weighted routes for
//! every transfer the collective/training simulators perform.
//!
//! Weights encode the memory-operation accounting of §IV-D3: HFReduce's 24×
//! host-memory amplification decomposes as D2H 8 writes, intra-node reduce
//! 8 reads + 1 write, IB send 2 reads, IB receive 2 writes + 1 reduce-add
//! read, and H2D 2 reads (GDRCopy) or 8 reads (MemcpyAsync).

use crate::spec::{
    GpuForm, NodeSpec, HOST_BRIDGE_BIDIR_BPS, HOST_BRIDGE_BPS, NIC_200G_BPS, NVLINK_DIR_BPS,
    PCIE4_X16_BPS, ROME_P2P_BPS,
};
use ff_desim::{FluidSim, ResourceId, Route};

/// How bytes move between host memory and GPU memory (§IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferMethod {
    /// `cudaMemcpyAsync` through the copy engine: each destination GPU's
    /// data is read from host memory separately (8 reads for 8 GPUs).
    MemcpyAsync,
    /// GDRCopy: the CPU reads host memory once per NUMA half and writes
    /// GPU BARs directly from cache — 2 host-memory reads for 8 GPUs.
    GdrCopy,
}

/// A compute node's registered resources. Create with [`NodeHw::install`].
#[derive(Debug, Clone)]
pub struct NodeHw {
    /// The node build this instance models.
    pub spec: NodeSpec,
    /// Host memory bus (shared by reads and writes).
    pub membus: ResourceId,
    gpu_pcie_up: Vec<ResourceId>,
    gpu_pcie_down: Vec<ResourceId>,
    root_up: Vec<ResourceId>,
    root_down: Vec<ResourceId>,
    root_bidir: Vec<ResourceId>,
    gpu_root: Vec<usize>,
    nic_root: Vec<usize>,
    nic_up: Vec<ResourceId>,
    nic_down: Vec<ResourceId>,
    nic_p2p_up: Vec<ResourceId>,
    nic_p2p_down: Vec<ResourceId>,
    nvlink_fwd: Vec<ResourceId>,
    nvlink_rev: Vec<ResourceId>,
    gpu_flops: Vec<ResourceId>,
}

impl NodeHw {
    /// Register all of a node's conduits in `fluid`. `name` prefixes
    /// resource names for diagnostics.
    pub fn install(fluid: &mut FluidSim, name: &str, spec: &NodeSpec) -> NodeHw {
        let g = spec.gpus;
        // Root-complex plan (Figure 4): every GPU its own port except GPU5
        // and GPU6, which share one; every NIC gets its own port.
        let mut gpu_root = Vec::with_capacity(g);
        let mut next_root = 0usize;
        for i in 0..g {
            if i == 6 && g == 8 {
                gpu_root.push(gpu_root[5]); // share GPU5's port
            } else {
                gpu_root.push(next_root);
                next_root += 1;
            }
        }
        let nic_root: Vec<usize> = (0..spec.nics)
            .map(|_| {
                let r = next_root;
                next_root += 1;
                r
            })
            .collect();
        let root_up: Vec<ResourceId> = (0..next_root)
            .map(|i| fluid.add_resource(format!("{name}/root{i}/up"), HOST_BRIDGE_BPS))
            .collect();
        let root_down: Vec<ResourceId> = (0..next_root)
            .map(|i| fluid.add_resource(format!("{name}/root{i}/down"), HOST_BRIDGE_BPS))
            .collect();
        // EPYC Rome/Milan root ports degrade under simultaneous
        // bidirectional transfers (§IV-D3): both directions together are
        // capped below 2× the unidirectional limit.
        let root_bidir: Vec<ResourceId> = (0..next_root)
            .map(|i| fluid.add_resource(format!("{name}/root{i}/bidir"), HOST_BRIDGE_BIDIR_BPS))
            .collect();
        let gpu_pcie_up = (0..g)
            .map(|i| fluid.add_resource(format!("{name}/gpu{i}/pcie-up"), PCIE4_X16_BPS))
            .collect();
        let gpu_pcie_down = (0..g)
            .map(|i| fluid.add_resource(format!("{name}/gpu{i}/pcie-down"), PCIE4_X16_BPS))
            .collect();
        let membus = fluid.add_resource(format!("{name}/membus"), spec.mem_bw);
        let nic_up = (0..spec.nics)
            .map(|i| fluid.add_resource(format!("{name}/nic{i}/up"), NIC_200G_BPS))
            .collect();
        let nic_down = (0..spec.nics)
            .map(|i| fluid.add_resource(format!("{name}/nic{i}/down"), NIC_200G_BPS))
            .collect();
        let nic_p2p_up = (0..spec.nics)
            .map(|i| fluid.add_resource(format!("{name}/nic{i}/p2p-up"), ROME_P2P_BPS))
            .collect();
        let nic_p2p_down = (0..spec.nics)
            .map(|i| fluid.add_resource(format!("{name}/nic{i}/p2p-down"), ROME_P2P_BPS))
            .collect();
        let pairs = if spec.nvlink_bridge || spec.nvlink_full_mesh {
            g / 2
        } else {
            0
        };
        let nvlink_fwd = (0..pairs)
            .map(|i| fluid.add_resource(format!("{name}/nvl{i}/fwd"), NVLINK_DIR_BPS))
            .collect();
        let nvlink_rev = (0..pairs)
            .map(|i| fluid.add_resource(format!("{name}/nvl{i}/rev"), NVLINK_DIR_BPS))
            .collect();
        let flops = match spec.gpu {
            GpuForm::PcieA100 | GpuForm::SxmA100 => spec.gpu.fp16_flops(),
        };
        let gpu_flops = (0..g)
            .map(|i| fluid.add_resource(format!("{name}/gpu{i}/flops"), flops))
            .collect();
        NodeHw {
            spec: spec.clone(),
            membus,
            gpu_pcie_up,
            gpu_pcie_down,
            root_up,
            root_down,
            root_bidir,
            gpu_root,
            nic_root,
            nic_up,
            nic_down,
            nic_p2p_up,
            nic_p2p_down,
            nvlink_fwd,
            nvlink_rev,
            gpu_flops,
        }
    }

    /// GPUs on this node.
    pub fn gpus(&self) -> usize {
        self.spec.gpus
    }

    /// NICs on this node.
    pub fn nics(&self) -> usize {
        self.spec.nics
    }

    /// NUMA socket of a GPU: the first half of the GPUs hang off socket 0.
    pub fn numa_of_gpu(&self, gpu: usize) -> usize {
        usize::from(gpu >= self.spec.gpus / 2)
    }

    /// NVLink pair partner of `gpu`, if the node has bridges.
    pub fn nvlink_peer(&self, gpu: usize) -> Option<usize> {
        if self.nvlink_fwd.is_empty() {
            None
        } else {
            Some(gpu ^ 1)
        }
    }

    /// Device-to-host: GPU copy engine pushes into host memory (1 write).
    pub fn d2h(&self, gpu: usize) -> Route {
        Route::weighted([
            (self.gpu_pcie_up[gpu], 1.0),
            (self.root_up[self.gpu_root[gpu]], 1.0),
            (self.root_bidir[self.gpu_root[gpu]], 1.0),
            (self.membus, 1.0),
        ])
    }

    /// Host-to-device for one GPU as part of a fan-out to all `n` GPUs.
    /// MemcpyAsync reads host memory once per GPU; GDRCopy reads once per
    /// four GPUs (cache reuse within a NUMA node, §IV-A), i.e. weight 2/8
    /// per GPU on an 8-GPU node.
    pub fn h2d(&self, gpu: usize, method: TransferMethod) -> Route {
        let mem_w = match method {
            TransferMethod::MemcpyAsync => 1.0,
            TransferMethod::GdrCopy => 2.0 / self.spec.gpus as f64,
        };
        Route::weighted([
            (self.membus, mem_w),
            (self.root_down[self.gpu_root[gpu]], 1.0),
            (self.root_bidir[self.gpu_root[gpu]], 1.0),
            (self.gpu_pcie_down[gpu], 1.0),
        ])
    }

    /// CPU reduce-add of `n_src` same-size buffers into one: `n_src` reads
    /// plus one write of host memory per output byte.
    pub fn cpu_reduce(&self, n_src: usize) -> Route {
        Route::weighted([(self.membus, n_src as f64 + 1.0)])
    }

    /// IB send from host memory: the HCA reads payload (+ doorbell/SGE
    /// traffic), 2 host-memory reads per byte (§IV-D3).
    pub fn ib_send(&self, nic: usize) -> Route {
        Route::weighted([
            (self.membus, 2.0),
            (self.root_up[self.nic_root[nic]], 1.0),
            (self.root_bidir[self.nic_root[nic]], 1.0),
            (self.nic_up[nic], 1.0),
        ])
    }

    /// IB receive into host memory with an inline reduce-add: 2 writes + 1
    /// read (§IV-D3).
    pub fn ib_recv_reduce(&self, nic: usize) -> Route {
        Route::weighted([
            (self.nic_down[nic], 1.0),
            (self.root_down[self.nic_root[nic]], 1.0),
            (self.root_bidir[self.nic_root[nic]], 1.0),
            (self.membus, 3.0),
        ])
    }

    /// IB receive without reduction (2 writes).
    pub fn ib_recv(&self, nic: usize) -> Route {
        Route::weighted([
            (self.nic_down[nic], 1.0),
            (self.root_down[self.nic_root[nic]], 1.0),
            (self.root_bidir[self.nic_root[nic]], 1.0),
            (self.membus, 2.0),
        ])
    }

    /// GPU→GPU peer-to-peer over PCIe (the NCCL intra-node path): up
    /// through the source root port, down through the destination's. Does
    /// not touch host memory.
    pub fn gpu_p2p(&self, src: usize, dst: usize) -> Route {
        assert_ne!(src, dst);
        Route::weighted([
            (self.gpu_pcie_up[src], 1.0),
            (self.root_up[self.gpu_root[src]], 1.0),
            (self.root_bidir[self.gpu_root[src]], 1.0),
            (self.root_down[self.gpu_root[dst]], 1.0),
            (self.root_bidir[self.gpu_root[dst]], 1.0),
            (self.gpu_pcie_down[dst], 1.0),
        ])
    }

    /// GPU→NIC peer-to-peer (GPUDirect RDMA send). On EPYC Rome this path
    /// is capped at ≈9 GiB/s — no chained writes (§IV-D2).
    pub fn gpu_nic_send(&self, gpu: usize, nic: usize) -> Route {
        Route::weighted([
            (self.gpu_pcie_up[gpu], 1.0),
            (self.root_up[self.gpu_root[gpu]], 1.0),
            (self.root_bidir[self.gpu_root[gpu]], 1.0),
            (self.nic_p2p_up[nic], 1.0),
            (self.nic_up[nic], 1.0),
        ])
    }

    /// NIC→GPU peer-to-peer (GPUDirect RDMA receive), same ceiling.
    pub fn nic_gpu_recv(&self, nic: usize, gpu: usize) -> Route {
        Route::weighted([
            (self.nic_down[nic], 1.0),
            (self.nic_p2p_down[nic], 1.0),
            (self.root_down[self.gpu_root[gpu]], 1.0),
            (self.root_bidir[self.gpu_root[gpu]], 1.0),
            (self.gpu_pcie_down[gpu], 1.0),
        ])
    }

    /// NVLink transfer between paired GPUs. Panics without a bridge or for
    /// non-paired GPUs.
    pub fn nvlink(&self, src: usize, dst: usize) -> Route {
        assert!(
            self.nvlink_peer(src) == Some(dst),
            "GPUs {src}->{dst} are not NVLink-paired"
        );
        let pair = src / 2;
        let dir = if src < dst {
            self.nvlink_fwd[pair]
        } else {
            self.nvlink_rev[pair]
        };
        Route::weighted([(dir, 1.0)])
    }

    /// GPU compute: a transfer of `flops` work units over the GPU's FLOPS
    /// resource.
    pub fn gemm(&self, gpu: usize) -> Route {
        Route::weighted([(self.gpu_flops[gpu], 1.0)])
    }

    /// The NIC wire resources (up = egress, down = ingress) — shared with
    /// network-level routes built by `ff-net`.
    pub fn nic_ports(&self, nic: usize) -> (ResourceId, ResourceId) {
        (self.nic_up[nic], self.nic_down[nic])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_desim::FluidSim;

    fn node(spec: NodeSpec) -> (FluidSim, NodeHw) {
        let mut fluid = FluidSim::new();
        let hw = NodeHw::install(&mut fluid, "n0", &spec);
        (fluid, hw)
    }

    #[test]
    fn single_d2h_runs_at_pcie_speed() {
        let (mut fluid, hw) = node(NodeSpec::pcie_a100());
        let f = fluid.start_flow(1e9, &hw.d2h(0));
        assert!((fluid.flow_rate(f) - PCIE4_X16_BPS).abs() < 1.0);
    }

    #[test]
    fn gpu5_and_6_share_a_root_port() {
        let (mut fluid, hw) = node(NodeSpec::pcie_a100());
        let f5 = fluid.start_flow(1e9, &hw.d2h(5));
        let f6 = fluid.start_flow(1e9, &hw.d2h(6));
        // Two concurrent D2H through one 37.5 GB/s port: 18.75 each.
        assert!((fluid.flow_rate(f5) - HOST_BRIDGE_BPS / 2.0).abs() < 1.0);
        assert!((fluid.flow_rate(f6) - HOST_BRIDGE_BPS / 2.0).abs() < 1.0);
        // GPUs 0 and 1 don't interfere.
        let f0 = fluid.start_flow(1e9, &hw.d2h(0));
        assert!((fluid.flow_rate(f0) - PCIE4_X16_BPS).abs() < 1.0);
    }

    #[test]
    fn eight_way_d2h_is_pcie_bound_not_membus_bound() {
        let (mut fluid, hw) = node(NodeSpec::pcie_a100());
        let flows: Vec<_> = (0..8).map(|g| fluid.start_flow(1e9, &hw.d2h(g))).collect();
        // 6 GPUs at 27, GPUs 5/6 at 18.75 => total 199.5 < 320 membus.
        let total: f64 = flows.iter().map(|&f| fluid.flow_rate(f)).sum();
        assert!(total < 320e9);
        assert!((fluid.flow_rate(flows[0]) - PCIE4_X16_BPS).abs() < 1.0);
        assert!((fluid.flow_rate(flows[5]) - HOST_BRIDGE_BPS / 2.0).abs() < 1.0);
    }

    #[test]
    fn gdrcopy_h2d_uses_quarter_membus_per_gpu() {
        let (mut fluid, hw) = node(NodeSpec::pcie_a100());
        let flows: Vec<_> = (0..8)
            .map(|g| fluid.start_flow(1e9, &hw.h2d(g, TransferMethod::GdrCopy)))
            .collect();
        // Aggregate membus load = 8 flows × rate × 0.25 ≤ capacity; PCIe is
        // the binding constraint, so each flow runs at PCIe speed (except
        // the 5/6 pair on the shared bridge).
        let r0 = fluid.flow_rate(flows[0]);
        assert!((r0 - PCIE4_X16_BPS).abs() < 1.0);
    }

    #[test]
    fn memcpy_h2d_fanout_is_membus_bound() {
        let (mut fluid, hw) = node(NodeSpec::pcie_a100());
        let flows: Vec<_> = (0..8)
            .map(|g| fluid.start_flow(1e9, &hw.h2d(g, TransferMethod::MemcpyAsync)))
            .collect();
        // Plus a big concurrent reduce hammering the memory bus.
        let reduce = fluid.start_flow(1e9, &hw.cpu_reduce(8));
        let total_h2d: f64 = flows.iter().map(|&f| fluid.flow_rate(f)).sum();
        // With weight-1 membus per GPU and a 9× reduce stream, the bus must
        // now be saturated: Σ h2d + 9×reduce ≈ 320e9.
        let reduce_rate = fluid.flow_rate(reduce);
        let load = total_h2d + 9.0 * reduce_rate;
        assert!((load - 320e9).abs() / 320e9 < 1e-3, "membus load {load}");
    }

    #[test]
    fn rome_p2p_ceiling_caps_gpu_nic() {
        let (mut fluid, hw) = node(NodeSpec::pcie_a100());
        let f = fluid.start_flow(1e9, &hw.gpu_nic_send(0, 0));
        // 9 GiB/s < NIC 25 GB/s: the Rome ceiling binds.
        assert!((fluid.flow_rate(f) - ROME_P2P_BPS).abs() < 1.0);
    }

    #[test]
    fn nvlink_routes_only_between_pairs() {
        let (mut fluid, hw) = node(NodeSpec::pcie_a100_nvlink());
        assert_eq!(hw.nvlink_peer(0), Some(1));
        assert_eq!(hw.nvlink_peer(3), Some(2));
        let f = fluid.start_flow(1e9, &hw.nvlink(0, 1));
        assert!((fluid.flow_rate(f) - NVLINK_DIR_BPS).abs() < 1.0);
        // Opposite directions do not contend.
        let g = fluid.start_flow(1e9, &hw.nvlink(1, 0));
        assert!((fluid.flow_rate(g) - NVLINK_DIR_BPS).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "not NVLink-paired")]
    fn nvlink_rejects_unpaired() {
        let (mut fluid, hw) = node(NodeSpec::pcie_a100_nvlink());
        fluid.start_flow(1.0, &hw.nvlink(0, 2));
    }

    #[test]
    fn no_nvlink_without_bridge() {
        let (_, hw) = node(NodeSpec::pcie_a100());
        assert_eq!(hw.nvlink_peer(0), None);
    }

    #[test]
    fn numa_split() {
        let (_, hw) = node(NodeSpec::pcie_a100());
        assert_eq!(hw.numa_of_gpu(0), 0);
        assert_eq!(hw.numa_of_gpu(3), 0);
        assert_eq!(hw.numa_of_gpu(4), 1);
        assert_eq!(hw.numa_of_gpu(7), 1);
    }

    #[test]
    fn gemm_time_matches_throughput() {
        let (mut fluid, hw) = node(NodeSpec::pcie_a100());
        // 220 TFLOP of FP16 work on a 220 TFLOPS GPU = 1 second.
        let f = fluid.start_flow(220e12, &hw.gemm(0));
        let _ = f;
        let (t, _) = fluid.advance_to_next_completion().unwrap();
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn dgx_node_has_nine_nics() {
        let (_, hw) = node(NodeSpec::dgx_a100());
        assert_eq!(hw.nics(), 9);
        assert_eq!(hw.nvlink_peer(2), Some(3));
    }
}
