//! Point-to-point link parameterization: the `(latency, bandwidth)` pair
//! every transfer model needs, either from the paper's spec constants or
//! measured empirically by `ff_reduce::calibration` against a real
//! transport (localhost TCP, in-memory channels).

use crate::spec::NIC_200G_BPS;

/// An α–β link model: a transfer of `b` bytes takes
/// `latency_s + b / bps` seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkParams {
    /// Sustained bandwidth, bytes/second.
    pub bps: f64,
    /// Per-message latency, seconds.
    pub latency_s: f64,
}

impl LinkParams {
    /// A link with the given bandwidth (bytes/second) and per-message
    /// latency (seconds). Both must be positive.
    pub fn new(bps: f64, latency_s: f64) -> LinkParams {
        assert!(bps > 0.0, "bandwidth must be positive, got {bps}");
        assert!(latency_s > 0.0, "latency must be positive, got {latency_s}");
        LinkParams { bps, latency_s }
    }

    /// The spec-sheet 200 Gbps InfiniBand port with a typical ~2 µs RDMA
    /// message latency.
    pub fn nic_200g() -> LinkParams {
        LinkParams {
            bps: NIC_200G_BPS,
            latency_s: 2e-6,
        }
    }

    /// Time to move `bytes` over this link, seconds.
    pub fn transfer_time(&self, bytes: f64) -> f64 {
        self.latency_s + bytes / self.bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_beta_model() {
        let l = LinkParams::new(1e9, 1e-6);
        assert!((l.transfer_time(1e9) - 1.000001).abs() < 1e-9);
        // Latency dominates tiny messages.
        assert!(l.transfer_time(8.0) < 2e-6);
    }

    #[test]
    fn spec_nic_matches_table() {
        let l = LinkParams::nic_200g();
        assert_eq!(l.bps, NIC_200G_BPS);
        assert!(l.latency_s > 0.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        LinkParams::new(0.0, 1e-6);
    }
}
