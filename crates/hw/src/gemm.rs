//! GEMM throughput/time model (Table II).

use crate::spec::GpuForm;

/// Matrix-multiply precision mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GemmPrecision {
    /// TensorFloat-32 on tensor cores.
    Tf32,
    /// FP16 on tensor cores.
    Fp16,
}

/// FLOPs of an `m×k · k×n` GEMM (multiply-add counted as 2).
pub fn gemm_flops(m: u64, n: u64, k: u64) -> f64 {
    2.0 * m as f64 * n as f64 * k as f64
}

/// Sustained throughput of `form` at `precision`, FLOP/s (measured values
/// from Table II — not peak datasheet numbers).
pub fn gemm_throughput(form: GpuForm, precision: GemmPrecision) -> f64 {
    match precision {
        GemmPrecision::Tf32 => form.tf32_flops(),
        GemmPrecision::Fp16 => form.fp16_flops(),
    }
}

/// Wall time of an `m×k · k×n` GEMM on one GPU, seconds.
pub fn gemm_time(m: u64, n: u64, k: u64, form: GpuForm, precision: GemmPrecision) -> f64 {
    gemm_flops(m, n, k) / gemm_throughput(form, precision)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flops_formula() {
        assert_eq!(gemm_flops(2, 3, 4), 48.0);
        assert_eq!(gemm_flops(8192, 8192, 8192), 2.0 * 8192f64.powi(3));
    }

    #[test]
    fn pcie_is_83pct_of_sxm() {
        for p in [GemmPrecision::Tf32, GemmPrecision::Fp16] {
            let ratio =
                gemm_throughput(GpuForm::PcieA100, p) / gemm_throughput(GpuForm::SxmA100, p);
            assert!((0.81..=0.84).contains(&ratio), "{p:?}: {ratio}");
        }
    }

    #[test]
    fn gemm_time_scales_inversely_with_throughput() {
        let t_pcie = gemm_time(8192, 8192, 8192, GpuForm::PcieA100, GemmPrecision::Fp16);
        let t_sxm = gemm_time(8192, 8192, 8192, GpuForm::SxmA100, GemmPrecision::Fp16);
        assert!(t_pcie > t_sxm);
        assert!((t_pcie / t_sxm - 263.0 / 220.0).abs() < 1e-9);
    }

    #[test]
    fn fp16_is_roughly_double_tf32() {
        let r = gemm_throughput(GpuForm::PcieA100, GemmPrecision::Fp16)
            / gemm_throughput(GpuForm::PcieA100, GemmPrecision::Tf32);
        assert!((1.9..=2.2).contains(&r));
    }
}
