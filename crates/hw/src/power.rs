//! Cluster power and operating-cost model (§VIII-C).

use crate::spec::NodeSpec;

/// Average power draw of one InfiniBand switch, watts.
pub const SWITCH_POWER_W: f64 = 500.0;
/// Average power draw of one storage node, watts.
pub const STORAGE_NODE_POWER_W: f64 = 1200.0;

/// Cluster-level power envelope.
#[derive(Debug, Clone)]
pub struct ClusterPower {
    /// Compute node count.
    pub compute_nodes: usize,
    /// Storage node count.
    pub storage_nodes: usize,
    /// Switch count.
    pub switches: usize,
    /// Per-compute-node draw, watts.
    pub node_watts: f64,
}

impl ClusterPower {
    /// Fire-Flyer 2: ~1,250 compute nodes, 180 storage nodes, 122 switches.
    pub fn fire_flyer2() -> Self {
        ClusterPower {
            compute_nodes: 1250,
            storage_nodes: 180,
            switches: 122,
            node_watts: NodeSpec::pcie_a100().power_watts,
        }
    }

    /// The DGX-A100 equivalent at the same GPU count.
    pub fn dgx_equivalent() -> Self {
        ClusterPower {
            compute_nodes: 1250,
            storage_nodes: 180,
            switches: 1320,
            node_watts: NodeSpec::dgx_a100().power_watts,
        }
    }

    /// Total draw, watts.
    pub fn total_watts(&self) -> f64 {
        self.compute_nodes as f64 * self.node_watts
            + self.storage_nodes as f64 * STORAGE_NODE_POWER_W
            + self.switches as f64 * SWITCH_POWER_W
    }

    /// Energy per year at `pue` (power usage effectiveness), kWh.
    pub fn annual_kwh(&self, pue: f64) -> f64 {
        self.total_watts() * pue * 24.0 * 365.0 / 1000.0
    }

    /// Operating cost per year given electricity price and rack rental.
    pub fn annual_operating_cost(&self, price_per_kwh: f64, pue: f64, rack_rental: f64) -> f64 {
        self.annual_kwh(pue) * price_per_kwh + rack_rental
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fire_flyer_is_just_over_3mw_under_4mw() {
        // §VIII-C2: "does not exceed 4 MW, approximately just over 3 MW".
        let p = ClusterPower::fire_flyer2().total_watts();
        assert!(p > 3.0e6, "{p}");
        assert!(p < 4.0e6, "{p}");
    }

    #[test]
    fn saves_about_40pct_vs_dgx() {
        let ours = ClusterPower::fire_flyer2().total_watts();
        let dgx = ClusterPower::dgx_equivalent().total_watts();
        let saving = 1.0 - ours / dgx;
        assert!(saving > 0.38, "saving {saving}");
    }

    #[test]
    fn annual_energy_scales_with_pue() {
        let c = ClusterPower::fire_flyer2();
        let base = c.annual_kwh(1.0);
        assert!((c.annual_kwh(1.3) / base - 1.3).abs() < 1e-12);
        // ~3.4 MW × 8760 h ≈ 30 GWh.
        assert!(base > 25e6 && base < 35e6, "{base}");
    }

    #[test]
    fn operating_cost_combines_energy_and_rent() {
        let c = ClusterPower::fire_flyer2();
        let cost = c.annual_operating_cost(0.1, 1.2, 1_000_000.0);
        assert!((cost - (c.annual_kwh(1.2) * 0.1 + 1_000_000.0)).abs() < 1e-6);
    }
}
