//! Randomized property tests for dtype conversions (seeded, reproducible).

use ff_dtypes::{Bf16, Element, F16, F8E4M3};
use ff_util::rng::ChaCha8Rng;

const CASES: usize = 2048;

/// Narrowing must land between the representable neighbours of x: the
/// error is bounded by one representable step at the result's scale.
fn check_nearest<E: Element>(x: f32) {
    let y = E::from_f32(x).to_f32();
    if !y.is_finite() || !x.is_finite() {
        return; // overflow/saturation paths tested exhaustively elsewhere
    }
    let bits_up = E::from_f32(f32::from_bits(y.to_bits().wrapping_add(1))).to_f32();
    let err = (y - x).abs();
    let gap = (bits_up - y).abs().max(f32::MIN_POSITIVE);
    assert!(
        err <= gap.max((x * 2e-2).abs()),
        "narrow({x}) = {y}, err {err} too large"
    );
}

/// f16: round-to-nearest means error ≤ half ULP of the result's scale.
#[test]
fn f16_error_bounded() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xF16);
    for _ in 0..CASES {
        let x = rng.gen_range(-60000.0f64..60000.0) as f32;
        let y = F16::from_f32(x).to_f32();
        // binary16 has 11 significand bits: relative error ≤ 2^-11 for
        // normals; absolute error ≤ 2^-25 near zero (subnormal unit / 2).
        let tol = (x.abs() * (2.0f32).powi(-11)).max((2.0f32).powi(-25));
        assert!((y - x).abs() <= tol, "x={x} y={y}");
    }
}

/// bf16: 8 significand bits.
#[test]
fn bf16_error_bounded() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xBF16);
    for _ in 0..CASES {
        let x = rng.gen_range(-1e30f64..1e30) as f32;
        let y = Bf16::from_f32(x).to_f32();
        let tol = (x.abs() * (2.0f32).powi(-8)).max(f32::MIN_POSITIVE);
        assert!((y - x).abs() <= tol, "x={x} y={y}");
    }
}

/// f8 E4M3: 4 significand bits within ±448.
#[test]
fn f8_error_bounded() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xF8);
    for _ in 0..CASES {
        let x = rng.gen_range(-448.0f64..448.0) as f32;
        let y = F8E4M3::from_f32(x).to_f32();
        let tol = (x.abs() * (2.0f32).powi(-4)).max((2.0f32).powi(-10));
        assert!((y - x).abs() <= tol, "x={x} y={y}");
    }
}

/// Narrowing is monotonic: a ≤ b implies narrow(a) ≤ narrow(b).
#[test]
fn f16_monotone() {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    for _ in 0..CASES {
        let a = rng.gen_range(-70000.0f64..70000.0) as f32;
        let b = rng.gen_range(-70000.0f64..70000.0) as f32;
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(F16::from_f32(lo).to_f32() <= F16::from_f32(hi).to_f32());
    }
}

/// Same for f8.
#[test]
fn f8_monotone() {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    for _ in 0..CASES {
        let a = rng.gen_range(-500.0f64..500.0) as f32;
        let b = rng.gen_range(-500.0f64..500.0) as f32;
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(F8E4M3::from_f32(lo).to_f32() <= F8E4M3::from_f32(hi).to_f32());
    }
}

/// Same for bf16.
#[test]
fn bf16_monotone() {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    for _ in 0..CASES {
        let a = rng.gen_range(-1e30f64..1e30) as f32;
        let b = rng.gen_range(-1e30f64..1e30) as f32;
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(Bf16::from_f32(lo).to_f32() <= Bf16::from_f32(hi).to_f32());
    }
}

/// Negation commutes with conversion (sign symmetry).
#[test]
fn sign_symmetry() {
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    for _ in 0..CASES {
        let x = rng.gen_range(-400.0f64..400.0) as f32;
        assert_eq!((-F16::from_f32(x)).to_f32(), F16::from_f32(-x).to_f32());
        assert_eq!((-Bf16::from_f32(x)).to_f32(), Bf16::from_f32(-x).to_f32());
        assert_eq!(
            (-F8E4M3::from_f32(x)).to_f32(),
            F8E4M3::from_f32(-x).to_f32()
        );
    }
}

/// Values already representable convert exactly (idempotence) — every
/// finite f16 bit pattern, exhaustively.
#[test]
fn idempotent_f16() {
    for bits in 0u16..0x7c00 {
        let v = F16::from_bits(bits).to_f32();
        assert_eq!(F16::from_f32(v).to_bits(), bits);
        check_nearest::<F16>(v);
    }
}
