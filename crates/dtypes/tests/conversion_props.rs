//! Property-based tests for dtype conversions.

use ff_dtypes::{Bf16, Element, F16, F8E4M3};
use proptest::prelude::*;

/// Narrowing must pick one of the two representable neighbours of x
/// (correct rounding implies the nearer one; here we verify the weaker but
/// regression-catching property that |narrow(x) - x| ≤ ulp and that the
/// result never moves past x by more than half a step in the wrong
/// direction — expressed as: the error is no larger than the distance to
/// the *further* neighbour).
fn check_nearest<E: Element>(x: f32) {
    let y = E::from_f32(x).to_f32();
    if !y.is_finite() || !x.is_finite() {
        return; // overflow/saturation paths tested exhaustively elsewhere
    }
    // Walk to the neighbouring representable values around y.
    let bits_up = E::from_f32(f32::from_bits(y.to_bits().wrapping_add(1))).to_f32();
    let err = (y - x).abs();
    // Error must not exceed the gap between y and the next value after x
    // in the direction away from y (i.e. x is between y's neighbours).
    let gap = (bits_up - y).abs().max((y - x).abs() * 0.0 + f32::MIN_POSITIVE);
    assert!(
        err <= gap.max((x * 2e-2).abs()),
        "narrow({x}) = {y}, err {err} too large"
    );
}

proptest! {
    /// f16: round-to-nearest means error ≤ half ULP of the result's scale.
    #[test]
    fn f16_error_bounded(x in -60000.0f32..60000.0) {
        let y = F16::from_f32(x).to_f32();
        // binary16 has 11 significand bits: relative error ≤ 2^-11 for
        // normals; absolute error ≤ 2^-25 near zero (subnormal unit / 2).
        let tol = (x.abs() * (2.0f32).powi(-11)).max((2.0f32).powi(-25));
        prop_assert!((y - x).abs() <= tol, "x={x} y={y}");
    }

    /// bf16: 8 significand bits.
    #[test]
    fn bf16_error_bounded(x in -1e30f32..1e30) {
        let y = Bf16::from_f32(x).to_f32();
        let tol = (x.abs() * (2.0f32).powi(-8)).max(f32::MIN_POSITIVE);
        prop_assert!((y - x).abs() <= tol, "x={x} y={y}");
    }

    /// f8 E4M3: 4 significand bits within ±448.
    #[test]
    fn f8_error_bounded(x in -448.0f32..448.0) {
        let y = F8E4M3::from_f32(x).to_f32();
        let tol = (x.abs() * (2.0f32).powi(-4)).max((2.0f32).powi(-10));
        prop_assert!((y - x).abs() <= tol, "x={x} y={y}");
    }

    /// Narrowing is monotonic: a ≤ b implies narrow(a) ≤ narrow(b).
    #[test]
    fn f16_monotone(a in -70000.0f32..70000.0, b in -70000.0f32..70000.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(F16::from_f32(lo).to_f32() <= F16::from_f32(hi).to_f32());
    }

    /// Same for f8.
    #[test]
    fn f8_monotone(a in -500.0f32..500.0, b in -500.0f32..500.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(F8E4M3::from_f32(lo).to_f32() <= F8E4M3::from_f32(hi).to_f32());
    }

    /// Same for bf16.
    #[test]
    fn bf16_monotone(a in -1e30f32..1e30, b in -1e30f32..1e30) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(Bf16::from_f32(lo).to_f32() <= Bf16::from_f32(hi).to_f32());
    }

    /// Negation commutes with conversion (sign symmetry).
    #[test]
    fn sign_symmetry(x in -400.0f32..400.0) {
        prop_assert_eq!((-F16::from_f32(x)).to_f32(), F16::from_f32(-x).to_f32());
        prop_assert_eq!((-Bf16::from_f32(x)).to_f32(), Bf16::from_f32(-x).to_f32());
        prop_assert_eq!((-F8E4M3::from_f32(x)).to_f32(), F8E4M3::from_f32(-x).to_f32());
    }

    /// Values already representable convert exactly (idempotence).
    #[test]
    fn idempotent_f16(bits in 0u16..0x7c00) {
        let v = F16::from_bits(bits).to_f32();
        prop_assert_eq!(F16::from_f32(v).to_bits(), bits);
        check_nearest::<F16>(v);
    }
}
