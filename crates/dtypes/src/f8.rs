//! FP8 E4M3 (OCP 8-bit floating point).

use crate::convert::{f32_to_small, small_to_f32};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// FP8 E4M3: 1 sign bit, 4 exponent bits (bias 7), 3 mantissa bits.
///
/// Follows the OCP FP8 spec used by H100-class hardware: there are **no
/// infinities** — the `S.1111.111` pattern is NaN and `S.1111.110` is the
/// largest finite value, ±448. Values that overflow during narrowing
/// **saturate to ±448** (the "saturating" conversion mode ML frameworks
/// use); NaN inputs stay NaN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct F8E4M3(u8);

impl F8E4M3 {
    /// Positive zero.
    pub const ZERO: F8E4M3 = F8E4M3(0);
    /// One.
    pub const ONE: F8E4M3 = F8E4M3(0x38);
    /// Largest finite value (448).
    pub const MAX: F8E4M3 = F8E4M3(0x7e);
    /// Smallest finite value (−448).
    pub const MIN: F8E4M3 = F8E4M3(0xfe);
    /// The NaN pattern.
    pub const NAN: F8E4M3 = F8E4M3(0x7f);

    /// Construct from the raw bit pattern.
    #[inline]
    pub const fn from_bits(bits: u8) -> Self {
        F8E4M3(bits)
    }

    /// The raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u8 {
        self.0
    }

    /// Round an `f32` to the nearest `F8E4M3` (ties to even), saturating
    /// out-of-range magnitudes to ±448.
    #[inline]
    pub fn from_f32(x: f32) -> Self {
        F8E4M3(f32_to_small(x, 4, 3, false) as u8)
    }

    /// Exact widening conversion.
    #[inline]
    pub fn to_f32(self) -> f32 {
        small_to_f32(self.0 as u16, 4, 3, false)
    }

    /// True if this value is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.0 & 0x7f == 0x7f
    }

    /// True if finite. E4M3 has no infinities, so this is `!is_nan()`.
    #[inline]
    pub fn is_finite(self) -> bool {
        !self.is_nan()
    }
}

impl From<f32> for F8E4M3 {
    fn from(x: f32) -> Self {
        F8E4M3::from_f32(x)
    }
}
impl From<F8E4M3> for f32 {
    fn from(x: F8E4M3) -> Self {
        x.to_f32()
    }
}

impl PartialOrd for F8E4M3 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

macro_rules! via_f32 {
    ($trait:ident, $fn:ident, $op:tt) => {
        impl $trait for F8E4M3 {
            type Output = F8E4M3;
            #[inline]
            fn $fn(self, rhs: F8E4M3) -> F8E4M3 {
                F8E4M3::from_f32(self.to_f32() $op rhs.to_f32())
            }
        }
    };
}
via_f32!(Add, add, +);
via_f32!(Sub, sub, -);
via_f32!(Mul, mul, *);
via_f32!(Div, div, /);

impl AddAssign for F8E4M3 {
    #[inline]
    fn add_assign(&mut self, rhs: F8E4M3) {
        *self = *self + rhs;
    }
}

impl Neg for F8E4M3 {
    type Output = F8E4M3;
    #[inline]
    fn neg(self) -> F8E4M3 {
        F8E4M3(self.0 ^ 0x80)
    }
}

impl fmt::Display for F8E4M3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        assert_eq!(F8E4M3::from_f32(0.0).to_bits(), 0x00);
        assert_eq!(F8E4M3::from_f32(1.0).to_bits(), 0x38);
        assert_eq!(F8E4M3::from_f32(-1.0).to_bits(), 0xb8);
        assert_eq!(F8E4M3::from_f32(448.0).to_bits(), 0x7e);
        assert_eq!(F8E4M3::from_f32(2.0).to_bits(), 0x40);
        assert_eq!(F8E4M3::from_f32(1.5).to_bits(), 0x3c);
        // Smallest subnormal: 2^-9.
        assert_eq!(F8E4M3::from_f32(0.001953125).to_bits(), 0x01);
    }

    #[test]
    fn saturates_instead_of_inf() {
        assert_eq!(F8E4M3::from_f32(1e9), F8E4M3::MAX);
        assert_eq!(F8E4M3::from_f32(f32::INFINITY), F8E4M3::MAX);
        assert_eq!(F8E4M3::from_f32(-1e9), F8E4M3::MIN);
        // 464 is halfway between 448 and the NaN slot "480": must saturate,
        // never produce NaN.
        assert_eq!(F8E4M3::from_f32(464.0), F8E4M3::MAX);
        assert_eq!(F8E4M3::from_f32(479.0), F8E4M3::MAX);
    }

    #[test]
    fn nan_roundtrip() {
        assert!(F8E4M3::from_f32(f32::NAN).is_nan());
        assert!(F8E4M3::NAN.to_f32().is_nan());
        assert!(!F8E4M3::MAX.is_nan());
    }

    #[test]
    fn exhaustive_roundtrip() {
        for bits in 0..=u8::MAX {
            let h = F8E4M3::from_bits(bits);
            if h.is_nan() {
                assert!(F8E4M3::from_f32(h.to_f32()).is_nan());
            } else {
                assert_eq!(
                    F8E4M3::from_f32(h.to_f32()).to_bits(),
                    bits,
                    "bits {bits:#04x} (value {})",
                    h.to_f32()
                );
            }
        }
    }

    #[test]
    fn exhaustive_values_match_spec_formula() {
        // Cross-check widening against a direct formula evaluation.
        for bits in 0..=u8::MAX {
            let h = F8E4M3::from_bits(bits);
            if h.is_nan() {
                continue;
            }
            let sign = if bits & 0x80 != 0 { -1.0 } else { 1.0 };
            let e = ((bits >> 3) & 0xf) as i32;
            let m = (bits & 0x7) as f64;
            let expected = if e == 0 {
                sign * (m / 8.0) * (2.0f64).powi(-6)
            } else {
                sign * (1.0 + m / 8.0) * (2.0f64).powi(e - 7)
            };
            assert_eq!(h.to_f32() as f64, expected, "bits {bits:#04x}");
        }
    }

    #[test]
    fn low_precision_addition_saturates_small_increments() {
        // 16 + 1 needs 5 significand bits; E4M3 has 4 -> 16+1 rounds to 16.
        let a = F8E4M3::from_f32(16.0);
        let one = F8E4M3::ONE;
        assert_eq!((a + one).to_f32(), 16.0);
        // 8 + 1 = 9 is representable (1.001 × 2^3).
        assert_eq!((F8E4M3::from_f32(8.0) + one).to_f32(), 9.0);
    }
}
