//! bfloat16 — the upper half of an `f32`.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// bfloat16: 1 sign bit, 8 exponent bits (bias 127, same as `f32`), 7
/// mantissa bits. The dynamic range of `f32` with ~2 decimal digits of
/// precision; the dominant gradient dtype in LLM training.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Bf16(u16);

impl Bf16 {
    /// Positive zero.
    pub const ZERO: Bf16 = Bf16(0);
    /// One.
    pub const ONE: Bf16 = Bf16(0x3f80);
    /// Largest finite value (≈3.39e38).
    pub const MAX: Bf16 = Bf16(0x7f7f);
    /// Positive infinity.
    pub const INFINITY: Bf16 = Bf16(0x7f80);
    /// Negative infinity.
    pub const NEG_INFINITY: Bf16 = Bf16(0xff80);
    /// A quiet NaN.
    pub const NAN: Bf16 = Bf16(0x7fc0);
    /// Machine epsilon (2^-7).
    pub const EPSILON: Bf16 = Bf16(0x3c00);

    /// Construct from the raw bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        Bf16(bits)
    }

    /// The raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Round an `f32` to the nearest `Bf16` (ties to even). Because the
    /// formats share an exponent layout this is a 16-bit truncation with
    /// round-to-nearest-even on the discarded half, and it handles
    /// subnormals and overflow-to-infinity natively.
    #[inline]
    pub fn from_f32(x: f32) -> Self {
        let b = x.to_bits();
        if x.is_nan() {
            // Keep sign and a non-zero mantissa.
            return Bf16(((b >> 16) as u16) | 0x0040);
        }
        let round = (b >> 15) & 1;
        let sticky = b & 0x7fff;
        let mut h = (b >> 16) as u16;
        if round == 1 && (sticky != 0 || h & 1 == 1) {
            h = h.wrapping_add(1); // may carry into exponent / infinity: correct
        }
        Bf16(h)
    }

    /// Exact widening conversion.
    #[inline]
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// True if this value is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.0 & 0x7fff > 0x7f80
    }

    /// True if this value is ±infinity.
    #[inline]
    pub fn is_infinite(self) -> bool {
        self.0 & 0x7fff == 0x7f80
    }

    /// True if finite (neither NaN nor infinite).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0 & 0x7f80 != 0x7f80
    }
}

impl From<f32> for Bf16 {
    fn from(x: f32) -> Self {
        Bf16::from_f32(x)
    }
}
impl From<Bf16> for f32 {
    fn from(x: Bf16) -> Self {
        x.to_f32()
    }
}

impl PartialOrd for Bf16 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

macro_rules! via_f32 {
    ($trait:ident, $fn:ident, $op:tt) => {
        impl $trait for Bf16 {
            type Output = Bf16;
            #[inline]
            fn $fn(self, rhs: Bf16) -> Bf16 {
                Bf16::from_f32(self.to_f32() $op rhs.to_f32())
            }
        }
    };
}
via_f32!(Add, add, +);
via_f32!(Sub, sub, -);
via_f32!(Mul, mul, *);
via_f32!(Div, div, /);

impl AddAssign for Bf16 {
    #[inline]
    fn add_assign(&mut self, rhs: Bf16) {
        *self = *self + rhs;
    }
}

impl Neg for Bf16 {
    type Output = Bf16;
    #[inline]
    fn neg(self) -> Bf16 {
        Bf16(self.0 ^ 0x8000)
    }
}

impl fmt::Display for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_constants() {
        assert_eq!(Bf16::from_f32(1.0).to_bits(), 0x3f80);
        assert_eq!(Bf16::from_f32(-1.0).to_bits(), 0xbf80);
        assert_eq!(Bf16::from_f32(0.0).to_bits(), 0x0000);
        assert_eq!(Bf16::from_f32(-0.0).to_bits(), 0x8000);
    }

    #[test]
    fn rounding_ties_to_even() {
        // 1.0 + 2^-8 is exactly halfway between 1.0 and 1.0+2^-7;
        // kept mantissa of 1.0 is even, so it rounds down to 1.0.
        let x = f32::from_bits(0x3f80_8000);
        assert_eq!(Bf16::from_f32(x).to_bits(), 0x3f80);
        // 1.0 + 3×2^-8 is halfway between odd and even; rounds up to even.
        let y = f32::from_bits(0x3f81_8000);
        assert_eq!(Bf16::from_f32(y).to_bits(), 0x3f82);
        // Anything past halfway rounds up.
        let z = f32::from_bits(0x3f80_8001);
        assert_eq!(Bf16::from_f32(z).to_bits(), 0x3f81);
    }

    #[test]
    fn overflow_carries_into_infinity() {
        // Largest f32 rounds to bf16 infinity (mantissa all ones + round up).
        assert_eq!(Bf16::from_f32(f32::MAX), Bf16::INFINITY);
        assert_eq!(Bf16::from_f32(f32::INFINITY), Bf16::INFINITY);
        assert_eq!(Bf16::from_f32(f32::NEG_INFINITY), Bf16::NEG_INFINITY);
    }

    #[test]
    fn nan_stays_nan() {
        assert!(Bf16::from_f32(f32::NAN).is_nan());
        assert!(Bf16::NAN.to_f32().is_nan());
    }

    #[test]
    fn f32_subnormals_narrow_to_bf16_subnormals() {
        // 2^-133 is a bf16 subnormal (bf16 min normal is 2^-126).
        let x = (2.0f32).powi(-133);
        let b = Bf16::from_f32(x);
        assert_eq!(b.to_f32(), x);
    }

    #[test]
    fn exhaustive_widen_narrow_roundtrip() {
        for bits in 0..=u16::MAX {
            let h = Bf16::from_bits(bits);
            if h.is_nan() {
                assert!(Bf16::from_f32(h.to_f32()).is_nan());
            } else {
                assert_eq!(
                    Bf16::from_f32(h.to_f32()).to_bits(),
                    bits,
                    "bits {bits:#06x}"
                );
            }
        }
    }

    #[test]
    fn precision_is_seven_bits() {
        // 256 + 1 is not representable (9 significand bits needed).
        let s = Bf16::from_f32(256.0) + Bf16::from_f32(1.0);
        assert_eq!(s.to_f32(), 256.0);
        // 128 + 1 is representable (8 bits = 1+7 mantissa).
        let t = Bf16::from_f32(128.0) + Bf16::from_f32(1.0);
        assert_eq!(t.to_f32(), 129.0);
    }
}
