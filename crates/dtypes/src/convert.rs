//! Shared narrowing/widening machinery for small binary floats whose whole
//! finite range sits inside the `f32` normal range (true for binary16 and
//! FP8-E4M3; bfloat16 uses a dedicated bit-slicing path in `bf16.rs`).

/// Round `v >> s` to nearest, ties to even. `v` must fit in 32 bits with
/// headroom for +1; `s` in `1..=31`.
#[inline]
pub(crate) fn rne_shift(v: u32, s: u32) -> u32 {
    debug_assert!((1..=31).contains(&s));
    let kept = v >> s;
    let round = (v >> (s - 1)) & 1;
    let sticky = (v & ((1u32 << (s - 1)) - 1)) != 0;
    if round == 1 && (sticky || kept & 1 == 1) {
        kept + 1
    } else {
        kept
    }
}

/// Narrow an `f32` to a float with `exp` exponent bits and `mant` mantissa
/// bits, round-to-nearest-even. `has_inf` selects IEEE overflow (to ±inf)
/// versus E4M3-style saturation to max-finite. The result occupies the low
/// `1 + exp + mant` bits.
pub(crate) fn f32_to_small(x: f32, exp: u32, mant: u32, has_inf: bool) -> u16 {
    let bits = x.to_bits();
    let sign = (((bits >> 31) as u16) & 1) << (exp + mant);
    let abs = bits & 0x7fff_ffff;
    let bias = (1i32 << (exp - 1)) - 1;
    let max_ef = (1u16 << exp) - 1;
    let max_finite = if has_inf {
        // Largest finite: exponent max_ef-1, mantissa all ones.
        ((max_ef - 1) << mant) | ((1u16 << mant) - 1)
    } else {
        // E4M3: exponent all ones, mantissa all-ones-but-one (0b110).
        (max_ef << mant) | ((1u16 << mant) - 2)
    };
    let nan = if has_inf {
        (max_ef << mant) | (1u16 << (mant - 1))
    } else {
        (max_ef << mant) | ((1u16 << mant) - 1)
    };

    if abs > 0x7f80_0000 {
        return sign | nan;
    }
    if abs == 0x7f80_0000 {
        return if has_inf {
            sign | (max_ef << mant)
        } else {
            sign | max_finite
        };
    }
    if abs >> 23 == 0 {
        // Zero or f32 subnormal (< 2^-126): far below the narrow formats'
        // smallest subnormal, rounds to (signed) zero.
        return sign;
    }

    let e = ((abs >> 23) as i32) - 127; // unbiased exponent
    let sig = (abs & 0x007f_ffff) | 0x0080_0000; // 24-bit significand

    let ef = e + bias; // narrow exponent field if normal
    if ef >= 1 {
        // Normal path: reduce 23 fraction bits to `mant`.
        let mut m = rne_shift(sig, 23 - mant);
        let mut ef = ef;
        if m == (1 << (mant + 1)) {
            // Mantissa rounding carried out: 1.111.. -> 10.000..
            ef += 1;
            m >>= 1;
        }
        let top_ef = if has_inf {
            max_ef as i32 - 1
        } else {
            max_ef as i32
        };
        if ef > top_ef {
            return if has_inf {
                sign | (max_ef << mant) // infinity
            } else {
                sign | max_finite
            };
        }
        let out = ((ef as u16) << mant) | ((m as u16) & ((1u16 << mant) - 1));
        if !has_inf && out == nan {
            // Rounded onto the E4M3 NaN pattern (|x| rounded to "480"):
            // saturate to max finite instead.
            return sign | max_finite;
        }
        sign | out
    } else {
        // Subnormal path: unit is 2^(1 - bias - mant).
        // m = round(sig × 2^(e-23) / 2^(1-bias-mant)).
        let shift = (23 - mant as i32) + (1 - bias - e);
        debug_assert!(shift > 0);
        if shift >= 25 {
            return sign; // below half the smallest subnormal
        }
        let m = rne_shift(sig, shift as u32) as u16;
        // m == 1<<mant encodes naturally as the smallest normal.
        sign | m
    }
}

/// Widen a small float (low `1 + exp + mant` bits of `bits`) to `f32`.
pub(crate) fn small_to_f32(bits: u16, exp: u32, mant: u32, has_inf: bool) -> f32 {
    let sign = ((bits >> (exp + mant)) & 1) as u32;
    let ef = ((bits >> mant) & ((1u16 << exp) - 1)) as u32;
    let m = (bits & ((1u16 << mant) - 1)) as u32;
    let bias = (1i32 << (exp - 1)) - 1;
    let max_ef = (1u32 << exp) - 1;

    let out_abs = if ef == max_ef && has_inf {
        if m == 0 {
            0x7f80_0000
        } else {
            0x7fc0_0000 | (m << (23 - mant))
        }
    } else if !has_inf && ef == max_ef && m == (1 << mant) - 1 {
        0x7fc0_0000
    } else if ef == 0 {
        if m == 0 {
            0
        } else {
            // Subnormal: m × 2^(1 - bias - mant). Normalize into f32.
            let lead = 31 - m.leading_zeros(); // position of top set bit
            let e32 = (1 - bias - mant as i32) + lead as i32 + 127;
            debug_assert!(e32 > 0, "narrow subnormals are f32 normals");
            let frac = (m << (23 - lead)) & 0x007f_ffff;
            ((e32 as u32) << 23) | frac
        }
    } else {
        let e32 = (ef as i32 - bias + 127) as u32;
        (e32 << 23) | (m << (23 - mant))
    };
    f32::from_bits((sign << 31) | out_abs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rne_ties_to_even() {
        assert_eq!(rne_shift(0b101, 1), 0b10); // tie (2.5), kept even -> down
        assert_eq!(rne_shift(0b100, 1), 0b10); // exact
        assert_eq!(rne_shift(0b11, 1), 0b10); // tie, kept odd -> up
        assert_eq!(rne_shift(0b01, 1), 0b0); // tie, kept even -> down
        assert_eq!(rne_shift(0b1011, 2), 0b11); // sticky forces up
    }
}
