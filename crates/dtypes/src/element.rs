//! The [`Element`] trait: what reduction kernels need from a dtype.

use crate::{Bf16, F16, F8E4M3};
use std::fmt::Debug;

/// Identifies a wire dtype; used for sizing transfers and dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// 32-bit IEEE float.
    F32,
    /// 16-bit IEEE float.
    F16,
    /// bfloat16.
    Bf16,
    /// FP8 E4M3.
    F8E4M3,
}

impl DType {
    /// Bytes per element on the wire and in buffers.
    pub const fn size_bytes(self) -> usize {
        match self {
            DType::F32 => 4,
            DType::F16 | DType::Bf16 => 2,
            DType::F8E4M3 => 1,
        }
    }

    /// Human-readable name, matching the paper's terminology.
    pub const fn name(self) -> &'static str {
        match self {
            DType::F32 => "FP32",
            DType::F16 => "FP16",
            DType::Bf16 => "BF16",
            DType::F8E4M3 => "FP8",
        }
    }
}

/// An element type usable in reduction kernels: plain-old-data, convertible
/// to/from `f32` (the accumulate width), with a zero identity.
///
/// Implementations accumulate in `f32` to match HFReduce's CPU reduction,
/// which widens to single precision in vector registers before adding.
pub trait Element: Copy + Send + Sync + Debug + PartialEq + 'static {
    /// The dtype tag for this element type.
    const DTYPE: DType;
    /// Additive identity.
    const ZERO: Self;

    /// Widen to f32 (exact for every type here).
    fn to_f32(self) -> f32;
    /// Narrow from f32 with round-to-nearest-even.
    fn from_f32(x: f32) -> Self;
}

impl Element for f32 {
    const DTYPE: DType = DType::F32;
    const ZERO: Self = 0.0;
    #[inline]
    fn to_f32(self) -> f32 {
        self
    }
    #[inline]
    fn from_f32(x: f32) -> Self {
        x
    }
}

impl Element for F16 {
    const DTYPE: DType = DType::F16;
    const ZERO: Self = F16::ZERO;
    #[inline]
    fn to_f32(self) -> f32 {
        F16::to_f32(self)
    }
    #[inline]
    fn from_f32(x: f32) -> Self {
        F16::from_f32(x)
    }
}

impl Element for Bf16 {
    const DTYPE: DType = DType::Bf16;
    const ZERO: Self = Bf16::ZERO;
    #[inline]
    fn to_f32(self) -> f32 {
        Bf16::to_f32(self)
    }
    #[inline]
    fn from_f32(x: f32) -> Self {
        Bf16::from_f32(x)
    }
}

impl Element for F8E4M3 {
    const DTYPE: DType = DType::F8E4M3;
    const ZERO: Self = F8E4M3::ZERO;
    #[inline]
    fn to_f32(self) -> f32 {
        F8E4M3::to_f32(self)
    }
    #[inline]
    fn from_f32(x: f32) -> Self {
        F8E4M3::from_f32(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_wire_format() {
        assert_eq!(DType::F32.size_bytes(), 4);
        assert_eq!(DType::F16.size_bytes(), 2);
        assert_eq!(DType::Bf16.size_bytes(), 2);
        assert_eq!(DType::F8E4M3.size_bytes(), 1);
    }

    #[test]
    fn names_follow_paper() {
        assert_eq!(DType::F32.name(), "FP32");
        assert_eq!(DType::F8E4M3.name(), "FP8");
    }

    fn roundtrip_one<E: Element>(x: f32) {
        let e = E::from_f32(x);
        let back = E::from_f32(e.to_f32());
        assert_eq!(e, back);
    }

    #[test]
    fn narrowing_is_idempotent() {
        for x in [0.0f32, 1.0, -1.5, std::f32::consts::PI, 1e-3, 100.0] {
            roundtrip_one::<f32>(x);
            roundtrip_one::<F16>(x);
            roundtrip_one::<Bf16>(x);
            roundtrip_one::<F8E4M3>(x);
        }
    }

    #[test]
    fn zero_is_identity() {
        assert_eq!(f32::ZERO.to_f32(), 0.0);
        assert_eq!(F16::ZERO.to_f32(), 0.0);
        assert_eq!(Bf16::ZERO.to_f32(), 0.0);
        assert_eq!(F8E4M3::ZERO.to_f32(), 0.0);
    }
}
