//! IEEE-754 binary16.

use crate::convert::{f32_to_small, small_to_f32};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// IEEE-754 half precision: 1 sign bit, 5 exponent bits (bias 15), 10
/// mantissa bits. Range ±65504, smallest subnormal ≈ 5.96e-8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct F16(u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0);
    /// One.
    pub const ONE: F16 = F16(0x3c00);
    /// Largest finite value (65504).
    pub const MAX: F16 = F16(0x7bff);
    /// Smallest finite value (−65504).
    pub const MIN: F16 = F16(0xfbff);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7c00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xfc00);
    /// A quiet NaN.
    pub const NAN: F16 = F16(0x7e00);
    /// Machine epsilon (2^-10).
    pub const EPSILON: F16 = F16(0x1400);

    /// Construct from the raw bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        F16(bits)
    }

    /// The raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Round an `f32` to the nearest representable `F16` (ties to even).
    #[inline]
    pub fn from_f32(x: f32) -> Self {
        F16(f32_to_small(x, 5, 10, true))
    }

    /// Exact widening conversion.
    #[inline]
    pub fn to_f32(self) -> f32 {
        small_to_f32(self.0, 5, 10, true)
    }

    /// True if this value is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.0 & 0x7fff > 0x7c00
    }

    /// True if this value is ±infinity.
    #[inline]
    pub fn is_infinite(self) -> bool {
        self.0 & 0x7fff == 0x7c00
    }

    /// True if finite (neither NaN nor infinite).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0 & 0x7c00 != 0x7c00
    }
}

impl From<f32> for F16 {
    fn from(x: f32) -> Self {
        F16::from_f32(x)
    }
}
impl From<F16> for f32 {
    fn from(x: F16) -> Self {
        x.to_f32()
    }
}

impl PartialOrd for F16 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

macro_rules! via_f32 {
    ($trait:ident, $fn:ident, $op:tt) => {
        impl $trait for F16 {
            type Output = F16;
            #[inline]
            fn $fn(self, rhs: F16) -> F16 {
                F16::from_f32(self.to_f32() $op rhs.to_f32())
            }
        }
    };
}
via_f32!(Add, add, +);
via_f32!(Sub, sub, -);
via_f32!(Mul, mul, *);
via_f32!(Div, div, /);

impl AddAssign for F16 {
    #[inline]
    fn add_assign(&mut self, rhs: F16) {
        *self = *self + rhs;
    }
}

impl Neg for F16 {
    type Output = F16;
    #[inline]
    fn neg(self) -> F16 {
        F16(self.0 ^ 0x8000)
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_constants_roundtrip() {
        assert_eq!(F16::from_f32(0.0).to_bits(), 0x0000);
        assert_eq!(F16::from_f32(-0.0).to_bits(), 0x8000);
        assert_eq!(F16::from_f32(1.0).to_bits(), 0x3c00);
        assert_eq!(F16::from_f32(-2.0).to_bits(), 0xc000);
        assert_eq!(F16::from_f32(65504.0).to_bits(), 0x7bff);
        assert_eq!(F16::from_f32(0.5).to_bits(), 0x3800);
        // 1/3 in binary16 is 0x3555.
        assert_eq!(F16::from_f32(1.0 / 3.0).to_bits(), 0x3555);
    }

    #[test]
    fn overflow_goes_to_infinity() {
        assert_eq!(F16::from_f32(1e6), F16::INFINITY);
        assert_eq!(F16::from_f32(-1e6), F16::NEG_INFINITY);
        // 65520 is the rounding boundary: rounds to infinity.
        assert_eq!(F16::from_f32(65520.0), F16::INFINITY);
        // 65519 rounds down to MAX.
        assert_eq!(F16::from_f32(65519.0), F16::MAX);
    }

    #[test]
    fn subnormals() {
        // Smallest positive subnormal = 2^-24.
        let tiny = F16::from_f32(5.960_464_5e-8);
        assert_eq!(tiny.to_bits(), 0x0001);
        assert!((tiny.to_f32() - 5.960_464_5e-8).abs() < 1e-12);
        // Half of it ties to even -> zero.
        assert_eq!(F16::from_f32(2.980_232_2e-8).to_bits(), 0x0000);
        // Largest subnormal.
        let max_sub = F16::from_bits(0x03ff);
        assert!((max_sub.to_f32() - 6.097_555e-5).abs() < 1e-10);
        assert_eq!(F16::from_f32(max_sub.to_f32()).to_bits(), 0x03ff);
    }

    #[test]
    fn nan_propagates() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::NAN.to_f32().is_nan());
        assert!((F16::NAN + F16::ONE).is_nan());
    }

    #[test]
    fn infinity_widens() {
        assert_eq!(F16::INFINITY.to_f32(), f32::INFINITY);
        assert_eq!(F16::NEG_INFINITY.to_f32(), f32::NEG_INFINITY);
        assert!(F16::INFINITY.is_infinite());
        assert!(!F16::INFINITY.is_finite());
    }

    #[test]
    fn arithmetic_rounds() {
        // 2048 + 1 is not representable in binary16 (11 bits): stays 2048.
        let a = F16::from_f32(2048.0);
        let b = F16::from_f32(1.0);
        assert_eq!((a + b).to_f32(), 2048.0);
        // 2048 + 2 is representable.
        assert_eq!((a + F16::from_f32(2.0)).to_f32(), 2050.0);
    }

    #[test]
    fn neg_flips_sign_bit_only() {
        assert_eq!((-F16::ONE).to_f32(), -1.0);
        assert_eq!((-F16::ZERO).to_bits(), 0x8000);
    }

    #[test]
    fn ordering_matches_f32() {
        let vals = [-3.0f32, -0.5, 0.0, 0.25, 7.0];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(
                    F16::from_f32(a).partial_cmp(&F16::from_f32(b)),
                    a.partial_cmp(&b)
                );
            }
        }
    }

    #[test]
    fn exhaustive_widen_narrow_roundtrip() {
        // Every finite F16 bit pattern must survive a round trip through f32.
        for bits in 0..=u16::MAX {
            let h = F16::from_bits(bits);
            if h.is_nan() {
                assert!(F16::from_f32(h.to_f32()).is_nan());
            } else {
                assert_eq!(
                    F16::from_f32(h.to_f32()).to_bits(),
                    bits,
                    "bits {bits:#06x}"
                );
            }
        }
    }
}
