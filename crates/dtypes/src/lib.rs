//! # ff-dtypes — software half-precision numeric types
//!
//! HFReduce's intra-node reduction runs on the CPU with SIMD instructions
//! and "supports FP32 / FP16 / BF16 / FP8 datatypes" (paper §IV-D1). Rust
//! has no stable `f16`/`bf16`/`f8`, so this crate implements them in
//! software: bit-exact storage types with IEEE-754 round-to-nearest-even
//! conversion to and from `f32`, plus the [`Element`] trait the reduction
//! kernels in `ff-reduce` are generic over.
//!
//! * [`F16`] — IEEE binary16: 1 sign, 5 exponent (bias 15), 10 mantissa.
//! * [`Bf16`] — bfloat16: 1 sign, 8 exponent (bias 127), 7 mantissa; the
//!   upper half of an `f32`.
//! * [`F8E4M3`] — FP8 E4M3: 1 sign, 4 exponent (bias 7), 3 mantissa; no
//!   infinities, `S.1111.111` is NaN, max finite ±448. Overflow saturates
//!   to max finite (the convention of ML hardware), NaN propagates.
//!
//! Arithmetic is performed by widening to `f32`, operating, and rounding
//! back — exactly what a CPU reduction loop does with hardware conversion
//! instructions (`vcvtph2ps` / `vcvtps2ph`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bf16;
mod convert;
mod element;
mod f16;
mod f8;

pub use bf16::Bf16;
pub use element::{DType, Element};
pub use f16::F16;
pub use f8::F8E4M3;
