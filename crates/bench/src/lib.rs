//! # ff-bench — the evaluation harness
//!
//! One binary per table/figure of the paper (run with
//! `cargo run -p ff-bench --release --bin <name>`), plus Criterion
//! microbenchmarks of the executable hot paths. This library holds the
//! shared report formatting.
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1_hw` | Table I — node hardware comparison |
//! | `table2_costperf` | Table II — GEMM perf / cost / power |
//! | `table3_network_cost` | Table III — switch counts & prices |
//! | `fig7a_allreduce_scaling` | Figure 7a — HFReduce vs NCCL bandwidth |
//! | `fig7b_nvlink_crosszone` | Figure 7b — HFReduce+NVLink, cross-zone |
//! | `fig8a_vgg_ddp` | Figure 8a — VGG16 DDP weak scaling |
//! | `fig8b_gpt2_fsdp` | Figure 8b — GPT2-medium FSDP weak scaling |
//! | `fig9a_llama_pp` | Figure 9a — LLaMa-13B pipeline strong scaling |
//! | `fig9b_moe_ep` | Figure 9b — DeepSeekMoE-16B strong scaling |
//! | `storage_throughput` | §VI-B2 — 3FS aggregate read throughput |
//! | `checkpoint_bench` | §VII-A — checkpoint save/load speed |
//! | `table6_xid` | Table V/VI — Xid taxonomy & distribution |
//! | `fig10_failure_trends` | Figure 10 — memory/network failure trends |
//! | `fig11_flashcuts` | Figure 11 — IB link flash cuts |
//! | `ablation_congestion` | §VI-A/VIII-A — VLs, routing, RTS, DCQCN |
//! | `ops_recovery` | §VII-A — checkpoint cadence vs lost work |
//! | `hai_platform` | §VI-C — the HAI scheduler at full cluster scale |
//! | `serving_bench` | ISSUE 7 — serving tier vs training throughput, p99 under failures |
//! | `detector_bench` | ISSUE 9 — gray-failure detection latency vs false-positive cost |
//! | `fabric_bench` | ISSUE 10 — in-mem vs TCP fabric algbw, loopback calibration |
//! | `background_figs` | Figures 1–3 — background growth charts |

#![forbid(unsafe_code)]

pub mod detector;
pub mod fabric;
pub mod fleet;
pub mod hai;
pub mod serving;

use std::fmt::Display;

/// Print a titled ASCII table: header row + aligned columns.
pub fn print_table<H: Display, C: Display>(title: &str, header: &[H], rows: &[Vec<C>]) {
    println!("\n== {title} ==");
    let header: Vec<String> = header.iter().map(|h| h.to_string()).collect();
    let rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| r.iter().map(|c| c.to_string()).collect())
        .collect();
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in &rows {
        assert_eq!(r.len(), cols, "ragged row");
        for (i, c) in r.iter().enumerate() {
            widths[i] = widths[i].max(c.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                s.push_str("  ");
            }
            s.push_str(&format!("{c:>w$}", w = widths[i]));
        }
        s
    };
    println!("{}", line(&header));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1))
    );
    for r in &rows {
        println!("{}", line(r));
    }
}

/// Render a simple horizontal bar chart line: `label |#### value`.
pub fn bar(label: &str, value: f64, max: f64, width: usize) -> String {
    let n = if max > 0.0 {
        ((value / max) * width as f64).round() as usize
    } else {
        0
    };
    format!("{label:>14} |{} {value:.2}", "#".repeat(n.min(width)))
}

/// Format bytes/second as GB/s.
pub fn gbps(x: f64) -> String {
    format!("{:.2} GB/s", x / 1e9)
}

/// A paper-vs-measured comparison line for EXPERIMENTS.md-style output.
pub fn compare(metric: &str, paper: &str, measured: &str) {
    println!("{metric:<44} paper: {paper:<18} measured: {measured}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales() {
        let b = bar("x", 5.0, 10.0, 20);
        assert!(b.contains(&"#".repeat(10)));
        assert!(!b.contains(&"#".repeat(11)));
    }

    #[test]
    fn gbps_formats() {
        assert_eq!(gbps(8.1e9), "8.10 GB/s");
    }

    #[test]
    fn zero_max_bar_is_empty() {
        assert!(!bar("x", 1.0, 0.0, 10).contains('#'));
    }
}
