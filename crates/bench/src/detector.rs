//! Detector-quality sweep: the harness behind the `detector_bench`
//! binary and its release smoke test.
//!
//! The hai-monitor-style detector (ISSUE 9) is imperfect *by design* —
//! it sees probe sweeps and heartbeat stretch, not ground truth — so
//! its two costs must be priced against each other:
//!
//! * **Detection latency**: with a known straggler injected at a known
//!   onset, how long until the offending node's first Suspect verdict?
//!   Swept over sensitivity × slowdown, reported as p50/p99 across
//!   seeded repeats (misses — fault never detected inside the horizon —
//!   are reported separately, never silently folded into percentiles).
//! * **False-positive capacity cost**: the same seeds replayed with *no*
//!   gray fault. Every quarantine the detector raises on that calm twin
//!   is false by construction, and the node-seconds the pool spends
//!   down because of them is the capacity bill for running trigger-happy.
//!
//! Every run is a full fluid-mode [`Platform`] replay; the aggregate is
//! a deterministic JSON document (`BENCH_detector.json`) whose digest is
//! bit-identical at any solver thread count.
//!
//! [`Platform`]: ff_platform::Platform

use ff_failures::{GrayFault, GrayPlan};
use ff_platform::{DetectorConfig, JobSpec, PlatformConfig, Verdict};
use ff_reduce::{ClusterConfig, ClusterModel};

use crate::fleet::fnv1a64;

/// The sweep: sensitivity × slowdown, `repeats` seeded runs per cell.
#[derive(Debug, Clone)]
pub struct DetectorBenchConfig {
    /// Base seed; each repeat derives its own.
    pub seed: u64,
    /// Cluster size in nodes (storage carved out as usual).
    pub nodes: usize,
    /// Simulated horizon per run, seconds.
    pub horizon_s: u64,
    /// Straggler onset, seconds into the run (baselines learn first).
    pub onset_s: u64,
    /// Detector sensitivities to sweep, each in `(0, 1]`.
    pub sensitivities: Vec<f64>,
    /// Straggler slowdown factors to sweep, each `> 1`.
    pub slowdowns: Vec<f64>,
    /// Seeded repeats per (sensitivity, slowdown) cell.
    pub repeats: usize,
    /// Fluid solver threads (the digest must not depend on this).
    pub solver_threads: usize,
}

impl DetectorBenchConfig {
    /// The committed grid: 3 sensitivities × 3 slowdowns × 4 repeats at
    /// 16 nodes, 8 simulated minutes per run (cheap enough for the
    /// `--check` CI gate to re-run in full).
    pub fn paper_grid() -> DetectorBenchConfig {
        DetectorBenchConfig {
            seed: 7,
            nodes: 16,
            horizon_s: 480,
            onset_s: 120,
            // 0.25 = sluggish (misses mild stragglers), 0.5 = balanced,
            // 1.0 = hair-trigger (confirms on a single noisy sweep, so
            // the calm twins pay real false-quarantine capacity).
            sensitivities: vec![0.25, 0.5, 1.0],
            slowdowns: vec![1.5, 2.5, 4.0],
            repeats: 4,
            solver_threads: 1,
        }
    }

    /// A tiny grid for smoke tests: 2 × 2 × 3 runs plus calm twins.
    pub fn smoke_grid() -> DetectorBenchConfig {
        DetectorBenchConfig {
            seed: 7,
            nodes: 8,
            horizon_s: 420,
            onset_s: 90,
            sensitivities: vec![0.5, 0.9],
            slowdowns: vec![2.0, 4.0],
            repeats: 3,
            solver_threads: 1,
        }
    }
}

/// One (sensitivity, slowdown) cell's aggregate across repeats.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorCell {
    /// Detector sensitivity of this cell.
    pub sensitivity: f64,
    /// Straggler slowdown of this cell.
    pub slowdown: f64,
    /// Repeats where the straggler node was detected after onset.
    pub detected: usize,
    /// Repeats where it never was (false negatives).
    pub missed: usize,
    /// Time-to-detect p50 over detected repeats, seconds (0 if none).
    pub ttd_p50_s: u64,
    /// Time-to-detect p99 over detected repeats, seconds (0 if none).
    pub ttd_p99_s: u64,
    /// Suspect verdicts across all straggler repeats (detections,
    /// re-flags after probation, and any false alarms on other nodes).
    pub verdicts: u64,
}

/// One sensitivity's calm-twin aggregate: every quarantine here is a
/// false positive.
#[derive(Debug, Clone, PartialEq)]
pub struct CalmCell {
    /// Detector sensitivity of this twin set.
    pub sensitivity: f64,
    /// False quarantines across all calm repeats.
    pub false_quarantines: u64,
    /// Node-seconds of capacity lost to them, across all calm repeats.
    pub down_node_s: u64,
}

/// A finished sweep plus its digest.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorBenchResult {
    /// One aggregate per (sensitivity, slowdown), sweep order.
    pub cells: Vec<DetectorCell>,
    /// One calm-twin aggregate per sensitivity, sweep order.
    pub calm: Vec<CalmCell>,
    /// FNV-1a 64 over the canonical cell lines.
    pub digest: String,
}

impl DetectorCell {
    /// Canonical fixed-format line, the unit of the sweep digest.
    pub fn canonical(&self) -> String {
        format!(
            "det sens={:.2} slow={:.1} detected={} missed={} ttd_p50_s={} \
             ttd_p99_s={} verdicts={}",
            self.sensitivity,
            self.slowdown,
            self.detected,
            self.missed,
            self.ttd_p50_s,
            self.ttd_p99_s,
            self.verdicts
        )
    }
}

impl CalmCell {
    /// Canonical fixed-format line, the unit of the sweep digest.
    pub fn canonical(&self) -> String {
        format!(
            "calm sens={:.2} false_q={} down_node_s={}",
            self.sensitivity, self.false_quarantines, self.down_node_s
        )
    }
}

/// One seeded run: a training job pinned across most of the cluster,
/// optionally a straggler on one of its nodes at `onset_s`. Returns
/// (time-to-detect seconds if the straggler node was suspected after
/// onset, total Suspect verdicts, detector quarantines, down node-s).
fn run_one(
    cfg: &DetectorBenchConfig,
    seed: u64,
    sensitivity: f64,
    slowdown: Option<f64>,
) -> (Option<u64>, u64, u64, u64) {
    let mut det = DetectorConfig::with_sensitivity(sensitivity);
    det.seed = seed;
    let mut p = PlatformConfig::new()
        .cluster(ClusterModel::build(&ClusterConfig::fire_flyer(cfg.nodes)))
        .storage_nodes(2)
        .ckpt_interval(30)
        .solver_threads(cfg.solver_threads)
        .detector(det)
        .build()
        .expect("fluid platform builds");
    let compute = p.node_count();
    let t = p
        .submit(
            // Enough work to outlive the horizon: steps on small fluid
            // clusters take milliseconds of simulated time.
            JobSpec::new("victim", (compute / 2).max(2), u64::MAX / 4)
                .step_bytes(6.4e7)
                .ckpt_bytes(2.56e8),
        )
        .expect("job fits");
    // The straggler strikes a node the job actually runs on: a seeded
    // pick from the warm assignment, so the fault always has a symptom.
    // (At hair-trigger sensitivity a false quarantine may have already
    // re-queued the job by onset — fall back to any compute node.)
    p.tick(cfg.onset_s);
    let target = slowdown.map(|slow| {
        let assigned = p.assignment(t).expect("victim is a known task");
        let node = if assigned.is_empty() {
            (seed as usize) % compute
        } else {
            assigned[(seed as usize) % assigned.len()]
        };
        let onset = p.now().0 as f64 / 1e9;
        p.apply_gray_plan(&GrayPlan::single(
            onset,
            node,
            (cfg.horizon_s * 2) as f64,
            GrayFault::Straggler {
                slowdown: slow,
                onset_ramp_s: 0.0,
            },
        ));
        node
    });
    p.tick(cfg.horizon_s - cfg.onset_s);
    let ttd = target.and_then(|node| {
        p.detector_verdicts().iter().find_map(|v| match *v {
            Verdict::Suspect { at, node: n, .. } if n == node => {
                Some((at.0 / 1_000_000_000).saturating_sub(cfg.onset_s))
            }
            _ => None,
        })
    });
    let verdicts = p
        .detector_verdicts()
        .iter()
        .filter(|v| matches!(v, Verdict::Suspect { .. }))
        .count() as u64;
    (
        ttd,
        verdicts,
        p.detector_quarantines(),
        p.down_node_seconds(),
    )
}

/// Percentile over a small sorted sample (nearest-rank).
fn pct(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Run the whole sweep.
pub fn sweep(cfg: &DetectorBenchConfig) -> DetectorBenchResult {
    let mut cells = Vec::new();
    let mut calm = Vec::new();
    for (si, &sens) in cfg.sensitivities.iter().enumerate() {
        for (wi, &slow) in cfg.slowdowns.iter().enumerate() {
            let mut ttds = Vec::new();
            let mut missed = 0usize;
            let mut verdicts = 0u64;
            for r in 0..cfg.repeats {
                let seed = cfg.seed ^ ((si as u64) << 24 | (wi as u64) << 16 | r as u64);
                let (ttd, v, _, _) = run_one(cfg, seed, sens, Some(slow));
                match ttd {
                    Some(s) => ttds.push(s),
                    None => missed += 1,
                }
                verdicts += v;
            }
            ttds.sort_unstable();
            cells.push(DetectorCell {
                sensitivity: sens,
                slowdown: slow,
                detected: ttds.len(),
                missed,
                ttd_p50_s: pct(&ttds, 50.0),
                ttd_p99_s: pct(&ttds, 99.0),
                verdicts,
            });
        }
        // Calm twins: same seeds as the first slowdown column, no fault.
        let mut false_q = 0u64;
        let mut down = 0u64;
        for r in 0..cfg.repeats {
            let seed = cfg.seed ^ ((si as u64) << 24 | r as u64);
            let (_, _, q, d) = run_one(cfg, seed, sens, None);
            false_q += q;
            down += d;
        }
        calm.push(CalmCell {
            sensitivity: sens,
            false_quarantines: false_q,
            down_node_s: down,
        });
    }
    let digest = digest(&cells, &calm);
    DetectorBenchResult {
        cells,
        calm,
        digest,
    }
}

/// The sweep digest: FNV-1a 64 over newline-terminated canonical lines,
/// straggler cells first, then calm twins.
pub fn digest(cells: &[DetectorCell], calm: &[CalmCell]) -> String {
    let mut text = String::new();
    for c in cells {
        text.push_str(&c.canonical());
        text.push('\n');
    }
    for c in calm {
        text.push_str(&c.canonical());
        text.push('\n');
    }
    format!("{:016x}", fnv1a64(text.as_bytes()))
}

/// Render the committed aggregate: deterministic JSON whose bytes depend
/// only on the config, never on solver threads or wall-clock.
pub fn aggregate_json(cfg: &DetectorBenchConfig, r: &DetectorBenchResult) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!(
        "  \"bench\": \"detector\",\n  \"schema\": 1,\n  \"seed\": {},\n  \
         \"nodes\": {},\n  \"horizon_s\": {},\n  \"onset_s\": {},\n  \
         \"repeats\": {},\n  \"digest\": \"{}\",\n",
        cfg.seed, cfg.nodes, cfg.horizon_s, cfg.onset_s, cfg.repeats, r.digest
    ));
    let fmt_axis = |vals: &[f64]| -> String {
        let v: Vec<String> = vals.iter().map(|v| format!("{v}")).collect();
        v.join(", ")
    };
    s.push_str(&format!(
        "  \"sensitivities\": [{}],\n  \"slowdowns\": [{}],\n",
        fmt_axis(&cfg.sensitivities),
        fmt_axis(&cfg.slowdowns)
    ));
    s.push_str("  \"cells\": [\n");
    for (i, c) in r.cells.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"sens\": {:.2}, \"slowdown\": {:.1}, \"detected\": {}, \
             \"missed\": {}, \"ttd_p50_s\": {}, \"ttd_p99_s\": {}, \
             \"verdicts\": {}}}{}\n",
            c.sensitivity,
            c.slowdown,
            c.detected,
            c.missed,
            c.ttd_p50_s,
            c.ttd_p99_s,
            c.verdicts,
            if i + 1 < r.cells.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n  \"calm_twins\": [\n");
    for (i, c) in r.calm.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"sens\": {:.2}, \"false_quarantines\": {}, \
             \"down_node_s\": {}}}{}\n",
            c.sensitivity,
            c.false_quarantines,
            c.down_node_s,
            if i + 1 < r.calm.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let s = [10u64, 20, 30, 40];
        assert_eq!(pct(&s, 50.0), 20);
        assert_eq!(pct(&s, 99.0), 40);
        assert_eq!(pct(&[], 50.0), 0);
        assert_eq!(pct(&[7], 99.0), 7);
    }

    #[test]
    fn digest_covers_both_sections() {
        let cell = DetectorCell {
            sensitivity: 0.5,
            slowdown: 4.0,
            detected: 3,
            missed: 0,
            ttd_p50_s: 30,
            ttd_p99_s: 45,
            verdicts: 3,
        };
        let calm = CalmCell {
            sensitivity: 0.5,
            false_quarantines: 0,
            down_node_s: 0,
        };
        let d1 = digest(std::slice::from_ref(&cell), std::slice::from_ref(&calm));
        let mut calm2 = calm.clone();
        calm2.false_quarantines = 1;
        let d2 = digest(std::slice::from_ref(&cell), std::slice::from_ref(&calm2));
        assert_ne!(d1, d2, "calm-twin counts must be digest-covered");
    }
}
