//! Shared harness behind the `hai_platform` binary and its smoke test:
//! the event-driven HAI scheduler in fluid mode, replaying a seeded
//! multi-tenant job mix under injected failures and reporting the §VI-C
//! utilization / lost-work story.
//!
//! The mix is sized to oversubscribe the compute pool (the paper's
//! time-sharing premise: demand always exceeds supply), so utilization is
//! limited only by failure handling and placement fragmentation.

use ff_failures::FaultPlan;
use ff_obs::Recorder;
use ff_platform::{JobSpec, Platform, PlatformConfig, TaskId, TaskState};
use ff_reduce::{ClusterConfig, ClusterModel};
use ff_util::rng::ChaCha8Rng;
use std::sync::Arc;

/// Parameters of one replay.
#[derive(Debug, Clone)]
pub struct HaiRun {
    /// RNG seed for the job mix and the fault plan.
    pub seed: u64,
    /// Simulated horizon, seconds.
    pub horizon_s: u64,
    /// Utilization/queue-depth sampling cadence, seconds.
    pub sample_s: u64,
    /// Cluster size in nodes; `1250` is the paper's full deployment
    /// (§III). Smaller sizes keep CI cheap.
    pub nodes: usize,
    /// Failure-rate multiplier over the paper's measured rates.
    pub failure_scale: f64,
}

impl Default for HaiRun {
    fn default() -> Self {
        HaiRun {
            seed: 7,
            horizon_s: 3600,
            sample_s: 60,
            nodes: 1250,
            failure_scale: 1.0,
        }
    }
}

/// One sample of the utilization timeline.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Simulated seconds since start.
    pub at_s: u64,
    /// Cumulative scheduler utilization at this instant.
    pub utilization: f64,
    /// Jobs waiting for nodes.
    pub queue_depth: usize,
    /// Healthy nodes.
    pub healthy: usize,
}

/// What a replay produced.
pub struct HaiReport {
    /// Final cumulative utilization over healthy node-time.
    pub utilization: f64,
    /// Node-steps of work lost to failures.
    pub lost_work: u64,
    /// Interruption-signal preemptions performed.
    pub preemptions: u64,
    /// Node failures confirmed.
    pub failures: u64,
    /// Jobs submitted / completed within the horizon.
    pub submitted: usize,
    pub succeeded: usize,
    /// The sampled timeline.
    pub timeline: Vec<Sample>,
    /// Deterministic digest of the full observability trace.
    pub digest: String,
    /// The recorder, for Perfetto export.
    pub recorder: Arc<Recorder>,
}

/// The seeded multi-tenant mix: a few zone-scale pretrains, a band of
/// mid-size research jobs, and a long tail of small dev jobs — enough to
/// oversubscribe `compute` nodes roughly 1.15×.
fn submit_mix(p: &mut Platform, rng: &mut ChaCha8Rng, compute: usize) -> Vec<TaskId> {
    let mut ids = Vec::new();
    let mut want = compute + compute / 7; // standing backlog for backfill
    let mut i = 0usize;
    while want > 0 {
        let (name, need, prio, work) = match i % 10 {
            // One in ten is a high-priority pretrain slice (§VI-C: the
            // production LLM runs that preempt everything else).
            0 => ("pretrain", rng.gen_range(64..97usize), 10, 100_000u64),
            // Research band: minutes-to-hours of steps.
            1..=4 => (
                "research",
                rng.gen_range(8..33usize),
                5,
                rng.gen_range(900..2400u64),
            ),
            // Dev tail: small and short, the backfill fodder.
            _ => (
                "dev",
                rng.gen_range(1..9usize),
                0,
                rng.gen_range(200..900u64),
            ),
        };
        let spec = JobSpec::new(format!("{name}-{i}"), need, work)
            .priority(prio)
            // ~16 GiB of gradients per step and ~32 GiB checkpoints keep
            // individual steps in the ~1 s band at 200 Gb/s NICs.
            .step_bytes(16.0 * (1u64 << 30) as f64)
            .ckpt_bytes(32.0 * (1u64 << 30) as f64);
        ids.push(p.submit(spec).expect("mix job fits the cluster"));
        want = want.saturating_sub(need);
        i += 1;
    }
    ids
}

/// Run one seeded replay.
pub fn run(cfg: &HaiRun) -> HaiReport {
    let rec = Recorder::new();
    let cluster = if cfg.nodes >= 1250 {
        ClusterModel::build(&ClusterConfig::fire_flyer_full())
    } else {
        ClusterModel::build(&ClusterConfig::fire_flyer(cfg.nodes))
    };
    let total = cluster.nodes();
    let mut p = PlatformConfig::new()
        .cluster(cluster)
        // 300-step cadence ≈ the paper's 5-minute checkpoints at ~1 s/step.
        .ckpt_interval(300)
        .repair_delay_s(1800)
        .validation_s(120)
        .recorder(rec.clone())
        .build()
        .expect("full-scale cluster builds");
    let compute = p.node_count();

    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let ids = submit_mix(&mut p, &mut rng, compute);
    let plan = FaultPlan::generate(cfg.seed, total, cfg.horizon_s as f64, cfg.failure_scale);
    p.apply_fault_plan(&plan);

    let mut timeline = Vec::new();
    let mut now = 0u64;
    while now < cfg.horizon_s {
        let dt = cfg.sample_s.min(cfg.horizon_s - now);
        p.tick(dt);
        now += dt;
        timeline.push(Sample {
            at_s: now,
            utilization: p.utilization(),
            queue_depth: p.queue_depth(),
            healthy: p.healthy_nodes(),
        });
    }

    let succeeded = ids
        .iter()
        .filter(|&&id| p.state(id) == Some(TaskState::Succeeded))
        .count();
    HaiReport {
        utilization: p.utilization(),
        lost_work: p.lost_work_s(),
        preemptions: p.preemptions(),
        failures: p.failures(),
        submitted: ids.len(),
        succeeded,
        timeline,
        digest: rec.digest(),
        recorder: rec,
    }
}
