//! Shared harness behind the `serving_bench` binary and its smoke test:
//! the serving tier co-scheduled with a standing training mix in fluid
//! mode, so the two questions the paper never measured fall out of one
//! replay — how much training throughput an X-QPS serving fleet costs
//! (both workloads contend for nodes and for HFReduce-lane bandwidth),
//! and where p99 latency lands when the failure generator takes nodes
//! (replicas included) away.

use ff_failures::FaultPlan;
use ff_obs::Recorder;
use ff_platform::{JobSpec, Platform, PlatformConfig, ServingSpec, TaskId};
use ff_reduce::{ClusterConfig, ClusterModel};
use ff_util::rng::ChaCha8Rng;
use ff_util::scengen::{ArrivalConfig, ArrivalTrace};
use std::sync::Arc;

/// Parameters of one co-scheduled serve+train replay.
#[derive(Debug, Clone)]
pub struct ServeRun {
    /// RNG seed for the trace, the training mix and the fault plan.
    pub seed: u64,
    /// Cluster size in nodes (storage carved out as usual).
    pub nodes: usize,
    /// Simulated horizon, seconds. Arrivals span the whole horizon.
    pub horizon_s: u64,
    /// Mean offered load; `0.0` runs the training-only baseline.
    pub qps: f64,
    /// Serving replicas and nodes per replica.
    pub replicas: u32,
    /// Nodes per replica (tensor-parallel group size).
    pub nodes_per_replica: usize,
    /// Failure-rate multiplier over the paper's measured rates; `0.0`
    /// injects nothing.
    pub failure_scale: f64,
}

impl Default for ServeRun {
    fn default() -> Self {
        ServeRun {
            seed: 7,
            nodes: 64,
            horizon_s: 600,
            qps: 5.0,
            replicas: 4,
            nodes_per_replica: 2,
            failure_scale: 0.0,
        }
    }
}

/// What one replay produced.
pub struct ServeReport {
    /// Mean arrival rate of the generated trace (requests/s).
    pub offered_qps: f64,
    /// Requests completed within the horizon.
    pub completed: u64,
    /// Fraction of completed requests inside the SLO.
    pub attainment: f64,
    /// Completion-latency percentiles, milliseconds.
    pub p50_ms: f64,
    /// 99th percentile, milliseconds.
    pub p99_ms: f64,
    /// Mean, milliseconds.
    pub mean_ms: f64,
    /// Requests still in flight at the horizon.
    pub in_flight: usize,
    /// Requests served by a non-home replica after failures.
    pub redirects: u64,
    /// Training node-steps completed per simulated second.
    pub train_node_steps_per_s: f64,
    /// Scheduler utilization over healthy node-time.
    pub utilization: f64,
    /// Node failures confirmed / interruption signals delivered.
    pub failures: u64,
    /// Training preemptions (serving is never preempted).
    pub preemptions: u64,
    /// Deterministic digest of the observability trace.
    pub digest: String,
    /// The recorder, for Perfetto export.
    pub recorder: Arc<Recorder>,
}

/// A standing training mix over the nodes serving does not pin:
/// long-running jobs (they outlive the horizon) so training throughput is
/// measured as node-steps banked, not jobs finished.
fn submit_train_mix(
    p: &mut Platform,
    rng: &mut ChaCha8Rng,
    headroom: usize,
) -> Vec<(TaskId, usize)> {
    let mut jobs = Vec::new();
    let mut want = headroom + headroom / 5;
    let mut i = 0usize;
    while want > 0 {
        let need = rng.gen_range(4..17usize).min(headroom.max(4));
        let spec = JobSpec::new(format!("train-{i}"), need, 1_000_000)
            .priority(rng.gen_range(0..6i32))
            .step_bytes(16.0 * (1u64 << 30) as f64)
            .ckpt_bytes(32.0 * (1u64 << 30) as f64);
        jobs.push((p.submit(spec).expect("mix job fits"), need));
        want = want.saturating_sub(need);
        i += 1;
    }
    jobs
}

/// Run one seeded co-scheduled replay.
pub fn run(cfg: &ServeRun) -> ServeReport {
    let rec = Recorder::new();
    let cluster = ClusterModel::build(&ClusterConfig::fire_flyer(cfg.nodes));
    let total = cluster.nodes();
    let mut p = PlatformConfig::new()
        .cluster(cluster)
        .ckpt_interval(300)
        .repair_delay_s(1800)
        .validation_s(120)
        .recorder(rec.clone())
        .build()
        .expect("cluster builds");
    let compute = p.node_count();
    let serving_nodes = cfg.replicas as usize * cfg.nodes_per_replica;

    let mut offered_qps = 0.0;
    let sid = (cfg.qps > 0.0).then(|| {
        let trace = ArrivalTrace::generate(
            cfg.seed ^ 0xA11CE,
            &ArrivalConfig {
                duration_s: cfg.horizon_s as f64,
                base_qps: cfg.qps,
                ..ArrivalConfig::default()
            },
        );
        offered_qps = trace.mean_qps();
        p.submit_serving(ServingSpec::new(
            "serve",
            cfg.replicas,
            cfg.nodes_per_replica,
            trace,
        ))
        .expect("serving fits the cluster")
    });

    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let jobs = submit_train_mix(&mut p, &mut rng, compute.saturating_sub(serving_nodes));
    if cfg.failure_scale > 0.0 {
        let plan = FaultPlan::generate(cfg.seed, total, cfg.horizon_s as f64, cfg.failure_scale);
        p.apply_fault_plan(&plan);
    }
    let mut now = 0u64;
    while now < cfg.horizon_s {
        let dt = 60.min(cfg.horizon_s - now);
        p.tick(dt);
        now += dt;
    }

    let train_node_steps: u64 = jobs
        .iter()
        .map(|&(id, need)| p.progress(id).unwrap_or(0) * need as u64)
        .sum();
    let (completed, attainment, p50_ms, p99_ms, mean_ms, in_flight, redirects) = sid
        .and_then(|sid| p.serving_report(sid))
        .map(|r| {
            (
                r.completed,
                r.attainment,
                r.p50_ms,
                r.p99_ms,
                r.mean_ms,
                r.in_flight,
                r.redirects,
            )
        })
        .unwrap_or((0, 1.0, 0.0, 0.0, 0.0, 0, 0));
    ServeReport {
        offered_qps,
        completed,
        attainment,
        p50_ms,
        p99_ms,
        mean_ms,
        in_flight,
        redirects,
        train_node_steps_per_s: train_node_steps as f64 / cfg.horizon_s as f64,
        utilization: p.utilization(),
        failures: p.failures(),
        preemptions: p.preemptions(),
        digest: rec.digest(),
        recorder: rec,
    }
}

/// One machine-readable result row, as committed to EXPERIMENTS.md.
pub fn json_row(kind: &str, cfg: &ServeRun, r: &ServeReport) -> String {
    format!(
        concat!(
            "{{\"bench\":\"serving\",\"row\":\"{}\",\"seed\":{},\"nodes\":{},",
            "\"qps\":{:.2},\"offered_qps\":{:.3},\"failure_scale\":{:.1},",
            "\"completed\":{},\"attainment\":{:.4},\"p50_ms\":{:.1},",
            "\"p99_ms\":{:.1},\"mean_ms\":{:.1},\"redirects\":{},",
            "\"train_node_steps_per_s\":{:.2},\"utilization\":{:.4},",
            "\"failures\":{},\"preemptions\":{}}}"
        ),
        kind,
        cfg.seed,
        cfg.nodes,
        cfg.qps,
        r.offered_qps,
        cfg.failure_scale,
        r.completed,
        r.attainment,
        r.p50_ms,
        r.p99_ms,
        r.mean_ms,
        r.redirects,
        r.train_node_steps_per_s,
        r.utilization,
        r.failures,
        r.preemptions
    )
}
