//! Monte-Carlo fleet sweeper: the what-if capacity planner behind the
//! `fleet` binary and its property/smoke suites.
//!
//! The paper reports one year of one cluster — a single sample from the
//! distribution of "a 1,250-node A100 fleet under our failure rates".
//! This module sweeps that distribution: a cartesian grid over failure
//! intensity (`FaultPlan` rate scale), checkpoint cadence, the
//! serving/training mix and the 3FS chain replication factor, where every
//! cell is a full seeded [`Platform`] replay in fluid mode. Cells run in
//! parallel on the std-only [`ff_util::par`] pool; because cells are
//! dispatched by index and merged by index ([`ParPool::map_weighted`]
//! returns results in input order), the aggregate is **bit-identical for
//! a given `(seed, grid)` at any worker count** — determinism is by
//! construction, and `bench/tests/fleet_props.rs` re-proves it every run.
//!
//! A cell compresses "a year of pain" into a short horizon: with the
//! failure processes scaled by `rate_scale`, a 1-hour replay at 256×
//! observes the same expected event count as ~10.7 days at the paper's
//! measured rates, and the axis carries the sweep from a failure-free
//! fleet up to ~6 weeks of exposure per hour at 1,024×. Training steps
//! are coarsened the same way — one ~31 s fused step stands for a batch
//! of real ~1 s steps — so a checkpoint every 10 steps is the paper's
//! §VII-A "5-minute interval" and the grid stays affordable at full
//! cluster scale.
//!
//! [`ParPool::map_weighted`]: ff_util::par::ParPool::map_weighted
//! [`Platform`]: ff_platform::Platform

use ff_failures::{FailureGenerator, FaultPlan, GrayPlan, GrayRates};
use ff_hw::NodeSpec;
use ff_obs::Histogram;
use ff_platform::{DetectorConfig, JobSpec, Platform, PlatformConfig, ServingSpec, TaskId};
use ff_reduce::{jobflow, ClusterConfig, ClusterModel};
use ff_util::par;
use ff_util::rng::ChaCha8Rng;
use ff_util::scengen::{ArrivalConfig, ArrivalTrace, SweepGrid};

/// Axis name: failure-rate multiplier over the paper's measured rates.
pub const AXIS_RATE: &str = "rate_scale";
/// Axis name: checkpoint interval in (fused) training steps.
pub const AXIS_CKPT: &str = "ckpt_steps";
/// Axis name: fraction of compute nodes pinned by the serving tier.
pub const AXIS_SHARE: &str = "serve_share";
/// Axis name: 3FS checkpoint-chain replication factor.
pub const AXIS_REPL: &str = "replication";
/// Axis name: gray-failure detector sensitivity in `(0, 1]`; `0`
/// (the default when the axis is absent) runs without a detector and
/// without gray injection, so every historical grid is untouched.
/// Cells with a positive sensitivity attach a
/// [`DetectorConfig::with_sensitivity`] detector *and* a seeded
/// [`GrayPlan`] whose per-kind rates scale with the cell's
/// `rate_scale`, so the axis prices the detection-latency ×
/// false-positive trade at fleet scale.
pub const AXIS_DETECT: &str = "detect_sens";

/// Fused training step payload: ~31 s per ring step at 200 Gb/s, so one
/// step stands for a batch of real ~1 s steps and `ckpt_steps = 10` is
/// the paper's 5-minute checkpoint interval.
pub const STEP_BYTES: f64 = 384.0 * (1u64 << 30) as f64;
/// Checkpoint payload per save (bytes).
pub const CKPT_BYTES: f64 = 64.0 * (1u64 << 30) as f64;
/// Offered serving load (requests/s), constant across the mix axis: the
/// planner asks what a *fixed* request stream costs at each provisioning
/// level, so `serve_share` moves capacity, not demand.
pub const FLEET_QPS: f64 = 2.0;
/// Storage-target failure process (events/year at 1× scale) — opt-in on
/// the generator, scaled by the rate axis like every other process.
pub const STORAGE_FAILS_PER_YEAR: f64 = 400.0;
/// Per-link capacity used to convert payloads into nominal step seconds
/// (one 200 Gb/s NIC direction).
pub const LINK_BPS: f64 = 25e9;
/// Reference ring width for the goodput normalization: the mean job size
/// of the standing mix (uniform 4..17).
pub const REF_RING_NODES: usize = 10;
/// Tensor-parallel group size of one serving replica.
pub const NODES_PER_REPLICA: usize = 2;

/// One sweep: a seeded grid over a fixed cluster and horizon.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Base seed; each cell derives its own via [`SweepGrid::cell_seed`].
    pub seed: u64,
    /// Cluster size in nodes (storage carved out as usual).
    pub nodes: usize,
    /// Simulated horizon per cell, seconds.
    pub horizon_s: u64,
    /// Worker lanes for the parallel sweep (`0`/`1` = serial). The
    /// aggregate is identical at any value — that is the whole point.
    pub workers: usize,
    /// The swept axes. Only the four `AXIS_*` names are legal; missing
    /// axes take defaults (no failures, ckpt 30, no serving, repl 2).
    pub grid: SweepGrid,
}

impl FleetConfig {
    /// The committed full-scale grid: 6 × 4 × 3 × 3 = 216 cells at 1,250
    /// nodes, one simulated hour each. `rate_scale` spans failure-free to
    /// ~6 weeks of failure exposure per hour; `ckpt_steps` spans the
    /// paper's 5-minute interval (10 × ~31 s) to effectively-never (270
    /// steps > the horizon).
    pub fn paper_grid() -> FleetConfig {
        FleetConfig {
            seed: 7,
            nodes: 1250,
            horizon_s: 3600,
            workers: par::default_threads(),
            grid: SweepGrid::new()
                .axis(AXIS_RATE, &[0.0, 4.0, 16.0, 64.0, 256.0, 1024.0])
                .axis(AXIS_CKPT, &[10.0, 30.0, 90.0, 270.0])
                .axis(AXIS_SHARE, &[0.0, 0.1, 0.25])
                .axis(AXIS_REPL, &[1.0, 2.0, 3.0]),
        }
    }

    /// A small-cluster grid for CI smokes and property tests: 24 cells at
    /// 32 nodes, 15 simulated minutes each.
    pub fn small_grid() -> FleetConfig {
        FleetConfig {
            seed: 7,
            nodes: 32,
            horizon_s: 900,
            workers: par::default_threads(),
            grid: SweepGrid::new()
                .axis(AXIS_RATE, &[0.0, 64.0, 512.0])
                .axis(AXIS_CKPT, &[5.0, 40.0])
                .axis(AXIS_SHARE, &[0.0, 0.25])
                .axis(AXIS_REPL, &[1.0, 2.0]),
        }
    }
}

/// One fully-specified cell: everything [`run_cell`] needs, by value, so
/// the sweep can ship it to a worker lane as plain `Send` data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellSpec {
    /// Row-major cell index in the grid.
    pub index: usize,
    /// Derived per-cell seed (`SweepGrid::cell_seed`).
    pub seed: u64,
    /// Cluster size in nodes.
    pub nodes: usize,
    /// Simulated horizon, seconds.
    pub horizon_s: u64,
    /// Failure-rate multiplier (0 = no injections).
    pub rate_scale: f64,
    /// Checkpoint interval in fused steps.
    pub ckpt_steps: u64,
    /// Fraction of compute pinned by serving (0 = training only).
    pub serve_share: f64,
    /// 3FS chain replication factor.
    pub replication: usize,
    /// Detector sensitivity (0 = no detector, no gray injection).
    pub detect_sens: f64,
}

/// Expand a config into its cell specs, in row-major grid order.
///
/// Panics on an axis name outside the four `AXIS_*` constants — a typo'd
/// axis would silently sweep nothing.
pub fn cell_specs(cfg: &FleetConfig) -> Vec<CellSpec> {
    for a in &cfg.grid.axes {
        assert!(
            [AXIS_RATE, AXIS_CKPT, AXIS_SHARE, AXIS_REPL, AXIS_DETECT].contains(&a.name.as_str()),
            "unknown sweep axis {:?}",
            a.name
        );
    }
    let pos = |name: &str| cfg.grid.axes.iter().position(|a| a.name == name);
    let (pr, pc, ps, pp, pd) = (
        pos(AXIS_RATE),
        pos(AXIS_CKPT),
        pos(AXIS_SHARE),
        pos(AXIS_REPL),
        pos(AXIS_DETECT),
    );
    (0..cfg.grid.len())
        .map(|i| {
            let coord = cfg.grid.cell(i);
            let get = |p: Option<usize>, dflt: f64| p.map_or(dflt, |k| coord[k]);
            CellSpec {
                index: i,
                seed: cfg.grid.cell_seed(cfg.seed, i),
                nodes: cfg.nodes,
                horizon_s: cfg.horizon_s,
                rate_scale: get(pr, 0.0),
                ckpt_steps: get(pc, 30.0).max(1.0) as u64,
                serve_share: get(ps, 0.0),
                replication: get(pp, 2.0).max(1.0) as usize,
                detect_sens: get(pd, 0.0),
            }
        })
        .collect()
}

/// What one cell produced — the scenario's year-in-miniature outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// The cell's grid index and coordinates, echoed back.
    pub index: usize,
    /// Failure-rate multiplier of this cell.
    pub rate_scale: f64,
    /// Checkpoint interval (steps) of this cell.
    pub ckpt_steps: u64,
    /// Serving share of this cell.
    pub serve_share: f64,
    /// Replication factor of this cell.
    pub replication: usize,
    /// Scheduler utilization over healthy node-time.
    pub utilization: f64,
    /// Training node-steps banked across the standing mix.
    pub banked_node_steps: u64,
    /// Banked node-steps as a fraction of the cluster's nominal fused-step
    /// capacity (`nodes × horizon / ref_step_s`) — the delivered-training
    /// index the what-if table ranks cells by.
    pub goodput: f64,
    /// Effective cost-performance: Table II's 1.38 advantage × delivered
    /// goodput. A cheap fleet that loses its discount to failures shows
    /// up here.
    pub cost_perf: f64,
    /// Node-steps rolled back past checkpoints (lost work).
    pub lost_node_steps: u64,
    /// Rollback → re-placement recovery cycles observed.
    pub recoveries: u64,
    /// p99 of recovery time (seconds; 0 when no recovery completed).
    pub recovery_p99_s: u64,
    /// Serving requests completed (0 when the cell serves nothing).
    pub serve_completed: u64,
    /// Serving completion p99, milliseconds.
    pub serve_p99_ms: f64,
    /// Completed requests that missed the SLO.
    pub slo_misses: u64,
    /// Node failures confirmed.
    pub failures: u64,
    /// Training preemptions.
    pub preemptions: u64,
    /// Detector sensitivity of this cell (0 = no detector ran).
    pub detect_sens: f64,
    /// Quarantines the gray-failure detector initiated.
    pub detector_quarantines: u64,
}

impl ScenarioOutcome {
    /// Canonical fixed-format line: the unit of the sweep digest and of
    /// the permutation-invariance property (a multiset of these lines
    /// identifies a sweep regardless of completion order). Detector
    /// fields are appended only when the cell ran a detector, so every
    /// pre-detector grid digests to its historical value.
    pub fn canonical(&self) -> String {
        let mut line = format!(
            "cell={:04} rate={:.1} ckpt={} share={:.2} repl={} util={:.6} \
             banked={} goodput={:.6} costperf={:.6} lost={} rec_n={} \
             rec_p99_s={} srv_done={} srv_p99_ms={:.3} slo_miss={} \
             fails={} preempt={}",
            self.index,
            self.rate_scale,
            self.ckpt_steps,
            self.serve_share,
            self.replication,
            self.utilization,
            self.banked_node_steps,
            self.goodput,
            self.cost_perf,
            self.lost_node_steps,
            self.recoveries,
            self.recovery_p99_s,
            self.serve_completed,
            self.serve_p99_ms,
            self.slo_misses,
            self.failures,
            self.preemptions
        );
        if self.detect_sens > 0.0 {
            line.push_str(&format!(
                " detect={:.2} det_q={}",
                self.detect_sens, self.detector_quarantines
            ));
        }
        line
    }
}

/// Nominal seconds per fused ring step for an `n`-node job.
fn nominal_step_s(n: usize) -> f64 {
    jobflow::ring_edge_bytes(n.max(2), STEP_BYTES) / LINK_BPS
}

/// The standing training mix over the nodes serving does not pin: jobs
/// outlive the horizon (throughput is node-steps banked, not jobs
/// finished), oversubscribing headroom by 20% so the queue never drains.
fn submit_mix(p: &mut Platform, rng: &mut ChaCha8Rng, headroom: usize) -> Vec<(TaskId, usize)> {
    let mut jobs = Vec::new();
    let mut want = headroom + headroom / 5;
    let mut i = 0usize;
    while want > 0 {
        let need = rng.gen_range(4..17usize).min(headroom.max(4));
        let spec = JobSpec::new(format!("train-{i}"), need, 1_000_000)
            .priority(rng.gen_range(0..6i32))
            .step_bytes(STEP_BYTES)
            .ckpt_bytes(CKPT_BYTES);
        jobs.push((p.submit(spec).expect("mix job fits"), need));
        want = want.saturating_sub(need);
        i += 1;
    }
    jobs
}

/// Run one cell: a full fluid-mode platform replay. A plain `fn` so the
/// sweep can hand it to [`par::ParPool::map_weighted`] as a pointer; a
/// pure function of its spec, which is what the thread-count and
/// permutation properties certify.
pub fn run_cell(c: CellSpec) -> ScenarioOutcome {
    // The full deployment only exists in the paper's two-zone shape
    // (single-zone capacity tops out at 800 hosts).
    let cluster = if c.nodes >= 1250 {
        ClusterModel::build(&ClusterConfig::fire_flyer_full())
    } else {
        ClusterModel::build(&ClusterConfig::fire_flyer(c.nodes))
    };
    let total = cluster.nodes();
    // Carve at least 3 storage hosts so the replication axis stays
    // meaningful on small test clusters (the default `total/25` carve
    // would leave one host, and a chain cannot out-replicate its host
    // count); at full scale this is the default carve.
    let mut pcfg = PlatformConfig::new()
        .cluster(cluster)
        .storage_nodes((total / 25).max(3))
        .ckpt_interval(c.ckpt_steps)
        .replication(c.replication)
        .repair_delay_s(900)
        .validation_s(60);
    if c.detect_sens > 0.0 {
        pcfg = pcfg.detector(DetectorConfig::with_sensitivity(c.detect_sens));
    }
    let mut p = pcfg.build().expect("cluster builds");
    let compute = p.node_count();

    let replicas = if c.serve_share > 0.0 {
        (((c.serve_share * compute as f64) / NODES_PER_REPLICA as f64).round() as u32).max(1)
    } else {
        0
    };
    let sid = (replicas > 0).then(|| {
        let trace = ArrivalTrace::generate(
            c.seed ^ 0xA11CE,
            &ArrivalConfig {
                duration_s: c.horizon_s as f64,
                base_qps: FLEET_QPS,
                ..ArrivalConfig::default()
            },
        );
        p.submit_serving(ServingSpec::new(
            "serve",
            replicas,
            NODES_PER_REPLICA,
            trace,
        ))
        .expect("serving fits the cluster")
    });

    let mut rng = ChaCha8Rng::seed_from_u64(c.seed);
    let headroom = compute.saturating_sub(replicas as usize * NODES_PER_REPLICA);
    let jobs = submit_mix(&mut p, &mut rng, headroom);

    let mut gen = FailureGenerator::paper_calibrated(c.seed, total);
    gen.with_storage_failures(STORAGE_FAILS_PER_YEAR);
    gen.scale_rates(c.rate_scale);
    let plan = FaultPlan::from_events(&gen.generate(c.horizon_s as f64), total);
    p.apply_fault_plan(&plan);
    if c.detect_sens > 0.0 && c.rate_scale > 0.0 {
        // Gray faults ride the same intensity axis as hard faults, so a
        // detector cell at rate 0 measures pure false-positive cost.
        let base = GrayRates::default();
        let rates = GrayRates {
            stragglers_per_year: base.stragglers_per_year * c.rate_scale,
            flaps_per_year: base.flaps_per_year * c.rate_scale,
            throttles_per_year: base.throttles_per_year * c.rate_scale,
        };
        p.apply_gray_plan(&GrayPlan::generate(
            c.seed,
            compute,
            c.horizon_s as f64,
            &rates,
        ));
    }

    let mut now = 0u64;
    while now < c.horizon_s {
        let dt = 60.min(c.horizon_s - now);
        p.tick(dt);
        now += dt;
    }

    let banked: u64 = jobs
        .iter()
        .map(|&(id, need)| p.progress(id).unwrap_or(0) * need as u64)
        .sum();
    let nominal = compute as f64 * c.horizon_s as f64 / nominal_step_s(REF_RING_NODES);
    let goodput = banked as f64 / nominal;
    let cost_perf = NodeSpec::pcie_a100().cost_performance_ratio() * goodput;

    let mut rec = Histogram::new();
    for &s in p.recovery_times_s() {
        rec.record(s);
    }
    let (serve_completed, serve_p99_ms, slo_misses) = sid
        .and_then(|sid| p.serving_report(sid))
        .map(|r| (r.completed, r.p99_ms, r.completed - r.slo_met))
        .unwrap_or((0, 0.0, 0));

    ScenarioOutcome {
        index: c.index,
        rate_scale: c.rate_scale,
        ckpt_steps: c.ckpt_steps,
        serve_share: c.serve_share,
        replication: c.replication,
        utilization: p.utilization(),
        banked_node_steps: banked,
        goodput,
        cost_perf,
        lost_node_steps: p.lost_work_s(),
        recoveries: rec.count(),
        recovery_p99_s: rec.percentile(99.0),
        serve_completed,
        serve_p99_ms,
        slo_misses,
        failures: p.failures(),
        preemptions: p.preemptions(),
        detect_sens: c.detect_sens,
        detector_quarantines: p.detector_quarantines(),
    }
}

/// Deterministic dispatch weight for a cell — a pure function of the
/// spec, so LPT lane packing (and everything downstream) is too. Scales
/// with simulated node-seconds plus surcharges for the event-heavy axes.
pub fn cell_weight(c: &CellSpec) -> u64 {
    let base = c.nodes as u64 * c.horizon_s / 64;
    let fail = (c.rate_scale.sqrt() * 8.0) as u64;
    let serve = (c.serve_share * 32.0) as u64;
    // Detector cells pay for the periodic probe sweeps (zero when the
    // axis is absent, so historical weights are untouched).
    let det = (c.detect_sens * 8.0) as u64;
    base + base * (fail + serve + det) / 32 + 1
}

/// A finished sweep: per-cell outcomes in grid order plus their digest.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetResult {
    /// One outcome per cell, in row-major grid order.
    pub outcomes: Vec<ScenarioOutcome>,
    /// FNV-1a 64 over the canonical outcome lines.
    pub digest: String,
}

/// Run the whole grid on the shared pool. Outcomes come back in grid
/// order whatever `cfg.workers` says, so the result — digest included —
/// is bit-identical at any worker count.
pub fn sweep(cfg: &FleetConfig) -> FleetResult {
    let items: Vec<(u64, CellSpec)> = cell_specs(cfg)
        .into_iter()
        .map(|c| (cell_weight(&c), c))
        .collect();
    let outcomes = par::pool().map_weighted(items, cfg.workers.max(1), run_cell);
    let digest = digest(&outcomes);
    FleetResult { outcomes, digest }
}

/// FNV-1a 64 of arbitrary bytes (std-only stand-in for a real hash).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// The sweep digest: FNV-1a 64 over newline-terminated canonical lines.
pub fn digest(outcomes: &[ScenarioOutcome]) -> String {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for o in outcomes {
        for &b in o.canonical().as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
        h ^= b'\n' as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// One `{"mean":…,"p5":…,…}` summary of a metric across cells, computed
/// through an [`ff_obs::Histogram`] (values pre-scaled to integers by
/// `scale`, printed back down at `prec` decimals).
fn dist_json(samples: &[u64], scale: f64, prec: usize) -> String {
    let mut h = Histogram::new();
    for &s in samples {
        h.record(s);
    }
    let q = |p: f64| h.percentile(p) as f64 / scale;
    format!(
        "{{\"mean\":{:.prec$},\"p5\":{:.prec$},\"p50\":{:.prec$},\"p95\":{:.prec$},\"p99\":{:.prec$}}}",
        h.mean() / scale,
        q(5.0),
        q(50.0),
        q(95.0),
        q(99.0),
        prec = prec
    )
}

/// Sorted distinct values of `f` across outcomes (sweep-order stable).
fn distinct<F: Fn(&ScenarioOutcome) -> f64>(outcomes: &[ScenarioOutcome], f: F) -> Vec<f64> {
    let mut vs: Vec<f64> = Vec::new();
    for o in outcomes {
        let v = f(o);
        if !vs.contains(&v) {
            vs.push(v);
        }
    }
    vs.sort_by(|a, b| a.partial_cmp(b).expect("finite axis values"));
    vs
}

/// The what-if marginal the planner is for: for each failure multiplier,
/// mean goodput and mean lost node-steps at each checkpoint cadence, plus
/// the cadence that maximizes mean goodput. Returned as
/// `(rate_scale, [(ckpt_steps, mean_goodput, mean_lost)], best_ckpt)`.
pub type WhatIfRow = (f64, Vec<(u64, f64, f64)>, u64);

/// Compute the what-if marginals over (rate × ckpt), averaging across the
/// other axes.
pub fn whatif_rows(outcomes: &[ScenarioOutcome]) -> Vec<WhatIfRow> {
    let rates = distinct(outcomes, |o| o.rate_scale);
    let ckpts = distinct(outcomes, |o| o.ckpt_steps as f64);
    rates
        .iter()
        .map(|&rate| {
            let mut cols = Vec::new();
            for &ck in &ckpts {
                let cell: Vec<&ScenarioOutcome> = outcomes
                    .iter()
                    .filter(|o| o.rate_scale == rate && o.ckpt_steps as f64 == ck)
                    .collect();
                let n = cell.len().max(1) as f64;
                let gp = cell.iter().map(|o| o.goodput).sum::<f64>() / n;
                let lost = cell.iter().map(|o| o.lost_node_steps as f64).sum::<f64>() / n;
                cols.push((ck as u64, gp, lost));
            }
            let best = cols
                .iter()
                .cloned()
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite goodput"))
                .map(|(ck, _, _)| ck)
                .unwrap_or(0);
            (rate, cols, best)
        })
        .collect()
}

/// Render the committed aggregate: a deterministic JSON document whose
/// bytes depend only on `(cfg.seed, cfg.grid, cfg.nodes, cfg.horizon_s)`
/// — never on worker count or wall-clock. One `rows` line per cell keeps
/// the artifact diffable.
pub fn aggregate_json(cfg: &FleetConfig, r: &FleetResult) -> String {
    let o = &r.outcomes;
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!(
        "  \"bench\": \"fleet\",\n  \"schema\": 1,\n  \"seed\": {},\n  \
         \"nodes\": {},\n  \"horizon_s\": {},\n  \"cells\": {},\n  \
         \"digest\": \"{}\",\n",
        cfg.seed,
        cfg.nodes,
        cfg.horizon_s,
        o.len(),
        r.digest
    ));
    s.push_str("  \"axes\": [");
    for (i, a) in cfg.grid.axes.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let vals: Vec<String> = a.values.iter().map(|v| format!("{v}")).collect();
        s.push_str(&format!(
            "{{\"name\": \"{}\", \"values\": [{}]}}",
            a.name,
            vals.join(", ")
        ));
    }
    s.push_str("],\n");
    let col = |f: &dyn Fn(&ScenarioOutcome) -> u64| -> Vec<u64> { o.iter().map(f).collect() };
    let summaries: Vec<(&str, String)> = vec![
        (
            "utilization",
            dist_json(&col(&|o| (o.utilization * 1e6).round() as u64), 1e6, 6),
        ),
        (
            "goodput",
            dist_json(&col(&|o| (o.goodput * 1e6).round() as u64), 1e6, 6),
        ),
        (
            "cost_perf",
            dist_json(&col(&|o| (o.cost_perf * 1e6).round() as u64), 1e6, 6),
        ),
        (
            "lost_node_steps",
            dist_json(&col(&|o| o.lost_node_steps), 1.0, 0),
        ),
        (
            "recovery_p99_s",
            dist_json(&col(&|o| o.recovery_p99_s), 1.0, 0),
        ),
        (
            "serve_p99_ms",
            dist_json(&col(&|o| (o.serve_p99_ms * 1e3).round() as u64), 1e3, 3),
        ),
        ("slo_misses", dist_json(&col(&|o| o.slo_misses), 1.0, 0)),
        ("failures", dist_json(&col(&|o| o.failures), 1.0, 0)),
    ];
    s.push_str("  \"summary\": {\n");
    for (i, (name, body)) in summaries.iter().enumerate() {
        s.push_str(&format!(
            "    \"{name}\": {body}{}\n",
            if i + 1 < summaries.len() { "," } else { "" }
        ));
    }
    s.push_str("  },\n");
    s.push_str("  \"whatif_goodput_by_rate_and_ckpt\": [\n");
    let rows = whatif_rows(o);
    for (i, (rate, cols, best)) in rows.iter().enumerate() {
        let cells: Vec<String> = cols
            .iter()
            .map(|(ck, gp, lost)| {
                format!("{{\"ckpt\": {ck}, \"goodput\": {gp:.6}, \"lost\": {lost:.1}}}")
            })
            .collect();
        s.push_str(&format!(
            "    {{\"rate_scale\": {rate}, \"best_ckpt\": {best}, \"cols\": [{}]}}{}\n",
            cells.join(", "),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"rows\": [\n");
    for (i, out) in o.iter().enumerate() {
        s.push_str(&format!(
            "    \"{}\"{}\n",
            out.canonical(),
            if i + 1 < o.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_specs_cover_the_grid_with_defaults() {
        let cfg = FleetConfig {
            seed: 3,
            nodes: 16,
            horizon_s: 60,
            workers: 1,
            grid: SweepGrid::new()
                .axis(AXIS_RATE, &[0.0, 8.0])
                .axis(AXIS_REPL, &[1.0, 3.0]),
        };
        let cells = cell_specs(&cfg);
        assert_eq!(cells.len(), 4);
        // Missing axes take defaults; present axes vary row-major (first
        // axis slowest).
        assert!(cells.iter().all(|c| c.ckpt_steps == 30));
        assert!(cells.iter().all(|c| c.serve_share == 0.0));
        assert_eq!(
            cells.iter().map(|c| c.rate_scale).collect::<Vec<_>>(),
            vec![0.0, 0.0, 8.0, 8.0]
        );
        assert_eq!(
            cells.iter().map(|c| c.replication).collect::<Vec<_>>(),
            vec![1, 3, 1, 3]
        );
        // Seeds are distinct and non-zero.
        let mut seeds: Vec<u64> = cells.iter().map(|c| c.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 4);
        assert!(seeds.iter().all(|&s| s != 0));
    }

    #[test]
    #[should_panic(expected = "unknown sweep axis")]
    fn typoed_axis_panics() {
        let cfg = FleetConfig {
            seed: 1,
            nodes: 16,
            horizon_s: 60,
            workers: 1,
            grid: SweepGrid::new().axis("rate_scales", &[1.0]),
        };
        cell_specs(&cfg);
    }

    #[test]
    fn digest_is_order_sensitive_fnv_over_lines() {
        let mk = |index: usize| ScenarioOutcome {
            index,
            rate_scale: 1.0,
            ckpt_steps: 30,
            serve_share: 0.0,
            replication: 2,
            utilization: 0.5,
            banked_node_steps: 10,
            goodput: 0.25,
            cost_perf: 0.345,
            lost_node_steps: 0,
            recoveries: 0,
            recovery_p99_s: 0,
            serve_completed: 0,
            serve_p99_ms: 0.0,
            slo_misses: 0,
            failures: 0,
            preemptions: 0,
            detect_sens: 0.0,
            detector_quarantines: 0,
        };
        let (a, b) = (mk(0), mk(1));
        let joined = format!("{}\n{}\n", a.canonical(), b.canonical());
        assert_eq!(
            digest(&[a.clone(), b.clone()]),
            format!("{:016x}", fnv1a64(joined.as_bytes()))
        );
        assert_ne!(digest(&[a.clone(), b.clone()]), digest(&[b, a]));
    }

    #[test]
    fn weights_are_pure_and_axis_sensitive() {
        let mut c = CellSpec {
            index: 0,
            seed: 1,
            nodes: 1250,
            horizon_s: 3600,
            rate_scale: 0.0,
            ckpt_steps: 30,
            serve_share: 0.0,
            replication: 2,
            detect_sens: 0.0,
        };
        let base = cell_weight(&c);
        assert_eq!(base, cell_weight(&c), "weight must be pure");
        c.rate_scale = 256.0;
        assert!(cell_weight(&c) > base, "failure-heavy cells weigh more");
        c.serve_share = 0.25;
        let with_serve = cell_weight(&c);
        c.serve_share = 0.0;
        assert!(with_serve > cell_weight(&c), "serving cells weigh more");
    }
}
