//! Fabric transport bench: in-memory channels vs real localhost TCP for
//! the executable collectives, plus the transport-invariance digest and
//! the measured-vs-simulated HFReduce loopback comparison behind
//! `BENCH_fabric.json` / `calibration.json`.

use ff_obs::Recorder;
use ff_reduce::fabric::FabricProvider;
use ff_reduce::{run_allreduce, run_hfreduce, Algo, Calibration, ObsCtx};
use std::time::Instant;

/// Workload shape for one fabric bench run.
#[derive(Debug, Clone)]
pub struct FabricBenchConfig {
    /// Ranks of the flat dbtree allreduce.
    pub ranks: usize,
    /// Elements per rank buffer.
    pub len: usize,
    /// Chunks per collective.
    pub chunks: usize,
    /// Nodes of the HFReduce run.
    pub nodes: usize,
    /// GPUs per node of the HFReduce run.
    pub gpus: usize,
    /// Timed iterations per measurement row.
    pub iters: usize,
    /// Ping-pong rounds of the calibration.
    pub cal_rounds: usize,
    /// Large-message payload of the calibration, bytes.
    pub cal_bytes: usize,
}

impl FabricBenchConfig {
    /// The committed-artifact workload.
    pub fn paper() -> FabricBenchConfig {
        FabricBenchConfig {
            ranks: 8,
            len: 1 << 16,
            chunks: 4,
            nodes: 4,
            gpus: 4,
            iters: 5,
            cal_rounds: 64,
            cal_bytes: 1 << 20,
        }
    }

    /// The CI smoke workload: small worlds, bounded wall-clock.
    pub fn small() -> FabricBenchConfig {
        FabricBenchConfig {
            ranks: 5,
            len: 1 << 10,
            chunks: 3,
            nodes: 3,
            gpus: 2,
            iters: 1,
            cal_rounds: 8,
            cal_bytes: 1 << 16,
        }
    }
}

/// Seeded deterministic rank buffers.
fn inputs(ranks: usize, len: usize) -> Vec<Vec<f32>> {
    (0..ranks)
        .map(|r| (0..len).map(|i| ((r * 31 + i) % 17) as f32).collect())
        .collect()
}

/// Seeded node-structured HFReduce buffers.
fn hf_inputs(nodes: usize, gpus: usize, len: usize) -> Vec<Vec<Vec<f32>>> {
    (0..nodes)
        .map(|v| {
            (0..gpus)
                .map(|g| {
                    (0..len)
                        .map(|i| ((v * 7 + g * 3 + i) % 13) as f32)
                        .collect()
                })
                .collect()
        })
        .collect()
}

/// The trace digest of one traced dbtree allreduce + one traced HFReduce
/// of `cfg`'s shape over `provider`. The digest is a pure function of the
/// communication schedule, so every backend must produce the same value —
/// the bench's transport-invariance oracle.
pub fn trace_digest<P: FabricProvider>(provider: &P, cfg: &FabricBenchConfig) -> String {
    let rec = Recorder::new();
    run_allreduce(
        inputs(cfg.ranks, cfg.len),
        Algo::DbTree { chunks: cfg.chunks },
        provider,
        Some(&ObsCtx::new(&rec, "fabric/dbtree", 0)),
    );
    run_hfreduce(
        hf_inputs(cfg.nodes, cfg.gpus, cfg.len),
        cfg.chunks,
        provider,
        Some(&ObsCtx::new(&rec, "fabric/hfreduce", 1_000_000_000)),
    );
    rec.digest()
}

/// One measured row of the bench table.
#[derive(Debug, Clone)]
pub struct AlgbwRow {
    /// Backend name ("inmem", "tcp").
    pub backend: String,
    /// Collective name ("dbtree", "hfreduce").
    pub collective: String,
    /// Per-rank (or per-node) payload, bytes.
    pub bytes: usize,
    /// Algorithm bandwidth, GB/s: payload bytes over wall-clock.
    pub algbw_gbps: f64,
}

/// Time `cfg.iters` untraced runs of both collectives over `provider`
/// and report each one's algorithm bandwidth (payload bytes / best
/// wall-clock — the standard nccl-tests algbw convention).
pub fn measure<P: FabricProvider>(
    provider: &P,
    name: &str,
    cfg: &FabricBenchConfig,
) -> Vec<AlgbwRow> {
    let bytes = cfg.len * 4;
    let mut best_tree = f64::INFINITY;
    let mut best_hf = f64::INFINITY;
    for _ in 0..cfg.iters {
        let t0 = Instant::now();
        run_allreduce(
            inputs(cfg.ranks, cfg.len),
            Algo::DbTree { chunks: cfg.chunks },
            provider,
            None,
        );
        best_tree = best_tree.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        run_hfreduce(
            hf_inputs(cfg.nodes, cfg.gpus, cfg.len),
            cfg.chunks,
            provider,
            None,
        );
        best_hf = best_hf.min(t0.elapsed().as_secs_f64());
    }
    vec![
        AlgbwRow {
            backend: name.to_string(),
            collective: "dbtree".to_string(),
            bytes,
            algbw_gbps: bytes as f64 / best_tree / 1e9,
        },
        AlgbwRow {
            backend: name.to_string(),
            collective: "hfreduce".to_string(),
            bytes,
            algbw_gbps: bytes as f64 / best_hf / 1e9,
        },
    ]
}

/// Measured TCP loopback HFReduce algbw next to the simulator's
/// prediction from the same calibration constants.
#[derive(Debug, Clone)]
pub struct LoopbackComparison {
    /// Measured loopback algbw, GB/s (the `tcp`/`hfreduce` row).
    pub measured_gbps: f64,
    /// `ff_reduce::model::hfreduce_loopback_algbw` on the calibrated link.
    pub predicted_gbps: f64,
}

impl LoopbackComparison {
    /// measured / predicted — 1.0 is a perfect model.
    pub fn ratio(&self) -> f64 {
        self.measured_gbps / self.predicted_gbps
    }
}

/// Predict the HFReduce loopback algbw for `cfg`'s shape from `cal`'s
/// fitted link constants and pair it with the measured `tcp`/`hfreduce`
/// row.
pub fn compare_loopback(
    cal: &Calibration,
    rows: &[AlgbwRow],
    cfg: &FabricBenchConfig,
) -> LoopbackComparison {
    let measured = rows
        .iter()
        .find(|r| r.backend == "tcp" && r.collective == "hfreduce")
        .expect("tcp hfreduce row")
        .algbw_gbps;
    let predicted = ff_reduce::model::hfreduce_loopback_algbw(
        cfg.nodes,
        (cfg.len * 4) as f64,
        cfg.chunks,
        &cal.link_params(),
    ) / 1e9;
    LoopbackComparison {
        measured_gbps: measured,
        predicted_gbps: predicted,
    }
}

/// Hand-rolled `BENCH_fabric.json` (the repo carries no serializer).
pub fn bench_json(
    digest: &str,
    rows: &[AlgbwRow],
    cal: &Calibration,
    cmp: &LoopbackComparison,
    cfg: &FabricBenchConfig,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"fabric\",\n");
    s.push_str("  \"schema\": 1,\n");
    s.push_str(&format!("  \"trace_digest\": \"{digest}\",\n"));
    s.push_str(&format!(
        "  \"workload\": {{ \"ranks\": {}, \"len\": {}, \"chunks\": {}, \"nodes\": {}, \"gpus\": {} }},\n",
        cfg.ranks, cfg.len, cfg.chunks, cfg.nodes, cfg.gpus
    ));
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"backend\": \"{}\", \"collective\": \"{}\", \"bytes\": {}, \"algbw_gbps\": {:.3}}}{}\n",
            r.backend,
            r.collective,
            r.bytes,
            r.algbw_gbps,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"calibration\": {{ \"latency_us\": {:.3}, \"bandwidth_gbps\": {:.3} }},\n",
        cal.latency_us, cal.bandwidth_gbps
    ));
    s.push_str(&format!(
        "  \"hfreduce_loopback\": {{ \"measured_gbps\": {:.3}, \"predicted_gbps\": {:.3}, \"ratio\": {:.3} }}\n",
        cmp.measured_gbps,
        cmp.predicted_gbps,
        cmp.ratio()
    ));
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_reduce::{calibrate, InMemProvider, TcpProvider};

    #[test]
    fn small_digest_is_transport_invariant() {
        let cfg = FabricBenchConfig::small();
        assert_eq!(
            trace_digest(&InMemProvider, &cfg),
            trace_digest(&TcpProvider, &cfg)
        );
    }

    #[test]
    fn measure_produces_positive_bandwidths() {
        let cfg = FabricBenchConfig::small();
        let rows = measure(&InMemProvider, "inmem", &cfg);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.algbw_gbps > 0.0, "{r:?}");
        }
    }

    #[test]
    fn bench_json_carries_every_section() {
        let cfg = FabricBenchConfig::small();
        let mut rows = measure(&InMemProvider, "inmem", &cfg);
        rows.extend(measure(&InMemProvider, "tcp", &cfg)); // stand-in rows
        let cal = calibrate(&InMemProvider, 4, 1 << 12);
        let cmp = compare_loopback(&cal, &rows, &cfg);
        let j = bench_json("deadbeef", &rows, &cal, &cmp, &cfg);
        for key in [
            "\"trace_digest\"",
            "\"rows\"",
            "\"calibration\"",
            "\"hfreduce_loopback\"",
        ] {
            assert!(j.contains(key), "missing {key} in:\n{j}");
        }
    }
}
