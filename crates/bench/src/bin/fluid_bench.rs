//! The fluid-solver performance trajectory: `BENCH_fluid.json`.
//!
//! Measures the three workloads every PR is judged against and keeps the
//! numbers in a committed artifact, so speedups are tracked rather than
//! claimed:
//!
//! * **solver** — a deterministic pure-`FluidSim` mix (wide fan-ins that
//!   span several completion shards, plus seeded `scengen` schedules
//!   replayed serially and with parallel dispatch forced on). Its
//!   `events/sec` is the regression metric: structural event count is
//!   bit-deterministic, so the ratio only moves when the solver does.
//! * **fig7a-10k** — `hfreduce_steady` at the full 1,250-node cluster and
//!   186 MiB, the paper's Figure 7a end point (target: < 10 s).
//! * **hai_platform** — the §VI-C multi-tenant replay, one simulated hour
//!   on 1,250 nodes at 100× failure rates (target: < 60 s), with its
//!   byte-stable trace digest recorded as a determinism oracle.
//!
//! ```text
//! fluid_bench            # measure solver + fig7a + hai, print a table
//! fluid_bench --write    # same, then rewrite BENCH_fluid.json
//! fluid_bench --check    # fast CI smoke: solver workload only, fail if
//!                        # events/sec drops >20% vs BENCH_fluid.json
//! ```
//!
//! Wall-clocks are best-of-N (N=2 for the heavy workloads, 3 for the
//! solver mix) because CI boxes are noisy neighbors; event counts are
//! asserted identical across repeats, which doubles as a cheap
//! same-process determinism check.

use ff_bench::hai::HaiRun;
use ff_desim::{FluidSim, Route, SolverMode};
use ff_reduce::cluster::ClusterConfig;
use ff_reduce::model::{hfreduce_steady, HfReduceOptions};
use ff_util::scengen::{GenConfig, ScenEvent, Scenario};
use std::time::Instant;

/// Extract the number following `"key":` in a flat JSON document whose
/// keys are unique (which `BENCH_fluid.json` guarantees by construction).
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = doc.find(&pat)? + pat.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// One deterministic pure-solver workload mix; returns structural events.
fn solver_workload() -> u64 {
    let mut events = 0u64;

    // Wide fan-in over >256 resources: the completion heap spans several
    // shards, so the deterministic cross-shard pop is on the hot path.
    for &(links, flows_per_link) in &[(96usize, 40usize), (384, 12)] {
        let mut sim = FluidSim::new();
        let sink = sim.add_resource("sink", 25e9);
        let lids: Vec<_> = (0..links)
            .map(|i| sim.add_resource(format!("l{i}"), 27e9))
            .collect();
        for round in 0..flows_per_link {
            for &l in &lids {
                sim.start_flow(1e6 * (1 + round % 3) as f64, &Route::unit([l, sink]));
            }
            while sim.advance_to_next_completion().is_some() {}
        }
        events += sim.solver_stats().events();
    }

    // Seeded adversarial schedules: serial incremental, then with parallel
    // dispatch forced on (threshold 0) so pool extraction/merge overhead is
    // part of the tracked number.
    for (cfg, seeds, par) in [
        (GenConfig::dense(), 0x00B0_0000u64..0x00B0_0000 + 160, false),
        (GenConfig::wide(), 0x00B1_0000u64..0x00B1_0000 + 160, true),
    ] {
        for seed in seeds {
            let s = Scenario::generate(seed, &cfg);
            let mut sim = FluidSim::with_solver(SolverMode::Incremental);
            if par {
                sim.set_threads(4);
                sim.set_par_threshold(0);
            }
            let rids: Vec<_> = s
                .capacities
                .iter()
                .enumerate()
                .map(|(i, &c)| sim.add_resource(format!("r{i}"), c))
                .collect();
            let mut active = Vec::new();
            for &(t_ns, ref ev) in &s.events {
                while let Some(tc) = sim.next_completion_time() {
                    if tc > ff_desim::SimTime(t_ns) {
                        break;
                    }
                    let (_, done) = sim.advance_to_next_completion().unwrap();
                    for id in done {
                        active.retain(|&f| f != id);
                    }
                }
                sim.advance_to(ff_desim::SimTime(t_ns));
                match ev {
                    ScenEvent::Start { route, work } => {
                        let hops: Vec<_> = route.iter().map(|&(r, w)| (rids[r], w)).collect();
                        active.push(sim.start_flow(*work, &Route::weighted(hops)));
                    }
                    ScenEvent::Degrade { resource, factor } => sim
                        .degrade(rids[*resource], *factor)
                        .expect("valid degrade"),
                    ScenEvent::Restore { resource } => {
                        sim.restore(rids[*resource]).expect("valid restore")
                    }
                    ScenEvent::SetRateCap { resource, cap } => sim
                        .set_rate_cap(rids[*resource], *cap)
                        .expect("valid rate cap"),
                    ScenEvent::Cancel { nth } => {
                        if !active.is_empty() {
                            let id = active.swap_remove(nth % active.len());
                            sim.cancel_flow(id);
                        }
                    }
                }
            }
            while sim.advance_to_next_completion().is_some() {}
            events += sim.solver_stats().events();
        }
    }
    events
}

/// Best-of-`n` wall-clock of `f`, asserting its output is identical on
/// every repeat. Returns `(best_seconds, output)`.
fn best_of<T: PartialEq + std::fmt::Debug>(n: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..n {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64());
        if let Some(prev) = &out {
            assert_eq!(prev, &r, "benchmark workload is not deterministic");
        } else {
            out = Some(r);
        }
    }
    (best, out.expect("n >= 1"))
}

fn bench_path() -> std::path::PathBuf {
    // crates/bench → repo root.
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_fluid.json")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let write = args.iter().any(|a| a == "--write");
    let check = args.iter().any(|a| a == "--check");
    let quick = args.iter().any(|a| a == "--quick");

    let (solver_wall, solver_events) = best_of(3, solver_workload);
    let eps = solver_events as f64 / solver_wall;
    println!(
        "solver mix: {solver_events} events in {solver_wall:.2}s = {:.0} events/sec",
        eps
    );

    if check {
        let committed = std::fs::read_to_string(bench_path())
            .expect("--check requires a committed BENCH_fluid.json (run --write first)");
        let base =
            json_number(&committed, "events_per_sec").expect("BENCH_fluid.json has events_per_sec");
        let base_events =
            json_number(&committed, "solver_events").expect("has solver_events") as u64;
        assert_eq!(
            solver_events, base_events,
            "solver event count changed: structural behavior differs from the \
             committed baseline — regenerate BENCH_fluid.json with --write and \
             justify the change"
        );
        // Noisy-neighbor hosts swing identical binaries by tens of percent,
        // so a miss escalates: re-measure up to twice and pass on the best
        // round. Transient noise clears on retry; a real 20% regression
        // shifts every round down and still fails.
        let mut best_eps = eps;
        for round in 0..3 {
            let ratio = best_eps / base;
            println!("baseline {base:.0} events/sec; fresh/baseline = {ratio:.3}");
            if ratio >= 0.8 {
                println!("OK: within the 20% regression budget");
                return;
            }
            if round < 2 {
                println!("below budget — re-measuring (noisy host?)");
                let (wall, ev) = best_of(3, solver_workload);
                assert_eq!(ev, solver_events, "workload became nondeterministic");
                best_eps = best_eps.max(ev as f64 / wall);
            }
        }
        eprintln!("FAIL: events/sec regressed more than 20% vs committed baseline");
        std::process::exit(1);
    }

    let cfg7a = ClusterConfig::fire_flyer_full();
    let bytes = 186.0 * 1024.0 * 1024.0;
    let (fig7a_wall, fig7a_bw) = best_of(2, || {
        let r = hfreduce_steady(&cfg7a, bytes, &HfReduceOptions::default());
        (r.algbw_bps / 1e9 * 1000.0).round() as u64
    });
    println!(
        "fig7a-10k: {fig7a_wall:.2}s wall, {:.2} GB/s algbw",
        fig7a_bw as f64 / 1000.0
    );
    if quick {
        return;
    }

    let hai_cfg = HaiRun {
        seed: 7,
        failure_scale: 100.0,
        ..Default::default()
    };
    let (hai_wall, (hai_digest, hai_util)) = best_of(1, || {
        let rep = ff_bench::hai::run(&hai_cfg);
        (rep.digest.clone(), (rep.utilization * 1e4).round() as u64)
    });
    println!(
        "hai_platform: {hai_wall:.2}s wall, digest {hai_digest}, utilization {:.2}%",
        hai_util as f64 / 100.0
    );

    let json = format!(
        "{{\n  \"schema\": 1,\n  \"solver\": {{\n    \"solver_events\": {solver_events},\n    \
         \"wall_s\": {solver_wall:.3},\n    \"events_per_sec\": {eps:.0}\n  }},\n  \
         \"fig7a_10k\": {{\n    \"wall_s\": {fig7a_wall:.3},\n    \"algbw_gbps\": {:.3}\n  }},\n  \
         \"hai_platform\": {{\n    \"wall_s\": {hai_wall:.3},\n    \"utilization_pct\": {:.2},\n    \
         \"digest\": \"{hai_digest}\"\n  }}\n}}\n",
        fig7a_bw as f64 / 1000.0,
        hai_util as f64 / 100.0,
    );
    if write {
        std::fs::write(bench_path(), &json).expect("write BENCH_fluid.json");
        println!("wrote {}", bench_path().display());
    } else {
        print!("{json}");
    }
}
