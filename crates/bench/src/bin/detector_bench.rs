//! Gray-failure detector sweep: `BENCH_detector.json`.
//!
//! Sweeps detector sensitivity × straggler slowdown over seeded
//! fluid-mode platform replays (ISSUE 9): each straggler cell reports
//! time-to-detect p50/p99 and misses, and each sensitivity's calm twin —
//! the same seeds with no fault injected — prices the false-positive
//! quarantines in node-seconds of lost capacity. The aggregate is
//! bit-identical at any solver thread count.
//!
//! ```text
//! detector_bench            # run the committed grid, print the tables
//! detector_bench --write    # same, then rewrite BENCH_detector.json
//! detector_bench --check    # verify BENCH_detector.json vs a fresh run
//! detector_bench --threads N  # solver threads (result identical anyway)
//! ```

use ff_bench::detector::{aggregate_json, sweep, DetectorBenchConfig};
use ff_bench::{compare, print_table};
use std::time::Instant;

fn bench_path() -> std::path::PathBuf {
    // crates/bench → repo root.
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_detector.json")
}

/// Extract the string following `"key": "` in the committed artifact.
fn json_string(doc: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let at = doc.find(&pat)? + pat.len();
    let end = doc[at..].find('"')?;
    Some(doc[at..at + end].to_string())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let write = args.iter().any(|a| a == "--write");
    let check = args.iter().any(|a| a == "--check");
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(1);

    let mut cfg = DetectorBenchConfig::paper_grid();
    cfg.solver_threads = threads;

    let t0 = Instant::now();
    let result = sweep(&cfg);
    let wall = t0.elapsed().as_secs_f64();
    println!(
        "swept {} straggler cells + {} calm twins ({} runs) in {wall:.1}s \
         at {threads} solver thread(s): digest {}",
        result.cells.len(),
        result.calm.len(),
        (result.cells.len() + result.calm.len()) * cfg.repeats,
        result.digest
    );

    if check {
        let committed = std::fs::read_to_string(bench_path())
            .expect("--check requires a committed BENCH_detector.json (run --write first)");
        let want = json_string(&committed, "digest").expect("BENCH_detector.json carries a digest");
        assert_eq!(
            result.digest, want,
            "detector sweep digest changed: verdict counts / detection \
             latencies differ from the committed baseline — regenerate \
             BENCH_detector.json with --write and justify the change"
        );
        println!("OK: detector sweep digest matches BENCH_detector.json");
        return;
    }

    let rows: Vec<Vec<String>> = result
        .cells
        .iter()
        .map(|c| {
            vec![
                format!("{:.2}", c.sensitivity),
                format!("{:.1}x", c.slowdown),
                format!("{}/{}", c.detected, c.detected + c.missed),
                format!("{} s", c.ttd_p50_s),
                format!("{} s", c.ttd_p99_s),
                format!("{}", c.verdicts),
            ]
        })
        .collect();
    print_table(
        "time-to-detect by sensitivity x straggler slowdown",
        &[
            "sens", "slowdown", "detected", "ttd p50", "ttd p99", "verdicts",
        ],
        &rows,
    );
    let calm_rows: Vec<Vec<String>> = result
        .calm
        .iter()
        .map(|c| {
            vec![
                format!("{:.2}", c.sensitivity),
                format!("{}", c.false_quarantines),
                format!("{}", c.down_node_s),
            ]
        })
        .collect();
    print_table(
        "false-positive capacity cost (calm twins)",
        &["sens", "false quarantines", "down node-s"],
        &calm_rows,
    );
    compare(
        "Detection is signal-driven, not oracle-driven",
        "hai-monitor (qualitative)",
        "latency/FP/FN all emerge from probe cadence + noise",
    );

    let json = aggregate_json(&cfg, &result);
    if write {
        std::fs::write(bench_path(), &json).expect("write BENCH_detector.json");
        println!("wrote {}", bench_path().display());
    } else {
        print!("{json}");
    }
}
