//! §VI-C: the HAI platform at full Fire-Flyer scale — the event-driven
//! scheduler in fluid mode replays a seeded multi-tenant job mix on the
//! 1,250-node / two-zone cluster while the paper-calibrated failure
//! generator injects faults. Training steps and checkpoint writes are
//! bandwidth flows, so job durations, queueing, and preemption cost
//! emerge from contention rather than declared run times.
//!
//! ```text
//! cargo run -p ff-bench --release --bin hai_platform -- \
//!     [--seed N] [--minutes M] [--nodes N] [--scale F] [--trace out.json]
//! ```
//!
//! `--trace` writes Chrome trace-event JSON (open in
//! <https://ui.perfetto.dev>) with the `platform/sched` scheduling lane
//! and per-chain checkpoint I/O. The printed digest is byte-stable for a
//! given seed — the regression oracle used by the smoke test.

use ff_bench::hai::{HaiRun, Sample};
use ff_bench::{compare, print_table};
use ff_obs::chrome::export_chrome_json;

fn arg<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cfg = HaiRun {
        seed: arg(&args, "--seed", 7),
        horizon_s: arg(&args, "--minutes", 60u64) * 60,
        nodes: arg(&args, "--nodes", 1250),
        // 100× compresses roughly a month of the paper's measured failure
        // rates into the one-hour default replay.
        failure_scale: arg(&args, "--scale", 100.0),
        ..Default::default()
    };
    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .cloned();

    println!(
        "HAI platform replay: {} nodes, {} simulated minutes, seed {}, {}x failure rates",
        cfg.nodes,
        cfg.horizon_s / 60,
        cfg.seed,
        cfg.failure_scale
    );
    let report = ff_bench::hai::run(&cfg);

    // The utilization timeline, decimated to ~12 rows.
    let stride = (report.timeline.len() / 12).max(1);
    let rows: Vec<Vec<String>> = report
        .timeline
        .iter()
        .step_by(stride)
        .map(|s: &Sample| {
            vec![
                format!("{:>5} s", s.at_s),
                format!("{:.2}%", s.utilization * 100.0),
                format!("{}", s.queue_depth),
                format!("{}", s.healthy),
            ]
        })
        .collect();
    print_table(
        "Utilization timeline",
        &["t", "util (cum)", "queued", "healthy nodes"],
        &rows,
    );

    compare(
        "Scheduler utilization",
        "≈99% (§VI-C time-sharing)",
        &format!("{:.1}%", report.utilization * 100.0),
    );
    compare(
        "Lost work per node failure",
        "≤ one 5-min checkpoint interval (§VII-A)",
        &format!(
            "{} node-steps over {} failures",
            report.lost_work, report.failures
        ),
    );
    println!(
        "jobs: {} submitted, {} completed in-horizon; {} preemptions ({} interruption signals served)",
        report.submitted, report.succeeded, report.preemptions, report.preemptions
    );
    println!("trace digest: {}", report.digest);

    if let Some(path) = trace_path {
        let json = export_chrome_json(&report.recorder);
        std::fs::write(&path, json).expect("write trace");
        println!("Perfetto trace written to {path}");
    }
}
