//! Figure 9b: strong-scaling DeepSeekMoE-16B training (seq 4096, global
//! batch 4608, pipeline parallel 10, expert parallel), 40 → 640 GPUs.

use ff_bench::{compare, print_table};
use ff_haiscale::models::TrainModel;
use ff_haiscale::moe::{moe_step, MoeConfig};
use ff_haiscale::strong_scaling_efficiency;

fn main() {
    let model = TrainModel::deepseek_moe_16b();
    let cfg = MoeConfig::deepseek_moe_16b_paper();
    let gpu_counts = [40usize, 80, 160, 320, 640];
    let mut rows = Vec::new();
    let mut t40 = 0.0;
    for &gpus in &gpu_counts {
        let s = moe_step(&model, &cfg, gpus);
        let t = s.total_s();
        if gpus == 40 {
            t40 = t;
        }
        rows.push(vec![
            gpus.to_string(),
            format!("{:.3}", t),
            format!("{:.3}", s.compute_s),
            format!("{:.3}", s.bubble_s),
            format!("{:.3}", s.exposed_comm_s),
            format!(
                "{:.1}%",
                strong_scaling_efficiency(40, t40, gpus, t) * 100.0
            ),
        ]);
    }
    print_table(
        "Figure 9b — DeepSeekMoE-16B step time, strong scaling (s)",
        &["GPUs", "step", "compute", "bubble", "all2all", "efficiency"],
        &rows,
    );
    println!();
    let t320 = moe_step(&model, &cfg, 320).total_s();
    let t640 = moe_step(&model, &cfg, 640).total_s();
    compare("Step time at 40 GPUs", "79.615 s", &format!("{t40:.3} s"));
    compare("Step time at 320 GPUs", "10.71 s", &format!("{t320:.3} s"));
    compare("Step time at 640 GPUs", "6.535 s", &format!("{t640:.3} s"));
    compare(
        "Efficiency at 320 GPUs",
        "92.92%",
        &format!(
            "{:.1}%",
            strong_scaling_efficiency(40, t40, 320, t320) * 100.0
        ),
    );
    compare(
        "Efficiency at 640 GPUs",
        "76.14%",
        &format!(
            "{:.1}%",
            strong_scaling_efficiency(40, t40, 640, t640) * 100.0
        ),
    );
}
