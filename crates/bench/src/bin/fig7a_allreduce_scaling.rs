//! Figure 7a: allreduce bandwidth of HFReduce vs NCCL at 186 MiB, scaling
//! from 16 GPUs to the full 10,000-GPU deployment.
//!
//! HFReduce numbers come from the discrete-event cluster simulation
//! (steady-state extrapolated, see `ff_reduce::model::hfreduce_steady`);
//! NCCL from the calibrated ring model (validated against a full DAG
//! simulation at small scale). Run with `--release`; the final row
//! simulates all 1,250 nodes of the paper's two-zone cluster
//! ([`ClusterConfig::fire_flyer_full`]), which is only tractable with the
//! incremental max-min solver.

use ff_bench::{bar, print_table};
use ff_reduce::model::{hfreduce_steady, HfReduceOptions};
use ff_reduce::ring::ring_analytic_bw;
use ff_reduce::ClusterConfig;

fn main() {
    let bytes = 186.0 * 1024.0 * 1024.0;
    let gpu_counts = [
        16usize, 32, 64, 128, 256, 512, 720, 1024, 1440, 2560, 10_000,
    ];
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for &gpus in &gpu_counts {
        let nodes = gpus / 8;
        // A single radix-40 zone tops out at 800 nodes; the 10,000-GPU
        // point is the paper's fixed two-zone deployment.
        let cfg = if nodes <= 800 {
            ClusterConfig::fire_flyer(nodes)
        } else {
            assert_eq!(
                nodes, 1250,
                "only the paper's two-zone build exceeds one zone"
            );
            ClusterConfig::fire_flyer_full()
        };
        let hf = hfreduce_steady(&cfg, bytes, &HfReduceOptions::default());
        let nccl = ring_analytic_bw(gpus, bytes);
        rows.push(vec![
            gpus.to_string(),
            format!("{:.2}", hf.algbw_bps / 1e9),
            format!("{:.2}", nccl / 1e9),
            format!("{:.1}×", hf.algbw_bps / nccl),
        ]);
        series.push((gpus, hf.algbw_bps / 1e9, nccl / 1e9));
    }
    print_table(
        "Figure 7a — allreduce bandwidth at 186 MiB (GB/s)",
        &["GPUs", "HFReduce", "NCCL", "speedup"],
        &rows,
    );

    println!("\nHFReduce (paper band: 6.3–8.1 GB/s, roughly flat):");
    for &(g, hf, _) in &series {
        println!("{}", bar(&format!("{g} GPUs"), hf, 12.0, 40));
    }
    println!("\nNCCL (paper band: 1.6–4.8 GB/s, declining):");
    for &(g, _, nccl) in &series {
        println!("{}", bar(&format!("{g} GPUs"), nccl, 12.0, 40));
    }
}
