//! Table II: A100 PCIe vs DGX-A100 — GEMM throughput, relative
//! performance, cost-performance, power.

use ff_bench::{compare, print_table};
use ff_hw::gemm::{gemm_throughput, GemmPrecision};
use ff_hw::{GpuForm, NodeSpec};

fn main() {
    let ours = NodeSpec::pcie_a100();
    let dgx = NodeSpec::dgx_a100();
    let tput = |f: GpuForm, p: GemmPrecision| format!("{:.0}", gemm_throughput(f, p) / 1e12);
    let rows = vec![
        vec![
            "TF32 GEMM (TFLOPS/GPU)".to_string(),
            tput(GpuForm::PcieA100, GemmPrecision::Tf32),
            tput(GpuForm::SxmA100, GemmPrecision::Tf32),
        ],
        vec![
            "FP16 GEMM (TFLOPS/GPU)".into(),
            tput(GpuForm::PcieA100, GemmPrecision::Fp16),
            tput(GpuForm::SxmA100, GemmPrecision::Fp16),
        ],
        vec![
            "Relative performance".into(),
            format!("{:.0}%", ours.relative_performance() * 100.0),
            "100%".into(),
        ],
        vec![
            "Node relative price".into(),
            format!("{:.0}%", ours.relative_price),
            format!("{:.0}%", dgx.relative_price),
        ],
        vec![
            "Cost-performance ratio".into(),
            format!("{:.2}", ours.cost_performance_ratio()),
            format!("{:.2}", dgx.cost_performance_ratio()),
        ],
        vec![
            "Power (W)".into(),
            format!("{:.0}", ours.power_watts),
            format!("{:.0}", dgx.power_watts),
        ],
    ];
    print_table(
        "Table II — A100 PCIe vs DGX-A100",
        &["", "Our Arch", "DGX Arch"],
        &rows,
    );

    println!();
    compare(
        "Relative performance",
        "83%",
        &format!("{:.1}%", ours.relative_performance() * 100.0),
    );
    compare(
        "Cost-performance ratio",
        "1.38",
        &format!("{:.2}", ours.cost_performance_ratio()),
    );
    compare(
        "Power saving",
        "40%",
        &format!("{:.0}%", (1.0 - ours.power_watts / dgx.power_watts) * 100.0),
    );
}
