//! §VII-A: checkpoint save/load speed through the real 3FS stack
//! (in-memory devices): "over 10 GiB/s per node ... saving to be
//! completed in just a few seconds" and "a loading process can be
//! completed in just a few seconds".
//!
//! This measures the actual code path — chunking, batch write across
//! chains, index, checksum-verified batch read — on RAM-backed targets.
//! Absolute numbers reflect host memory, not NVMe; the claim being
//! checked is that the *software* path adds no serialization.

use ff_3fs::chain::{Chain, ChainTable};
use ff_3fs::client::Fs3Client;
use ff_3fs::kvstore::KvStore;
use ff_3fs::meta::MetaService;
use ff_3fs::target::{Disk, StorageTarget};
use ff_bench::compare;
use ff_platform::CheckpointManager;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // 16 chains × 2 replicas over 8 "SSDs".
    let disks: Vec<_> = (0..8).map(|_| Disk::new(8 << 30)).collect();
    let chains: Vec<_> = (0..16)
        .map(|c| {
            let reps = (0..2)
                .map(|r| StorageTarget::new(format!("c{c}r{r}"), disks[(c + r) % 8].clone()))
                .collect();
            Chain::new(c, reps)
        })
        .collect();
    let table = Arc::new(ChainTable::new(chains));
    let meta = MetaService::new(KvStore::new(16, 2), table.len());
    let client = Fs3Client::new(meta, table, 32);
    let mgr = CheckpointManager::new(client, "ckpt", 4 << 20).expect("manager");

    // A GPT2-medium-scale state: parameters + optimizer moments,
    // 355M × (2 + 4 + 4) bytes ≈ 3.4 GiB, as 64 tensors.
    let total_bytes: usize = 1 << 30; // 1 GiB keeps the bench quick
    let tensors: Vec<(String, Vec<u8>)> = (0..64)
        .map(|i| {
            (
                format!("shard{i:02}"),
                vec![(i % 251) as u8; total_bytes / 64],
            )
        })
        .collect();

    let t0 = Instant::now();
    mgr.save(1, &tensors).expect("save");
    let save_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let loaded = mgr.load(1).expect("load");
    let load_s = t0.elapsed().as_secs_f64();
    assert_eq!(loaded.len(), tensors.len());

    let gib = total_bytes as f64 / (1u64 << 30) as f64;
    println!(
        "checkpoint {:.1} GiB: save {:.2}s ({:.1} GiB/s), load {:.2}s ({:.1} GiB/s)",
        gib,
        save_s,
        gib / save_s,
        load_s,
        gib / load_s
    );
    println!();
    compare(
        "Batch-write rate per node",
        "> 10 GiB/s (NVMe-bound)",
        &format!("{:.1} GiB/s (RAM-backed)", gib / save_s),
    );
    compare(
        "Save completes in",
        "a few seconds",
        &format!("{save_s:.2} s"),
    );
    compare(
        "Load completes in",
        "a few seconds",
        &format!("{load_s:.2} s"),
    );
}
