//! Figure 9a: strong-scaling LLaMa-13B training (seq 2048, global batch
//! 4096, pipeline parallel 4), 64 → 512 GPUs.

use ff_bench::{compare, print_table};
use ff_haiscale::models::TrainModel;
use ff_haiscale::pipeline::{pipeline_step, PipelineConfig};
use ff_haiscale::strong_scaling_efficiency;

fn main() {
    let model = TrainModel::llama_13b();
    let cfg = PipelineConfig::llama_13b_paper();
    let gpu_counts = [64usize, 128, 256, 512];
    let mut rows = Vec::new();
    let mut t64 = 0.0;
    let mut t512 = 0.0;
    for &gpus in &gpu_counts {
        let s = pipeline_step(&model, &cfg, gpus);
        let t = s.total_s();
        if gpus == 64 {
            t64 = t;
        }
        if gpus == 512 {
            t512 = t;
        }
        rows.push(vec![
            gpus.to_string(),
            format!("{:.3}", t),
            format!("{:.3}", s.compute_s),
            format!("{:.3}", s.bubble_s),
            format!("{:.3}", s.exposed_comm_s + s.jitter_s),
        ]);
    }
    print_table(
        "Figure 9a — LLaMa-13B step time, strong scaling (s)",
        &["GPUs", "step", "compute", "bubble", "comm+sync"],
        &rows,
    );
    println!();
    compare("Step time at 64 GPUs", "64.118 s", &format!("{t64:.3} s"));
    compare("Step time at 512 GPUs", "9.717 s", &format!("{t512:.3} s"));
    compare(
        "Parallel efficiency 64→512",
        "91% (paper's own metric)",
        &format!(
            "{:.0}%",
            strong_scaling_efficiency(64, t64, 512, t512) * 100.0
        ),
    );
}
