//! §VI-B2: aggregate 3FS read throughput — "the system can total provide
//! 9 TB/s outbound bandwidth, and we actually achieved total read
//! throughput of 8 TB/s".
//!
//! Pass `--paper` to simulate the full 180-node / 1,200-client deployment
//! (minutes); the default run is a scaled configuration with the same
//! shape whose efficiency transfers.

use ff_3fs::throughput::{run, ThroughputConfig};
use ff_bench::compare;

fn main() {
    let paper_scale = std::env::args().any(|a| a == "--paper");
    let cfg = if paper_scale {
        ThroughputConfig::paper()
    } else {
        ThroughputConfig::scaled()
    };
    println!(
        "3FS aggregate read throughput: {} storage nodes × 2 NICs, {} clients, RTS limit {}",
        cfg.storage_nodes, cfg.clients, cfg.rts_limit
    );
    let r = run(&cfg);
    println!(
        "theoretical {:.2} TB/s, achieved {:.2} TB/s (efficiency {:.1}%)",
        r.theoretical_bps / 1e12,
        r.achieved_bps / 1e12,
        r.efficiency * 100.0
    );
    println!();
    compare(
        "Theoretical egress",
        "9 TB/s",
        &format!(
            "{:.2} TB/s{}",
            r.theoretical_bps / 1e12,
            if paper_scale { "" } else { " (scaled run)" }
        ),
    );
    compare(
        "Achieved / theoretical",
        "8/9 ≈ 89%",
        &format!("{:.1}%", r.efficiency * 100.0),
    );
    if !paper_scale {
        println!("\n(run with --paper for the full 180-node configuration)");
    }
}
