//! Table I: node hardware details, our PCIe architecture vs DGX-A100.

use ff_bench::print_table;
use ff_hw::{NodeSpec, StorageNodeSpec};

fn main() {
    let ours = NodeSpec::pcie_a100();
    let dgx = NodeSpec::dgx_a100();
    let rows = vec![
        vec![
            "CPU cores".to_string(),
            ours.cpu_cores.to_string(),
            dgx.cpu_cores.to_string(),
        ],
        vec![
            "Memory (GiB)".into(),
            (ours.memory_bytes >> 30).to_string(),
            (dgx.memory_bytes >> 30).to_string(),
        ],
        vec![
            "GPUs".into(),
            format!("8 × PCIe-A100-40GB"),
            format!("8 × SXM-A100-40GB"),
        ],
        vec![
            "IB NICs (200 Gbps)".into(),
            ours.nics.to_string(),
            dgx.nics.to_string(),
        ],
        vec![
            "NVLink".into(),
            "600 GB/s per GPU pair (bridge)".into(),
            "600 GB/s all-to-all (NVSwitch)".into(),
        ],
        vec![
            "Node power (W)".into(),
            format!("{:.0}", ours.power_watts),
            format!("{:.0}", dgx.power_watts),
        ],
    ];
    print_table(
        "Table I — server hardware",
        &["", "Our PCIe Arch", "DGX-A100"],
        &rows,
    );

    let st = StorageNodeSpec::paper();
    let rows = vec![
        vec!["IB NICs".to_string(), st.nics.to_string()],
        vec!["Data SSDs".into(), st.ssds.to_string()],
        vec![
            "SSD capacity (TB)".into(),
            format!("{:.2}", st.ssd_capacity as f64 / 1e12),
        ],
        vec![
            "Node egress (GB/s)".into(),
            format!("{:.0}", st.outbound_bw() / 1e9),
        ],
    ];
    print_table("Table IV — storage node", &["", "value"], &rows);
}
