//! Serving tier vs training throughput (ISSUE 7): the serving workload
//! co-scheduled with a standing training mix on a fluid-mode cluster.
//! Sweeps offered QPS to price serving in training node-steps, then
//! replays the busiest point under the paper-calibrated failure generator
//! to place p99 latency under node failures.
//!
//! ```text
//! cargo run -p ff-bench --release --bin serving_bench -- \
//!     [--seed N] [--nodes N] [--minutes M] [--replicas R] [--scale F] [--trace out.json]
//! ```
//!
//! Each sweep point also prints a one-line JSON row; those rows are
//! committed to EXPERIMENTS.md as the regression record.

use ff_bench::serving::{json_row, run, ServeRun};
use ff_bench::{compare, print_table};
use ff_obs::chrome::export_chrome_json;

fn arg<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let base = ServeRun {
        seed: arg(&args, "--seed", 7),
        nodes: arg(&args, "--nodes", 64),
        horizon_s: arg(&args, "--minutes", 10u64) * 60,
        replicas: arg(&args, "--replicas", 4),
        ..Default::default()
    };
    let failure_scale = arg(&args, "--scale", 200.0);
    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .cloned();

    println!(
        "Serving co-schedule replay: {} nodes, {} simulated minutes, {}x{} replicas, seed {}",
        base.nodes,
        base.horizon_s / 60,
        base.replicas,
        base.nodes_per_replica,
        base.seed
    );

    // --- QPS sweep: what does serving cost training? -----------------------
    let sweep = [0.0, 2.0, 5.0, 10.0, 20.0];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut baseline_steps = 0.0;
    let mut busiest = None;
    for &qps in &sweep {
        let cfg = ServeRun {
            qps,
            ..base.clone()
        };
        let r = run(&cfg);
        if qps == 0.0 {
            baseline_steps = r.train_node_steps_per_s;
        }
        rows.push(vec![
            format!("{qps:.0}"),
            format!("{:.2}", r.offered_qps),
            format!("{}", r.completed),
            format!("{:.1}%", r.attainment * 100.0),
            format!("{:.0} ms", r.p50_ms),
            format!("{:.0} ms", r.p99_ms),
            format!("{:.1}", r.train_node_steps_per_s),
            format!("{:.1}%", r.utilization * 100.0),
        ]);
        json.push(json_row("qps_vs_train", &cfg, &r));
        busiest = Some((cfg, r));
    }
    print_table(
        "Training throughput vs offered serving load",
        &[
            "target qps",
            "offered",
            "served",
            "SLO",
            "p50",
            "p99",
            "train node-steps/s",
            "util",
        ],
        &rows,
    );
    if let Some((_, r)) = &busiest {
        compare(
            "Training cost of the 20-QPS fleet",
            "n/a (paper trains only)",
            &format!(
                "{:.1} -> {:.1} node-steps/s ({:.1}% of baseline)",
                baseline_steps,
                r.train_node_steps_per_s,
                100.0 * r.train_node_steps_per_s / baseline_steps.max(1e-9)
            ),
        );
    }

    // --- p99 under failures ------------------------------------------------
    let calm = ServeRun {
        qps: 5.0,
        ..base.clone()
    };
    let stormy = ServeRun {
        failure_scale,
        ..calm.clone()
    };
    let rc = run(&calm);
    let rs = run(&stormy);
    print_table(
        &format!("p99 under FaultPlan failures ({failure_scale}x rates)"),
        &[
            "failure scale",
            "failures",
            "redirects",
            "SLO",
            "p50",
            "p99",
            "in flight",
        ],
        &[
            vec![
                "0".to_string(),
                format!("{}", rc.failures),
                format!("{}", rc.redirects),
                format!("{:.1}%", rc.attainment * 100.0),
                format!("{:.0} ms", rc.p50_ms),
                format!("{:.0} ms", rc.p99_ms),
                format!("{}", rc.in_flight),
            ],
            vec![
                format!("{failure_scale:.0}"),
                format!("{}", rs.failures),
                format!("{}", rs.redirects),
                format!("{:.1}%", rs.attainment * 100.0),
                format!("{:.0} ms", rs.p50_ms),
                format!("{:.0} ms", rs.p99_ms),
                format!("{}", rs.in_flight),
            ],
        ],
    );
    json.push(json_row("p99_under_failure", &calm, &rc));
    json.push(json_row("p99_under_failure", &stormy, &rs));

    println!("\nJSON rows (committed to EXPERIMENTS.md):");
    for line in &json {
        println!("{line}");
    }
    println!("trace digest: {}", rs.digest);

    if let Some(path) = trace_path {
        let j = export_chrome_json(&rs.recorder);
        std::fs::write(&path, j).expect("write trace");
        println!("Perfetto trace written to {path}");
    }
}
