//! §VII-A: disaster-recovery overhead — the HAI platform running a month
//! under the paper's measured failure rates, and the checkpoint-cadence
//! sweep behind the 5-minute choice.
//!
//! With `--trace <path>`, the recovery run records a full-stack trace
//! (platform, reduce, fs3, desim tracks) and writes Chrome trace-event
//! JSON to `<path>` — open it in <https://ui.perfetto.dev> — plus prints
//! the hai-monitor-style summary and the deterministic trace digest.

use ff_bench::{compare, print_table};
use ff_failures::availability::{
    cluster_mtbf_any_xid_h, cluster_mtbf_flash_cut_h, cluster_mtbf_node_action_h,
    expected_interruptions, expected_loss_fraction, per_node_mtbf_h,
};
use ff_obs::{chrome::export_chrome_json, summary::summary_text, Recorder};
use ff_platform::recovery::{
    train_with_recovery, train_with_recovery_traced, JobFaults, RecoveryEvent, TrainerConfig,
};
use fireflyer::ops::{checkpoint_cadence_sweep, OpsSimulation};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let report = OpsSimulation {
        days: 30,
        ..Default::default()
    }
    .run();
    println!(
        "30 days, {} node failures out of {} failure events (rest tolerated)",
        report.node_failures, report.total_events
    );
    compare(
        "Scheduler utilization",
        "≈99% (HAI Platform)",
        &format!("{:.1}%", report.utilization * 100.0),
    );
    compare(
        "Work lost to failures",
        "'minimal' with 5-min checkpoints",
        &format!("{:.4}% of delivered work", report.loss_fraction() * 100.0),
    );

    let sweep = checkpoint_cadence_sweep(&[60, 300, 1800, 3600, 14400], 10);
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|&(iv, loss)| vec![format!("{} s", iv), format!("{:.4}%", loss * 100.0)])
        .collect();
    print_table(
        "Checkpoint cadence vs work lost (10 days at 50× failure rates)",
        &["interval", "lost work"],
        &rows,
    );
    println!("The 5-minute cadence keeps loss negligible while bounding checkpoint I/O (§VII-A).");

    // Availability arithmetic from the paper's raw tables.
    println!(
        "
Availability numbers derived from Tables VI–VIII:"
    );
    println!(
        "  any GPU Xid somewhere   : every {:.2} h",
        cluster_mtbf_any_xid_h()
    );
    println!(
        "  node-action GPU failure : every {:.1} h cluster-wide",
        cluster_mtbf_node_action_h()
    );
    println!(
        "  IB link flash cut       : every {:.1} h",
        cluster_mtbf_flash_cut_h()
    );
    println!(
        "  per-node MTBF           : {:.1} years",
        per_node_mtbf_h(1250) / (365.0 * 24.0)
    );
    println!(
        "  month-long 512-GPU job  : {:.2} expected interruptions, {:.5}% work lost at 5-min cadence",
        expected_interruptions(30.0, 64, 1250),
        expected_loss_fraction(30.0, 64, 1250, 300.0) * 100.0
    );

    // --- The recovery loop itself, end to end, under injected faults. ---
    // A deterministic job on the real threaded allreduce + real 3FS
    // checkpoints: a rank dies mid-collective AND the newest checkpoint is
    // silently corrupted; the loop detects both, falls back to the last
    // good checkpoint, requeues onto spares, and still lands on parameters
    // bit-identical to a fault-free run.
    println!("\nRecovery timeline (rank death at step 27 + corrupt checkpoint 24):");
    let cfg = TrainerConfig::default();
    let faults = JobFaults {
        kills: vec![(27, 1)],
        corrupt_ckpts: vec![24],
        degrades: vec![(11, 4)],
        // A storage target dies at step 13 and rejoins (validated and
        // re-synced) at step 18; checkpoint 16 lands on the degraded chain.
        storage_kills: vec![(13, 2)],
        storage_rejoins: vec![(18, 2)],
    };
    let recorder = trace_path.as_ref().map(|_| Recorder::new());
    let faulty =
        train_with_recovery_traced(&cfg, &faults, recorder.as_ref()).expect("recovery run");
    for e in &faulty.events {
        let line = match e {
            RecoveryEvent::Checkpointed { step } => format!("step {step:>3}: checkpoint saved"),
            RecoveryEvent::LinkDegraded {
                step,
                rank,
                slow_paths,
            } => format!(
                "step {step:>3}: hostping found {slow_paths} slow path(s) on rank {rank} — tolerated"
            ),
            RecoveryEvent::RankDied { step, rank } => {
                format!("step {step:>3}: rank {rank} died mid-allreduce (typed CommError, no panic)")
            }
            RecoveryEvent::Requeued { step } => {
                format!("step {step:>3}: task requeued onto spare nodes")
            }
            RecoveryEvent::CheckpointCorrupt { step } => {
                format!("step {step:>3}: checkpoint {step} failed its checksum — discarded")
            }
            RecoveryEvent::ResumedFrom { step } => {
                format!("step {step:>3}: resumed from checkpoint {step}")
            }
            RecoveryEvent::StorageTargetLost { step, target } => {
                format!(
                    "step {step:>3}: storage target {target} died — chain serves degraded, \
                     writes ride through on retries"
                )
            }
            RecoveryEvent::StorageRejoined { step, target } => {
                format!(
                    "step {step:>3}: storage target {target} validated and re-synced back in"
                )
            }
        };
        println!("  {line}");
    }
    let clean = train_with_recovery(&cfg, &JobFaults::none()).expect("baseline run");
    compare(
        "Parameters after recovery",
        "bit-identical to fault-free run",
        if faulty.final_params == clean.final_params {
            "bit-identical"
        } else {
            "DIVERGED"
        },
    );
    compare(
        "Work replayed",
        "≤ one checkpoint interval per fallback",
        &format!(
            "{} of {} steps ({} rollback[s])",
            faulty.replayed_steps(),
            faulty.steps,
            faulty.resume_points().len()
        ),
    );

    if let (Some(path), Some(rec)) = (trace_path, recorder) {
        std::fs::write(&path, export_chrome_json(&rec)).expect("write trace file");
        println!("\n{}", summary_text(&rec));
        println!("trace digest : {}", rec.digest());
        println!("trace written: {path} (open in https://ui.perfetto.dev)");
    }
}
