//! Figure 7b: HFReduce with NVLink, running *across* the two fat-tree
//! zones — the configuration the paper uses to show the variant exceeds
//! 10 GB/s while the scheduler keeps cross-zone traffic on the limited
//! inter-zone links.

use ff_bench::{bar, print_table};
use ff_reduce::model::{hfreduce_steady, HfReduceOptions, HfReduceVariant};
use ff_reduce::ClusterConfig;

fn main() {
    let bytes = 186.0 * 1024.0 * 1024.0;
    // Tasks under 128 GPUs are zone-local by platform defaults (the
    // paper's note under Figure 7); larger ones span both zones.
    let gpu_counts = [16usize, 32, 64, 128, 256, 512];
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for &gpus in &gpu_counts {
        let nodes = gpus / 8;
        let cross = gpus >= 128;
        let cfg = ClusterConfig {
            two_zone: cross,
            ..ClusterConfig::fire_flyer_nvlink(nodes)
        };
        let nvl = hfreduce_steady(
            &cfg,
            bytes,
            &HfReduceOptions {
                variant: HfReduceVariant::NvLink,
                ..Default::default()
            },
        );
        let std = hfreduce_steady(
            &ClusterConfig {
                two_zone: cross,
                ..ClusterConfig::fire_flyer(nodes)
            },
            bytes,
            &HfReduceOptions::default(),
        );
        rows.push(vec![
            gpus.to_string(),
            if cross { "yes" } else { "no" }.to_string(),
            format!("{:.2}", nvl.algbw_bps / 1e9),
            format!("{:.2}", std.algbw_bps / 1e9),
        ]);
        series.push((gpus, nvl.algbw_bps / 1e9));
    }
    print_table(
        "Figure 7b — HFReduce with NVLink, cross-zone (GB/s)",
        &["GPUs", "cross-zone", "HFReduce+NVLink", "HFReduce"],
        &rows,
    );
    println!("\nHFReduce+NVLink (paper: exceeds 10 GB/s):");
    for &(g, bw) in &series {
        println!("{}", bar(&format!("{g} GPUs"), bw, 20.0, 40));
    }
}
