//! The Figure 3 / §II-B1 story, quantified: which models fit an A100-40GB
//! under which parallelism strategy — the motivation for ZeRO/FSDP,
//! pipeline parallelism, 1F1B scheduling and activation recomputation.

use ff_bench::print_table;
use ff_haiscale::memory::{memory_per_gpu, ShardingStrategy, A100_USABLE_BYTES};
use ff_haiscale::models::TrainModel;
use ff_haiscale::pipeline::{resident_microbatches, Schedule};

const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

fn row(
    model: &TrainModel,
    label: &str,
    s: ShardingStrategy,
    dp: usize,
    pp: usize,
    tokens: usize,
) -> Vec<String> {
    let est = memory_per_gpu(model, s, dp, pp, 1, tokens, false);
    vec![
        model.name.to_string(),
        label.to_string(),
        format!("{:.1}", est.params / GIB),
        format!("{:.1}", est.optimizer / GIB),
        format!("{:.1}", est.activations / GIB),
        format!("{:.1}", est.total() / GIB),
        if est.fits_a100() { "yes" } else { "NO" }.to_string(),
    ]
}

fn main() {
    let header = [
        "model",
        "strategy",
        "params GiB",
        "optim GiB",
        "act GiB",
        "total GiB",
        "fits 40GB?",
    ];
    let mut rows = Vec::new();
    // Figure 3's point: classic DL models fit plain DDP...
    for m in [TrainModel::vgg16(), TrainModel::gpt2_medium()] {
        rows.push(row(&m, "DDP", ShardingStrategy::Ddp, 8, 1, 8 * 1024));
    }
    // ...LLMs do not, until sharded.
    let llama = TrainModel::llama_13b();
    rows.push(row(&llama, "DDP", ShardingStrategy::Ddp, 128, 1, 2048));
    rows.push(row(
        &llama,
        "ZeRO-1 + pp4",
        ShardingStrategy::Zero1,
        128,
        4,
        4 * 2048,
    ));
    rows.push(row(
        &llama,
        "FSDP (ZeRO-3)",
        ShardingStrategy::Zero3,
        128,
        1,
        2048,
    ));
    let moe = TrainModel::deepseek_moe_16b();
    rows.push(row(&moe, "DDP", ShardingStrategy::Ddp, 64, 1, 4096));
    rows.push(row(
        &moe,
        "ZeRO-1 + pp10",
        ShardingStrategy::Zero1,
        64,
        10,
        10 * 4096,
    ));
    print_table(
        "Per-GPU memory by strategy (A100-40GB usable ≈ 38 GiB)",
        &header,
        &rows,
    );

    // The 1F1B-vs-GPipe activation story at the paper's LLaMa config.
    println!("\nPipeline schedule residency at m=256 microbatches, pp=4 (LLaMa-13B, 2048-token microbatch):");
    for (name, s) in [("GPipe", Schedule::GPipe), ("1F1B", Schedule::OneFOneB)] {
        let resident = resident_microbatches(s, 256, 4);
        let est = memory_per_gpu(
            &llama,
            ShardingStrategy::Zero1,
            128,
            4,
            1,
            resident * 2048,
            false,
        );
        println!(
            "  {name:6}: {resident:3} microbatches resident → activations {:.1} GiB → {}",
            est.activations / GIB,
            if est.fits_a100() { "fits" } else { "OOM" }
        );
    }
    println!(
        "\nUsable HBM assumed: {:.0} GiB; recomputation shrinks activations 8× at ~33% extra compute (§II-B1).",
        A100_USABLE_BYTES / GIB
    );
}
