//! Figure 8b: weak-scaling GPT2-medium training — HaiScale FSDP vs
//! PyTorch FSDP, 16 → 128 GPUs.

use ff_bench::print_table;
use ff_haiscale::fsdp::{fsdp_step, FsdpImpl};
use ff_haiscale::models::TrainModel;
use ff_haiscale::weak_scaling_efficiency;

fn main() {
    let model = TrainModel::gpt2_medium();
    let tokens = 16 * 1024usize; // 16 sequences of 1024
    let gpu_counts = [16usize, 32, 64, 128];
    let mut rows = Vec::new();
    let mut first_h = 0.0;
    let mut last = (0.0, 0.0);
    for (i, &gpus) in gpu_counts.iter().enumerate() {
        let hai = fsdp_step(&model, gpus, tokens, FsdpImpl::HaiScale).total_s();
        let torch = fsdp_step(&model, gpus, tokens, FsdpImpl::Torch).total_s();
        if i == 0 {
            first_h = hai;
        }
        last = (hai, torch);
        rows.push(vec![
            gpus.to_string(),
            format!("{:.0}", hai * 1e3),
            format!("{:.0}", torch * 1e3),
            format!("{:.2}×", torch / hai),
        ]);
    }
    print_table(
        "Figure 8b — GPT2-medium FSDP step time, weak scaling (ms)",
        &["GPUs", "HaiScale FSDP", "Torch FSDP", "speedup"],
        &rows,
    );
    println!();
    ff_bench::compare(
        "HaiScale FSDP weak-scaling efficiency 16→128",
        "95%",
        &format!("{:.0}%", weak_scaling_efficiency(first_h, last.0) * 100.0),
    );
    ff_bench::compare(
        "vs Torch FSDP",
        "'reduces training time by nearly half'",
        &format!("{:.2}× faster at 128 GPUs", last.1 / last.0),
    );
}
