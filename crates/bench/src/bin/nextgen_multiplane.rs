//! §IX / Figure 12: the next-generation PCIe architecture — 1 NIC per
//! GPU on a 4-plane two-layer RoCE fat-tree, sized for MoE all-to-all.

use ff_bench::{compare, print_table};
use ff_topo::dragonfly::{fat_tree_bisection_fraction, DragonflySpec};
use ff_topo::fattree::FatTreeSpec;
use ff_topo::multiplane::{current_gen_all2all_time, MultiPlaneSpec};

fn main() {
    let next = MultiPlaneSpec::paper_next_gen();
    let rows = vec![
        vec!["planes".to_string(), next.planes.to_string()],
        vec!["switch radix".into(), next.radix.to_string()],
        vec!["link speed".into(), "400 Gbps RoCE".into()],
        vec![
            "NICs per node".into(),
            format!("{} (1 per GPU)", next.nics_per_node),
        ],
        vec![
            "endpoints per plane".into(),
            next.endpoints_per_plane().to_string(),
        ],
        vec!["max GPUs".into(), next.max_gpus().to_string()],
        vec!["total switches".into(), next.total_switches().to_string()],
        vec![
            "node injection bandwidth".into(),
            format!("{:.0} GB/s", next.node_injection_bw() / 1e9),
        ],
    ];
    print_table(
        "§IX — next-generation multi-plane network",
        &["", "value"],
        &rows,
    );

    println!();
    compare(
        "Max GPUs on 4-plane two-layer",
        "32,768",
        &next.max_gpus().to_string(),
    );

    // MoE all-to-all: 1 GiB of dispatch traffic per GPU per step.
    let cur = current_gen_all2all_time(8, 1.0e9, 7.0 / 8.0);
    let nxt = next.all2all_time(8, 1.0e9, 7.0 / 8.0);
    println!();
    compare(
        "All-to-all (8 GPUs × 1 GB, 7/8 cross-node)",
        "\"all-to-all performance is crucial\"",
        &format!(
            "{:.0} ms now → {:.0} ms next-gen ({:.0}×)",
            cur * 1e3,
            nxt * 1e3,
            cur / nxt
        ),
    );

    // The §III-B road not taken, quantified.
    let df = DragonflySpec::balanced(39, 25e9);
    let ft = FatTreeSpec::paper_zone();
    println!();
    compare(
        "Dragonfly bisection (why it was rejected)",
        "\"lack of sufficient bisection bandwidth\"",
        &format!(
            "{:.0}% of injection vs fat-tree {:.0}%",
            df.bisection_fraction() * 100.0,
            fat_tree_bisection_fraction(&ft) * 100.0
        ),
    );
}
