//! Figure 10: monthly memory and network failure trends — the paper's six
//! measured months (Table VII) next to a generated six-month trace.

use ff_bench::print_table;
use ff_failures::data::TABLE_VII_MONTHLY;
use ff_failures::generator::FailureGenerator;
use ff_failures::report::monthly_trends;

fn main() {
    let rows: Vec<Vec<String>> = TABLE_VII_MONTHLY
        .iter()
        .map(|(month, row)| {
            let gpu_xids: u64 = row[2..].iter().sum();
            vec![
                month.to_string(),
                row[0].to_string(),
                row[1].to_string(),
                gpu_xids.to_string(),
            ]
        })
        .collect();
    print_table(
        "Figure 10 (paper data) — monthly failures",
        &["month", "main memory", "network", "GPU-memory xids"],
        &rows,
    );

    let mut gen = FailureGenerator::paper_calibrated(10, 1250);
    let events = gen.generate(6.0 * 30.44 * 86400.0);
    let months = monthly_trends(&events, 6);
    let rows: Vec<Vec<String>> = months
        .iter()
        .map(|m| {
            vec![
                format!("month {}", m.month + 1),
                m.main_memory.to_string(),
                m.network.to_string(),
                m.gpu_memory_xids.to_string(),
            ]
        })
        .collect();
    print_table(
        "Figure 10 (generated) — six synthetic months at calibrated rates",
        &["month", "main memory", "network", "GPU-memory xids"],
        &rows,
    );

    let g: u64 = months.iter().map(|m| m.gpu_memory_xids).sum();
    let c: u64 = months.iter().map(|m| m.main_memory).sum();
    println!(
        "\nGPU ECC events ({g}) considerably surpass CPU memory events ({c}) — the paper's Figure 10 observation."
    );
}
