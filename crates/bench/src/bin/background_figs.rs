//! Figures 1–3: the background charts, regenerated from embedded
//! literature datasets.
//!
//! * Figure 1 — exponential growth of training compute.
//! * Figure 2 — hardware FLOPS vs memory/interconnect bandwidth scaling
//!   (the "AI and Memory Wall" rates the paper cites: FLOPS 3.0× / 2 yrs,
//!   DRAM 1.6×, interconnect 1.4×, AI demand 10× / yr).
//! * Figure 3 — model parameters vs accelerator memory.

use ff_bench::{bar, print_table};

fn main() {
    // Figure 1: landmark training runs (year, approximate training FLOPs).
    let runs: &[(&str, u32, f64)] = &[
        ("AlexNet", 2012, 4.7e17),
        ("ResNet-50", 2015, 1.2e18),
        ("Transformer", 2017, 7.4e18),
        ("BERT-L", 2018, 2.8e19),
        ("GPT-2", 2019, 1.5e21),
        ("GPT-3", 2020, 3.1e23),
        ("PaLM", 2022, 2.5e24),
    ];
    println!("Figure 1 — training compute of landmark models (log scale):");
    for &(name, year, flops) in runs {
        let log = flops.log10();
        println!("{}", bar(&format!("{name} ({year})"), log - 17.0, 8.0, 40));
    }
    println!("(bar length ∝ log10(FLOPs) − 17; growth is ~10× per year, far above Moore's law)");

    // Figure 2: scaling rates per 2 years.
    let rows = vec![
        vec!["AI compute demand".to_string(), "100×".into()],
        vec!["Hardware peak FLOPS".into(), "3.0×".into()],
        vec!["DRAM bandwidth".into(), "1.6×".into()],
        vec!["Interconnect bandwidth".into(), "1.4×".into()],
    ];
    print_table(
        "Figure 2 — scaling per 2 years (Gholami et al., 'AI and Memory Wall')",
        &["quantity", "growth / 2 years"],
        &rows,
    );

    // Figure 3: model size vs accelerator memory.
    let models: &[(&str, f64)] = &[
        ("ResNet-50", 0.026),
        ("Mask-RCNN", 0.044),
        ("BERT-L", 0.34),
        ("MAE-H", 0.66),
        ("GPT-2", 1.5),
        ("GPT-3", 175.0),
        ("PaLM", 540.0),
    ];
    println!("\nFigure 3 — parameters (billions) vs a 40 GB A100 (≈20 B bf16 params):");
    for &(name, b) in models {
        println!("{}", bar(name, (b.max(1e-3)).log10() + 2.0, 5.0, 40));
    }
    println!(
        "Models below ~1 B parameters fit easily — the reason PCIe A100s sufficed for the 2021 DL\n\
         workload mix, while LLMs later forced the NVLink retrofit (§III)."
    );
}
