//! Fabric transport bench: `BENCH_fabric.json` + `calibration.json`.
//!
//! Runs the executable dbtree allreduce and HFReduce over both fabric
//! backends — in-memory channels and real localhost TCP sockets — and
//! records each one's algorithm bandwidth, the transport-invariance
//! trace digest, the TCP loopback calibration (latency / bandwidth fit),
//! and the measured-vs-simulated HFReduce loopback comparison.
//!
//! ```text
//! fabric_bench           # measure, print the table
//! fabric_bench --write   # same, then rewrite BENCH_fabric.json + calibration.json
//! fabric_bench --check   # digest + structure gate vs the committed artifacts
//! ```
//!
//! `--check` is the CI gate: it re-proves the small-world trace digest is
//! transport-invariant and that the committed artifacts are structurally
//! sound. Wall-clock numbers are machine-dependent and are never
//! compared.

use ff_bench::fabric::{bench_json, compare_loopback, measure, trace_digest, FabricBenchConfig};
use ff_bench::print_table;
use ff_reduce::{calibrate, InMemProvider, TcpProvider};

fn artifact_path(name: &str) -> std::path::PathBuf {
    // crates/bench → repo root.
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("../../{name}"))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let write = args.iter().any(|a| a == "--write");
    let check = args.iter().any(|a| a == "--check");

    if check {
        // Bounded CI gate: small worlds only, no timing comparisons.
        let cfg = FabricBenchConfig::small();
        let mem = trace_digest(&InMemProvider, &cfg);
        let tcp = trace_digest(&TcpProvider, &cfg);
        assert_eq!(
            mem, tcp,
            "in-mem and TCP fabrics must replay an identical schedule"
        );
        let bench = std::fs::read_to_string(artifact_path("BENCH_fabric.json"))
            .expect("--check requires a committed BENCH_fabric.json (run --write first)");
        for key in [
            "\"bench\": \"fabric\"",
            "\"trace_digest\"",
            "\"rows\"",
            "\"calibration\"",
            "\"hfreduce_loopback\"",
        ] {
            assert!(bench.contains(key), "BENCH_fabric.json lacks {key}");
        }
        let cal = std::fs::read_to_string(artifact_path("calibration.json"))
            .expect("--check requires a committed calibration.json (run --write first)");
        for key in ["\"backend\"", "\"latency_us\"", "\"bandwidth_gbps\""] {
            assert!(cal.contains(key), "calibration.json lacks {key}");
        }
        println!("OK: transport-invariant digest {mem}; committed artifacts well-formed");
        return;
    }

    let cfg = FabricBenchConfig::paper();
    let digest_mem = trace_digest(&InMemProvider, &cfg);
    let digest_tcp = trace_digest(&TcpProvider, &cfg);
    assert_eq!(digest_mem, digest_tcp, "transport invariance broken");

    let mut rows = measure(&InMemProvider, "inmem", &cfg);
    rows.extend(measure(&TcpProvider, "tcp", &cfg));
    let cal = calibrate(&TcpProvider, cfg.cal_rounds, cfg.cal_bytes);
    let cmp = compare_loopback(&cal, &rows, &cfg);

    print_table(
        "fabric algbw (GB/s)",
        &["backend", "collective", "bytes", "algbw"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.backend.clone(),
                    r.collective.clone(),
                    format!("{}", r.bytes),
                    format!("{:.3}", r.algbw_gbps),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "\ntcp loopback calibration: latency {:.2} us, bandwidth {:.2} GB/s",
        cal.latency_us, cal.bandwidth_gbps
    );
    println!(
        "hfreduce loopback: measured {:.3} GB/s vs simulated {:.3} GB/s (ratio {:.2})",
        cmp.measured_gbps,
        cmp.predicted_gbps,
        cmp.ratio()
    );
    println!("transport-invariant trace digest: {digest_mem}");

    if write {
        let bench = bench_json(&digest_mem, &rows, &cal, &cmp, &cfg);
        std::fs::write(artifact_path("BENCH_fabric.json"), bench).expect("write BENCH_fabric.json");
        let mut cal_doc = cal.to_json();
        cal_doc.push('\n');
        std::fs::write(artifact_path("calibration.json"), cal_doc).expect("write calibration.json");
        println!("wrote BENCH_fabric.json + calibration.json");
    }
}
