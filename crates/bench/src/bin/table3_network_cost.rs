//! Table III: relative network/server cost of the three architectures,
//! with switch counts computed from the topology builders.

use ff_bench::{compare, print_table};
use ff_topo::cost::table3;

fn main() {
    let rows: Vec<Vec<String>> = table3()
        .iter()
        .map(|a| {
            vec![
                a.name.to_string(),
                a.switches.to_string(),
                format!("{:.0}", a.network_price),
                format!("{:.0}", a.server_price),
                format!("{:.0}", a.total()),
            ]
        })
        .collect();
    print_table(
        "Table III — relative cost comparison",
        &["architecture", "switches", "network", "servers", "total"],
        &rows,
    );

    println!();
    let t = table3();
    compare("Our Arch switches", "122", &t[0].switches.to_string());
    compare(
        "Three-layer PCIe switches",
        "200",
        &t[1].switches.to_string(),
    );
    compare("DGX Arch switches", "1320", &t[2].switches.to_string());
    compare(
        "Network saving vs three-layer",
        "40%",
        &format!(
            "{:.0}%",
            (1.0 - t[0].network_price / t[1].network_price) * 100.0
        ),
    );
    compare(
        "Total cost vs DGX",
        "≈50%",
        &format!("{:.0}%", t[0].total() / t[2].total() * 100.0),
    );
}
