//! Ablations of the congestion-management co-design (§VI-A, §VIII-A):
//!
//! 1. Virtual-lane traffic isolation on vs off under a storage storm.
//! 2. Static vs adaptive routing under incast (the §VI-A2 observation).
//! 3. Request-to-send control on vs off under heavy incast (§VI-B3).
//! 4. DCQCN enabled vs the paper's choice of disabling it (§VIII-A).

use ff_bench::{compare, print_table};
use ff_desim::{FluidSim, Route, SimTime};
use ff_net::cc::{Dcqcn, DcqcnParams};
use ff_net::experiments::{congestion_spread, incast, IncastConfig};
use ff_net::{NetResources, ServiceLevel, VlConfig};
use ff_topo::graph::{NodeKind, Topology};
use ff_topo::routing::RoutePolicy;

/// VL isolation ablation: HFReduce flow rate while 10 storage flows storm
/// the same link.
fn vl_ablation() {
    let mut rows = Vec::new();
    for (name, vl) in [
        ("shared (no VLs)", VlConfig::shared()),
        ("isolated VLs", VlConfig::isolated()),
    ] {
        let mut topo = Topology::new();
        let a = topo.add_node(NodeKind::ComputeHost, "a", None);
        let s = topo.add_node(NodeKind::Leaf, "s", None);
        let b = topo.add_node(NodeKind::ComputeHost, "b", None);
        topo.add_link(a, s, 25e9);
        topo.add_link(s, b, 25e9);
        let mut fluid = FluidSim::new();
        let net = NetResources::install(&mut fluid, &topo, vl);
        let path = topo.shortest_paths(a, b, 1).remove(0);
        let hf = fluid.start_flow(
            1e12,
            &net.path_route(&topo, a, &path, ServiceLevel::HfReduce),
        );
        for _ in 0..10 {
            fluid.start_flow(
                1e12,
                &net.path_route(&topo, a, &path, ServiceLevel::Storage),
            );
        }
        let rate = fluid.flow_rate(hf);
        rows.push(vec![name.to_string(), format!("{:.2}", rate / 1e9)]);
    }
    print_table(
        "Ablation 1 — HFReduce rate under a 10-flow storage storm (GB/s)",
        &["configuration", "HFReduce rate"],
        &rows,
    );
    println!(
        "Isolation guarantees the allreduce lane its share regardless of storage load (§VI-A1)."
    );
}

fn routing_ablation() {
    let st = congestion_spread(RoutePolicy::StaticByDestination, 12);
    let ad = congestion_spread(RoutePolicy::Adaptive, 12);
    let rows = vec![
        vec![
            "static".to_string(),
            format!("{:.2}", st.compute_bw.mean() / 1e9),
            format!("{:.2}", st.worst_compute_bw / 1e9),
            format!("{:.0}%", st.links_touched_by_storage * 100.0),
        ],
        vec![
            "adaptive".into(),
            format!("{:.2}", ad.compute_bw.mean() / 1e9),
            format!("{:.2}", ad.worst_compute_bw / 1e9),
            format!("{:.0}%", ad.links_touched_by_storage * 100.0),
        ],
    ];
    print_table(
        "Ablation 2 — routing policy under storage incast",
        &[
            "routing",
            "mean compute GB/s",
            "worst GB/s",
            "links touched by storage",
        ],
        &rows,
    );
    println!(
        "Adaptive routing chases momentarily-quiet links — the ones compute needs — so the slowest\n\
         compute flow (the allreduce pace-setter) degrades; static routing confines the interference (§VI-A2)."
    );
}

fn rts_ablation() {
    let without = incast(&IncastConfig::heavy(None));
    let with = incast(&IncastConfig::heavy(Some(8)));
    let rows = vec![
        vec![
            "no control".to_string(),
            format!("{:.2}", without.goodput_bps / 1e9),
            format!("{:.2}", without.latency.mean() * 1e3),
            format!("{:.1}", without.makespan_s * 1e3),
        ],
        vec![
            "request-to-send (8)".into(),
            format!("{:.2}", with.goodput_bps / 1e9),
            format!("{:.2}", with.latency.mean() * 1e3),
            format!("{:.1}", with.makespan_s * 1e3),
        ],
    ];
    print_table(
        "Ablation 3 — 64-sender incast at the client NIC",
        &[
            "admission",
            "goodput GB/s",
            "mean latency ms",
            "makespan ms",
        ],
        &rows,
    );
    println!(
        "RTS 'increases end-to-end IO latency but is required to achieve sustainable high throughput' (§VI-B3)."
    );
}

fn dcqcn_ablation() {
    // One long storage stream on a dedicated link: DCQCN's sawtooth
    // underutilizes it; disabling CC leaves the VL/static-routing design
    // congestion-free at full rate (§VIII-A).
    let run = |with_cc: bool| -> f64 {
        let mut fluid = FluidSim::new();
        let link = fluid.add_resource("link", 25e9);
        let bytes = 5e9;
        if with_cc {
            let mut cc = Dcqcn::new(DcqcnParams::default());
            let (route, _) = cc.pace(&mut fluid, &Route::unit([link]), 25e9, vec![(link, 25e9)]);
            fluid.start_flow(bytes, &route);
            let mut t = fluid.now();
            loop {
                cc.step(&mut fluid);
                t += cc.period();
                match fluid.next_completion_time() {
                    Some(tc) if tc <= t => {
                        let (done_t, _) = fluid.advance_to_next_completion().expect("flow");
                        return bytes / done_t.as_secs_f64();
                    }
                    Some(_) => fluid.advance_to(t),
                    None => return 0.0,
                }
            }
        } else {
            fluid.start_flow(bytes, &Route::unit([link]));
            let (t, _) = fluid.advance_to_next_completion().expect("flow");
            let _ = SimTime::ZERO;
            bytes / t.as_secs_f64()
        }
    };
    let with_cc = run(true);
    let without = run(false);
    let rows = vec![
        vec!["DCQCN enabled".to_string(), format!("{:.2}", with_cc / 1e9)],
        vec![
            "DCQCN disabled (paper)".into(),
            format!("{:.2}", without / 1e9),
        ],
    ];
    print_table(
        "Ablation 4 — single storage stream goodput (GB/s)",
        &["congestion control", "goodput"],
        &rows,
    );
    compare(
        "DCQCN cost on steady storage traffic",
        "disabled in production (§VIII-A)",
        &format!("{:.0}% of line rate with CC on", with_cc / without * 100.0),
    );
}

fn main() {
    vl_ablation();
    routing_ablation();
    rts_ablation();
    dcqcn_ablation();
}
