//! Ablations of the congestion-management co-design (§VI-A, §VIII-A):
//!
//! 1. Virtual-lane traffic isolation on vs off under a storage storm.
//! 2. Static vs adaptive routing under incast (the §VI-A2 observation).
//! 3. Request-to-send control on vs off under heavy incast (§VI-B3).
//! 4. DCQCN enabled vs the paper's choice of disabling it (§VIII-A).

use ff_bench::{compare, print_table};
use ff_desim::{FluidSim, Route, SimTime};
use ff_net::cc::{Dcqcn, DcqcnParams};
use ff_net::experiments::{congestion_spread_with, incast, IncastConfig, SpreadConfig};
use ff_net::{NetResources, ServiceLevel, VlConfig};
use ff_topo::graph::{NodeKind, Topology};
use ff_topo::routing::RoutePolicy;

/// VL isolation ablation: HFReduce flow rate while 10 storage flows storm
/// the same link.
fn vl_ablation() {
    let mut rows = Vec::new();
    for (name, vl) in [
        ("shared (no VLs)", VlConfig::shared()),
        ("isolated VLs", VlConfig::isolated()),
    ] {
        let mut topo = Topology::new();
        let a = topo.add_node(NodeKind::ComputeHost, "a", None);
        let s = topo.add_node(NodeKind::Leaf, "s", None);
        let b = topo.add_node(NodeKind::ComputeHost, "b", None);
        topo.add_link(a, s, 25e9);
        topo.add_link(s, b, 25e9);
        let mut fluid = FluidSim::new();
        let net = NetResources::install(&mut fluid, &topo, vl);
        let path = topo.shortest_paths(a, b, 1).remove(0);
        let hf = fluid.start_flow(
            1e12,
            &net.path_route(&topo, a, &path, ServiceLevel::HfReduce),
        );
        for _ in 0..10 {
            fluid.start_flow(
                1e12,
                &net.path_route(&topo, a, &path, ServiceLevel::Storage),
            );
        }
        let rate = fluid.flow_rate(hf);
        rows.push(vec![name.to_string(), format!("{:.2}", rate / 1e9)]);
    }
    print_table(
        "Ablation 1 — HFReduce rate under a 10-flow storage storm (GB/s)",
        &["configuration", "HFReduce rate"],
        &rows,
    );
    println!(
        "Isolation guarantees the allreduce lane its share regardless of storage load (§VI-A1)."
    );
}

fn routing_ablation() {
    let mut rows = Vec::new();
    for (fabric, cfg) in [
        ("small (48 hosts)", SpreadConfig::small(12)),
        ("paper zone (780 hosts)", SpreadConfig::paper_zone(48)),
    ] {
        for (name, policy) in [
            ("static", RoutePolicy::StaticByDestination),
            ("adaptive", RoutePolicy::Adaptive),
        ] {
            let r = congestion_spread_with(policy, &cfg);
            rows.push(vec![
                fabric.to_string(),
                name.to_string(),
                format!("{:.2}", r.compute_bw.mean() / 1e9),
                format!("{:.2}", r.worst_compute_bw / 1e9),
                format!("{:.0}%", r.links_touched_by_storage * 100.0),
            ]);
        }
    }
    print_table(
        "Ablation 2 — routing policy under storage incast",
        &[
            "fabric",
            "routing",
            "mean compute GB/s",
            "worst GB/s",
            "links touched by storage",
        ],
        &rows,
    );
    println!(
        "Adaptive routing chases momentarily-quiet links — the ones compute needs — so the slowest\n\
         compute flow (the allreduce pace-setter) degrades; static routing confines the interference (§VI-A2)."
    );
}

fn rts_ablation() {
    let mut rows = Vec::new();
    for (scale, mk) in [
        (
            "64 senders",
            IncastConfig::heavy as fn(Option<usize>) -> IncastConfig,
        ),
        ("180 senders (full zone)", IncastConfig::paper_scale),
    ] {
        for (name, limit) in [("no control", None), ("request-to-send (8)", Some(8))] {
            let r = incast(&mk(limit));
            rows.push(vec![
                scale.to_string(),
                name.to_string(),
                format!("{:.2}", r.goodput_bps / 1e9),
                format!("{:.2}", r.latency.mean() * 1e3),
                format!("{:.1}", r.makespan_s * 1e3),
            ]);
        }
    }
    print_table(
        "Ablation 3 — incast at the client NIC",
        &[
            "scale",
            "admission",
            "goodput GB/s",
            "mean latency ms",
            "makespan ms",
        ],
        &rows,
    );
    println!(
        "RTS 'increases end-to-end IO latency but is required to achieve sustainable high throughput' (§VI-B3)."
    );
}

fn dcqcn_ablation() {
    // One long storage stream on a dedicated link: DCQCN's sawtooth
    // underutilizes it; disabling CC leaves the VL/static-routing design
    // congestion-free at full rate (§VIII-A).
    let run = |with_cc: bool| -> f64 {
        let mut fluid = FluidSim::new();
        let link = fluid.add_resource("link", 25e9);
        let bytes = 5e9;
        if with_cc {
            let mut cc = Dcqcn::new(DcqcnParams::default());
            let (route, _) = cc.pace(&mut fluid, &Route::unit([link]), 25e9, vec![(link, 25e9)]);
            fluid.start_flow(bytes, &route);
            let mut t = fluid.now();
            loop {
                cc.step(&mut fluid);
                t += cc.period();
                match fluid.next_completion_time() {
                    Some(tc) if tc <= t => {
                        let (done_t, _) = fluid.advance_to_next_completion().expect("flow");
                        return bytes / done_t.as_secs_f64();
                    }
                    Some(_) => fluid.advance_to(t),
                    None => return 0.0,
                }
            }
        } else {
            fluid.start_flow(bytes, &Route::unit([link]));
            let (t, _) = fluid.advance_to_next_completion().expect("flow");
            let _ = SimTime::ZERO;
            bytes / t.as_secs_f64()
        }
    };
    let with_cc = run(true);
    let without = run(false);
    let rows = vec![
        vec!["DCQCN enabled".to_string(), format!("{:.2}", with_cc / 1e9)],
        vec![
            "DCQCN disabled (paper)".into(),
            format!("{:.2}", without / 1e9),
        ],
    ];
    print_table(
        "Ablation 4 — single storage stream goodput (GB/s)",
        &["congestion control", "goodput"],
        &rows,
    );
    compare(
        "DCQCN cost on steady storage traffic",
        "disabled in production (§VIII-A)",
        &format!("{:.0}% of line rate with CC on", with_cc / without * 100.0),
    );
}

fn main() {
    vl_ablation();
    routing_ablation();
    rts_ablation();
    dcqcn_ablation();
}
