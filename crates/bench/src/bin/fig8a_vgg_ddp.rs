//! Figure 8a: weak-scaling VGG16 training — HaiScale DDP (HFReduce) vs
//! PyTorch DDP (NCCL), 32 → 512 GPUs.

use ff_bench::print_table;
use ff_haiscale::ddp::{ddp_step, DdpBackend};
use ff_haiscale::models::TrainModel;
use ff_haiscale::weak_scaling_efficiency;

fn main() {
    let model = TrainModel::vgg16();
    let batch = 32usize;
    let gpu_counts = [32usize, 64, 128, 256, 512];
    let mut rows = Vec::new();
    let mut first = (0.0, 0.0);
    let mut last = (0.0, 0.0);
    for (i, &gpus) in gpu_counts.iter().enumerate() {
        let hai = ddp_step(&model, gpus, batch, DdpBackend::HaiScale).total_s();
        let torch = ddp_step(&model, gpus, batch, DdpBackend::TorchNccl).total_s();
        if i == 0 {
            first = (hai, torch);
        }
        last = (hai, torch);
        rows.push(vec![
            gpus.to_string(),
            format!("{:.1}", hai * 1e3),
            format!("{:.1}", torch * 1e3),
            format!("{:.2}×", torch / hai),
        ]);
    }
    print_table(
        "Figure 8a — VGG16 DDP step time, weak scaling (ms)",
        &["GPUs", "HaiScale (HFReduce)", "Torch DDP (NCCL)", "speedup"],
        &rows,
    );
    println!();
    ff_bench::compare(
        "HaiScale vs Torch step time",
        "≈2× faster ('half the time')",
        &format!("{:.2}× faster at 512 GPUs", last.1 / last.0),
    );
    ff_bench::compare(
        "HaiScale weak-scaling efficiency 32→512",
        "≈88%",
        &format!("{:.0}%", weak_scaling_efficiency(first.0, last.0) * 100.0),
    );
}
