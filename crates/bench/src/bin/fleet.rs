//! Monte-Carlo fleet sweeper & what-if capacity planner: `BENCH_fleet.json`.
//!
//! Sweeps the committed 216-cell grid (failure-rate multiplier ×
//! checkpoint cadence × serving share × 3FS replication) of full-scale
//! platform replays and writes the distributional aggregate as a
//! committed artifact, so the what-if table in EXPERIMENTS.md is
//! regenerated, not transcribed. The aggregate is bit-identical for a
//! given `(seed, grid)` at any worker count — `--check` re-runs the
//! small grid and compares digests, CI style.
//!
//! ```text
//! fleet                  # run the full grid, print the planner tables
//! fleet --write          # same, then rewrite BENCH_fleet.json
//! fleet --check          # verify BENCH_fleet.json matches a fresh run
//! fleet --small          # the 24-cell CI grid instead of the full 216
//! fleet --workers N      # cap sweep lanes (result is identical anyway)
//! ```
//!
//! The full grid is ~216 simulated hours of a 1,250-node cluster; expect
//! minutes of wall-clock on one core.

use ff_bench::fleet::{aggregate_json, sweep, whatif_rows, FleetConfig};
use ff_bench::print_table;
use std::time::Instant;

fn bench_path() -> std::path::PathBuf {
    // crates/bench → repo root.
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_fleet.json")
}

/// Extract the string following `"key": "` in the committed artifact.
fn json_string(doc: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let at = doc.find(&pat)? + pat.len();
    let end = doc[at..].find('"')?;
    Some(doc[at..at + end].to_string())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let write = args.iter().any(|a| a == "--write");
    let check = args.iter().any(|a| a == "--check");
    let small = args.iter().any(|a| a == "--small");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<usize>().ok())
    };

    let mut cfg = if small || check {
        FleetConfig::small_grid()
    } else {
        FleetConfig::paper_grid()
    };
    if let Some(w) = flag("--workers") {
        cfg.workers = w;
    }
    // Exploration overrides (the committed artifact always uses the
    // defaults; --write refuses overridden runs).
    let overridden = flag("--nodes").is_some() || flag("--horizon").is_some();
    if let Some(n) = flag("--nodes") {
        cfg.nodes = n;
    }
    if let Some(h) = flag("--horizon") {
        cfg.horizon_s = h as u64;
    }
    assert!(
        !(write && overridden),
        "--write records the canonical grid; drop --nodes/--horizon"
    );

    let t0 = Instant::now();
    let result = sweep(&cfg);
    let wall = t0.elapsed().as_secs_f64();
    println!(
        "swept {} cells ({} nodes, {} s horizon) in {wall:.1}s on {} lane(s): digest {}",
        result.outcomes.len(),
        cfg.nodes,
        cfg.horizon_s,
        cfg.workers,
        result.digest
    );

    if check {
        // The committed artifact embeds the *small* grid digest alongside
        // the full aggregate, so CI re-proves determinism without paying
        // for 216 full-scale cells.
        let committed = std::fs::read_to_string(bench_path())
            .expect("--check requires a committed BENCH_fleet.json (run --write first)");
        let want = json_string(&committed, "small_grid_digest")
            .expect("BENCH_fleet.json has small_grid_digest");
        assert_eq!(
            result.digest, want,
            "small-grid sweep digest changed: scenario outcomes differ from the \
             committed baseline — regenerate BENCH_fleet.json with --write and \
             justify the change"
        );
        println!("OK: small-grid digest matches BENCH_fleet.json");
        return;
    }

    // The planner tables: goodput by (rate × ckpt), the marginal the
    // checkpoint-cadence what-if question reads off directly.
    let rows = whatif_rows(&result.outcomes);
    if let Some((_, cols, _)) = rows.first() {
        let mut header: Vec<String> = vec!["rate_scale".into()];
        header.extend(cols.iter().map(|(ck, _, _)| format!("ckpt={ck}")));
        header.push("best".into());
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|(rate, cols, best)| {
                let mut r = vec![format!("{rate}")];
                r.extend(cols.iter().map(|(_, gp, _)| format!("{gp:.4}")));
                r.push(format!("{best}"));
                r
            })
            .collect();
        print_table(
            "mean goodput by failure rate x checkpoint cadence",
            &header,
            &table,
        );
        let lost: Vec<Vec<String>> = rows
            .iter()
            .map(|(rate, cols, _)| {
                let mut r = vec![format!("{rate}")];
                r.extend(cols.iter().map(|(_, _, l)| format!("{l:.0}")));
                r.push(String::new());
                r
            })
            .collect();
        print_table("mean lost node-steps", &header, &lost);
    }

    if small {
        return;
    }

    let json = aggregate_json(&cfg, &result);
    if write {
        // Re-run the small grid so `--check` has a cheap digest to verify.
        let small_digest = sweep(&FleetConfig::small_grid()).digest;
        let json = json.replacen(
            "  \"bench\": \"fleet\",",
            &format!("  \"bench\": \"fleet\",\n  \"small_grid_digest\": \"{small_digest}\","),
            1,
        );
        std::fs::write(bench_path(), &json).expect("write BENCH_fleet.json");
        println!("wrote {}", bench_path().display());
    } else {
        print!("{json}");
    }
}
