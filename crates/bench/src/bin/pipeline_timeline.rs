//! A Gantt view of the HFReduce chunk pipeline (Algorithm 1 + 2): one
//! node's stages for a 4-chunk allreduce between two nodes, showing the
//! overlap the pipelining buys — D2H of chunk *c+1* under way while chunk
//! *c* reduces and chunk *c−1* is on the wire.

use ff_desim::{DagSim, FluidSim, SimTime, Work};
use ff_hw::{NodeHw, NodeSpec, TransferMethod};

#[allow(clippy::needless_range_loop)] // GPU index mirrors chained per-GPU state
fn main() {
    let mut fluid = FluidSim::new();
    let hw = NodeHw::install(&mut fluid, "node0", &NodeSpec::pcie_a100());
    // A stand-in for the NIC wire + peer (tree edge to the other node).
    let wire = fluid.add_resource("wire", 25e9);
    let mut dag = DagSim::new(fluid);

    let chunk_bytes = 16.0 * 1024.0 * 1024.0;
    let chunks = 4;
    let mut prev_d2h = [None; 8];
    let mut prev_red = None;
    let mut prev_net = None;
    let mut prev_h2d = [None; 8];
    for c in 0..chunks {
        let mut d2h_ids = Vec::new();
        for g in 0..8 {
            let deps: Vec<_> = prev_d2h[g].into_iter().collect();
            let id = dag.add_labeled(
                if g == 0 {
                    format!("chunk{c} D2H")
                } else {
                    String::new()
                },
                Work::Transfer {
                    work: chunk_bytes,
                    route: hw.d2h(g),
                },
                &deps,
            );
            prev_d2h[g] = Some(id);
            d2h_ids.push(id);
        }
        let mut deps = d2h_ids;
        deps.extend(prev_red);
        let red = dag.add_labeled(
            format!("chunk{c} CPU reduce"),
            Work::Transfer {
                work: chunk_bytes,
                route: hw.cpu_reduce(8),
            },
            &deps,
        );
        prev_red = Some(red);
        let mut deps = vec![red];
        deps.extend(prev_net);
        let mut net_route = hw.ib_send(0);
        net_route.push(wire, 1.0);
        let net = dag.add_labeled(
            format!("chunk{c} RDMA tree"),
            Work::Transfer {
                work: chunk_bytes,
                route: net_route,
            },
            &deps,
        );
        prev_net = Some(net);
        for g in 0..8 {
            let mut deps = vec![net];
            deps.extend(prev_h2d[g]);
            let id = dag.add_labeled(
                if g == 0 {
                    format!("chunk{c} H2D")
                } else {
                    String::new()
                },
                Work::Transfer {
                    work: chunk_bytes,
                    route: hw.h2d(g, TransferMethod::GdrCopy),
                },
                &deps,
            );
            prev_h2d[g] = Some(id);
        }
    }
    let makespan = dag.run();
    let timeline = dag.timeline();

    println!("HFReduce pipeline, 2 nodes × 8 GPUs, 4 chunks of 16 MiB (one node's view):\n");
    let total = makespan.as_secs_f64();
    let width = 64usize;
    let to_col = |t: SimTime| ((t.as_secs_f64() / total) * width as f64).round() as usize;
    for (label, start, finish) in &timeline {
        let s = to_col(*start).min(width);
        let f = to_col(*finish).clamp(s + 1, width);
        let mut bar = vec![b' '; width];
        for cell in bar.iter_mut().take(f).skip(s) {
            *cell = b'#';
        }
        println!("{label:>18} |{}|", String::from_utf8(bar).expect("ascii"));
    }
    println!(
        "\nmakespan {:.3} ms — stage k of chunk c overlaps stage k−1 of chunk c+1 (Algorithm 1).",
        total * 1e3
    );
}
