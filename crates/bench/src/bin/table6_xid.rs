//! Tables V & VI: the Xid taxonomy and the yearly error distribution —
//! the paper's raw data side by side with a freshly generated synthetic
//! year from the calibrated failure model.

use ff_bench::{compare, print_table};
use ff_failures::data::{table_vi_total, TABLE_VI_XID_COUNTS};
use ff_failures::generator::{FailureGenerator, YEAR_S};
use ff_failures::report::xid_table;
use ff_failures::Xid;

fn main() {
    let mut gen = FailureGenerator::paper_calibrated(2024, 1250);
    let events = gen.generate(YEAR_S);
    let rows_gen = xid_table(&events);

    let mut rows = Vec::new();
    for &(code, paper_count) in TABLE_VI_XID_COUNTS {
        let x = Xid(code);
        let gen_row = rows_gen.iter().find(|r| r.xid == x);
        rows.push(vec![
            format!("xid_{code}"),
            format!("{:?}", x.category().expect("tracked code")),
            paper_count.to_string(),
            format!(
                "{:.2}%",
                100.0 * paper_count as f64 / table_vi_total() as f64
            ),
            gen_row
                .map(|r| r.count.to_string())
                .unwrap_or_else(|| "0".into()),
            gen_row
                .map(|r| format!("{:.2}%", r.percentage))
                .unwrap_or_else(|| "0%".into()),
        ]);
    }
    print_table(
        "Table VI — GPU Xid errors over one year (paper vs generated)",
        &[
            "xid",
            "category",
            "paper #",
            "paper %",
            "generated #",
            "generated %",
        ],
        &rows,
    );

    println!("\nTable V handling guidance:");
    for cat in [
        ff_failures::XidCategory::SoftwareCauses,
        ff_failures::XidCategory::NvLinkError,
        ff_failures::XidCategory::MemoryEcc,
        ff_failures::XidCategory::Uncorrectable,
        ff_failures::XidCategory::GspError,
    ] {
        println!("  {:?}: {}", cat, cat.handling());
    }

    println!();
    let gen_total: u64 = rows_gen.iter().map(|r| r.count).sum();
    compare("Total Xid events/year", "12,970", &gen_total.to_string());
    let nv = rows_gen
        .iter()
        .find(|r| r.xid == Xid(74))
        .map(|r| r.percentage)
        .unwrap_or(0.0);
    compare("Xid 74 (NVLink) share", "42.57%", &format!("{nv:.2}%"));
    compare(
        "NVLink share vs other-architecture report",
        "42.57% vs 52.42% (§VIII-D)",
        &format!("{nv:.2}% vs 52.42%"),
    );
}
